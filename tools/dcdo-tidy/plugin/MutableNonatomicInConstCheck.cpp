//===--- MutableNonatomicInConstCheck.cpp - clang-tidy --------------------===//

#include "MutableNonatomicInConstCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

namespace {

// Types whose writes are synchronized by construction: std::atomic<T>,
// atomic-wrapper counters (anything named *Counter, e.g. trace::Counter),
// and the synchronization primitives themselves.
bool TypeIsSynchronized(QualType Type) {
  const auto *Record = Type.getNonReferenceType()->getAsCXXRecordDecl();
  if (!Record)
    return Type->isAtomicType();
  StringRef Name = Record->getName();
  return Name.startswith("atomic") || Name.endswith("Counter") ||
         Name.contains("mutex") || Name == "condition_variable" ||
         Name == "once_flag" || Name == "latch";
}

// Does the method body acquire any lock? RAII guards show up as VarDecls of
// guard types; manual locking as .lock()/.Lock() member calls.
bool BodyAcquiresLock(const CXXMethodDecl *Method, ASTContext &Context) {
  if (!Method->hasBody())
    return false;
  auto Guards = match(
      functionDecl(hasBody(forEachDescendant(
          varDecl(hasType(cxxRecordDecl(hasAnyName(
                      "lock_guard", "unique_lock", "scoped_lock",
                      "shared_lock"))))
              .bind("guard")))),
      *Method, Context);
  if (!Guards.empty())
    return true;
  auto ManualLocks = match(
      functionDecl(hasBody(forEachDescendant(
          cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName("lock", "Lock"))))
              .bind("lock")))),
      *Method, Context);
  return !ManualLocks.empty();
}

} // namespace

void MutableNonatomicInConstCheck::registerMatchers(MatchFinder *Finder) {
  // this->member for a mutable member (atomicity is re-checked in check():
  // AST matchers cannot easily express "not an atomic wrapper type").
  auto MutableThisMember =
      memberExpr(member(fieldDecl(isMutable()).bind("field")),
                 hasObjectExpression(ignoringParenImpCasts(cxxThisExpr())))
          .bind("member");
  auto InConstMethod =
      hasAncestor(cxxMethodDecl(isConst(), hasBody(stmt())).bind("method"));

  // ++m / --m
  Finder->addMatcher(unaryOperator(hasAnyOperatorName("++", "--"),
                                   hasUnaryOperand(MutableThisMember),
                                   InConstMethod)
                         .bind("write"),
                     this);
  // m = x / m += x / ...
  Finder->addMatcher(binaryOperator(isAssignmentOperator(),
                                    hasLHS(MutableThisMember), InConstMethod)
                         .bind("write"),
                     this);
  // m op= x through overloaded operators, and m[i] = x via operator[].
  Finder->addMatcher(cxxOperatorCallExpr(isAssignmentOperator(),
                                         hasArgument(0, MutableThisMember),
                                         InConstMethod)
                         .bind("write"),
                     this);
  // Mutating container calls: m.insert(...), m.push_back(...), ...
  Finder->addMatcher(
      cxxMemberCallExpr(
          on(MutableThisMember),
          callee(cxxMethodDecl(hasAnyName(
              "insert", "erase", "push_back", "emplace", "emplace_back",
              "clear", "pop_back", "assign", "splice", "push_front",
              "resize", "store"))),
          InConstMethod)
          .bind("write"),
      this);
}

void MutableNonatomicInConstCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Field = Result.Nodes.getNodeAs<FieldDecl>("field");
  const auto *Member = Result.Nodes.getNodeAs<MemberExpr>("member");
  const auto *Method = Result.Nodes.getNodeAs<CXXMethodDecl>("method");
  if (!Field || !Member || !Method)
    return;
  if (TypeIsSynchronized(Field->getType()))
    return;
  if (BodyAcquiresLock(Method, *Result.Context))
    return;
  diag(Member->getMemberLoc(),
       "const method %0 writes mutable non-atomic member %1 without holding "
       "a lock; const reads as thread-safe at call sites, so this hidden "
       "write is a data race under concurrent callers — use std::atomic, "
       "trace::Counter, or hold a mutex")
      << Method << Field;
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
