//===--- CrossLocalityScheduleCheck.h - clang-tidy --------------*- C++ -*-===//
//
// dcdo-cross-locality-schedule: a lambda passed to a deferred scheduling
// sink (Simulation::Schedule/ScheduleAt/ScheduleFor/ScheduleAtFor/
// ScheduleGlobal, Locality::PushRemote, SimNetwork::Send) captures by
// reference. Under the parallel locality executor (DESIGN.md §14) the
// callback may fire on a different worker thread after the scheduling
// frame has returned, so `[&]` / `[&x]` captures dangle or race with the
// locality that owns the referent. The PR 8 audit rule: deferred callbacks
// capture by value — ids, copies, or an owner pointer whose lifetime the
// scheduler controls.
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_CROSSLOCALITYSCHEDULECHECK_H
#define DCDO_TIDY_PLUGIN_CROSSLOCALITYSCHEDULECHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class CrossLocalityScheduleCheck : public ClangTidyCheck {
public:
  CrossLocalityScheduleCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus11;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_CROSSLOCALITYSCHEDULECHECK_H
