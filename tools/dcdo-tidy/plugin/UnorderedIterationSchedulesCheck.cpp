//===--- UnorderedIterationSchedulesCheck.cpp - clang-tidy ----------------===//

#include "UnorderedIterationSchedulesCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

void UnorderedIterationSchedulesCheck::registerMatchers(MatchFinder *Finder) {
  // Range expression whose type is an unordered associative container.
  auto UnorderedRange = hasRangeInit(anyOf(
      hasType(cxxRecordDecl(hasAnyName("unordered_map", "unordered_set",
                                       "unordered_multimap",
                                       "unordered_multiset"))),
      hasType(qualType(hasDeclaration(cxxRecordDecl(
          hasAnyName("unordered_map", "unordered_set", "unordered_multimap",
                     "unordered_multiset")))))));

  // Order-sensitive sinks: simulation event enqueue and network sends.
  auto Sink = callExpr(callee(functionDecl(hasAnyName(
                           "Schedule", "ScheduleAt", "Send", "SendMessage",
                           "Transfer", "TimedTransfer", "StreamTransfer",
                           "FetchTo", "StreamTo"))))
                  .bind("sink");

  Finder->addMatcher(
      cxxForRangeStmt(UnorderedRange, hasDescendant(Sink)).bind("loop"),
      this);
}

void UnorderedIterationSchedulesCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  const auto *Sink = Result.Nodes.getNodeAs<CallExpr>("sink");
  if (!Loop || !Sink)
    return;
  diag(Loop->getForLoc(),
       "iteration over an unordered container reaches a schedule/send call; "
       "hash order is unspecified, so event order — and every SimTime_* "
       "metric — varies run to run; iterate a sorted copy of the keys "
       "before scheduling");
  diag(Sink->getBeginLoc(), "order-sensitive call is here",
       DiagnosticIDs::Note);
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
