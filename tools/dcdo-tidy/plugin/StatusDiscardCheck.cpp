//===--- StatusDiscardCheck.cpp - clang-tidy ------------------------------===//

#include "StatusDiscardCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

void StatusDiscardCheck::registerMatchers(MatchFinder *Finder) {
  auto StatusReturn = returns(hasDeclaration(
      cxxRecordDecl(hasAnyName("::dcdo::Status", "::dcdo::Result"))));

  // A Status-returning call whose value is consumed by nothing: its parent
  // is a statement position (compound statement directly, or via the
  // ExprWithCleanups that wraps a discarded temporary with a destructor).
  auto StatementPosition =
      anyOf(hasParent(compoundStmt()),
            hasParent(exprWithCleanups(hasParent(compoundStmt()))));

  Finder->addMatcher(callExpr(callee(functionDecl(StatusReturn)),
                              StatementPosition,
                              // `(void)Call()` is an explicit, reviewed
                              // discard — the cast consumes the value.
                              unless(hasParent(cStyleCastExpr())),
                              unless(hasParent(exprWithCleanups(
                                  hasParent(cStyleCastExpr())))))
                         .bind("call"),
                     this);
}

void StatusDiscardCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (!Call)
    return;
  const auto *Callee = Call->getDirectCallee();
  diag(Call->getBeginLoc(),
       "return value of %0 (dcdo::Status) is discarded — a swallowed "
       "failure; handle it, DCDO_RETURN_IF_ERROR it, or cast to void with "
       "a comment explaining why failure is ignorable")
      << (Callee ? Callee->getNameAsString() : std::string("call"));
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
