//===--- WallclockInSimCheck.cpp - clang-tidy -----------------------------===//

#include "WallclockInSimCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

WallclockInSimCheck::WallclockInSimCheck(StringRef Name,
                                         ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      RawAllowedPathPrefixes(
          Options.get("AllowedPathPrefixes", "src/trace/;bench/")) {
  StringRef Rest = RawAllowedPathPrefixes;
  while (!Rest.empty()) {
    StringRef Prefix;
    std::tie(Prefix, Rest) = Rest.split(';');
    if (!Prefix.empty())
      AllowedPathPrefixes.push_back(Prefix.str());
  }
}

void WallclockInSimCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPathPrefixes", RawAllowedPathPrefixes);
}

void WallclockInSimCheck::registerMatchers(MatchFinder *Finder) {
  // steady_clock::now(), system_clock::now(), high_resolution_clock::now().
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("steady_clock", "system_clock",
                                      "high_resolution_clock")))))
          .bind("wallclock"),
      this);
  // C rand()/srand()/time().
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand", "::time"))))
          .bind("crand"),
      this);
  // std::random_device construction (each read is nondeterministic entropy).
  Finder->addMatcher(
      cxxConstructExpr(hasType(cxxRecordDecl(hasName("random_device"))))
          .bind("rdev"),
      this);
}

void WallclockInSimCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  const char *What = nullptr;
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("wallclock")) {
    Loc = Call->getBeginLoc();
    What = "wall-clock read";
  } else if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("crand")) {
    Loc = Call->getBeginLoc();
    What = "nondeterministic C library call";
  } else if (const auto *Ctor = Result.Nodes.getNodeAs<CXXConstructExpr>(
                 "rdev")) {
    Loc = Ctor->getBeginLoc();
    What = "std::random_device";
  }
  if (!What || Loc.isInvalid())
    return;

  const SourceManager &SM = *Result.SourceManager;
  StringRef File = SM.getFilename(SM.getExpansionLoc(Loc));
  for (const std::string &Prefix : AllowedPathPrefixes) {
    if (File.contains(Prefix))
      return;
  }
  diag(Loc,
       "%0 in simulation code; the simulator owns time "
       "(Simulation::NowNanos) and randomness must come from seeded "
       "engines, or runs stop being reproducible")
      << What;
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
