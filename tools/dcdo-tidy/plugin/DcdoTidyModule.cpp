//===--- DcdoTidyModule.cpp - clang-tidy module for dcdo checks -----------===//
//
// Registers the six repo-specific checks (DESIGN.md §12) as a clang-tidy
// loadable module:
//
//   clang-tidy --load=dcdo_tidy_module.so --checks='dcdo-*' ...
//
// The checks mirror tools/dcdo-tidy/engine/ (same names, same NOLINT
// semantics, same fixture suite under tests/analysis/fixtures/); the engine
// is the dependency-free fallback for machines without clang-tidy dev
// headers, this module is the precise AST-backed implementation.
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CrossLocalityScheduleCheck.h"
#include "MutableNonatomicInConstCheck.h"
#include "SharedFunctionSelfCaptureCheck.h"
#include "StatusDiscardCheck.h"
#include "UnorderedIterationSchedulesCheck.h"
#include "WallclockInSimCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class DcdoTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<SharedFunctionSelfCaptureCheck>(
        "dcdo-shared-function-self-capture");
    CheckFactories.registerCheck<MutableNonatomicInConstCheck>(
        "dcdo-mutable-nonatomic-in-const");
    CheckFactories.registerCheck<UnorderedIterationSchedulesCheck>(
        "dcdo-unordered-iteration-schedules");
    CheckFactories.registerCheck<WallclockInSimCheck>("dcdo-wallclock-in-sim");
    CheckFactories.registerCheck<StatusDiscardCheck>("dcdo-status-discard");
    CheckFactories.registerCheck<CrossLocalityScheduleCheck>(
        "dcdo-cross-locality-schedule");
  }
};

} // namespace dcdo_check

// Register the module with clang-tidy's module registry; the static
// initializer runs when the shared object is --load'ed.
static ClangTidyModuleRegistry::Add<dcdo_check::DcdoTidyModule>
    X("dcdo-module", "Adds the dcdo repo-specific checks.");

// Anchor so the registry entry is not dead-stripped from the module.
volatile int DcdoTidyModuleAnchorSource = 0;

} // namespace tidy
} // namespace clang
