//===--- UnorderedIterationSchedulesCheck.h - clang-tidy --------*- C++ -*-===//
//
// dcdo-unordered-iteration-schedules: a range-for over an unordered
// container whose body reaches a simulation scheduling or network-send call
// (Simulation::Schedule/ScheduleAt, SimNetwork::Send/Transfer/...). Hash
// iteration order is unspecified, so event enqueue order — and therefore
// every SimTime_* metric — varies run to run. The PR 5 determinism rule:
// iterate a sorted copy of the keys (or a std::map) before scheduling.
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_UNORDEREDITERATIONSCHEDULESCHECK_H
#define DCDO_TIDY_PLUGIN_UNORDEREDITERATIONSCHEDULESCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class UnorderedIterationSchedulesCheck : public ClangTidyCheck {
public:
  UnorderedIterationSchedulesCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus11;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_UNORDEREDITERATIONSCHEDULESCHECK_H
