//===--- SharedFunctionSelfCaptureCheck.cpp - clang-tidy ------------------===//

#include "SharedFunctionSelfCaptureCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

namespace {

// shared_ptr whose element type is a callable wrapper (std::function or the
// repo's dcdo::MoveFunction).
AST_MATCHER(QualType, isSharedPtrToCallable) {
  const auto *Spec =
      Node.getNonReferenceType()
          ->getAs<TemplateSpecializationType>();
  if (!Spec) {
    const auto *Record = Node.getNonReferenceType()->getAsCXXRecordDecl();
    if (!Record || Record->getName() != "shared_ptr")
      return false;
    const auto *CTS = dyn_cast<ClassTemplateSpecializationDecl>(Record);
    if (!CTS || CTS->getTemplateArgs().size() == 0)
      return false;
    QualType Arg = CTS->getTemplateArgs()[0].getAsType();
    const auto *ArgRecord = Arg->getAsCXXRecordDecl();
    return ArgRecord && (ArgRecord->getName() == "function" ||
                         ArgRecord->getName() == "MoveFunction");
  }
  // Sugared spelling: walk the written template arguments.
  const TemplateDecl *TD = Spec->getTemplateName().getAsTemplateDecl();
  if (!TD || TD->getName() != "shared_ptr" || Spec->getNumArgs() == 0)
    return false;
  QualType Arg = Spec->getArg(0).getAsType();
  const auto *ArgRecord = Arg->getAsCXXRecordDecl();
  return ArgRecord && (ArgRecord->getName() == "function" ||
                       ArgRecord->getName() == "MoveFunction");
}

} // namespace

void SharedFunctionSelfCaptureCheck::registerMatchers(MatchFinder *Finder) {
  // A lambda that appears on the right-hand side of an assignment through a
  // dereferenced shared_ptr<callable> variable:  *owner = [captures]...
  auto Owner =
      varDecl(hasType(qualType(isSharedPtrToCallable()))).bind("owner");
  auto DerefOfOwner = unaryOperator(
      hasOperatorName("*"),
      hasUnaryOperand(ignoringParenImpCasts(declRefExpr(to(Owner)))));
  Finder->addMatcher(
      lambdaExpr(hasAncestor(cxxOperatorCallExpr(
                     hasOverloadedOperatorName("="),
                     hasArgument(0, ignoringParenImpCasts(DerefOfOwner)))))
          .bind("lambda"),
      this);
}

void SharedFunctionSelfCaptureCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda");
  const auto *Owner = Result.Nodes.getNodeAs<VarDecl>("owner");
  if (!Lambda || !Owner)
    return;

  for (const LambdaCapture &Capture : Lambda->captures()) {
    if (!Capture.capturesVariable())
      continue;
    if (Capture.getCaptureKind() != LCK_ByCopy)
      continue;
    const VarDecl *Captured = Capture.getCapturedVar();
    bool SelfCapture = false;
    if (Captured == Owner) {
      // Plain capture `[owner]` — a direct strong self-reference.
      SelfCapture = true;
    } else if (Captured->isInitCapture() && Captured->getInit()) {
      // Init-capture alias `[self = owner]` — same cycle, renamed. A
      // weak_ptr init-capture (`[weak = std::weak_ptr<...>(owner)]`) has a
      // weak_ptr type and stays clean.
      const Expr *Init = Captured->getInit()->IgnoreParenImpCasts();
      if (const auto *Ref = dyn_cast<DeclRefExpr>(Init))
        SelfCapture = Ref->getDecl() == Owner;
    }
    if (!SelfCapture)
      continue;
    diag(Capture.getLocation(),
         "closure stored in shared callable %0 captures its own owner by "
         "value (shared_ptr cycle: the stored closure can never be freed); "
         "capture a std::weak_ptr and keep the strong reference in each "
         "pending continuation instead")
        << Owner;
  }
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
