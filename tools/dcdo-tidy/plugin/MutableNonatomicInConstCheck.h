//===--- MutableNonatomicInConstCheck.h - clang-tidy ------------*- C++ -*-===//
//
// dcdo-mutable-nonatomic-in-const: a write to a `mutable` non-atomic member
// from a const method that acquires no lock. Const methods read as
// thread-safe at call sites, so hidden plain writes behind them are data
// races waiting for a concurrent caller — the PR 4 BindingAgent
// `lookups_served_` bug. Clean patterns: std::atomic members,
// trace::Counter-style atomic wrappers, or a mutex held around the write.
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_MUTABLENONATOMICINCONSTCHECK_H
#define DCDO_TIDY_PLUGIN_MUTABLENONATOMICINCONSTCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class MutableNonatomicInConstCheck : public ClangTidyCheck {
public:
  MutableNonatomicInConstCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_MUTABLENONATOMICINCONSTCHECK_H
