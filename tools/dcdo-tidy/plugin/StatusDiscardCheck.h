//===--- StatusDiscardCheck.h - clang-tidy ----------------------*- C++ -*-===//
//
// dcdo-status-discard: a call returning dcdo::Status (or dcdo::Result<T>)
// used as a bare expression statement. Every dropped Status is a silently
// swallowed failure — the class carries [[nodiscard]], but that only fires
// for by-value returns under -Wunused-result; this check also catches
// discards the compiler misses and keeps non-clang builds honest. Handle
// the status, DCDO_RETURN_IF_ERROR it, or cast to void with a comment.
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_STATUSDISCARDCHECK_H
#define DCDO_TIDY_PLUGIN_STATUSDISCARDCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class StatusDiscardCheck : public ClangTidyCheck {
public:
  StatusDiscardCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_STATUSDISCARDCHECK_H
