//===--- SharedFunctionSelfCaptureCheck.h - clang-tidy ----------*- C++ -*-===//
//
// dcdo-shared-function-self-capture: a lambda stored through a
// shared_ptr<std::function<...>> (or MoveFunction) that captures its own
// owner by value forms a shared_ptr cycle — the stored closure keeps itself
// alive and the whole capture set leaks. This is the PR 3 / PR 5 leak class
// (manager fetch_next, dcdo poll, coordinator apply/rollback chains); the
// committed fix pattern is a std::weak_ptr capture with the strong reference
// held by each pending continuation (see src/core/coordinator.cc).
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_SHAREDFUNCTIONSELFCAPTURECHECK_H
#define DCDO_TIDY_PLUGIN_SHAREDFUNCTIONSELFCAPTURECHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace dcdo_check {

class SharedFunctionSelfCaptureCheck : public ClangTidyCheck {
public:
  SharedFunctionSelfCaptureCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus11;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_SHAREDFUNCTIONSELFCAPTURECHECK_H
