//===--- CrossLocalityScheduleCheck.cpp - clang-tidy ----------------------===//

#include "CrossLocalityScheduleCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace dcdo_check {

void CrossLocalityScheduleCheck::registerMatchers(MatchFinder *Finder) {
  // Deferred-execution sinks: the callback argument does not run in the
  // enclosing frame, and under the parallel executor may run on another
  // locality's worker thread.
  auto Sink = callee(functionDecl(
      hasAnyName("Schedule", "ScheduleAt", "ScheduleFor", "ScheduleAtFor",
                 "ScheduleGlobal", "PushRemote", "Send")));

  // Any lambda inside the sink's argument list — direct argument or nested
  // inside a wrapper expression (std::move, adapter construction, ...).
  Finder->addMatcher(
      callExpr(Sink, forEachDescendant(lambdaExpr().bind("lambda"))), this);
}

void CrossLocalityScheduleCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda");
  if (!Lambda)
    return;
  // One diagnostic per lambda, anchored at the first by-reference capture.
  for (const LambdaCapture &Capture : Lambda->captures()) {
    const bool ByRef = Capture.getCaptureKind() == LCK_ByRef;
    if (!ByRef)
      continue;
    const bool IsDefault = !Capture.isExplicit();
    std::string What;
    if (IsDefault) {
      What = "default by-reference capture '&'";
    } else if (Capture.capturesVariable()) {
      What = ("by-reference capture '&" +
              Capture.getCapturedVar()->getName() + "'")
                 .str();
    } else {
      What = "by-reference capture";
    }
    diag(Capture.getLocation(),
         "%0 in a callback passed to a deferred scheduling sink — under the "
         "parallel locality executor the callback may fire on another worker "
         "thread after this frame returns (dangling reference or "
         "cross-locality race); capture by value instead")
        << What;
    return;
  }
}

} // namespace dcdo_check
} // namespace tidy
} // namespace clang
