//===--- WallclockInSimCheck.h - clang-tidy ---------------------*- C++ -*-===//
//
// dcdo-wallclock-in-sim: wall-clock time sources (std::chrono::*_clock::now)
// and nondeterministic randomness (rand, std::random_device) in simulation
// code. The discrete-event simulator owns time (Simulation::NowNanos) and
// all randomness must come from seeded engines, or runs stop being
// reproducible and `scripts/bench.sh --compare` SimTime_* gating breaks.
// Files whose paths match the AllowedPathPrefixes option (real-time trace
// export, bench harness wall timing) are exempt.
//
//===----------------------------------------------------------------------===//

#ifndef DCDO_TIDY_PLUGIN_WALLCLOCKINSIMCHECK_H
#define DCDO_TIDY_PLUGIN_WALLCLOCKINSIMCHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <string>
#include <vector>

namespace clang {
namespace tidy {
namespace dcdo_check {

class WallclockInSimCheck : public ClangTidyCheck {
public:
  WallclockInSimCheck(StringRef Name, ClangTidyContext *Context);
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

private:
  // Semicolon-separated path prefixes exempt from the check
  // (default: src/trace/;bench/).
  const std::string RawAllowedPathPrefixes;
  std::vector<std::string> AllowedPathPrefixes;
};

} // namespace dcdo_check
} // namespace tidy
} // namespace clang

#endif // DCDO_TIDY_PLUGIN_WALLCLOCKINSIMCHECK_H
