// The six dcdo-tidy checks, lexical-engine implementation.
//
// Each check mechanizes a bug class this repo has fixed by hand at least
// once (see DESIGN.md §12 for the catalogue and the history behind each):
//
//   dcdo-shared-function-self-capture   PR 3 review / PR 5 leak class
//   dcdo-mutable-nonatomic-in-const     PR 4 `lookups_served_` race class
//   dcdo-unordered-iteration-schedules  PR 5 determinism hazard class
//   dcdo-wallclock-in-sim               sim-determinism hazard
//   dcdo-status-discard                 silently dropped error paths
//   dcdo-cross-locality-schedule        PR 8 parallel-executor lifetime class
//
// The same six checks exist as clang-tidy AST-matcher checks in
// ../plugin/ (built when LLVM/Clang dev headers are present). This engine
// is the dependency-free fallback so analysis runs on every machine; it is
// deliberately conservative — heuristics are tuned so that everything it
// reports on this codebase is a true instance of the pattern, with NOLINT
// comments as the escape hatch.
#ifndef DCDO_TOOLS_DCDO_TIDY_ENGINE_CHECKS_H_
#define DCDO_TOOLS_DCDO_TIDY_ENGINE_CHECKS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine/text.h"

namespace dcdo_tidy {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string check;
  std::string message;

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (col != o.col) return col < o.col;
    return check < o.check;
  }
};

// Names of all checks, in catalogue order.
const std::vector<std::string>& AllCheckNames();

// Cross-file facts gathered before per-file checking runs.
struct ProjectIndex {
  // Function/method names declared with a `Status` return type somewhere in
  // the project (value returns only — reference getters are excluded).
  std::set<std::string> status_returning;
  // Names declared anywhere with a non-Status return type. Name-based
  // matching cannot disambiguate overloads, so names in both sets are
  // dropped from the discard check rather than risk false positives.
  std::set<std::string> other_returning;

  bool Ambiguous(const std::string& name) const {
    return other_returning.count(name) != 0;
  }

  // Class name -> (member name, member type) for every `mutable` member
  // declared anywhere in the project. Lets the mutable-in-const check
  // attribute an out-of-line `Class::Method(...) const` body in a .cc file
  // to mutable members declared in the class's header — the shape of the
  // historical BindingAgent::lookups_served_ bug.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      class_mutables;
};

// Scans `file` for declarations feeding the index.
void IndexFile(const SourceFile& file, ProjectIndex* index);

struct CheckOptions {
  // Checks to run (names from AllCheckNames()); empty = all.
  std::set<std::string> enabled;
  // Path prefixes where dcdo-wallclock-in-sim stays quiet (wall-stamp code
  // like src/trace, and the bench harness).
  std::vector<std::string> wallclock_allow_prefixes;
};

// Runs all enabled checks over `file`, appending unsuppressed findings.
void RunChecks(const SourceFile& file, const ProjectIndex& index,
               const CheckOptions& options, std::vector<Finding>* findings);

// Individual checks (exposed for the unit/fixture tests).
void CheckSharedFunctionSelfCapture(const SourceFile& file,
                                    std::vector<Finding>* findings);
void CheckMutableNonatomicInConst(const SourceFile& file,
                                  const ProjectIndex& index,
                                  std::vector<Finding>* findings);
void CheckUnorderedIterationSchedules(const SourceFile& file,
                                      std::vector<Finding>* findings);
void CheckWallclockInSim(const SourceFile& file,
                         std::vector<Finding>* findings);
void CheckStatusDiscard(const SourceFile& file, const ProjectIndex& index,
                        std::vector<Finding>* findings);
void CheckCrossLocalitySchedule(const SourceFile& file,
                                std::vector<Finding>* findings);

}  // namespace dcdo_tidy

#endif  // DCDO_TOOLS_DCDO_TIDY_ENGINE_CHECKS_H_
