// dcdo-analyze: driver for the dcdo-tidy checks, fallback-engine build.
//
// Usage:
//   dcdo-analyze [options] FILE...
//     --checks=a,b,...        run only the named checks (default: all)
//     --allow-wallclock=PFX   path prefix where dcdo-wallclock-in-sim is
//                             quiet (repeatable; scripts/analyze.sh passes
//                             src/trace/ and bench/)
//     --baseline=FILE         suppress findings listed in FILE
//     --write-baseline=FILE   write current findings to FILE and exit 0
//     --list-checks           print check names and exit
//
// Output mirrors clang-tidy: `path:line:col: warning: message [check]`.
// Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage/IO
// error. In-code `// NOLINT(check)` / `// NOLINTNEXTLINE(check)` comments
// (with a reason!) are the preferred suppression; the baseline file is for
// transitional bulk suppression only.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/checks.h"
#include "engine/text.h"

namespace {

using dcdo_tidy::CheckOptions;
using dcdo_tidy::Finding;
using dcdo_tidy::ProjectIndex;
using dcdo_tidy::SourceFile;

std::string BaselineKey(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": " << f.check;
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  CheckOptions options;
  std::vector<std::string> files;
  std::string baseline_path;
  std::string write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* flag) -> std::string {
      return arg.substr(std::string(flag).size());
    };
    if (arg == "--list-checks") {
      for (const std::string& name : dcdo_tidy::AllCheckNames()) {
        std::cout << name << "\n";
      }
      return 0;
    } else if (arg.rfind("--checks=", 0) == 0) {
      std::stringstream ss(value_of("--checks="));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) options.enabled.insert(item);
      }
    } else if (arg.rfind("--allow-wallclock=", 0) == 0) {
      options.wallclock_allow_prefixes.push_back(
          value_of("--allow-wallclock="));
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value_of("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = value_of("--write-baseline=");
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dcdo-analyze: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: dcdo-analyze [--checks=...] [--baseline=FILE] "
                 "[--allow-wallclock=PREFIX]... FILE...\n";
    return 2;
  }

  for (const std::string& name : options.enabled) {
    const auto& all = dcdo_tidy::AllCheckNames();
    if (std::find(all.begin(), all.end(), name) == all.end()) {
      std::cerr << "dcdo-analyze: unknown check " << name
                << " (see --list-checks)\n";
      return 2;
    }
  }

  // Load everything up front: the status-discard check needs a project-wide
  // index of Status-returning declarations before any file is checked.
  std::vector<SourceFile> sources(files.size());
  ProjectIndex index;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::string error;
    if (!sources[i].Load(files[i], &error)) {
      std::cerr << "dcdo-analyze: " << error << "\n";
      return 2;
    }
    dcdo_tidy::IndexFile(sources[i], &index);
  }

  std::vector<Finding> findings;
  for (const SourceFile& file : sources) {
    dcdo_tidy::RunChecks(file, index, options, &findings);
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "dcdo-analyze: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    out << "# dcdo-tidy suppression baseline. One `path:line: check` entry\n"
           "# per finding. Prefer in-code NOLINT(check) comments with a\n"
           "# reason; this file is for transitional bulk suppression.\n";
    for (const Finding& f : findings) {
      out << BaselineKey(f) << "\n";
    }
    std::cout << "dcdo-analyze: wrote " << findings.size()
              << " baseline entr" << (findings.size() == 1 ? "y" : "ies")
              << " to " << write_baseline_path << "\n";
    return 0;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "dcdo-analyze: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') baseline.insert(line);
    }
  }

  int reported = 0;
  int suppressed = 0;
  for (const Finding& f : findings) {
    if (baseline.count(BaselineKey(f)) != 0) {
      ++suppressed;
      continue;
    }
    std::cout << f.file << ":" << f.line << ":" << f.col
              << ": warning: " << f.message << " [" << f.check << "]\n";
    ++reported;
  }
  if (reported > 0 || suppressed > 0) {
    std::cerr << "dcdo-analyze: " << reported << " finding"
              << (reported == 1 ? "" : "s");
    if (suppressed > 0) {
      std::cerr << " (" << suppressed << " baseline-suppressed)";
    }
    std::cerr << " across " << files.size() << " file"
              << (files.size() == 1 ? "" : "s") << "\n";
  }
  return reported > 0 ? 1 : 0;
}
