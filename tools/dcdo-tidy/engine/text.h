// Source-text layer for the dcdo-tidy fallback engine.
//
// The engine is a lexical analyzer, not a parser: it works on a "code view"
// of each file where comments and string/character literals are blanked out
// (replaced by spaces, newlines preserved) so that token scans never match
// inside prose, while every offset in the code view still maps 1:1 onto the
// original file for line/column reporting. Comment text is not discarded —
// `NOLINT` / `NOLINTNEXTLINE` markers are recorded per line so findings can
// be suppressed exactly like clang-tidy does (the clang-tidy plugin build of
// these checks honors the same comments natively, so one suppression works
// under either implementation).
#ifndef DCDO_TOOLS_DCDO_TIDY_ENGINE_TEXT_H_
#define DCDO_TOOLS_DCDO_TIDY_ENGINE_TEXT_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace dcdo_tidy {

// One parsed source file.
class SourceFile {
 public:
  // Reads `path`; returns false (and sets `error`) if unreadable.
  bool Load(const std::string& path, std::string* error);

  // Builds a SourceFile from in-memory text (tests).
  void LoadFromString(std::string path, std::string text);

  const std::string& path() const { return path_; }
  // Original text, verbatim.
  const std::string& raw() const { return raw_; }
  // Same length as raw(): comments and string/char literal *contents* are
  // spaces, newlines kept, everything else verbatim.
  const std::string& code() const { return code_; }

  // 1-based line containing `offset`.
  std::size_t LineOf(std::size_t offset) const;
  // 1-based column of `offset` within its line.
  std::size_t ColOf(std::size_t offset) const;
  std::size_t line_count() const { return line_starts_.size(); }
  // Raw text of 1-based line `line` (no trailing newline).
  std::string_view RawLine(std::size_t line) const;

  // True if a finding of `check` on 1-based `line` is suppressed by a
  // `NOLINT`/`NOLINT(list)` comment on that line or a `NOLINTNEXTLINE` on
  // the previous line. An empty list suppresses every check; otherwise the
  // list must contain `check` or a `dcdo-*` glob-ish entry.
  bool IsSuppressed(std::size_t line, std::string_view check) const;

 private:
  void Analyze();
  void RecordNolint(std::size_t line, std::string_view comment);

  std::string path_;
  std::string raw_;
  std::string code_;
  std::vector<std::size_t> line_starts_;  // offset of each line start
  // line -> NOLINT filter lists. `same_line[l]` applies to line l,
  // `next_line[l]` (from NOLINTNEXTLINE on l) applies to line l+1. An empty
  // vector means "suppress all checks".
  std::map<std::size_t, std::vector<std::string>> nolint_same_;
  std::map<std::size_t, std::vector<std::string>> nolint_next_;
};

// --- Token-ish helpers shared by the checks. All operate on a code view. ---

bool IsIdentChar(char c);
bool IsIdentStart(char c);

// Returns the identifier starting at `pos`, or empty if none.
std::string_view IdentAt(std::string_view code, std::size_t pos);

// True if the identifier occurrence at [pos, pos+len) is a whole token (not
// a substring of a longer identifier).
bool IsWholeIdent(std::string_view code, std::size_t pos, std::size_t len);

// Finds the next whole-token occurrence of `ident` at or after `from`;
// npos if none.
std::size_t FindIdent(std::string_view code, std::string_view ident,
                      std::size_t from = 0);

// Given `code[open]` == one of ( [ { <, returns the offset of the matching
// closer, or npos. For '<' the scan is heuristic (treats << / >> and
// comparison-looking uses as non-brackets only via nesting arithmetic) —
// good enough for template argument lists in declarations.
std::size_t MatchForward(std::string_view code, std::size_t open);

// Skips whitespace forward/backward; returns npos when running off the end.
std::size_t SkipWs(std::string_view code, std::size_t pos);
std::size_t SkipWsBack(std::string_view code, std::size_t pos);

// Splits the range [begin, end) of `code` at top-level commas (commas not
// nested inside (), [], {}, or <>). Returns trimmed pieces as offsets.
struct Piece {
  std::size_t begin;
  std::size_t end;
};
std::vector<Piece> SplitTopLevel(std::string_view code, std::size_t begin,
                                 std::size_t end, char sep = ',');

// Trims ASCII whitespace from both ends of [begin, end).
Piece Trim(std::string_view code, std::size_t begin, std::size_t end);

// True if [begin,end) of `code`, with whitespace collapsed, equals `want`.
bool PieceEquals(std::string_view code, Piece p, std::string_view want);

}  // namespace dcdo_tidy

#endif  // DCDO_TOOLS_DCDO_TIDY_ENGINE_TEXT_H_
