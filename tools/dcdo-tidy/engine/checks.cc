#include "engine/checks.h"

#include <algorithm>
#include <array>
#include <cctype>

namespace dcdo_tidy {

namespace {

constexpr const char kSelfCapture[] = "dcdo-shared-function-self-capture";
constexpr const char kMutableConst[] = "dcdo-mutable-nonatomic-in-const";
constexpr const char kUnorderedSched[] = "dcdo-unordered-iteration-schedules";
constexpr const char kWallclock[] = "dcdo-wallclock-in-sim";
constexpr const char kStatusDiscard[] = "dcdo-status-discard";
constexpr const char kCrossLocality[] = "dcdo-cross-locality-schedule";

void Report(const SourceFile& file, std::size_t offset, const char* check,
            std::string message, std::vector<Finding>* findings) {
  std::size_t line = file.LineOf(offset);
  if (file.IsSuppressed(line, check)) return;
  findings->push_back(Finding{file.path(), line, file.ColOf(offset), check,
                              std::move(message)});
}

std::string Snippet(std::string_view code, Piece p) {
  std::string out;
  for (std::size_t i = p.begin; i < p.end && i < code.size(); ++i) {
    char c = code[i];
    out.push_back(std::isspace(static_cast<unsigned char>(c)) ? ' ' : c);
  }
  return out;
}

}  // namespace

const std::vector<std::string>& AllCheckNames() {
  static const std::vector<std::string> kNames = {
      kSelfCapture, kMutableConst, kUnorderedSched, kWallclock,
      kStatusDiscard, kCrossLocality};
  return kNames;
}

// ---------------------------------------------------------------------------
// dcdo-shared-function-self-capture
//
// The historical bug (fixed in the PR 3 review pass, and chased out of the
// coordinator again in PR 5): a continuation loop written as
//
//   auto next = std::make_shared<std::function<void()>>();
//   *next = [next, ...] { ... (*next)(); ... };
//
// The closure stored inside *next owns a shared_ptr to itself, so the
// refcount can never reach zero: the whole capture set (often including the
// caller's `done` callback) leaks after every run. The accepted fixes — and
// what this check must stay quiet on — are (a) the weak self-capture form
//   *next = [weak = std::weak_ptr<...>(next), ...] { ... }
// and (b) `enable_shared_from_this` driver structs whose methods capture
// `self = shared_from_this()` into *pending continuations* (strong ref rides
// the in-flight operation, not the stored closure).
// ---------------------------------------------------------------------------
void CheckSharedFunctionSelfCapture(const SourceFile& file,
                                    std::vector<Finding>* findings) {
  std::string_view code = file.code();

  // 1. Collect names of shared-pointer-to-callable variables.
  struct SharedFn {
    std::string name;
    std::size_t decl_offset;
  };
  std::vector<SharedFn> vars;

  auto type_is_callable = [&](std::size_t lt, std::size_t gt) {
    std::string_view inner = code.substr(lt, gt - lt);
    return inner.find("function") != std::string_view::npos ||
           inner.find("MoveFunction") != std::string_view::npos;
  };

  // Form A: `NAME = std::make_shared<std::function<...>>(...)`.
  for (std::size_t pos = FindIdent(code, "make_shared");
       pos != std::string_view::npos;
       pos = FindIdent(code, "make_shared", pos + 1)) {
    std::size_t lt = pos + std::string_view("make_shared").size();
    if (lt >= code.size() || code[lt] != '<') continue;
    std::size_t gt = MatchForward(code, lt);
    if (gt == std::string_view::npos || !type_is_callable(lt + 1, gt)) continue;
    // Walk back over "std::" and '=' to the variable name.
    std::size_t back = pos;
    while (back > 0 && (code[back - 1] == ':' || IsIdentChar(code[back - 1]))) {
      --back;  // skip std:: qualification
    }
    std::size_t eq = SkipWsBack(code, back == 0 ? 0 : back - 1);
    if (eq == std::string_view::npos || code[eq] != '=') continue;
    std::size_t name_end = SkipWsBack(code, eq == 0 ? 0 : eq - 1);
    if (name_end == std::string_view::npos || !IsIdentChar(code[name_end])) {
      continue;
    }
    std::size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(code[name_begin - 1])) --name_begin;
    vars.push_back(SharedFn{
        std::string(code.substr(name_begin, name_end - name_begin + 1)),
        name_begin});
  }

  // Form B: `std::shared_ptr<std::function<...>> NAME`.
  for (std::size_t pos = FindIdent(code, "shared_ptr");
       pos != std::string_view::npos;
       pos = FindIdent(code, "shared_ptr", pos + 1)) {
    std::size_t lt = pos + std::string_view("shared_ptr").size();
    if (lt >= code.size() || code[lt] != '<') continue;
    std::size_t gt = MatchForward(code, lt);
    if (gt == std::string_view::npos || !type_is_callable(lt + 1, gt)) continue;
    std::size_t name_pos = SkipWs(code, gt + 1);
    if (name_pos == std::string_view::npos) continue;
    std::string_view name = IdentAt(code, name_pos);
    if (name.empty()) continue;
    vars.push_back(SharedFn{std::string(name), name_pos});
  }

  // A `shared_ptr<function<...>> x = make_shared<...>()` declaration matches
  // both forms; keep one entry per name (earliest declaration wins) so each
  // bad capture is reported once.
  std::sort(vars.begin(), vars.end(), [](const SharedFn& a, const SharedFn& b) {
    return a.name != b.name ? a.name < b.name : a.decl_offset < b.decl_offset;
  });
  vars.erase(std::unique(vars.begin(), vars.end(),
                         [](const SharedFn& a, const SharedFn& b) {
                           return a.name == b.name;
                         }),
             vars.end());

  // 2. For each variable, find `*NAME =` / `(*NAME) =` assignments and
  //    inspect every lambda capture list inside the assigned expression.
  for (const SharedFn& var : vars) {
    for (std::size_t pos = FindIdent(code, var.name, var.decl_offset);
         pos != std::string_view::npos;
         pos = FindIdent(code, var.name, pos + 1)) {
      // Must be dereferenced: *NAME or *(NAME) or (*NAME).
      std::size_t before = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
      if (before == std::string_view::npos) continue;
      bool deref = false;
      if (code[before] == '*') deref = true;
      if (code[before] == '(' && before > 0) {
        std::size_t b2 = SkipWsBack(code, before - 1);
        if (b2 != std::string_view::npos && code[b2] == '*') deref = true;
      }
      if (!deref) continue;
      // Followed (after optional close-paren) by '='.
      std::size_t after = pos + var.name.size();
      std::size_t eq = SkipWs(code, after);
      if (eq != std::string_view::npos && code[eq] == ')') {
        eq = SkipWs(code, eq + 1);
      }
      if (eq == std::string_view::npos || code[eq] != '=' ||
          (eq + 1 < code.size() && code[eq + 1] == '=')) {
        continue;
      }
      // Statement extent: to the ';' that closes the assignment (top-level).
      std::size_t stmt_end = eq;
      {
        int paren = 0, brace = 0, bracket = 0;
        for (std::size_t i = eq + 1; i < code.size(); ++i) {
          char c = code[i];
          if (c == '(') ++paren;
          else if (c == ')') --paren;
          else if (c == '{') ++brace;
          else if (c == '}') --brace;
          else if (c == '[') ++bracket;
          else if (c == ']') --bracket;
          else if (c == ';' && paren == 0 && brace == 0 && bracket == 0) {
            stmt_end = i;
            break;
          }
        }
        if (stmt_end == eq) stmt_end = code.size();
      }
      // Every lambda introducer inside the assigned expression.
      for (std::size_t lb = eq; lb < stmt_end; ++lb) {
        if (code[lb] != '[') continue;
        // Heuristic lambda-vs-subscript test: '[' at expression start.
        std::size_t prev = SkipWsBack(code, lb == 0 ? 0 : lb - 1);
        if (prev != std::string_view::npos &&
            (IsIdentChar(code[prev]) || code[prev] == ')' ||
             code[prev] == ']')) {
          continue;  // subscript or attribute-ish
        }
        std::size_t rb = MatchForward(code, lb);
        if (rb == std::string_view::npos || rb > stmt_end) continue;
        for (Piece item : SplitTopLevel(code, lb + 1, rb)) {
          if (item.begin >= item.end) continue;
          // Plain capture `NAME` -> shared_ptr copy into the stored closure.
          if (PieceEquals(code, item, var.name)) {
            Report(file, item.begin, kSelfCapture,
                   "closure stored in shared callable '" + var.name +
                       "' captures its own owner by value (shared_ptr "
                       "cycle: the stored closure can never be freed); "
                       "capture a std::weak_ptr and keep the strong "
                       "reference in each pending continuation instead",
                   findings);
            continue;
          }
          // Init-capture `x = NAME` -> same cycle under an alias.
          std::size_t eq_in = std::string_view::npos;
          int angle = 0;
          for (std::size_t i = item.begin; i < item.end; ++i) {
            char c = code[i];
            if (c == '<') ++angle;
            else if (c == '>' && angle > 0) --angle;
            else if (c == '=' && angle == 0 && code[i + 1] != '=' &&
                     (i == 0 || code[i - 1] != '!')) {
              eq_in = i;
              break;
            }
          }
          if (eq_in != std::string_view::npos) {
            Piece rhs = Trim(code, eq_in + 1, item.end);
            if (PieceEquals(code, rhs, var.name)) {
              Report(file, item.begin, kSelfCapture,
                     "init-capture copies shared callable '" + var.name +
                         "' into its own stored closure (shared_ptr "
                         "cycle); capture std::weak_ptr<...>(" + var.name +
                         ") instead",
                     findings);
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dcdo-mutable-nonatomic-in-const
//
// The PR 4 race class: BindingAgent::Lookup was `const`, incremented a
// `mutable std::uint64_t lookups_served_`, and was probed from concurrent
// test threads — a data race invisible in single-threaded runs. The fix
// (and the clean pattern) is an atomic counter (`trace::Counter`) or a
// mutex held around the write. The check flags writes to mutable
// non-atomic members from const methods whose body acquires no lock.
// ---------------------------------------------------------------------------
namespace {

struct MutableMember {
  std::string name;
  std::string type;
  std::size_t decl_offset;
};

bool TypeLooksSynchronized(std::string_view type) {
  static constexpr std::array<const char*, 6> kSafe = {
      "atomic", "Counter", "mutex", "condition_variable", "once_flag",
      "latch"};
  for (const char* s : kSafe) {
    if (type.find(s) != std::string_view::npos) return true;
  }
  return false;
}

bool BodyAcquiresLock(std::string_view body) {
  static constexpr std::array<const char*, 6> kLocks = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock", ".lock()",
      ".Lock()"};
  for (const char* s : kLocks) {
    if (body.find(s) != std::string_view::npos) return true;
  }
  return false;
}

// Collects `mutable` member declarations per class. Returns a map from
// class name to members, and records each class body's extent so const
// methods defined inline can be attributed.
struct ClassInfo {
  std::string name;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  std::vector<MutableMember> mutables;
};

std::vector<ClassInfo> CollectClasses(std::string_view code) {
  std::vector<ClassInfo> out;
  for (std::string_view kw : {"class", "struct"}) {
    for (std::size_t pos = FindIdent(code, kw); pos != std::string_view::npos;
         pos = FindIdent(code, kw, pos + 1)) {
      std::size_t name_pos = SkipWs(code, pos + kw.size());
      if (name_pos == std::string_view::npos) continue;
      // Skip attributes like `class [[nodiscard]] Status`.
      while (name_pos + 1 < code.size() && code[name_pos] == '[' &&
             code[name_pos + 1] == '[') {
        std::size_t close = code.find("]]", name_pos);
        if (close == std::string_view::npos) break;
        name_pos = SkipWs(code, close + 2);
        if (name_pos == std::string_view::npos) break;
      }
      if (name_pos == std::string_view::npos) continue;
      std::string_view name = IdentAt(code, name_pos);
      if (name.empty() || name == "alignas") continue;
      // Find the opening brace before any ';' (skip fwd decls); tolerate
      // base-class lists.
      std::size_t scan = name_pos + name.size();
      std::size_t open = std::string_view::npos;
      int angle = 0;
      for (; scan < code.size(); ++scan) {
        char c = code[scan];
        if (c == '<') ++angle;
        else if (c == '>' && angle > 0) --angle;
        else if (c == ';' && angle == 0) break;
        else if (c == '{' && angle == 0) {
          open = scan;
          break;
        }
        else if (c == '(' && angle == 0) break;  // constructor/call, not decl
      }
      if (open == std::string_view::npos) continue;
      std::size_t close = MatchForward(code, open);
      if (close == std::string_view::npos) continue;
      ClassInfo info;
      info.name = std::string(name);
      info.body_begin = open + 1;
      info.body_end = close;
      out.push_back(std::move(info));
    }
  }

  // Attribute each `mutable` declaration to the innermost enclosing class.
  for (std::size_t pos = FindIdent(code, "mutable");
       pos != std::string_view::npos;
       pos = FindIdent(code, "mutable", pos + 1)) {
    // `mutable` also marks lambdas: `] ( ... ) mutable {`. Lambda usage is
    // preceded by ')' (or ']'), member declarations by ';', '{', ':'.
    std::size_t prev = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
    if (prev != std::string_view::npos &&
        (code[prev] == ')' || code[prev] == ']')) {
      continue;
    }
    std::size_t semi = code.find(';', pos);
    if (semi == std::string_view::npos) continue;
    // Declaration text: `mutable TYPE name_ [= init] ;` (or `{init}`).
    std::size_t decl_end = semi;
    int angle = 0;
    for (std::size_t i = pos; i < semi; ++i) {
      char c = code[i];
      if (c == '<') ++angle;
      else if (c == '>' && angle > 0) --angle;
      else if ((c == '=' || c == '{') && angle == 0) {
        decl_end = i;
        break;
      }
    }
    Piece decl = Trim(code, pos + 7, decl_end);
    // Member name = last identifier in the declaration.
    std::size_t name_end = decl.end;
    while (name_end > decl.begin && !IsIdentChar(code[name_end - 1])) {
      --name_end;
    }
    std::size_t name_begin = name_end;
    while (name_begin > decl.begin && IsIdentChar(code[name_begin - 1])) {
      --name_begin;
    }
    if (name_begin >= name_end) continue;
    MutableMember member;
    member.name = std::string(code.substr(name_begin, name_end - name_begin));
    member.type = Snippet(code, Trim(code, decl.begin, name_begin));
    member.decl_offset = pos;
    // Innermost class containing this offset.
    ClassInfo* owner = nullptr;
    for (ClassInfo& info : out) {
      if (info.body_begin <= pos && pos < info.body_end &&
          (owner == nullptr || info.body_begin > owner->body_begin)) {
        owner = &info;
      }
    }
    if (owner != nullptr) owner->mutables.push_back(std::move(member));
  }
  return out;
}

// Finds const-qualified method bodies: `) const [noexcept|override|final]* {`.
// Calls `fn(name_of_method, body_begin, body_end, signature_offset)`.
template <typename Fn>
void ForEachConstMethodBody(std::string_view code, Fn fn) {
  for (std::size_t pos = FindIdent(code, "const");
       pos != std::string_view::npos;
       pos = FindIdent(code, "const", pos + 1)) {
    std::size_t prev = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
    if (prev == std::string_view::npos || code[prev] != ')') continue;
    // Walk forward over trailing specifiers to an opening brace.
    std::size_t scan = pos + 5;
    for (;;) {
      scan = SkipWs(code, scan);
      if (scan == std::string_view::npos) break;
      std::string_view word = IdentAt(code, scan);
      if (word == "noexcept" || word == "override" || word == "final") {
        scan += word.size();
        if (std::size_t p = SkipWs(code, scan);
            p != std::string_view::npos && code[p] == '(') {
          std::size_t close = MatchForward(code, p);
          if (close == std::string_view::npos) break;
          scan = close + 1;
        }
        continue;
      }
      break;
    }
    if (scan == std::string_view::npos || code[scan] != '{') continue;
    std::size_t body_end = MatchForward(code, scan);
    if (body_end == std::string_view::npos) continue;
    // Method name: identifier before the '(' matching the ')' at `prev`.
    std::size_t open = std::string_view::npos;
    {
      int depth = 0;
      for (std::size_t i = prev;; --i) {
        if (code[i] == ')') ++depth;
        else if (code[i] == '(') {
          if (--depth == 0) {
            open = i;
            break;
          }
        }
        if (i == 0) break;
      }
    }
    if (open == std::string_view::npos || open == 0) continue;
    std::size_t name_end = SkipWsBack(code, open - 1);
    if (name_end == std::string_view::npos || !IsIdentChar(code[name_end])) {
      continue;
    }
    std::size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(code[name_begin - 1])) --name_begin;
    fn(code.substr(name_begin, name_end - name_begin + 1), scan + 1, body_end,
       name_begin);
  }
}

// Does `body` write to `member`? Returns the offset of the first write, or
// npos. Writes: prefix/postfix ++/--, assignment (=, +=, -=, ...), and
// calls to known mutating container/methods on the member.
std::size_t FindWriteTo(std::string_view code, std::size_t begin,
                        std::size_t end, const std::string& member) {
  static constexpr std::array<const char*, 12> kMutatingCalls = {
      "insert",  "erase",   "push_back", "emplace", "emplace_back", "clear",
      "pop_back", "assign", "store",     "splice",  "push_front",   "resize"};
  for (std::size_t pos = FindIdent(code.substr(0, end), member, begin);
       pos != std::string_view::npos && pos < end;
       pos = FindIdent(code.substr(0, end), member, pos + 1)) {
    // Qualified accesses (a.b_, x->b_) on some *other* object are still
    // member writes we care about only for `this`; skip obj.member_ forms
    // where obj is clearly not this.
    std::size_t prev = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
    if (prev != std::string_view::npos) {
      if (code[prev] == '.' ||
          (code[prev] == '>' && prev > 0 && code[prev - 1] == '-')) {
        // allow `this->member_`
        std::size_t recv_end = code[prev] == '.' ? prev : prev - 1;
        std::size_t recv = SkipWsBack(code, recv_end == 0 ? 0 : recv_end - 1);
        if (recv == std::string_view::npos) continue;
        std::string_view maybe_this = "this";
        if (!(recv >= 3 &&
              code.substr(recv - 3, 4) == maybe_this)) {
          continue;
        }
      }
      // Prefix ++ / --.
      if ((code[prev] == '+' && prev > 0 && code[prev - 1] == '+') ||
          (code[prev] == '-' && prev > 0 && code[prev - 1] == '-')) {
        return pos;
      }
    }
    std::size_t after = SkipWs(code, pos + member.size());
    if (after == std::string_view::npos) continue;
    // Postfix ++ / --.
    if (after + 1 < code.size() &&
        ((code[after] == '+' && code[after + 1] == '+') ||
         (code[after] == '-' && code[after + 1] == '-'))) {
      return pos;
    }
    // Assignment: = but not == ; compound ops += -= *= /= |= &= ^=.
    if (code[after] == '=' &&
        (after + 1 >= code.size() || code[after + 1] != '=')) {
      return pos;
    }
    if ((code[after] == '+' || code[after] == '-' || code[after] == '*' ||
         code[after] == '/' || code[after] == '|' || code[after] == '&' ||
         code[after] == '^' || code[after] == '%') &&
        after + 1 < code.size() && code[after + 1] == '=') {
      return pos;
    }
    // Mutating method call: member_.call( .
    if (code[after] == '.' ||
        (code[after] == '-' && after + 1 < code.size() &&
         code[after + 1] == '>')) {
      std::size_t call = SkipWs(code, code[after] == '.' ? after + 1
                                                         : after + 2);
      if (call == std::string_view::npos) continue;
      std::string_view callee = IdentAt(code, call);
      for (const char* m : kMutatingCalls) {
        if (callee == m) return pos;
      }
    }
    // Subscript assignment: member_[k] = v.
    if (code[after] == '[') {
      std::size_t close = MatchForward(code, after);
      if (close != std::string_view::npos) {
        std::size_t eq = SkipWs(code, close + 1);
        if (eq != std::string_view::npos && code[eq] == '=' &&
            (eq + 1 >= code.size() || code[eq + 1] != '=')) {
          return pos;
        }
      }
    }
  }
  return std::string_view::npos;
}

}  // namespace

void CheckMutableNonatomicInConst(const SourceFile& file,
                                  const ProjectIndex& index,
                                  std::vector<Finding>* findings) {
  std::string_view code = file.code();
  std::vector<ClassInfo> classes = CollectClasses(code);

  // Class name -> mutable members, from this file AND the project index (so
  // a const method defined out-of-line in a .cc sees mutable members
  // declared in the class's header).
  std::map<std::string, std::vector<MutableMember>> by_name;
  for (const ClassInfo& info : classes) {
    if (!info.mutables.empty()) {
      auto& dst = by_name[info.name];
      dst.insert(dst.end(), info.mutables.begin(), info.mutables.end());
    }
  }
  for (const auto& [cls, members] : index.class_mutables) {
    auto& dst = by_name[cls];
    for (const auto& [name, type] : members) {
      bool dup = false;
      for (const MutableMember& m : dst) dup = dup || m.name == name;
      if (!dup) dst.push_back(MutableMember{name, type, 0});
    }
  }
  if (by_name.empty()) return;

  ForEachConstMethodBody(code, [&](std::string_view method_name,
                                   std::size_t body_begin,
                                   std::size_t body_end,
                                   std::size_t sig_offset) {
    // Which class does this const method belong to? Inline: innermost class
    // whose body contains it. Out-of-line: `Class::Method` qualification.
    std::string owner;
    std::size_t owner_begin = 0;
    for (const ClassInfo& info : classes) {
      if (info.body_begin <= sig_offset && sig_offset < info.body_end &&
          info.body_begin >= owner_begin) {
        owner = info.name;  // innermost enclosing class
        owner_begin = info.body_begin;
      }
    }
    if (owner.empty()) {
      // Out-of-line: look back for `Class::` before the method name.
      std::size_t colons = sig_offset;
      if (colons >= 2 && code[colons - 1] == ':' && code[colons - 2] == ':') {
        std::size_t cls_end = colons - 2;
        std::size_t cls_begin = cls_end;
        while (cls_begin > 0 && IsIdentChar(code[cls_begin - 1])) --cls_begin;
        owner = std::string(code.substr(cls_begin, cls_end - cls_begin));
      }
    }
    auto it = by_name.find(owner);
    if (owner.empty() || it == by_name.end()) return;
    std::string_view body = code.substr(0, body_end);
    if (BodyAcquiresLock(code.substr(body_begin, body_end - body_begin))) {
      return;
    }
    for (const MutableMember& member : it->second) {
      if (TypeLooksSynchronized(member.type)) continue;
      std::size_t write = FindWriteTo(body, body_begin, body_end, member.name);
      if (write != std::string_view::npos) {
        Report(file, write, kMutableConst,
               "const method '" + std::string(method_name) + "' writes " +
                   "mutable non-atomic member '" + member.name + "' (" +
                   member.type + ") with no lock held — a data race when "
                   "called concurrently (the BindingAgent::lookups_served_ "
                   "class); use std::atomic / trace::Counter or guard with "
                   "a mutex",
               findings);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// dcdo-unordered-iteration-schedules
//
// The PR 5 determinism hazard: iterating an unordered container and
// scheduling simulation events (or sending messages) from the loop body
// makes event order depend on hash-table layout — SimTime_* baselines then
// drift across runs/platforms. The fix pattern is to copy keys into a
// sorted vector (or iterate an ordered index) before scheduling.
// ---------------------------------------------------------------------------
void CheckUnorderedIterationSchedules(const SourceFile& file,
                                      std::vector<Finding>* findings) {
  std::string_view code = file.code();

  // Names declared with an unordered container type anywhere in the file.
  std::set<std::string> unordered_names;
  for (std::string_view kw :
       {"unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"}) {
    for (std::size_t pos = FindIdent(code, kw); pos != std::string_view::npos;
         pos = FindIdent(code, kw, pos + 1)) {
      std::size_t lt = pos + kw.size();
      if (lt >= code.size() || code[lt] != '<') continue;
      std::size_t gt = MatchForward(code, lt);
      if (gt == std::string_view::npos) continue;
      std::size_t name_pos = SkipWs(code, gt + 1);
      // Tolerate `>* name`, `>& name`, `> name`.
      while (name_pos != std::string_view::npos &&
             (code[name_pos] == '*' || code[name_pos] == '&')) {
        name_pos = SkipWs(code, name_pos + 1);
      }
      if (name_pos == std::string_view::npos) continue;
      std::string_view name = IdentAt(code, name_pos);
      if (!name.empty()) unordered_names.insert(std::string(name));
    }
  }

  static constexpr std::array<const char*, 9> kSinks = {
      "Schedule",    "ScheduleAt",     "Send",    "SendMessage",
      "Transfer",    "TimedTransfer",  "StreamTransfer",
      "FetchTo",     "StreamTo"};

  for (std::size_t pos = FindIdent(code, "for");
       pos != std::string_view::npos; pos = FindIdent(code, "for", pos + 1)) {
    std::size_t open = SkipWs(code, pos + 3);
    if (open == std::string_view::npos || code[open] != '(') continue;
    std::size_t close = MatchForward(code, open);
    if (close == std::string_view::npos) continue;
    std::string_view head = code.substr(open + 1, close - open - 1);

    // Does the loop walk an unordered container?
    bool over_unordered = false;
    std::string container;
    // Range-for: `for (decl : range)` — find top-level ':' not '::'.
    std::size_t colon = std::string_view::npos;
    {
      int depth = 0;
      for (std::size_t i = 0; i < head.size(); ++i) {
        char c = head[i];
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        else if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        else if (c == ':' && depth == 0) {
          if ((i + 1 < head.size() && head[i + 1] == ':') ||
              (i > 0 && head[i - 1] == ':')) {
            continue;
          }
          colon = i;
          break;
        }
      }
    }
    if (colon != std::string_view::npos) {
      std::string_view range = head.substr(colon + 1);
      if (range.find("unordered_") != std::string_view::npos) {
        over_unordered = true;
        container = "(unordered container expression)";
      } else {
        for (const std::string& name : unordered_names) {
          if (FindIdent(range, name) != std::string_view::npos) {
            over_unordered = true;
            container = name;
            break;
          }
        }
      }
    } else {
      // Iterator form: `NAME.begin()` / `NAME.cbegin()` in the head.
      for (const std::string& name : unordered_names) {
        std::size_t at = FindIdent(head, name);
        if (at == std::string_view::npos) continue;
        std::size_t dot = at + name.size();
        if (dot < head.size() &&
            (head.compare(dot, 7, ".begin(") == 0 ||
             head.compare(dot, 8, ".cbegin(") == 0)) {
          over_unordered = true;
          container = name;
          break;
        }
      }
    }
    if (!over_unordered) continue;

    // Loop body extent: `{...}` or single statement up to ';'.
    std::size_t body_begin = SkipWs(code, close + 1);
    if (body_begin == std::string_view::npos) continue;
    std::size_t body_end;
    if (code[body_begin] == '{') {
      body_end = MatchForward(code, body_begin);
      if (body_end == std::string_view::npos) continue;
    } else {
      body_end = code.find(';', body_begin);
      if (body_end == std::string_view::npos) continue;
    }
    std::string_view body = code.substr(body_begin, body_end - body_begin);
    for (const char* sink : kSinks) {
      std::size_t at = FindIdent(body, sink);
      while (at != std::string_view::npos) {
        std::size_t paren = SkipWs(body, at + std::string_view(sink).size());
        if (paren != std::string_view::npos && body[paren] == '(') {
          Report(file, pos, kUnorderedSched,
                 "loop over unordered container " +
                     (container.empty() ? std::string("?") : container) +
                     " reaches '" + sink +
                     "' — event order then depends on hash layout and "
                     "SimTime baselines drift; iterate a sorted copy of "
                     "the keys (or an ordered index) instead",
                 findings);
          at = std::string_view::npos;  // one report per (loop, sink)
        } else {
          at = FindIdent(body, sink, at + 1);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// dcdo-wallclock-in-sim
//
// Simulation logic must take time from sim::Simulation — a wall-clock read
// (or OS randomness) inside the simulated world silently breaks replay
// determinism. Wall stamps are legitimate in the tracing layer and the
// bench harness, which the driver allowlists by path prefix.
// ---------------------------------------------------------------------------
void CheckWallclockInSim(const SourceFile& file,
                         std::vector<Finding>* findings) {
  std::string_view code = file.code();

  static constexpr std::array<const char*, 3> kClocks = {
      "steady_clock", "system_clock", "high_resolution_clock"};
  for (const char* clock : kClocks) {
    for (std::size_t pos = FindIdent(code, clock);
         pos != std::string_view::npos;
         pos = FindIdent(code, clock, pos + 1)) {
      std::size_t after = pos + std::string_view(clock).size();
      std::size_t now = SkipWs(code, after);
      if (now == std::string_view::npos ||
          code.compare(now, 2, "::") != 0) {
        continue;
      }
      now = SkipWs(code, now + 2);
      if (now != std::string_view::npos && IdentAt(code, now) == "now") {
        Report(file, pos, kWallclock,
               std::string(clock) +
                   "::now() in simulation code — wall time is not replay-"
                   "deterministic; use the Simulation clock (or move the "
                   "stamp behind the tracing layer)",
               findings);
      }
    }
  }

  for (std::size_t pos = FindIdent(code, "random_device");
       pos != std::string_view::npos;
       pos = FindIdent(code, "random_device", pos + 1)) {
    Report(file, pos, kWallclock,
           "std::random_device in simulation code — nondeterministic "
           "seeding breaks replay; use a fixed or configured seed",
           findings);
  }

  for (std::string_view fn : {"rand", "srand"}) {
    for (std::size_t pos = FindIdent(code, fn);
         pos != std::string_view::npos; pos = FindIdent(code, fn, pos + 1)) {
      // Must be a bare call: `rand(` with no receiver/qualifier.
      std::size_t paren = pos + fn.size();
      if (paren >= code.size() || code[paren] != '(') continue;
      std::size_t prev = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
      if (prev != std::string_view::npos &&
          (code[prev] == '.' || code[prev] == ':' ||
           (code[prev] == '>' && prev > 0 && code[prev - 1] == '-'))) {
        // std::rand() is still the C RNG — allow the `std::` form to be
        // caught too, but skip obj.rand() / x->rand().
        bool std_qualified =
            code[prev] == ':' && prev >= 4 &&
            code.substr(prev - 4, 5) == "std::";
        if (!std_qualified) continue;
      }
      Report(file, pos, kWallclock,
             std::string(fn) + "() in simulation code — global C RNG is "
                               "unseeded/nondeterministic across platforms; "
                               "use a seeded engine from the cost model",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// dcdo-status-discard
//
// `common::Status` is the error model (PAPER §3.2: absence is an ordinary,
// typed error) — a discarded Status is a silently dropped failure path.
// The class carries [[nodiscard]], so the compiler flags by-value discards;
// this check additionally covers name-indexed calls in macro bodies and
// code compiled without warnings, and is the form the fixture tests pin.
// ---------------------------------------------------------------------------
void CheckStatusDiscard(const SourceFile& file, const ProjectIndex& index,
                        std::vector<Finding>* findings) {
  std::string_view code = file.code();
  for (const std::string& name : index.status_returning) {
    if (index.Ambiguous(name)) continue;
    for (std::size_t pos = FindIdent(code, name);
         pos != std::string_view::npos;
         pos = FindIdent(code, name, pos + 1)) {
      std::size_t paren = SkipWs(code, pos + name.size());
      if (paren == std::string_view::npos || code[paren] != '(') continue;
      std::size_t close = MatchForward(code, paren);
      if (close == std::string_view::npos) continue;
      // The call must be the whole statement: `... ; [recv.]Name(...) ;`.
      std::size_t semi = SkipWs(code, close + 1);
      if (semi == std::string_view::npos || code[semi] != ';') continue;
      // Statement start: after previous ';', '{', or '}'.
      std::size_t stmt_begin = pos;
      while (stmt_begin > 0) {
        char c = code[stmt_begin - 1];
        if (c == ';' || c == '{' || c == '}') break;
        --stmt_begin;
      }
      Piece prefix = Trim(code, stmt_begin, pos);
      // Empty prefix: free call. Otherwise it must be a receiver chain
      // (`obj.` / `obj->` / `ns::obj.` / `arr[i].`); anything containing
      // '=', '(' (wrapping macro/call), 'return', or a declaration means
      // the value is used.
      bool discarded = true;
      for (std::size_t i = prefix.begin; i < prefix.end; ++i) {
        char c = code[i];
        if (IsIdentChar(c) || c == '.' || c == ':' || c == '_' ||
            std::isspace(static_cast<unsigned char>(c))) {
          continue;
        }
        if (c == '-' && i + 1 < prefix.end && code[i + 1] == '>') {
          ++i;
          continue;
        }
        if (c == '[' ) {
          std::size_t cl = MatchForward(code, i);
          if (cl != std::string_view::npos && cl < prefix.end) {
            i = cl;
            continue;
          }
        }
        discarded = false;
        break;
      }
      if (!discarded) continue;
      // Receiver chain must not end mid-word against the call name —
      // `Foo::Name(...)` as a qualified call is fine to flag; but a
      // declaration `Status Name(...)` is not a discard. Declarations have
      // an identifier immediately before the name (the return type).
      if (prefix.begin < prefix.end) {
        std::size_t last = SkipWsBack(code, pos - 1);
        if (last != std::string_view::npos && IsIdentChar(code[last])) {
          continue;  // `Type Name(...)` — a declaration, not a call
        }
      }
      // `return Name(...);` handled above ('return' hits IsIdentChar path —
      // catch it explicitly).
      {
        std::string p = Snippet(code, prefix);
        if (p.find("return") != std::string::npos ||
            p.find("co_return") != std::string::npos) {
          continue;
        }
      }
      Report(file, pos, kStatusDiscard,
             "result of Status-returning call '" + name +
                 "' is discarded — a dropped failure path; check it, "
                 "propagate with DCDO_RETURN_IF_ERROR, or cast to void "
                 "with a comment",
             findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Index + driver
// ---------------------------------------------------------------------------
void IndexFile(const SourceFile& file, ProjectIndex* index) {
  std::string_view code = file.code();

  // Mutable members per class, for cross-file const-method attribution.
  for (const ClassInfo& info : CollectClasses(code)) {
    if (info.mutables.empty()) continue;
    auto& dst = index->class_mutables[info.name];
    for (const MutableMember& m : info.mutables) {
      bool dup = false;
      for (const auto& [name, type] : dst) dup = dup || name == m.name;
      if (!dup) dst.emplace_back(m.name, m.type);
    }
  }

  for (std::size_t pos = FindIdent(code, "Status");
       pos != std::string_view::npos;
       pos = FindIdent(code, "Status", pos + 1)) {
    // Return-type position: `Status Name(` possibly `common::Status` /
    // `dcdo::Status` (qualifiers sit before `Status`, which FindIdent
    // already lands on) — but NOT `Result<...>` or a variable declaration
    // used as a value. Next token must be an identifier, then '('.
    std::size_t name_pos = SkipWs(code, pos + 6);
    if (name_pos == std::string_view::npos) continue;
    std::string_view name = IdentAt(code, name_pos);
    if (name.empty()) continue;
    std::size_t paren = SkipWs(code, name_pos + name.size());
    if (paren == std::string_view::npos || code[paren] != '(') continue;
    // Skip `Class::Method` qualification in out-of-line definitions: the
    // name we index is the method, i.e. the identifier right before '('.
    // (IdentAt above already gives the first identifier; handle `A::B`.)
    std::string final_name(name);
    std::size_t q = name_pos + name.size();
    while (q + 1 < code.size() && code[q] == ':' && code[q + 1] == ':') {
      std::size_t next = q + 2;
      std::string_view part = IdentAt(code, next);
      if (part.empty()) break;
      final_name = std::string(part);
      q = next + part.size();
    }
    if (q != name_pos + name.size()) {
      paren = SkipWs(code, q);
      if (paren == std::string_view::npos || code[paren] != '(') continue;
    }
    // Exclude constructor-ish/keyword names and operator overloads.
    if (final_name == "if" || final_name == "while" || final_name == "for" ||
        final_name == "switch" || final_name == "operator") {
      continue;
    }
    // Exclude value contexts: `Status s(args)` is indistinguishable from a
    // declaration lexically; both are harmless to index (a *call* to a
    // variable name won't occur at statement position).
    index->status_returning.insert(final_name);
  }

  // Names also declared with other return types become ambiguous (collected
  // independently of scan order; the discard check intersects the two
  // sets). A small set of common return types is enough to kill overload
  // collisions like BindingAgent::Bind (void) vs NameService::Bind (Status).
  for (std::string_view ret :
       {"void", "bool", "int", "auto", "size_t", "uint64_t", "double",
        "string"}) {
    for (std::size_t pos = FindIdent(code, ret);
         pos != std::string_view::npos;
         pos = FindIdent(code, ret, pos + 1)) {
      std::size_t name_pos = SkipWs(code, pos + ret.size());
      if (name_pos == std::string_view::npos) continue;
      std::string_view name = IdentAt(code, name_pos);
      if (name.empty()) continue;
      std::size_t paren = SkipWs(code, name_pos + name.size());
      if (paren == std::string_view::npos || code[paren] != '(') continue;
      index->other_returning.insert(std::string(name));
    }
  }
}

// ---------------------------------------------------------------------------
// dcdo-cross-locality-schedule
//
// The PR 8 parallel-executor hazard class: a callback handed to a deferred
// scheduling sink (Simulation::Schedule / ScheduleAt / ScheduleFor /
// ScheduleAtFor / ScheduleGlobal, Locality::PushRemote, SimNetwork::Send)
// does not run in the enclosing frame — under the locality executor
// (DESIGN.md §14) it may fire later on a *different worker thread*. A
// by-reference capture (`[&]` or `[&x]`) then either dangles (the stack
// frame is long gone by the fire time) or races (the referent is touched
// concurrently with the locality that owns it). Deferred callbacks must
// capture by value: ids, copies, or owner pointers whose lifetime the
// scheduler controls. Driver code that runs the simulation to completion
// inside the capturing frame can suppress with NOLINT and a reason.
// ---------------------------------------------------------------------------
void CheckCrossLocalitySchedule(const SourceFile& file,
                                std::vector<Finding>* findings) {
  std::string_view code = file.code();

  static constexpr std::array<const char*, 7> kSinks = {
      "Schedule",      "ScheduleAt", "ScheduleFor", "ScheduleAtFor",
      "ScheduleGlobal", "PushRemote", "Send"};
  for (const char* sink : kSinks) {
    const std::size_t sink_len = std::string_view(sink).size();
    for (std::size_t pos = FindIdent(code, sink);
         pos != std::string_view::npos;
         pos = FindIdent(code, sink, pos + 1)) {
      std::size_t paren = SkipWs(code, pos + sink_len);
      if (paren == std::string_view::npos || code[paren] != '(') continue;
      // A type name directly before the identifier marks a declaration
      // (`std::uint64_t Schedule(...)`), not a call.
      std::size_t prev = SkipWsBack(code, pos == 0 ? 0 : pos - 1);
      if (prev != std::string_view::npos && IsIdentChar(code[prev])) continue;
      std::size_t close = MatchForward(code, paren);
      if (close == std::string_view::npos) continue;

      // Every lambda introducer inside the argument span.
      for (std::size_t lb = paren + 1; lb < close; ++lb) {
        if (code[lb] != '[') continue;
        // '[' at expression start is a lambda; after an identifier, ')' or
        // ']' it is a subscript.
        std::size_t lp = SkipWsBack(code, lb == 0 ? 0 : lb - 1);
        if (lp != std::string_view::npos &&
            (IsIdentChar(code[lp]) || code[lp] == ')' || code[lp] == ']')) {
          continue;
        }
        std::size_t rb = MatchForward(code, lb);
        if (rb == std::string_view::npos || rb > close) continue;
        // Confirm a lambda: a parameter list or body must follow.
        std::size_t after = SkipWs(code, rb + 1);
        if (after == std::string_view::npos ||
            (code[after] != '(' && code[after] != '{')) {
          continue;
        }
        for (Piece item : SplitTopLevel(code, lb + 1, rb)) {
          Piece t = Trim(code, item.begin, item.end);
          if (t.begin >= t.end || code[t.begin] != '&') continue;
          // Any leading '&' is a by-reference capture: bare `&` (default),
          // `&name`, or `&name = expr` (reference init-capture). `&&` cannot
          // appear in a capture list.
          std::string what =
              (t.end - t.begin) == 1
                  ? std::string("default by-reference capture '&'")
                  : "by-reference capture '" + Snippet(code, t) + "'";
          Report(file, t.begin, kCrossLocality,
                 what + " in a callback passed to deferred sink '" +
                     std::string(sink) +
                     "' — under the parallel locality executor the callback "
                     "may fire on another worker thread after this frame "
                     "returns (dangling reference or cross-locality race); "
                     "capture by value instead",
                 findings);
          break;  // one report per lambda
        }
        lb = rb;  // resume after this capture list
      }
    }
  }
}

void RunChecks(const SourceFile& file, const ProjectIndex& index,
               const CheckOptions& options, std::vector<Finding>* findings) {
  auto enabled = [&](const char* name) {
    return options.enabled.empty() || options.enabled.count(name) != 0;
  };
  if (enabled(kSelfCapture)) CheckSharedFunctionSelfCapture(file, findings);
  if (enabled(kMutableConst)) {
    CheckMutableNonatomicInConst(file, index, findings);
  }
  if (enabled(kUnorderedSched)) {
    CheckUnorderedIterationSchedules(file, findings);
  }
  if (enabled(kWallclock)) {
    bool allowed = false;
    for (const std::string& prefix : options.wallclock_allow_prefixes) {
      if (file.path().rfind(prefix, 0) == 0 ||
          file.path().find("/" + prefix) != std::string::npos) {
        allowed = true;
        break;
      }
    }
    if (!allowed) CheckWallclockInSim(file, findings);
  }
  if (enabled(kStatusDiscard)) CheckStatusDiscard(file, index, findings);
  if (enabled(kCrossLocality)) CheckCrossLocalitySchedule(file, findings);
  std::sort(findings->begin(), findings->end());
}

}  // namespace dcdo_tidy
