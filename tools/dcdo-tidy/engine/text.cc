#include "engine/text.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace dcdo_tidy {

bool SourceFile::Load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  LoadFromString(path, buf.str());
  return true;
}

void SourceFile::LoadFromString(std::string path, std::string text) {
  path_ = std::move(path);
  raw_ = std::move(text);
  Analyze();
}

namespace {

// Parses a NOLINT comment filter list: "NOLINT" -> all checks (empty list),
// "NOLINT(a, b)" -> {a, b}. Returns false if `at` is not a NOLINT marker.
bool ParseNolintList(std::string_view comment, std::size_t at,
                     std::vector<std::string>* list) {
  list->clear();
  std::size_t pos = at + std::string_view("NOLINT").size();
  if (pos < comment.size() && comment.compare(pos, 8, "NEXTLINE") == 0) {
    pos += 8;
  }
  if (pos >= comment.size() || comment[pos] != '(') {
    return true;  // bare NOLINT: suppress everything
  }
  std::size_t close = comment.find(')', pos);
  if (close == std::string_view::npos) return true;
  std::string_view inner = comment.substr(pos + 1, close - pos - 1);
  std::size_t start = 0;
  while (start <= inner.size()) {
    std::size_t comma = inner.find(',', start);
    std::string_view item = inner.substr(
        start, comma == std::string_view::npos ? inner.size() - start
                                               : comma - start);
    while (!item.empty() && std::isspace(static_cast<unsigned char>(
                                item.front()))) {
      item.remove_prefix(1);
    }
    while (!item.empty() &&
           std::isspace(static_cast<unsigned char>(item.back()))) {
      item.remove_suffix(1);
    }
    if (!item.empty()) list->emplace_back(item);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return true;
}

bool ListCovers(const std::vector<std::string>& list, std::string_view check) {
  if (list.empty()) return true;  // bare NOLINT
  for (const std::string& item : list) {
    if (item == check) return true;
    // Support a trailing-* glob, e.g. NOLINT(dcdo-*).
    if (!item.empty() && item.back() == '*' &&
        check.substr(0, item.size() - 1) ==
            std::string_view(item).substr(0, item.size() - 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void SourceFile::RecordNolint(std::size_t line, std::string_view comment) {
  std::size_t at = comment.find("NOLINT");
  while (at != std::string_view::npos) {
    std::vector<std::string> list;
    ParseNolintList(comment, at, &list);
    bool next_line = comment.compare(at, 14, "NOLINTNEXTLINE") == 0;
    (next_line ? nolint_next_ : nolint_same_)[line] = std::move(list);
    at = comment.find("NOLINT", at + 6);
  }
}

void SourceFile::Analyze() {
  code_.assign(raw_.size(), ' ');
  line_starts_.clear();
  line_starts_.push_back(0);
  nolint_same_.clear();
  nolint_next_.clear();

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // raw-string delimiter, e.g. )foo"

  const std::size_t n = raw_.size();
  for (std::size_t i = 0; i < n; ++i) {
    char c = raw_[i];
    if (c == '\n') {
      line_starts_.push_back(i + 1);
      code_[i] = '\n';
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && raw_[i + 1] == '/') {
          state = State::kLineComment;
        } else if (c == '/' && i + 1 < n && raw_[i + 1] == '*') {
          state = State::kBlockComment;
          ++i;  // consume '*' so "/*/" is not a complete comment
        } else if (c == '"') {
          // Raw string? Look back for R / uR / u8R / LR prefix.
          bool is_raw = false;
          if (i > 0 && raw_[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(raw_[i - 2]) || raw_[i - 2] == '8' ||
               raw_[i - 2] == 'u' || raw_[i - 2] == 'L')) {
            is_raw = true;
          }
          if (is_raw) {
            std::size_t paren = raw_.find('(', i + 1);
            if (paren != std::string::npos) {
              raw_delim = ")" + raw_.substr(i + 1, paren - i - 1) + "\"";
              state = State::kRawString;
              code_[i] = '"';
              continue;
            }
          }
          state = State::kString;
          code_[i] = '"';
          continue;
        } else if (c == '\'') {
          // Heuristic: a quote after an identifier char or digit is a C++14
          // digit separator (1'000'000), not a character literal.
          if (i > 0 && (std::isalnum(static_cast<unsigned char>(raw_[i - 1])) ||
                        raw_[i - 1] == '_')) {
            code_[i] = c;
            continue;
          }
          state = State::kChar;
          code_[i] = '\'';
          continue;
        }
        if (state == State::kCode) code_[i] = c;
        break;
      case State::kLineComment:
        break;  // stays blank; newline handled above
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && raw_[i + 1] == '/') {
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          code_[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          code_[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == ')' && raw_.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          code_[i] = '"';
          state = State::kCode;
        }
        break;
    }
  }

  // Second pass for NOLINT markers: scan each raw line's comment portion.
  // (Doing it per-line keeps the state machine above simple; NOLINT markers
  // are, by convention, on the line they affect.)
  for (std::size_t line = 1; line <= line_starts_.size(); ++line) {
    std::string_view text = RawLine(line);
    if (text.find("NOLINT") != std::string_view::npos) {
      RecordNolint(line, text);
    }
  }
}

std::size_t SourceFile::LineOf(std::size_t offset) const {
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<std::size_t>(it - line_starts_.begin());
}

std::size_t SourceFile::ColOf(std::size_t offset) const {
  std::size_t line = LineOf(offset);
  return offset - line_starts_[line - 1] + 1;
}

std::string_view SourceFile::RawLine(std::size_t line) const {
  if (line == 0 || line > line_starts_.size()) return {};
  std::size_t begin = line_starts_[line - 1];
  std::size_t end = line < line_starts_.size() ? line_starts_[line] - 1
                                               : raw_.size();
  if (end > raw_.size()) end = raw_.size();
  if (end > begin && raw_[end - 1] == '\r') --end;
  return std::string_view(raw_).substr(begin, end - begin);
}

bool SourceFile::IsSuppressed(std::size_t line, std::string_view check) const {
  if (auto it = nolint_same_.find(line); it != nolint_same_.end()) {
    if (ListCovers(it->second, check)) return true;
  }
  if (line > 1) {
    if (auto it = nolint_next_.find(line - 1); it != nolint_next_.end()) {
      if (ListCovers(it->second, check)) return true;
    }
  }
  return false;
}

// --- Token helpers ---

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string_view IdentAt(std::string_view code, std::size_t pos) {
  if (pos >= code.size() || !IsIdentStart(code[pos])) return {};
  std::size_t end = pos;
  while (end < code.size() && IsIdentChar(code[end])) ++end;
  return code.substr(pos, end - pos);
}

bool IsWholeIdent(std::string_view code, std::size_t pos, std::size_t len) {
  if (pos > 0 && IsIdentChar(code[pos - 1])) return false;
  if (pos + len < code.size() && IsIdentChar(code[pos + len])) return false;
  return true;
}

std::size_t FindIdent(std::string_view code, std::string_view ident,
                      std::size_t from) {
  std::size_t pos = code.find(ident, from);
  while (pos != std::string_view::npos) {
    if (IsWholeIdent(code, pos, ident.size())) return pos;
    pos = code.find(ident, pos + 1);
  }
  return std::string_view::npos;
}

std::size_t MatchForward(std::string_view code, std::size_t open) {
  if (open >= code.size()) return std::string_view::npos;
  char o = code[open];
  char c;
  switch (o) {
    case '(': c = ')'; break;
    case '[': c = ']'; break;
    case '{': c = '}'; break;
    case '<': c = '>'; break;
    default: return std::string_view::npos;
  }
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    char ch = code[i];
    if (o == '<') {
      // Inside template scans, parens/braces hide everything within.
      if (ch == '(' || ch == '{' || ch == '[') {
        std::size_t close = MatchForward(code, i);
        if (close == std::string_view::npos) return std::string_view::npos;
        i = close;
        continue;
      }
      // Skip shift operators.
      if ((ch == '<' || ch == '>') && i + 1 < code.size() &&
          code[i + 1] == ch) {
        // >> closes two template levels in C++11+, but a template argument
        // list of a declaration we scan always opens both here too.
        if (ch == '>') {
          depth -= 2;
          ++i;
          if (depth <= 0) return i;
          continue;
        }
        ++i;
        continue;
      }
      if (ch == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        ++i;  // arrow, not a closer
        continue;
      }
    }
    if (ch == o) {
      ++depth;
    } else if (ch == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return std::string_view::npos;
}

std::size_t SkipWs(std::string_view code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos]))) {
    ++pos;
  }
  return pos < code.size() ? pos : std::string_view::npos;
}

std::size_t SkipWsBack(std::string_view code, std::size_t pos) {
  while (pos != std::string_view::npos && pos > 0 &&
         std::isspace(static_cast<unsigned char>(code[pos]))) {
    --pos;
  }
  if (pos == 0 && (code.empty() ||
                   std::isspace(static_cast<unsigned char>(code[0])))) {
    return std::string_view::npos;
  }
  return pos;
}

std::vector<Piece> SplitTopLevel(std::string_view code, std::size_t begin,
                                 std::size_t end, char sep) {
  std::vector<Piece> out;
  int paren = 0, brace = 0, bracket = 0, angle = 0;
  std::size_t start = begin;
  for (std::size_t i = begin; i < end && i < code.size(); ++i) {
    char c = code[i];
    switch (c) {
      case '(': ++paren; break;
      case ')': --paren; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      case '<': ++angle; break;
      case '>':
        if (i > 0 && code[i - 1] == '-') break;  // arrow
        if (angle > 0) --angle;
        break;
      default: break;
    }
    if (c == sep && paren == 0 && brace == 0 && bracket == 0 && angle == 0) {
      out.push_back(Trim(code, start, i));
      start = i + 1;
    }
  }
  if (start < end) out.push_back(Trim(code, start, end));
  return out;
}

Piece Trim(std::string_view code, std::size_t begin, std::size_t end) {
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(code[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(code[end - 1]))) {
    --end;
  }
  return {begin, end};
}

bool PieceEquals(std::string_view code, Piece p, std::string_view want) {
  std::string collapsed;
  for (std::size_t i = p.begin; i < p.end && i < code.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(code[i]))) {
      collapsed.push_back(code[i]);
    }
  }
  return collapsed == want;
}

}  // namespace dcdo_tidy
