// E11 — Remote-invocation fast path: host-side per-call overhead.
//
// Unlike E2 (simulated roundtrip, paper-calibrated), this experiment measures
// *wall-clock* cost of driving a remote call through the engine: marshaling,
// by-id dispatch, timer arm/cancel, and the event loop itself. The loopback
// path minimizes simulated-network event count, so what remains is the
// runtime's own overhead — the thing the fast path (interned method ids,
// pooled call state, shared arg buffers, timer wheel) attacks.
//
// Wall_* numbers are host nanoseconds and machine-dependent: they are
// tracked for *relative* regressions only (scripts/bench.sh --compare).
// Wall_RemoteEventFloor reports the irreducible cost of firing the same
// number of bare simulation events, so (loopback - floor) isolates the
// RPC-layer overhead.
//
// SimTime_RemoteCallBatchedWindow is deterministic simulated time: it turns
// the (default-off) per-destination send batching on and reports how a
// pipelined burst coalesces. It must NOT change any other SimTime_* number —
// batching is opt-in via CostModel::send_batch_window.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rpc/client.h"

namespace dcdo::bench {
namespace {

struct LoopbackRig {
  LoopbackRig() : testbed{BenchOptions()} {
    grid = MakeFunctionGrid(testbed, "grid", 10, 1);
    manager = MakeManagerWithVersion(testbed, "bench", grid,
                                     MakeSingleVersionExplicit());
    // Object and client share host 1: the network path is loopback, so sim
    // events are few and cheap and host-side costs dominate.
    instance = CreateInstanceBlocking(testbed, *manager, testbed.host(1));
    client = testbed.MakeClient(1);
  }

  Testbed testbed;
  std::vector<ImplementationComponent> grid;
  std::unique_ptr<DcdoManager> manager;
  ObjectId instance;
  std::unique_ptr<rpc::RpcClient> client;
};

// One blocking remote call per iteration, wall clock.
void Wall_RemoteCallLoopback(benchmark::State& state) {
  LoopbackRig rig;
  ByteBuffer args = ByteBuffer::FromString("x");
  // Warm the binding cache and the interned-id path before timing.
  if (!rig.client->InvokeBlocking(rig.instance, "grid_fn0", args).ok()) {
    std::abort();
  }
  std::uint64_t events_before = rig.testbed.simulation().events_fired();
  std::uint64_t calls = 0;
  for (auto _ : state) {
    if (!rig.client->InvokeBlocking(rig.instance, "grid_fn0", args).ok()) {
      std::abort();
    }
    ++calls;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(calls));
  state.counters["events_per_call"] = benchmark::Counter(
      static_cast<double>(rig.testbed.simulation().events_fired() -
                          events_before) /
      static_cast<double>(calls ? calls : 1));
}
BENCHMARK(Wall_RemoteCallLoopback);

// A window of async calls in flight at once: the amortized per-call cost a
// pipelined caller sees (no blocking drive per call).
void Wall_RemoteCallPipelined(benchmark::State& state) {
  constexpr int kWindow = 64;
  LoopbackRig rig;
  ByteBuffer args = ByteBuffer::FromString("x");
  if (!rig.client->InvokeBlocking(rig.instance, "grid_fn0", args).ok()) {
    std::abort();
  }
  std::uint64_t calls = 0;
  for (auto _ : state) {
    int open = kWindow;
    for (int i = 0; i < kWindow; ++i) {
      rig.client->Invoke(rig.instance, "grid_fn0", ByteBuffer(args),
                         [&open](Result<ByteBuffer> result) {
                           if (!result.ok()) std::abort();
                           --open;
                         });
    }
    rig.testbed.simulation().Run();
    if (open != 0) std::abort();
    calls += kWindow;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(calls));
}
BENCHMARK(Wall_RemoteCallPipelined);

// The sim-event floor: firing the same number of bare events a loopback call
// costs, with no RPC machinery. Subtract from Wall_RemoteCallLoopback to get
// the net RPC-layer overhead.
void Wall_RemoteEventFloor(benchmark::State& state) {
  LoopbackRig rig;
  ByteBuffer args = ByteBuffer::FromString("x");
  if (!rig.client->InvokeBlocking(rig.instance, "grid_fn0", args).ok()) {
    std::abort();
  }
  // Count the events one warm call fires.
  std::uint64_t before = rig.testbed.simulation().events_fired();
  if (!rig.client->InvokeBlocking(rig.instance, "grid_fn0", args).ok()) {
    std::abort();
  }
  const int events_per_call = static_cast<int>(
      rig.testbed.simulation().events_fired() - before);

  sim::Simulation simulation;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < events_per_call; ++i) {
      simulation.Schedule(sim::SimDuration::Micros(1), [&fired] { ++fired; });
    }
    simulation.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.counters["events_per_call"] =
      benchmark::Counter(static_cast<double>(events_per_call));
}
BENCHMARK(Wall_RemoteEventFloor);

// Deterministic: a pipelined burst over a real (non-loopback) link with the
// send-batching window enabled. Reports simulated seconds for the burst and
// how many wire transfers carried it.
void SimTime_RemoteCallBatchedWindow(benchmark::State& state) {
  constexpr int kBurst = 32;
  Testbed::Options options = BenchOptions();
  options.cost_model.send_batch_window =
      sim::SimDuration::Micros(state.range(0));
  Testbed testbed{options};
  auto grid = MakeFunctionGrid(testbed, "grid", 10, 1);
  auto manager = MakeManagerWithVersion(testbed, "bench", grid,
                                        MakeSingleVersionExplicit());
  ObjectId instance = CreateInstanceBlocking(testbed, *manager,
                                             testbed.host(1));
  auto client = testbed.MakeClient(2);
  ByteBuffer args = ByteBuffer::FromString("x");
  if (!client->InvokeBlocking(instance, "grid_fn0", args).ok()) std::abort();

  for (auto _ : state) {
    double seconds = SimSeconds(testbed, [&] {
      int open = kBurst;
      for (int i = 0; i < kBurst; ++i) {
        client->Invoke(instance, "grid_fn0", ByteBuffer(args),
                       [&open](Result<ByteBuffer> result) {
                         if (!result.ok()) std::abort();
                         --open;
                       });
      }
      testbed.simulation().Run();
      if (open != 0) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.counters["batches_sent"] =
      benchmark::Counter(static_cast<double>(testbed.network().batches_sent()));
  state.SetLabel("window " + std::to_string(state.range(0)) + " us, burst " +
                 std::to_string(kBurst));
}
BENCHMARK(SimTime_RemoteCallBatchedWindow)
    ->UseManualTime()
    ->Iterations(8)
    ->Arg(0)
    ->Arg(100)
    ->Arg(500);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
