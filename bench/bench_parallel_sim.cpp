// E15 — Parallel simulation localities (DESIGN.md §14).
//
// Wall-clock scaling of the locality executor at sim_workers ∈ {1, 2, 4, 8}
// over two multi-host workloads, plus the sharded-counter microbench:
//
//   * Wall_E15_CreationFanout/<types>/<workers> — E13-flavoured cold
//     creation: `types` DCDO types, each homed on its own host, all fetch
//     pipelines in flight at once toward distinct destination hosts.
//     Fetch/stream pacing is control-plane (global locality), so this curve
//     shows the executor's floor: NIC deliveries and mapping parallelize,
//     the pipeline bookkeeping does not.
//   * Wall_E15_LookupLoad/<shards>/<workers> — E14-flavoured open-loop
//     lookup stream against a sharded directory with remote request routing
//     (real client->shard messages), clients spread over 16 hosts. Shard
//     service, NIC events, and completion callbacks are all data-plane, so
//     this is the workload the acceptance speedup is measured on.
//   * Wall_E15_CounterShardedLanes vs Wall_E15_CounterSharedAtomic — the
//     MetricsRegistry sharding before/after: one trace::Counter cache line
//     hammered from N threads vs trace::ShardedCounter's per-lane cells.
//
// Iteration time for the Wall_* workload entries is HOST wall seconds
// around the event drain (manual time), so the recorded curve IS the
// speedup curve; `sim_s` carries the simulated span. Determinism is
// asserted in-process: every worker count must reproduce the workers=1
// digest, event count, and final SimTime bit-for-bit (abort on mismatch).
// SimTime_E15_* companions re-run each workload on manual *sim* time so
// `bench.sh --compare` holds every worker count to zero drift — these
// entries are deliberately NOT on the drift allowlist.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/object_id.h"
#include "trace/metrics.h"

namespace dcdo::bench {
namespace {

// Deterministic 64-bit mix (same as E14): reproducible key/arrival draws.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool SmokeMode() { return std::getenv("DCDO_BENCH_SMOKE") != nullptr; }

double WallSeconds(const std::function<void()>& body) {
  auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunOutcome {
  double wall_s = 0.0;
  std::int64_t sim_ns = 0;
  std::uint64_t digest = 0;
  std::uint64_t fired = 0;
};

// Every worker count must reproduce the workers=1 run exactly. The first
// run of each (workload, scale) key records the baseline; later runs abort
// the whole bench on any simulated divergence — a wall-clock speedup that
// changes simulated results is not a speedup, it is a bug.
void AssertMatchesBaseline(const std::string& key, const RunOutcome& out) {
  static std::map<std::string, RunOutcome> baselines;
  auto [it, inserted] = baselines.emplace(key, out);
  if (inserted) return;
  const RunOutcome& base = it->second;
  if (base.sim_ns != out.sim_ns || base.digest != out.digest ||
      base.fired != out.fired) {
    std::abort();
  }
}

// ===== E13-flavoured creation fan-out =====

RunOutcome RunCreationFanout(int types, int workers) {
  ObjectId::ResetCounterForTest();
  const std::size_t functions = SmokeMode() ? 20 : 100;
  const std::size_t components = SmokeMode() ? 5 : 20;
  constexpr int kGridHosts = 16;

  Testbed::Options options = BenchOptions();
  options.host_count = kGridHosts + 1;
  options.cost_model.sim_workers = workers;
  options.cost_model.fetch_concurrency = 8;
  Testbed testbed(options);
  testbed.simulation().EnableDeterminismDigest(true);

  std::vector<std::unique_ptr<DcdoManager>> managers;
  std::vector<sim::SimHost*> destinations;
  managers.reserve(static_cast<std::size_t>(types));
  for (int t = 0; t < types; ++t) {
    std::string type_name = "e15type" + std::to_string(t);
    auto grid = MakeFunctionGrid(testbed, type_name, functions, components);
    managers.push_back(MakeManagerWithVersion(
        testbed, type_name, grid, MakeSingleVersionExplicit(),
        testbed.host(1 + t % kGridHosts)));
    destinations.push_back(testbed.host(1 + (t + types) % kGridHosts));
  }

  RunOutcome out;
  std::size_t created = 0;
  out.wall_s = WallSeconds([&] {
    for (int t = 0; t < types; ++t) {
      managers[static_cast<std::size_t>(t)]->CreateInstance(
          destinations[static_cast<std::size_t>(t)],
          [&created](Result<ObjectId> result) {
            if (!result.ok()) std::abort();
            ++created;
          });
    }
    testbed.simulation().RunWhile(
        [&] { return created < static_cast<std::size_t>(types); });
    testbed.RunAll();  // full drain: digests compare whole runs
  });
  if (created != static_cast<std::size_t>(types)) std::abort();
  out.sim_ns = testbed.simulation().Now().nanos();
  out.digest = testbed.simulation().DeterminismDigest();
  out.fired = testbed.simulation().events_fired();
  return out;
}

// ===== E14-flavoured open-loop lookup load =====

constexpr double kLookupServiceMicros = 100.0;
constexpr double kUtilization = 0.7;

RunOutcome RunLookupLoad(int shards, int workers) {
  ObjectId::ResetCounterForTest();
  constexpr int kGridHosts = 16;
  const std::size_t objects = SmokeMode() ? 2000 : 20000;
  const std::size_t lookups =
      static_cast<std::size_t>(SmokeMode() ? 2000 : 10000) * shards;

  Testbed::Options options = BenchOptions();
  options.host_count = kGridHosts + 1;
  options.cost_model.sim_workers = workers;
  options.cost_model.naming_shard_count = shards;
  options.cost_model.naming_ring_points = 512;
  options.cost_model.directory_lookup_service =
      sim::SimDuration::Micros(kLookupServiceMicros);
  // Real request routing for every worker count, so the workload is
  // identical whether or not the executor is parallel (required at
  // sim_workers > 1; kept on at 1 for the apples-to-apples curve).
  options.cost_model.directory_remote_requests = true;
  // The conservative window is one lookahead (= network latency) wide; the
  // paper's links are slow, so a 2 ms latency is period-accurate AND gives
  // each barrier window enough events to amortize the synchronization.
  options.cost_model.network_latency = sim::SimDuration::Millis(2);
  Testbed testbed(options);
  testbed.simulation().EnableDeterminismDigest(true);
  BindingAgent& agent = testbed.agent();

  std::vector<ObjectId> ids;
  ids.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    ids.push_back(ObjectId::Next(domains::kInstance));
    agent.Bind(ids.back(),
               ObjectAddress{static_cast<sim::NodeId>(1 + i % kGridHosts),
                             static_cast<sim::ProcessId>(100 + i), 1});
  }

  // Open-loop Poisson arrivals at kUtilization of aggregate shard capacity,
  // issued from clients spread over every grid host.
  const double rate_per_sec =
      kUtilization * shards * (1e6 / kLookupServiceMicros);
  std::size_t completed = 0;
  double arrival_s = 0.0;
  for (std::size_t i = 0; i < lookups; ++i) {
    double u = (static_cast<double>(Mix64(0xA0 + i) >> 11) + 1.0) /
               9007199254740993.0;
    arrival_s += -std::log(u) / rate_per_sec;
    sim::SimDuration arrival = sim::SimDuration::Micros(arrival_s * 1e6);
    const ObjectId& key = ids[Mix64(0xE15 + i) % objects];
    const auto client = static_cast<sim::NodeId>(1 + i % kGridHosts);
    testbed.simulation().Schedule(arrival, [&agent, &completed, key,
                                            client]() {
      agent.AsyncLookup(key, /*holder=*/0, client,
                        [&completed](Result<ObjectAddress> result,
                                     sim::SimTime) {
                          if (!result.ok()) std::abort();
                          ++completed;
                        });
    });
  }

  RunOutcome out;
  out.wall_s = WallSeconds([&] { testbed.RunAll(); });
  if (completed != lookups) std::abort();
  out.sim_ns = testbed.simulation().Now().nanos();
  out.digest = testbed.simulation().DeterminismDigest();
  out.fired = testbed.simulation().events_fired();
  return out;
}

// ===== Bench wrappers: Wall_* records wall time, SimTime_* sim time =====

void Wall_E15_CreationFanout(benchmark::State& state) {
  const int types = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RunOutcome out = RunCreationFanout(types, workers);
    AssertMatchesBaseline("creation/" + std::to_string(types), out);
    state.SetIterationTime(out.wall_s);
    state.counters["sim_s"] = static_cast<double>(out.sim_ns) / 1e9;
    state.counters["events"] = static_cast<double>(out.fired);
    // The wall curve only shows scaling when the host can co-run the
    // workers; record the core count so a committed curve from a small
    // machine is interpretable (on 1 core the executor runs windows
    // inline and the curve is deliberately flat).
    state.counters["cores"] =
        static_cast<double>(std::thread::hardware_concurrency());
  }
  state.SetLabel(std::to_string(types) + " types, " +
                 std::to_string(workers) + " worker(s)");
}

void SimTime_E15_CreationFanout(benchmark::State& state) {
  const int types = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RunOutcome out = RunCreationFanout(types, workers);
    AssertMatchesBaseline("creation/" + std::to_string(types), out);
    state.SetIterationTime(static_cast<double>(out.sim_ns) / 1e9);
    state.counters["wall_s"] = out.wall_s;
  }
  state.SetLabel(std::to_string(types) + " types, " +
                 std::to_string(workers) + " worker(s)");
}

void Wall_E15_LookupLoad(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RunOutcome out = RunLookupLoad(shards, workers);
    AssertMatchesBaseline("lookup/" + std::to_string(shards), out);
    state.SetIterationTime(out.wall_s);
    state.counters["sim_s"] = static_cast<double>(out.sim_ns) / 1e9;
    state.counters["events"] = static_cast<double>(out.fired);
    state.counters["cores"] =
        static_cast<double>(std::thread::hardware_concurrency());
  }
  state.SetLabel(std::to_string(shards) + " shard(s), " +
                 std::to_string(workers) + " worker(s)");
}

void SimTime_E15_LookupLoad(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    RunOutcome out = RunLookupLoad(shards, workers);
    AssertMatchesBaseline("lookup/" + std::to_string(shards), out);
    state.SetIterationTime(static_cast<double>(out.sim_ns) / 1e9);
    state.counters["wall_s"] = out.wall_s;
  }
  state.SetLabel(std::to_string(shards) + " shard(s), " +
                 std::to_string(workers) + " worker(s)");
}

// ===== Sharded-counter microbench (MetricsRegistry before/after) =====

// Before: PR 4's fix — one relaxed atomic. Correct, but every increment
// from every thread bounces the same cache line.
void Wall_E15_CounterSharedAtomic(benchmark::State& state) {
  static trace::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Wall_E15_CounterSharedAtomic)->Threads(1)->Threads(8)
    ->UseRealTime();

// After: per-locality lanes — each thread owns a padded cell, reads fold.
void Wall_E15_CounterShardedLanes(benchmark::State& state) {
  static trace::ShardedCounter counter;
  trace::SetMetricsLane(
      static_cast<std::size_t>(state.thread_index()) % 16 + 1);
  for (auto _ : state) {
    counter.Increment();
  }
  trace::SetMetricsLane(0);  // the main thread doubles as the coordinator
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(Wall_E15_CounterShardedLanes)->Threads(1)->Threads(8)
    ->UseRealTime();

// Workload entries: the smoke miniatures keep CI on the same code paths;
// the full-scale sweep (16 types / 8 shards, workers 1-2-4-8) is the
// committed speedup curve. Workers are the LAST bench argument.
const int dcdo_register_e15 = [] {
  using ::benchmark::RegisterBenchmark;
  const bool smoke = SmokeMode();
  const int types = smoke ? 2 : 16;
  const int shards = smoke ? 2 : 8;
  auto* wall_creation = RegisterBenchmark("Wall_E15_CreationFanout",
                                          Wall_E15_CreationFanout)
                            ->UseManualTime()
                            ->Iterations(1);
  auto* sim_creation = RegisterBenchmark("SimTime_E15_CreationFanout",
                                         SimTime_E15_CreationFanout)
                           ->UseManualTime()
                           ->Iterations(1);
  auto* wall_lookup =
      RegisterBenchmark("Wall_E15_LookupLoad", Wall_E15_LookupLoad)
          ->UseManualTime()
          ->Iterations(1);
  auto* sim_lookup =
      RegisterBenchmark("SimTime_E15_LookupLoad", SimTime_E15_LookupLoad)
          ->UseManualTime()
          ->Iterations(1);
  for (int workers : {1, 2, 4, 8}) {
    wall_creation->Args({types, workers});
    sim_creation->Args({types, workers});
    wall_lookup->Args({shards, workers});
    sim_lookup->Args({shards, workers});
  }
  return 0;
}();

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
