// E6 — The cost of evolution (paper Section 4, "Cost") — the headline table.
//
// Paper claims reproduced here:
//   * evolving a DCDO costs < 0.5 s, except when new components must be
//     incorporated;
//   * with cached components the incorporate cost is ~200 us per component;
//   * with uncached components the cost is dominated by the download;
//   * evolving a *normal* Legion object costs state capture + executable
//     download + process respawn + state restore (tens of seconds), plus the
//     25-35 s stale-binding penalty each old client pays afterwards.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "common/strings.h"
#include "rpc/client.h"
#include "runtime/class_object.h"

namespace dcdo::bench {
namespace {

struct EvolveScenario {
  Testbed testbed{BenchOptions()};
  std::unique_ptr<DcdoManager> manager;
  std::vector<ImplementationComponent> base_components;
  VersionId v1;
  ObjectId instance;

  // `base_functions` spread over `base_comps` in version 1.
  EvolveScenario(std::size_t base_functions, std::size_t base_comps) {
    base_components =
        MakeFunctionGrid(testbed, "base", base_functions, base_comps);
    manager = MakeManagerWithVersion(testbed, "svc", base_components,
                                     MakeSingleVersionExplicit());
    v1 = manager->current_version();
    instance = CreateInstanceBlocking(testbed, *manager, testbed.host(1));
  }

  // Derives v1.<n>, configures, freezes, designates current.
  VersionId MakeChild(const std::function<void(DfmDescriptor*)>& configure) {
    VersionId child = *manager->DeriveVersion(v1);
    DfmDescriptor* descriptor = *manager->MutableDescriptor(child);
    configure(descriptor);
    if (!descriptor->MarkInstantiable().ok()) std::abort();
    if (!manager->SetCurrentVersion(child).ok()) std::abort();
    return child;
  }
};

// Row 1: enable/disable flips only — "less than half a second".
void SimTime_EvolveFlipsOnly(benchmark::State& state) {
  std::size_t flips = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EvolveScenario scenario(/*functions=*/100, /*components=*/10);
    VersionId child = scenario.MakeChild([&](DfmDescriptor* d) {
      for (std::size_t i = 0; i < flips; ++i) {
        const auto& grid = scenario.base_components;
        const auto& comp = grid[i % grid.size()];
        // Disable the i-th function of some component.
        const std::string fn = comp.functions[i / grid.size()].function.name;
        if (!d->DisableFunction(fn, comp.id).ok()) std::abort();
      }
    });
    double seconds = SimSeconds(scenario.testbed, [&] {
      EvolveBlocking(scenario.testbed, *scenario.manager, scenario.instance,
                     child);
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(flips) + " enable/disable flips");
}
BENCHMARK(SimTime_EvolveFlipsOnly)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(1)
    ->Arg(10)
    ->Arg(50);

// Row 2: incorporate k components whose images are already cached — ~200 us
// per component.
void SimTime_EvolveCachedComponents(benchmark::State& state) {
  std::size_t added = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    EvolveScenario scenario(/*functions=*/50, /*components=*/5);
    auto extra = MakeFunctionGrid(scenario.testbed, "extra", added * 4, added);
    for (const ImplementationComponent& comp : extra) {
      if (!scenario.manager->PublishComponent(comp).ok()) std::abort();
      scenario.testbed.host(1)->CacheComponent(comp.id, comp.code_bytes);
    }
    VersionId child = scenario.MakeChild([&](DfmDescriptor* d) {
      for (const ImplementationComponent& comp : extra) {
        if (!d->IncorporateComponent(comp).ok()) std::abort();
        for (const FunctionImplDescriptor& fn : comp.functions) {
          if (!d->EnableFunction(fn.function.name, comp.id).ok()) std::abort();
        }
      }
    });
    double seconds = SimSeconds(scenario.testbed, [&] {
      EvolveBlocking(scenario.testbed, *scenario.manager, scenario.instance,
                     child);
    });
    state.SetIterationTime(seconds);
    state.counters["us_per_component"] =
        seconds * 1e6 / static_cast<double>(added);
  }
  state.SetLabel("+" + std::to_string(added) + " cached components");
}
BENCHMARK(SimTime_EvolveCachedComponents)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25);

// Row 3: incorporate components that must be downloaded — transfer-dominated.
void SimTime_EvolveDownloadedComponents(benchmark::State& state) {
  std::size_t added = static_cast<std::size_t>(state.range(0));
  std::size_t bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    EvolveScenario scenario(/*functions=*/50, /*components=*/5);
    auto extra = MakeFunctionGrid(scenario.testbed, "extra", added * 4, added,
                                  bytes);
    for (const ImplementationComponent& comp : extra) {
      if (!scenario.manager->PublishComponent(comp).ok()) std::abort();
    }
    VersionId child = scenario.MakeChild([&](DfmDescriptor* d) {
      for (const ImplementationComponent& comp : extra) {
        if (!d->IncorporateComponent(comp).ok()) std::abort();
        for (const FunctionImplDescriptor& fn : comp.functions) {
          if (!d->EnableFunction(fn.function.name, comp.id).ok()) std::abort();
        }
      }
    });
    double seconds = SimSeconds(scenario.testbed, [&] {
      EvolveBlocking(scenario.testbed, *scenario.manager, scenario.instance,
                     child);
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("+" + std::to_string(added) + " downloaded components of " +
                 HumanBytes(bytes));
}
BENCHMARK(SimTime_EvolveDownloadedComponents)
    ->UseManualTime()
    ->Iterations(2)
    ->Args({1, 100'000})
    ->Args({1, 550'000})
    ->Args({5, 100'000})
    ->Args({5, 550'000});

// Row 4: the monolithic baseline — capture + download + respawn + restore.
void SimTime_EvolveMonolithic(benchmark::State& state) {
  std::size_t executable_bytes = static_cast<std::size_t>(state.range(0));
  std::size_t state_bytes = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    ClassObject class_object("legacy", testbed.host(0), &testbed.transport(),
                             &testbed.agent());
    auto make_executable = [&](const std::string& name) {
      Executable executable;
      executable.name = name;
      executable.bytes = executable_bytes;
      executable.methods.Add("grid_fn0", [](InstanceState&, const ByteBuffer& a) {
        return Result<ByteBuffer>(a);
      });
      return executable;
    };
    class_object.AddExecutable(make_executable("v1"));
    std::size_t v2 = class_object.AddExecutable(make_executable("v2"));

    ObjectId instance;
    bool created = false;
    class_object.CreateInstance(testbed.host(1), state_bytes,
                                [&](Result<ObjectId> result) {
                                  if (!result.ok()) std::abort();
                                  instance = *result;
                                  created = true;
                                });
    testbed.simulation().RunWhile([&] { return !created; });

    double seconds = SimSeconds(testbed, [&] {
      bool evolved = false;
      class_object.EvolveInstance(instance, v2, [&](Status status) {
        if (!status.ok()) std::abort();
        evolved = true;
      });
      testbed.simulation().RunWhile([&] { return !evolved; });
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("monolithic, " + HumanBytes(executable_bytes) + " exec, " +
                 HumanBytes(state_bytes) + " state");
}
BENCHMARK(SimTime_EvolveMonolithic)
    ->UseManualTime()
    ->Iterations(2)
    ->Args({5'100'000, 1 << 20})   // the paper's typical implementation
    ->Args({550'000, 1 << 20})
    ->Args({5'100'000, 16 << 20});

// Row 5: the client-visible penalty after each kind of evolution.
void SimTime_PostEvolutionClientCall(benchmark::State& state) {
  bool monolithic = state.range(0) != 0;
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    double seconds = 0;
    if (monolithic) {
      ClassObject class_object("legacy", testbed.host(0),
                               &testbed.transport(), &testbed.agent());
      Executable e1;
      e1.name = "v1";
      e1.bytes = 550'000;
      e1.methods.Add("grid_fn0", [](InstanceState&, const ByteBuffer& a) {
        return Result<ByteBuffer>(a);
      });
      Executable e2 = e1;
      e2.name = "v2";
      class_object.AddExecutable(std::move(e1));
      std::size_t v2 = class_object.AddExecutable(std::move(e2));
      ObjectId instance;
      bool created = false;
      class_object.CreateInstance(testbed.host(1), 0,
                                  [&](Result<ObjectId> result) {
                                    instance = *result;
                                    created = true;
                                  });
      testbed.simulation().RunWhile([&] { return !created; });
      auto client = testbed.MakeClient(2);
      if (!client->InvokeBlocking(instance, "grid_fn0").ok()) std::abort();
      bool evolved = false;
      class_object.EvolveInstance(instance, v2,
                                  [&](Status) { evolved = true; });
      testbed.simulation().RunWhile([&] { return !evolved; });
      seconds = SimSeconds(testbed, [&] {
        if (!client->InvokeBlocking(instance, "grid_fn0").ok()) std::abort();
      });
    } else {
      auto grid = MakeFunctionGrid(testbed, "grid", 10, 1);
      auto manager = MakeManagerWithVersion(testbed, "svc", grid,
                                            MakeSingleVersionExplicit());
      ObjectId instance =
          CreateInstanceBlocking(testbed, *manager, testbed.host(1));
      auto client = testbed.MakeClient(2);
      if (!client->InvokeBlocking(instance, "grid_fn0").ok()) std::abort();
      VersionId child = *manager->DeriveVersion(manager->current_version());
      if (!manager->MarkInstantiable(child).ok()) std::abort();
      if (!manager->SetCurrentVersion(child).ok()) std::abort();
      EvolveBlocking(testbed, *manager, instance, child);
      seconds = SimSeconds(testbed, [&] {
        if (!client->InvokeBlocking(instance, "grid_fn0").ok()) std::abort();
      });
    }
    state.SetIterationTime(std::max(seconds, 1e-9));
  }
  state.SetLabel(monolithic
                     ? "first client call after monolithic evolution (stale)"
                     : "first client call after DCDO evolution (binding kept)");
}
BENCHMARK(SimTime_PostEvolutionClientCall)
    ->UseManualTime()
    ->Iterations(2)
    ->Arg(0)
    ->Arg(1);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
