// E7 (ablation) — Update-policy scaling (paper Sections 3.4-3.5).
//
// The paper argues the proactive strategy "does not scale well with the
// number of DCDOs managed by a particular DCDO Manager; creating a new
// current version can become expensive", while lazy strategies amortize the
// cost across subsequent calls. This bench quantifies that trade-off on the
// simulated testbed:
//
//   * SetCurrentVersion cost under proactive vs. explicit/lazy managers as
//     the instance count grows;
//   * total time for the population to converge to the new version;
//   * the per-call tax of the strict every-call lazy variant.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dcdo::bench {
namespace {

struct FleetScenario {
  Testbed testbed;
  std::unique_ptr<DcdoManager> manager;
  std::vector<ObjectId> instances;
  VersionId v1;

  FleetScenario(std::size_t fleet, std::unique_ptr<EvolutionPolicy> policy)
      : testbed(MakeOptions()) {
    auto grid = MakeFunctionGrid(testbed, "grid", 20, 2);
    manager = MakeManagerWithVersion(testbed, "fleet", grid,
                                     std::move(policy));
    v1 = manager->current_version();
    for (std::size_t i = 0; i < fleet; ++i) {
      instances.push_back(CreateInstanceBlocking(
          testbed, *manager, testbed.host(1 + (i % 15))));
    }
  }

  static Testbed::Options MakeOptions() {
    Testbed::Options options;
    options.checking = false;
    options.host_count = 16;
    return options;
  }

  VersionId PushNewVersion() {
    VersionId child = *manager->DeriveVersion(v1);
    if (!manager->MarkInstantiable(child).ok()) std::abort();
    if (!manager->SetCurrentVersion(child).ok()) std::abort();
    return child;
  }

  bool AllAt(const VersionId& version) {
    for (const ObjectId& instance : instances) {
      if (manager->InstanceVersion(instance).value_or(VersionId()) !=
          version) {
        return false;
      }
    }
    return true;
  }
};

// Time from SetCurrentVersion until every instance reflects the new version,
// under the proactive policy (the push happens inside SetCurrentVersion).
void SimTime_ProactiveConvergence(benchmark::State& state) {
  std::size_t fleet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FleetScenario scenario(fleet, MakeSingleVersionProactive());
    double seconds = SimSeconds(scenario.testbed, [&] {
      VersionId child = scenario.PushNewVersion();
      scenario.testbed.simulation().Run();
      if (!scenario.AllAt(child)) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("proactive, " + std::to_string(fleet) + " instances");
}
BENCHMARK(SimTime_ProactiveConvergence)
    ->UseManualTime()
    ->Iterations(2)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

// Under explicit/lazy policies, SetCurrentVersion itself is O(1): the cost
// moves to the update path.
void SimTime_ExplicitDesignationCost(benchmark::State& state) {
  std::size_t fleet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FleetScenario scenario(fleet, MakeSingleVersionExplicit());
    double seconds = SimSeconds(scenario.testbed, [&] {
      (void)scenario.PushNewVersion();
      scenario.testbed.simulation().Run();
    });
    state.SetIterationTime(std::max(seconds, 1e-9));
  }
  state.SetLabel("explicit, " + std::to_string(fleet) +
                 " instances (no push)");
}
BENCHMARK(SimTime_ExplicitDesignationCost)
    ->UseManualTime()
    ->Iterations(2)
    ->Arg(16)
    ->Arg(256);

// Lazy-every-call converges as instances are touched; measure driving one
// call to each instance after the version bump.
void SimTime_LazyConvergenceViaCalls(benchmark::State& state) {
  std::size_t fleet = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    FleetScenario scenario(fleet, MakeSingleVersionLazyEveryCall());
    VersionId child = scenario.PushNewVersion();
    double seconds = SimSeconds(scenario.testbed, [&] {
      for (const ObjectId& instance : scenario.instances) {
        Dcdo* object = scenario.manager->FindInstance(instance);
        (void)object->Call("grid_fn0", ByteBuffer{});
      }
      scenario.testbed.simulation().Run();
      if (!scenario.AllAt(child)) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("lazy-every-call, " + std::to_string(fleet) +
                 " instances (converges on first touch)");
}
BENCHMARK(SimTime_LazyConvergenceViaCalls)
    ->UseManualTime()
    ->Iterations(2)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

// The steady-state per-call tax of each lazy variant when NO update is
// pending (the price of checking).
void SimTime_LazySteadyStateCallTax(benchmark::State& state) {
  int variant = static_cast<int>(state.range(0));
  std::unique_ptr<EvolutionPolicy> policy;
  const char* label = "";
  switch (variant) {
    case 0:
      policy = MakeSingleVersionExplicit();
      label = "no lazy check";
      break;
    case 1:
      policy = MakeSingleVersionLazyEveryCall();
      label = "check every call";
      break;
    case 2:
      policy = MakeSingleVersionLazyEveryK(100);
      label = "check every 100 calls";
      break;
  }
  FleetScenario scenario(1, std::move(policy));
  Dcdo* object = scenario.manager->FindInstance(scenario.instances[0]);
  for (auto _ : state) {
    double seconds = SimSeconds(scenario.testbed, [&] {
      for (int i = 0; i < 100; ++i) {
        (void)object->Call("grid_fn0", ByteBuffer{});
      }
    });
    state.SetIterationTime(seconds / 100.0);
  }
  state.SetLabel(label);
}
BENCHMARK(SimTime_LazySteadyStateCallTax)
    ->UseManualTime()
    ->Iterations(4)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// Manager load: binding-agent lookups + lazy checks + pushes per policy,
// reported as counters for one version bump over a 64-instance fleet.
void SimTime_PolicyManagerLoad(benchmark::State& state) {
  int variant = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::unique_ptr<EvolutionPolicy> policy;
    switch (variant) {
      case 0: policy = MakeSingleVersionProactive(); break;
      case 1: policy = MakeSingleVersionExplicit(); break;
      default: policy = MakeSingleVersionLazyEveryCall(); break;
    }
    FleetScenario scenario(64, std::move(policy));
    VersionId child = scenario.PushNewVersion();
    double seconds = SimSeconds(scenario.testbed, [&] {
      // Touch every instance once, then explicitly update (a no-op where
      // the policy already converged it).
      for (const ObjectId& instance : scenario.instances) {
        (void)scenario.manager->FindInstance(instance)->Call("grid_fn0",
                                                             ByteBuffer{});
        bool done = false;
        scenario.manager->UpdateInstance(instance,
                                         [&](Status) { done = true; });
        scenario.testbed.simulation().RunWhile([&] { return !done; });
      }
      scenario.testbed.simulation().Run();
    });
    if (!scenario.AllAt(child)) std::abort();
    state.SetIterationTime(std::max(seconds, 1e-9));
    state.counters["pushed"] =
        static_cast<double>(scenario.manager->updates_pushed());
    state.counters["lazy_checks"] =
        static_cast<double>(scenario.manager->lazy_checks());
    state.counters["lazy_updates"] =
        static_cast<double>(scenario.manager->lazy_updates());
  }
  const char* kLabels[] = {"proactive", "explicit", "lazy-every-call"};
  state.SetLabel(std::string(kLabels[variant]) + ", 64 instances");
}
BENCHMARK(SimTime_PolicyManagerLoad)
    ->UseManualTime()
    ->Iterations(1)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
