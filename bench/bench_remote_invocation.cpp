// E2 — Remote method invocation (paper Section 4, "Overhead").
//
// Paper claims reproduced here:
//   * remote invocations of DCDO dynamic functions take no longer than calls
//     on normal Legion objects (the 10-15 us DFM hop is a small fraction of
//     a full RMI), and
//   * the roundtrip time is independent of the number of functions and
//     components in the DCDO's implementation.
//
// All numbers are simulated milliseconds (manual time).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rpc/client.h"
#include "runtime/class_object.h"

namespace dcdo::bench {
namespace {

void SimTime_RemoteCallNormalObject(benchmark::State& state) {
  Testbed testbed{BenchOptions()};
  ClassObject class_object("legacy", testbed.host(0), &testbed.transport(),
                           &testbed.agent());
  Executable executable;
  executable.name = "legacy-v1";
  executable.bytes = 550'000;
  executable.methods.Add("grid_fn0", [](InstanceState&, const ByteBuffer& args) {
    return Result<ByteBuffer>(args);
  });
  class_object.AddExecutable(std::move(executable));
  ObjectId instance;
  bool created = false;
  class_object.CreateInstance(testbed.host(1), 0, [&](Result<ObjectId> r) {
    if (!r.ok()) std::abort();
    instance = *r;
    created = true;
  });
  testbed.simulation().RunWhile([&] { return !created; });

  auto client = testbed.MakeClient(2);
  ByteBuffer args = ByteBuffer::FromString("x");
  for (auto _ : state) {
    double seconds = SimSeconds(testbed, [&] {
      if (!client->InvokeBlocking(instance, "grid_fn0", args).ok()) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("normal Legion object");
}
BENCHMARK(SimTime_RemoteCallNormalObject)->UseManualTime()->Iterations(64);

void SimTime_RemoteCallDcdo(benchmark::State& state) {
  Testbed testbed{BenchOptions()};
  auto grid = MakeFunctionGrid(testbed, "grid",
                               static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)));
  auto manager = MakeManagerWithVersion(testbed, "bench", grid,
                                        MakeSingleVersionExplicit());
  ObjectId instance =
      CreateInstanceBlocking(testbed, *manager, testbed.host(1));

  auto client = testbed.MakeClient(2);
  ByteBuffer args = ByteBuffer::FromString("x");
  for (auto _ : state) {
    double seconds = SimSeconds(testbed, [&] {
      if (!client->InvokeBlocking(instance, "grid_fn0", args).ok()) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("DCDO " + std::to_string(state.range(0)) + " fns / " +
                 std::to_string(state.range(1)) + " comps");
}
BENCHMARK(SimTime_RemoteCallDcdo)
    ->UseManualTime()
    ->Iterations(64)
    ->Args({10, 1})
    ->Args({100, 10})
    ->Args({500, 50});

// Payload-size sweep: the roundtrip is dominated by latency + marshaling,
// identically for both object kinds.
void SimTime_RemoteCallDcdoPayload(benchmark::State& state) {
  Testbed testbed{BenchOptions()};
  auto grid = MakeFunctionGrid(testbed, "grid", 10, 1);
  auto manager = MakeManagerWithVersion(testbed, "bench", grid,
                                        MakeSingleVersionExplicit());
  ObjectId instance =
      CreateInstanceBlocking(testbed, *manager, testbed.host(1));
  auto client = testbed.MakeClient(2);
  ByteBuffer args = ByteBuffer::Opaque(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    double seconds = SimSeconds(testbed, [&] {
      if (!client->InvokeBlocking(instance, "grid_fn0", args).ok()) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(state.range(0)) + "B payload");
}
BENCHMARK(SimTime_RemoteCallDcdoPayload)
    ->UseManualTime()
    ->Iterations(16)
    ->Arg(64)
    ->Arg(4096)
    ->Arg(65536);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
