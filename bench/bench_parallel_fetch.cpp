// E13 — Parallel component acquisition (fetch-concurrency sweep).
//
// The paper's ~10 s DCDO creation (500 fns / 50 components) is the cost of
// 50 strictly sequential ICO fetch sessions. This bench sweeps
// CostModel::fetch_concurrency over {1, 4, 8, 16} on the two workloads the
// pipeline accelerates:
//
//   * SimTime_E13_CreateDcdo — cold-cache creation of the paper's
//     configuration. Concurrency 1 must reproduce the sequential figure
//     exactly (it shares the byte-identical legacy path); higher values
//     overlap the per-component session overhead and fair-share the wire,
//     so the speedup saturates near
//       total_seq / max(overhead, sum(stream)) — setup-overhead-bounded,
//     not 50x.
//   * SimTime_E13_CoordinatedEvolution — a coordinator batch over several
//     types, where PrefetchInstanceVersion overlaps every step's downloads
//     ahead of the strictly ordered apply phase.
//
// The concurrency value is the LAST bench argument, so the bench-compare
// drift allowlist can exempt the opted-in parallel entries while holding
// the concurrency-1 entries to the zero-drift gate.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/coordinator.h"

namespace dcdo::bench {
namespace {

Testbed::Options ParallelOptions(int fetch_concurrency) {
  Testbed::Options options = BenchOptions();
  options.cost_model.fetch_concurrency = fetch_concurrency;
  return options;
}

void SimTime_E13_CreateDcdo(benchmark::State& state) {
  std::size_t functions = static_cast<std::size_t>(state.range(0));
  std::size_t components = static_cast<std::size_t>(state.range(1));
  int concurrency = static_cast<int>(state.range(2));
  for (auto _ : state) {
    Testbed testbed{ParallelOptions(concurrency)};  // cold caches
    auto grid = MakeFunctionGrid(testbed, "grid", functions, components);
    auto manager = MakeManagerWithVersion(testbed, "bench", grid,
                                          MakeSingleVersionExplicit());
    double seconds = SimSeconds(testbed, [&] {
      (void)CreateInstanceBlocking(testbed, *manager, testbed.host(1));
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(functions) + " fns / " +
                 std::to_string(components) + " comps, concurrency " +
                 std::to_string(concurrency));
}
BENCHMARK(SimTime_E13_CreateDcdo)
    ->UseManualTime()
    ->Iterations(3)
    ->Args({500, 50, 1})   // must equal SimTime_CreateDcdo/500/50/0
    ->Args({500, 50, 4})
    ->Args({500, 50, 8})
    ->Args({500, 50, 16});

// A coordinator batch over `types` object types, each evolving one instance
// from a 10-component v1 to a v2 that adds 10 more components. With
// concurrency > 1 the coordinator prefetches every step's additions before
// the serial apply phase, so the batch's downloads all overlap.
void SimTime_E13_CoordinatedEvolution(benchmark::State& state) {
  std::size_t types = static_cast<std::size_t>(state.range(0));
  int concurrency = static_cast<int>(state.range(1));
  constexpr std::size_t kBaseComponents = 10;
  constexpr std::size_t kAddedComponents = 10;
  constexpr std::size_t kFunctions = 100;
  for (auto _ : state) {
    Testbed testbed{ParallelOptions(concurrency)};
    std::vector<std::unique_ptr<DcdoManager>> managers;
    std::vector<UpdateCoordinator::Step> steps;
    for (std::size_t t = 0; t < types; ++t) {
      std::string type_name = "type" + std::to_string(t);
      auto v1_grid = MakeFunctionGrid(testbed, type_name + "v1", kFunctions,
                                      kBaseComponents);
      auto v2_grid = MakeFunctionGrid(testbed, type_name + "v2", kFunctions,
                                      kAddedComponents);
      auto manager = MakeManagerWithVersion(testbed, type_name, v1_grid,
                                            MakeMultiVersionIncreasing());
      for (const ImplementationComponent& comp : v2_grid) {
        if (!manager->PublishComponent(comp).ok()) std::abort();
      }
      VersionId v1 = manager->current_version();
      VersionId v2 = *manager->DeriveVersion(v1);
      DfmDescriptor* d2 = *manager->MutableDescriptor(v2);
      for (const ImplementationComponent& comp : v2_grid) {
        if (!d2->IncorporateComponent(comp).ok()) std::abort();
        for (const FunctionImplDescriptor& fn : comp.functions) {
          if (!d2->EnableFunction(fn.function.name, comp.id).ok()) {
            std::abort();
          }
        }
      }
      if (!manager->MarkInstantiable(v2).ok()) std::abort();
      // All instances co-hosted: the batch's fetch streams contend for one
      // NIC, which is exactly what the fair-share model must price in.
      ObjectId instance =
          CreateInstanceBlocking(testbed, *manager, testbed.host(1));
      steps.push_back({manager.get(), instance, v2});
      managers.push_back(std::move(manager));
    }
    UpdateCoordinator coordinator;
    double seconds = SimSeconds(testbed, [&] {
      bool done = false;
      coordinator.Execute(std::move(steps),
                          [&](UpdateCoordinator::Outcome outcome) {
                            if (!outcome.ok()) std::abort();
                            done = true;
                          });
      testbed.simulation().RunWhile([&] { return !done; });
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(types) + " types x +" +
                 std::to_string(kAddedComponents) + " comps, concurrency " +
                 std::to_string(concurrency));
}
BENCHMARK(SimTime_E13_CoordinatedEvolution)
    ->UseManualTime()
    ->Iterations(3)
    ->Args({4, 1})
    ->Args({4, 4})
    ->Args({4, 8})
    ->Args({4, 16});

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
