// E4 — Implementation download times (paper Section 4, "Cost").
//
// Paper claims reproduced here:
//   * a 5.1 MB object implementation (typical for moderately sized Legion
//     objects) downloads in 15-25 s;
//   * a 550 KB implementation downloads in about 4 s.
//
// The sweep also characterizes the transfer-size curve (session setup +
// goodput-limited streaming) that the evolution benches build on.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "common/strings.h"
#include "component/ico.h"

namespace dcdo::bench {
namespace {

// Executable download via the class-object path (host file store).
void SimTime_ExecutableDownload(benchmark::State& state) {
  std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    double seconds = SimSeconds(testbed, [&] {
      bool done = false;
      testbed.network().BulkTransfer(testbed.host(0)->node(),
                                     testbed.host(1)->node(), bytes,
                                     [&] { done = true; });
      testbed.simulation().RunWhile([&] { return !done; });
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(HumanBytes(bytes));
}
BENCHMARK(SimTime_ExecutableDownload)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(100'000)
    ->Arg(550'000)     // paper: ~4 s
    ->Arg(1'000'000)
    ->Arg(2'500'000)
    ->Arg(5'100'000)   // paper: 15-25 s
    ->Arg(10'000'000);

// Component download via the ICO fetch path (ends in the component cache).
void SimTime_ComponentFetch(benchmark::State& state) {
  std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    auto comp = ComponentBuilder("blob")
                    .SetCodeBytes(bytes)
                    .AddFunction("f", "v()", "blob/f")
                    .Build();
    if (!comp.ok()) std::abort();
    testbed.registry().Register("blob/f", ImplementationType::Portable(),
                                [](CallContext&, const ByteBuffer&) {
                                  return Result<ByteBuffer>(ByteBuffer{});
                                });
    ImplementationComponentObject ico(testbed.host(0), &testbed.transport(),
                                      &testbed.agent(), *comp);
    double seconds = SimSeconds(testbed, [&] {
      bool done = false;
      ico.FetchTo(testbed.host(1), [&](Status status) {
        if (!status.ok()) std::abort();
        done = true;
      });
      testbed.simulation().RunWhile([&] { return !done; });
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("component " + HumanBytes(bytes));
}
BENCHMARK(SimTime_ComponentFetch)
    ->UseManualTime()
    ->Iterations(3)
    ->Arg(100'000)
    ->Arg(550'000)
    ->Arg(5'100'000);

// The cached path for contrast: ~free (the paper's 200 us applies at
// incorporate time, not fetch time).
void SimTime_ComponentFetchCached(benchmark::State& state) {
  Testbed testbed{BenchOptions()};
  auto comp = ComponentBuilder("blob")
                  .SetCodeBytes(550'000)
                  .AddFunction("f", "v()", "blob/f")
                  .Build();
  if (!comp.ok()) std::abort();
  testbed.registry().Register("blob/f", ImplementationType::Portable(),
                              [](CallContext&, const ByteBuffer&) {
                                return Result<ByteBuffer>(ByteBuffer{});
                              });
  ImplementationComponentObject ico(testbed.host(0), &testbed.transport(),
                                    &testbed.agent(), *comp);
  testbed.host(1)->CacheComponent(comp->id, comp->code_bytes);
  for (auto _ : state) {
    double seconds = SimSeconds(testbed, [&] {
      bool done = false;
      ico.FetchTo(testbed.host(1), [&](Status) { done = true; });
      testbed.simulation().RunWhile([&] { return !done; });
    });
    state.SetIterationTime(std::max(seconds, 1e-9));
  }
  state.SetLabel("component 550 KB, already cached");
}
BENCHMARK(SimTime_ComponentFetchCached)->UseManualTime()->Iterations(3);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
