// E16 — Heavy-traffic open loop: sessions, flow control, and adaptive
// formation under load (DESIGN.md §15, EXPERIMENTS.md E16).
//
// Closed-loop benches (E2, E11) re-issue a call only after the previous one
// answers, so they can never observe queueing: offered load self-throttles
// to the service rate. This experiment drives an *open loop* — Poisson
// arrivals fire on a fixed schedule whether or not earlier calls have
// returned — which is where admission control earns its keep. Each scenario
// reports the simulated makespan plus p50/p99 call latency taken from a
// log2-bucket histogram over per-call (reply - invoke) sim time, so the
// latency distribution, not just the mean, lands in BENCH_dcdo.json.
//
// Scenarios:
//   OpenLoopLegacy    — session_slots=0, batching off: the PR 4 dedup-window
//                       configuration. Zero-drift gated (no allowlist entry):
//                       sessions and formation are opt-in, so this number
//                       moving means the default path changed.
//   OpenLoopSessions  — session_slots=4: client-side slot admission queues
//                       the overflow (rpc.backpressure) instead of landing it
//                       on the server; p99 trades against bounded in-flight.
//   OpenLoopFormation — sessions + send_batch_window + formation_policy:
//                       kCoalesce traffic rides the 1 ms window, kUrgent
//                       config-plane calls (dcdo.*) flush inline.
//   SlowServer        — service time exceeds invocation_timeout: every call's
//                       retry lands while the body is parked; exactly-once
//                       must hold (the bench aborts if any body re-runs).
//   Incast            — 12 clients converge on one endpoint at t ~= 0;
//                       sessions cap concurrent server work at clients*slots.
//   RetryStorm        — bodies run, then the link partitions before replies
//                       escape; the heal-time retry is answered from session
//                       slots without re-execution.
//
// All numbers are SimTime_*: deterministic simulated seconds (manual-time
// mode), bit-stable on a given host. Arrival schedules derive from Mix64
// integer hashing (bench_naming_scale idiom), not library RNG state, so the
// schedule is identical across standard-library versions too. Smoke mode
// (DCDO_BENCH_SMOKE) shrinks call counts but keeps every code path.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "rpc/client.h"
#include "trace/metrics.h"

namespace dcdo::bench {
namespace {

bool Smoke() { return std::getenv("DCDO_BENCH_SMOKE") != nullptr; }

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform (0, 1] from an integer hash — same construction as E14's load
// generator, so arrival schedules are reproducible bit for bit.
double UnitUniform(std::uint64_t seed) {
  return (static_cast<double>(Mix64(seed) >> 11) + 1.0) / 9007199254740993.0;
}

// Poisson process: exponential inter-arrival gaps via inverse transform.
// Stream `stream` decorrelates the per-client schedules.
std::vector<sim::SimDuration> PoissonArrivals(int count, double mean_gap_us,
                                              std::uint64_t stream) {
  std::vector<sim::SimDuration> out;
  out.reserve(static_cast<std::size_t>(count));
  double at_us = 0.0;
  for (int i = 0; i < count; ++i) {
    at_us += -mean_gap_us *
             std::log(UnitUniform(stream * 0x10001ull + static_cast<std::uint64_t>(i)));
    out.push_back(sim::SimDuration::Micros(static_cast<std::int64_t>(at_us)));
  }
  return out;
}

// One open-loop endpoint: a raw transport handler (no object layer) so the
// scenario controls service time exactly. Bodies are counted per call tag —
// the whole PR exists to keep that count at one, so the rig aborts on any
// re-execution rather than publishing a corrupted number.
struct OpenLoopRig {
  OpenLoopRig(const Testbed::Options& options, int client_count,
              sim::SimDuration service)
      : testbed{options} {
    const ObjectAddress address{1, 90, 1};
    testbed.transport().RegisterEndpoint(
        address.node, address.pid, address.epoch,
        [this, service](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
          ++executions[inv.args().ToString()];
          if (executions[inv.args().ToString()] > 1) std::abort();
          ++in_flight;
          max_in_flight = std::max(max_in_flight, in_flight);
          testbed.simulation().Schedule(
              service, [this, reply = std::move(reply)]() mutable {
                --in_flight;
                reply(rpc::MethodResult::Ok(ByteBuffer::FromString("ok")));
              });
        });
    target = ObjectId::Next(domains::kInstance);
    testbed.agent().Bind(target, address);
    clients.reserve(static_cast<std::size_t>(client_count));
    for (int c = 0; c < client_count; ++c) {
      // Server is node 1; clients start at host 2 so every call crosses the
      // simulated wire (loopback would skip the formation path entirely).
      clients.push_back(testbed.MakeClient(2 + static_cast<std::size_t>(c)));
    }
  }

  // Schedules one Invoke per arrival (one event per call — the parallel
  // composition contract, DESIGN.md §15.4, and also what a real open-loop
  // driver looks like), runs to completion, and returns simulated seconds.
  double Run(const std::vector<std::vector<sim::SimDuration>>& schedule,
             trace::Histogram& latency, const char* method = "work") {
    std::size_t expected = 0;
    for (std::size_t c = 0; c < schedule.size(); ++c) {
      for (std::size_t i = 0; i < schedule[c].size(); ++i, ++expected) {
        testbed.simulation().Schedule(schedule[c][i], [this, &latency, c, i,
                                                       method]() {
          const sim::SimTime started = testbed.simulation().Now();
          const std::string tag =
              "c" + std::to_string(c) + ".i" + std::to_string(i);
          clients[c]->Invoke(target, method, ByteBuffer::FromString(tag),
                             [this, &latency, started](Result<ByteBuffer> r) {
                               if (!r.ok()) std::abort();
                               latency.Record(testbed.simulation().Now() -
                                              started);
                               ++replies;
                             });
        });
      }
    }
    const double seconds = SimSeconds(testbed, [&] { testbed.RunAll(); });
    if (replies != expected) std::abort();
    return seconds;
  }

  std::uint64_t BackpressureWaits() const {
    std::uint64_t total = 0;
    for (const auto& client : clients) total += client->backpressure_waits();
    return total;
  }

  Testbed testbed;
  ObjectId target;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  std::map<std::string, int> executions;
  std::size_t replies = 0;
  int in_flight = 0;
  int max_in_flight = 0;
};

void ReportLatency(benchmark::State& state, const trace::Histogram& latency) {
  state.counters["p50_ms"] = benchmark::Counter(
      static_cast<double>(latency.ValueAtPercentile(50.0)) / 1e6);
  state.counters["p99_ms"] = benchmark::Counter(
      static_cast<double>(latency.ValueAtPercentile(99.0)) / 1e6);
  state.counters["calls"] =
      benchmark::Counter(static_cast<double>(latency.count()));
}

// --- The saturated open loop (Legacy / Sessions / Formation) ---------------
// A thousand clients (each on its own simulated host), Poisson arrivals at
// ~2x each client's slot capacity: mean gap 500 us against ~2 ms of service
// + wire time, so sessioned runs queue at the client while the legacy run
// piles everything onto the server at once.

constexpr double kOpenLoopGapMicros = 500.0;

int OpenLoopCalls() { return Smoke() ? 6 : 8; }
int OpenLoopClients() { return Smoke() ? 8 : 1000; }

std::vector<std::vector<sim::SimDuration>> OpenLoopSchedule() {
  std::vector<std::vector<sim::SimDuration>> schedule;
  schedule.reserve(static_cast<std::size_t>(OpenLoopClients()));
  for (int c = 0; c < OpenLoopClients(); ++c) {
    schedule.push_back(PoissonArrivals(OpenLoopCalls(), kOpenLoopGapMicros,
                                       0xE16 + static_cast<std::uint64_t>(c)));
  }
  return schedule;
}

void RunOpenLoopScenario(benchmark::State& state, Testbed::Options options,
                         const char* method = "work") {
  options.host_count = OpenLoopClients() + 2;
  const auto schedule = OpenLoopSchedule();
  trace::Histogram latency;
  std::uint64_t backpressure = 0;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  for (auto _ : state) {
    // Fresh rig per iteration: every iteration replays the identical
    // schedule from t=0, so the reported time is the same number repeated.
    OpenLoopRig rig(options, OpenLoopClients(), sim::SimDuration::Millis(2));
    state.SetIterationTime(rig.Run(schedule, latency, method));
    backpressure = rig.BackpressureWaits();
    batches = rig.testbed.network().batches_sent();
    coalesced = rig.testbed.network().messages_coalesced();
  }
  ReportLatency(state, latency);
  state.counters["backpressure"] =
      benchmark::Counter(static_cast<double>(backpressure));
  state.counters["batches_sent"] =
      benchmark::Counter(static_cast<double>(batches));
  state.counters["coalesced"] =
      benchmark::Counter(static_cast<double>(coalesced));
}

// The PR 4 default: dedup window, no admission, no batching. Gated for zero
// drift — this is the configuration every pre-session deployment runs.
void SimTime_E16_OpenLoopLegacy(benchmark::State& state) {
  RunOpenLoopScenario(state, BenchOptions());
}
BENCHMARK(SimTime_E16_OpenLoopLegacy)->UseManualTime()->Iterations(4);

void SimTime_E16_OpenLoopSessions(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 4;
  RunOpenLoopScenario(state, options);
}
BENCHMARK(SimTime_E16_OpenLoopSessions)->UseManualTime()->Iterations(4);

void SimTime_E16_OpenLoopFormation(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 4;
  options.cost_model.send_batch_window = sim::SimDuration::Millis(1);
  options.cost_model.formation_policy = true;
  RunOpenLoopScenario(state, options);
}
BENCHMARK(SimTime_E16_OpenLoopFormation)->UseManualTime()->Iterations(4);

// Formation with the urgent class exercised: the same open loop issued as
// config-plane calls ("dcdo." prefix), which kUrgent flushes inline — the
// makespan shows what the 1 ms window costs when policy does NOT hold the
// traffic back.
void SimTime_E16_OpenLoopFormationUrgent(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 4;
  options.cost_model.send_batch_window = sim::SimDuration::Millis(1);
  options.cost_model.formation_policy = true;
  RunOpenLoopScenario(state, options, "dcdo.poke");
}
BENCHMARK(SimTime_E16_OpenLoopFormationUrgent)->UseManualTime()->Iterations(4);

// --- SlowServer: service time > invocation_timeout -------------------------
// Every call's first retry fires while the body is still parked; the
// duplicate must be absorbed by the slot (or window) without a re-execution,
// and the makespan is dominated by the 12 s service, not by retry storms.
void SimTime_E16_SlowServer(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 2;
  const int clients = Smoke() ? 2 : 8;
  const int calls = 3;  // > slots: the third call waits for admission
  std::vector<std::vector<sim::SimDuration>> schedule;
  for (int c = 0; c < clients; ++c) {
    schedule.push_back(PoissonArrivals(calls, 1000.0,
                                       0x516 + static_cast<std::uint64_t>(c)));
  }
  trace::Histogram latency;
  std::uint64_t session_hits = 0;
  std::uint64_t backpressure = 0;
  for (auto _ : state) {
    OpenLoopRig rig(options, clients, sim::SimDuration::Seconds(12.0));
    state.SetIterationTime(rig.Run(schedule, latency));
    session_hits = rig.testbed.transport().session_hits();
    backpressure = rig.BackpressureWaits();
  }
  ReportLatency(state, latency);
  state.counters["session_hits"] =
      benchmark::Counter(static_cast<double>(session_hits));
  state.counters["backpressure"] =
      benchmark::Counter(static_cast<double>(backpressure));
}
BENCHMARK(SimTime_E16_SlowServer)->UseManualTime()->Iterations(4);

// --- Incast: everyone at once ----------------------------------------------
// 12 clients, 6 calls each, all arriving inside ~1 ms. Sessions bound the
// server's concurrent bodies at clients x slots; the counter proves it.
void SimTime_E16_Incast(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 2;
  const int clients = Smoke() ? 4 : 12;
  const int calls = Smoke() ? 3 : 6;
  std::vector<std::vector<sim::SimDuration>> schedule;
  for (int c = 0; c < clients; ++c) {
    std::vector<sim::SimDuration> mine;
    for (int i = 0; i < calls; ++i) {
      // Sub-millisecond jitter only: the point is simultaneity.
      mine.push_back(sim::SimDuration::Micros(static_cast<std::int64_t>(
          Mix64(0x1C + static_cast<std::uint64_t>(c * 16 + i)) % 1000)));
    }
    std::sort(mine.begin(), mine.end());
    schedule.push_back(std::move(mine));
  }
  trace::Histogram latency;
  int max_in_flight = 0;
  std::uint64_t backpressure = 0;
  for (auto _ : state) {
    OpenLoopRig rig(options, clients, sim::SimDuration::Seconds(1.0));
    state.SetIterationTime(rig.Run(schedule, latency));
    max_in_flight = rig.max_in_flight;
    backpressure = rig.BackpressureWaits();
  }
  if (max_in_flight > clients * options.cost_model.session_slots) std::abort();
  ReportLatency(state, latency);
  state.counters["max_in_flight"] =
      benchmark::Counter(static_cast<double>(max_in_flight));
  state.counters["backpressure"] =
      benchmark::Counter(static_cast<double>(backpressure));
}
BENCHMARK(SimTime_E16_Incast)->UseManualTime()->Iterations(4);

// --- RetryStorm: partition eats the replies --------------------------------
// Bodies execute on attempt #1; the link drops before any reply escapes and
// stays down across most of the retry schedule. The heal-time retry must be
// answered from the cached slot reply — session_hits counts the replays, and
// the rig aborts if a body ever re-runs.
void SimTime_E16_RetryStorm(benchmark::State& state) {
  Testbed::Options options = BenchOptions();
  options.cost_model.session_slots = 2;
  const int clients = Smoke() ? 2 : 6;
  std::vector<std::vector<sim::SimDuration>> schedule;
  for (int c = 0; c < clients; ++c) {
    schedule.push_back({sim::SimDuration::Micros(static_cast<std::int64_t>(
        Mix64(0x57 + static_cast<std::uint64_t>(c)) % 200))});
  }
  trace::Histogram latency;
  std::uint64_t session_hits = 0;
  for (auto _ : state) {
    // Replies park 2 s; the partition closes at 0.5 s and heals at 45 s, so
    // every reply and every in-between retry is lost (same shape as the
    // tier-1 RetryStorm overload test, at bench scale).
    OpenLoopRig rig(options, clients, sim::SimDuration::Seconds(2.0));
    for (int c = 0; c < clients; ++c) {
      const sim::NodeId client_node =
          rig.testbed.host(2 + static_cast<std::size_t>(c))->node();
      rig.testbed.simulation().Schedule(
          sim::SimDuration::Seconds(0.5), [&rig, client_node]() {
            rig.testbed.network().SetPartitioned(client_node, 1, true);
          });
      rig.testbed.simulation().Schedule(
          sim::SimDuration::Seconds(45.0), [&rig, client_node]() {
            rig.testbed.network().SetPartitioned(client_node, 1, false);
          });
    }
    state.SetIterationTime(rig.Run(schedule, latency, "storm"));
    session_hits = rig.testbed.transport().session_hits();
  }
  if (session_hits < static_cast<std::uint64_t>(clients)) std::abort();
  ReportLatency(state, latency);
  state.counters["session_hits"] =
      benchmark::Counter(static_cast<double>(session_hits));
}
BENCHMARK(SimTime_E16_RetryStorm)->UseManualTime()->Iterations(4);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
