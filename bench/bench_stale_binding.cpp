// E5 — Stale-binding discovery (paper Section 4, "Cost").
//
// Paper claim reproduced here: "it takes objects approximately 25 to 35
// seconds to realize that a local binding contains a physical address that
// the object is no longer using."
//
// The scenario: a client with a warm binding calls an object that has been
// re-activated elsewhere (the monolithic evolution aftermath). The measured
// time is from the first doomed invocation to the successful reply via the
// refreshed binding. An ablation sweeps the timeout/retry schedule that the
// 25-35 s band is made of.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rpc/client.h"

namespace dcdo::bench {
namespace {

struct StaleScenario {
  Testbed testbed;
  ObjectId target;

  explicit StaleScenario(const sim::CostModel& cost)
      : testbed(MakeOptions(cost)) {
    target = ObjectId::Next(domains::kInstance);
    ServeAt(2, 10, 1);
  }

  static Testbed::Options MakeOptions(const sim::CostModel& cost) {
    Testbed::Options options;
    options.checking = false;
    options.cost_model = cost;
    return options;
  }

  void ServeAt(sim::NodeId node, sim::ProcessId pid, std::uint64_t epoch) {
    testbed.transport().RegisterEndpoint(
        node, pid, epoch,
        [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
          reply(rpc::MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    testbed.agent().Bind(target, ObjectAddress{node, pid, epoch});
  }

  void KillCurrentActivation() { testbed.transport().UnregisterEndpoint(2, 10); }
};

void SimTime_StaleBindingDiscovery(benchmark::State& state) {
  for (auto _ : state) {
    sim::CostModel cost;  // defaults = calibrated schedule
    StaleScenario scenario(cost);
    auto client = scenario.testbed.MakeClient(1);
    if (!client->InvokeBlocking(scenario.target, "warm").ok()) std::abort();

    // The object "evolves": old process dies, new activation elsewhere.
    scenario.KillCurrentActivation();
    scenario.ServeAt(3, 20, 2);

    double seconds = SimSeconds(scenario.testbed, [&] {
      if (!client->InvokeBlocking(scenario.target, "recover").ok()) {
        std::abort();
      }
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("default schedule (10 s timeout x 3 + rebind)");
}
BENCHMARK(SimTime_StaleBindingDiscovery)->UseManualTime()->Iterations(3);

// Ablation: the discovery time is timeout * (1 + retries) + rebind — the
// paper's 25-35 s band is a direct consequence of Legion's schedule.
void SimTime_StaleBindingSchedule(benchmark::State& state) {
  for (auto _ : state) {
    sim::CostModel cost;
    cost.invocation_timeout =
        sim::SimDuration::Seconds(static_cast<double>(state.range(0)));
    cost.stale_retry_count = static_cast<int>(state.range(1));
    StaleScenario scenario(cost);
    auto client = scenario.testbed.MakeClient(1);
    if (!client->InvokeBlocking(scenario.target, "warm").ok()) std::abort();
    scenario.KillCurrentActivation();
    scenario.ServeAt(3, 20, 2);
    double seconds = SimSeconds(scenario.testbed, [&] {
      if (!client->InvokeBlocking(scenario.target, "recover").ok()) {
        std::abort();
      }
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(state.range(0)) + " s timeout, " +
                 std::to_string(state.range(1)) + " retries");
}
BENCHMARK(SimTime_StaleBindingSchedule)
    ->UseManualTime()
    ->Iterations(2)
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({10, 1})
    ->Args({10, 2})   // default: lands in the paper's band
    ->Args({15, 2});

// Contrast: a healthy warm-binding call for scale.
void SimTime_WarmBindingCall(benchmark::State& state) {
  sim::CostModel cost;
  StaleScenario scenario(cost);
  auto client = scenario.testbed.MakeClient(1);
  if (!client->InvokeBlocking(scenario.target, "warm").ok()) std::abort();
  for (auto _ : state) {
    double seconds = SimSeconds(scenario.testbed, [&] {
      if (!client->InvokeBlocking(scenario.target, "again").ok()) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel("healthy binding");
}
BENCHMARK(SimTime_WarmBindingCall)->UseManualTime()->Iterations(16);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
