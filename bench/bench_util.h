// Shared scenario builders for the benchmark harness.
//
// Sim-time benches use google-benchmark's manual-time mode: each iteration
// runs a deterministic discrete-event scenario and reports the *simulated*
// duration as the iteration time, so the numbers printed by the harness are
// directly comparable to the paper's (seconds of Centurion time, not
// nanoseconds of host time). Wall-clock benches (DFM indirection, table
// scaling) use ordinary real-time mode.
// Every bench binary built with DCDO_BENCH_MAIN() also records its results
// into a regression-tracking JSON file (see JsonRecordingReporter below):
// set DCDO_BENCH_JSON=/path/to/BENCH_dcdo.json and entries are merged into
// the "benchmarks" object of that file, one line per benchmark, leaving the
// rest of the document (notes, committed baselines) untouched. scripts/
// bench.sh drives the whole suite this way.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/manager.h"
#include "runtime/class_object.h"
#include "runtime/testbed.h"

namespace dcdo::bench {

// Benches measure the raw runtime: invariant checking stays off so the
// numbers are comparable whether or not the build compiled it in.
inline Testbed::Options BenchOptions() {
  Testbed::Options options;
  options.checking = false;
  return options;
}

// Registers `count` trivial exported functions named <prefix>_fn0.. spread
// evenly over `components` components, and returns the component metas.
// Bodies are registered in `testbed`'s registry.
inline std::vector<ImplementationComponent> MakeFunctionGrid(
    Testbed& testbed, const std::string& prefix, std::size_t count,
    std::size_t components, std::size_t bytes_per_component = 100 * 1024) {
  std::vector<ImplementationComponent> out;
  out.reserve(components);
  std::size_t per = count / components;
  std::size_t extra = count % components;
  std::size_t fn_index = 0;
  for (std::size_t c = 0; c < components; ++c) {
    std::string name = prefix + "-c" + std::to_string(c);
    ComponentBuilder builder(name);
    builder.SetCodeBytes(bytes_per_component);
    std::size_t here = per + (c < extra ? 1 : 0);
    for (std::size_t i = 0; i < here; ++i, ++fn_index) {
      std::string fn = prefix + "_fn" + std::to_string(fn_index);
      std::string symbol = name + "/" + fn;
      testbed.registry().Register(
          symbol, ImplementationType::Portable(),
          [](CallContext&, const ByteBuffer& args) {
            return Result<ByteBuffer>(args);  // identity body
          });
      builder.AddFunction(fn, "b(b)", symbol);
    }
    auto built = builder.Build();
    if (!built.ok()) std::abort();
    out.push_back(*built);
  }
  return out;
}

// A manager whose current version incorporates and enables every function of
// `components` (published as ICOs on the manager's home host; host 0 unless
// `home` says otherwise — E15's fan-out spreads homes across the grid).
inline std::unique_ptr<DcdoManager> MakeManagerWithVersion(
    Testbed& testbed, const std::string& type_name,
    const std::vector<ImplementationComponent>& components,
    std::unique_ptr<EvolutionPolicy> policy, sim::SimHost* home = nullptr) {
  auto manager = std::make_unique<DcdoManager>(
      type_name, home != nullptr ? home : testbed.host(0),
      &testbed.transport(), &testbed.agent(), &testbed.registry(),
      std::move(policy));
  for (const ImplementationComponent& comp : components) {
    if (!manager->PublishComponent(comp).ok()) std::abort();
  }
  VersionId v1 = *manager->CreateRootVersion();
  DfmDescriptor* descriptor = *manager->MutableDescriptor(v1);
  for (const ImplementationComponent& comp : components) {
    if (!descriptor->IncorporateComponent(comp).ok()) std::abort();
    for (const FunctionImplDescriptor& fn : comp.functions) {
      if (!descriptor->EnableFunction(fn.function.name, comp.id).ok()) {
        std::abort();
      }
    }
  }
  if (!manager->MarkInstantiable(v1).ok()) std::abort();
  if (!manager->SetCurrentVersion(v1).ok()) std::abort();
  return manager;
}

// Blocks on an async manager operation, driving the simulation.
inline ObjectId CreateInstanceBlocking(Testbed& testbed, DcdoManager& manager,
                                       sim::SimHost* host) {
  ObjectId out;
  bool done = false;
  manager.CreateInstance(host, [&](Result<ObjectId> result) {
    if (!result.ok()) std::abort();
    out = *result;
    done = true;
  });
  testbed.simulation().RunWhile([&] { return !done; });
  return out;
}

inline void EvolveBlocking(Testbed& testbed, DcdoManager& manager,
                           const ObjectId& instance, const VersionId& version) {
  bool done = false;
  manager.EvolveInstanceTo(instance, version, [&](Status status) {
    if (!status.ok()) std::abort();
    done = true;
  });
  testbed.simulation().RunWhile([&] { return !done; });
}

// Measures the simulated duration of `body`.
inline double SimSeconds(Testbed& testbed, const std::function<void()>& body) {
  sim::SimTime start = testbed.simulation().Now();
  body();
  return (testbed.simulation().Now() - start).ToSeconds();
}

// ===== JSON regression recording =====

namespace detail {

inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

inline std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

// ns per 1 unit of `unit` (benchmark reports adjusted times in `unit`).
inline double NanosPerUnit(::benchmark::TimeUnit unit) {
  return 1e9 / ::benchmark::GetTimeUnitMultiplier(unit);
}

}  // namespace detail

// Prints the usual console table AND records every finished run so the
// numbers land in the regression file. For manual-time sim benches the
// recorded real_ns is *simulated* nanoseconds — directly comparable to the
// paper's absolute figures; for wall benches it is host nanoseconds.
class JsonRecordingReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ::benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      double to_ns = detail::NanosPerUnit(run.time_unit);
      std::ostringstream os;
      os << "{\"real_ns\": "
         << detail::FormatDouble(run.GetAdjustedRealTime() * to_ns)
         << ", \"cpu_ns\": "
         << detail::FormatDouble(run.GetAdjustedCPUTime() * to_ns)
         << ", \"iterations\": " << run.iterations;
      for (const auto& [name, counter] : run.counters) {
        os << ", \"" << detail::JsonEscape(name)
           << "\": " << detail::FormatDouble(counter.value);
      }
      if (!run.report_label.empty()) {
        os << ", \"label\": \"" << detail::JsonEscape(run.report_label)
           << "\"";
      }
      os << "}";
      entries_[run.benchmark_name()] = os.str();
    }
  }

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;  // name -> one-line JSON value
};

// Merges `entries` into the "benchmarks" object of the JSON file at `path`,
// preserving everything outside that object (schema line, committed
// baseline blocks). Entries are one per line, sorted, so diffs stay
// reviewable. Creates the file if absent.
inline void MergeBenchJson(const std::string& path,
                           const std::map<std::string, std::string>& entries) {
  std::vector<std::string> preamble;
  std::vector<std::string> postamble;
  std::map<std::string, std::string> merged;
  std::ifstream in(path);
  if (in) {
    enum class Where { kBefore, kInside, kAfter } where = Where::kBefore;
    std::string line;
    while (std::getline(in, line)) {
      if (where == Where::kBefore) {
        preamble.push_back(line);
        if (line.find("\"benchmarks\": {") != std::string::npos) {
          where = Where::kInside;
        }
      } else if (where == Where::kInside) {
        std::string trimmed = line;
        trimmed.erase(0, trimmed.find_first_not_of(" \t"));
        if (trimmed == "}" || trimmed == "},") {
          postamble.push_back(line);
          where = Where::kAfter;
          continue;
        }
        // An entry line:   "name": {...},
        std::size_t name_end = trimmed.find("\": ");
        if (trimmed.size() > 1 && trimmed[0] == '"' &&
            name_end != std::string::npos) {
          std::string name = trimmed.substr(1, name_end - 1);
          std::string value = trimmed.substr(name_end + 3);
          if (!value.empty() && value.back() == ',') value.pop_back();
          merged[name] = value;
        }
      } else {
        postamble.push_back(line);
      }
    }
  }
  if (preamble.empty()) {
    preamble = {"{", "  \"schema\": \"dcdo-bench-v1\",", "  \"benchmarks\": {"};
    postamble = {"  }", "}"};
  }
  for (const auto& [name, value] : entries) merged[name] = value;

  std::ofstream out(path, std::ios::trunc);
  if (!out) return;
  for (const std::string& line : preamble) out << line << "\n";
  std::size_t i = 0;
  for (const auto& [name, value] : merged) {
    out << "    \"" << name << "\": " << value
        << (++i == merged.size() ? "" : ",") << "\n";
  }
  for (const std::string& line : postamble) out << line << "\n";
}

// Called by DCDO_BENCH_MAIN after the run: honours DCDO_BENCH_JSON.
inline void FlushBenchJson(const JsonRecordingReporter& reporter) {
  const char* path = std::getenv("DCDO_BENCH_JSON");
  if (path == nullptr || *path == '\0' || reporter.entries().empty()) return;
  MergeBenchJson(path, reporter.entries());
}

}  // namespace dcdo::bench

// Drop-in replacement for BENCHMARK_MAIN(): same console output, plus JSON
// recording into $DCDO_BENCH_JSON when set.
#define DCDO_BENCH_MAIN()                                                 \
  int main(int argc, char** argv) {                                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::dcdo::bench::JsonRecordingReporter reporter;                        \
    ::benchmark::RunSpecifiedBenchmarks(&reporter);                       \
    ::dcdo::bench::FlushBenchJson(reporter);                              \
    ::benchmark::Shutdown();                                              \
    return 0;                                                             \
  }                                                                       \
  int dcdo_bench_main_anchor_ = 0
