// Shared scenario builders for the benchmark harness.
//
// Sim-time benches use google-benchmark's manual-time mode: each iteration
// runs a deterministic discrete-event scenario and reports the *simulated*
// duration as the iteration time, so the numbers printed by the harness are
// directly comparable to the paper's (seconds of Centurion time, not
// nanoseconds of host time). Wall-clock benches (DFM indirection, table
// scaling) use ordinary real-time mode.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/manager.h"
#include "runtime/class_object.h"
#include "runtime/testbed.h"

namespace dcdo::bench {

// Benches measure the raw runtime: invariant checking stays off so the
// numbers are comparable whether or not the build compiled it in.
inline Testbed::Options BenchOptions() {
  Testbed::Options options;
  options.checking = false;
  return options;
}

// Registers `count` trivial exported functions named <prefix>_fn0.. spread
// evenly over `components` components, and returns the component metas.
// Bodies are registered in `testbed`'s registry.
inline std::vector<ImplementationComponent> MakeFunctionGrid(
    Testbed& testbed, const std::string& prefix, std::size_t count,
    std::size_t components, std::size_t bytes_per_component = 100 * 1024) {
  std::vector<ImplementationComponent> out;
  out.reserve(components);
  std::size_t per = count / components;
  std::size_t extra = count % components;
  std::size_t fn_index = 0;
  for (std::size_t c = 0; c < components; ++c) {
    std::string name = prefix + "-c" + std::to_string(c);
    ComponentBuilder builder(name);
    builder.SetCodeBytes(bytes_per_component);
    std::size_t here = per + (c < extra ? 1 : 0);
    for (std::size_t i = 0; i < here; ++i, ++fn_index) {
      std::string fn = prefix + "_fn" + std::to_string(fn_index);
      std::string symbol = name + "/" + fn;
      testbed.registry().Register(
          symbol, ImplementationType::Portable(),
          [](CallContext&, const ByteBuffer& args) {
            return Result<ByteBuffer>(args);  // identity body
          });
      builder.AddFunction(fn, "b(b)", symbol);
    }
    auto built = builder.Build();
    if (!built.ok()) std::abort();
    out.push_back(*built);
  }
  return out;
}

// A manager whose current version incorporates and enables every function of
// `components` (published as ICOs on the manager's home host).
inline std::unique_ptr<DcdoManager> MakeManagerWithVersion(
    Testbed& testbed, const std::string& type_name,
    const std::vector<ImplementationComponent>& components,
    std::unique_ptr<EvolutionPolicy> policy) {
  auto manager = std::make_unique<DcdoManager>(
      type_name, testbed.host(0), &testbed.transport(), &testbed.agent(),
      &testbed.registry(), std::move(policy));
  for (const ImplementationComponent& comp : components) {
    if (!manager->PublishComponent(comp).ok()) std::abort();
  }
  VersionId v1 = *manager->CreateRootVersion();
  DfmDescriptor* descriptor = *manager->MutableDescriptor(v1);
  for (const ImplementationComponent& comp : components) {
    if (!descriptor->IncorporateComponent(comp).ok()) std::abort();
    for (const FunctionImplDescriptor& fn : comp.functions) {
      if (!descriptor->EnableFunction(fn.function.name, comp.id).ok()) {
        std::abort();
      }
    }
  }
  if (!manager->MarkInstantiable(v1).ok()) std::abort();
  if (!manager->SetCurrentVersion(v1).ok()) std::abort();
  return manager;
}

// Blocks on an async manager operation, driving the simulation.
inline ObjectId CreateInstanceBlocking(Testbed& testbed, DcdoManager& manager,
                                       sim::SimHost* host) {
  ObjectId out;
  bool done = false;
  manager.CreateInstance(host, [&](Result<ObjectId> result) {
    if (!result.ok()) std::abort();
    out = *result;
    done = true;
  });
  testbed.simulation().RunWhile([&] { return !done; });
  return out;
}

inline void EvolveBlocking(Testbed& testbed, DcdoManager& manager,
                           const ObjectId& instance, const VersionId& version) {
  bool done = false;
  manager.EvolveInstanceTo(instance, version, [&](Status status) {
    if (!status.ok()) std::abort();
    done = true;
  });
  testbed.simulation().RunWhile([&] { return !done; });
}

// Measures the simulated duration of `body`.
inline double SimSeconds(Testbed& testbed, const std::function<void()>& body) {
  sim::SimTime start = testbed.simulation().Now();
  body();
  return (testbed.simulation().Now() - start).ToSeconds();
}

}  // namespace dcdo::bench
