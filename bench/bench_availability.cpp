// E9 (ablation) — Service availability *during* evolution.
//
// The paper's thesis statement: DCDO programmers can change behaviour
// "without deactivating any part of the system ... without interrupting the
// clients of evolving objects". This bench drives a steady client workload
// (one call every 500 ms of simulated time) through an upgrade and reports,
// as counters, how many calls failed or were delayed beyond 1 s:
//
//   * DCDO evolution: implementation switch while calls flow — zero failed,
//     zero slow;
//   * monolithic evolution: the executable-replacement window plus the
//     stale-binding aftermath eats tens of seconds of client time.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "rpc/client.h"
#include "runtime/class_object.h"

namespace dcdo::bench {
namespace {

struct WorkloadResult {
  int total_calls = 0;
  int failed_calls = 0;
  int slow_calls = 0;  // latency > 1 s (sim)
  double worst_latency = 0;
};

// Issues one blocking call every 500 ms of sim time for `calls` calls.
WorkloadResult DriveWorkload(Testbed& testbed, rpc::RpcClient& client,
                             const ObjectId& target, const std::string& fn,
                             int calls) {
  WorkloadResult result;
  for (int i = 0; i < calls; ++i) {
    sim::SimTime start = testbed.simulation().Now();
    auto reply = client.InvokeBlocking(target, fn, ByteBuffer{});
    double latency = (testbed.simulation().Now() - start).ToSeconds();
    ++result.total_calls;
    if (!reply.ok()) ++result.failed_calls;
    if (latency > 1.0) ++result.slow_calls;
    result.worst_latency = std::max(result.worst_latency, latency);
    testbed.simulation().RunUntil(testbed.simulation().Now() +
                                  sim::SimDuration::Millis(500));
  }
  return result;
}

void SimTime_AvailabilityDcdoEvolution(benchmark::State& state) {
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    auto grid = MakeFunctionGrid(testbed, "grid", 10, 1);
    auto manager = MakeManagerWithVersion(testbed, "svc", grid,
                                          MakeSingleVersionExplicit());
    ObjectId instance =
        CreateInstanceBlocking(testbed, *manager, testbed.host(1));
    auto client = testbed.MakeClient(5);

    // Schedule the evolution to land mid-workload.
    VersionId child = *manager->DeriveVersion(manager->current_version());
    if (!manager->MarkInstantiable(child).ok()) std::abort();
    if (!manager->SetCurrentVersion(child).ok()) std::abort();
    testbed.simulation().Schedule(sim::SimDuration::Seconds(10), [&] {
      manager->EvolveInstanceTo(instance, child, [](Status status) {
        if (!status.ok()) std::abort();
      });
    });

    sim::SimTime start = testbed.simulation().Now();
    WorkloadResult result =
        DriveWorkload(testbed, *client, instance, "grid_fn0", 60);
    state.SetIterationTime((testbed.simulation().Now() - start).ToSeconds());
    state.counters["failed"] = result.failed_calls;
    state.counters["slow_gt_1s"] = result.slow_calls;
    state.counters["worst_latency_s"] = result.worst_latency;
  }
  state.SetLabel("60 calls @2/s across a DCDO evolution");
}
BENCHMARK(SimTime_AvailabilityDcdoEvolution)->UseManualTime()->Iterations(1);

void SimTime_AvailabilityMonolithicEvolution(benchmark::State& state) {
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    ClassObject class_object("legacy", testbed.host(0), &testbed.transport(),
                             &testbed.agent());
    auto make_executable = [](const std::string& name) {
      Executable executable;
      executable.name = name;
      executable.bytes = 5'100'000;
      executable.methods.Add("grid_fn0",
                             [](InstanceState&, const ByteBuffer& args) {
                               return Result<ByteBuffer>(args);
                             });
      return executable;
    };
    class_object.AddExecutable(make_executable("v1"));
    std::size_t v2 = class_object.AddExecutable(make_executable("v2"));
    ObjectId instance;
    bool created = false;
    class_object.CreateInstance(testbed.host(1), 1 << 20,
                                [&](Result<ObjectId> result) {
                                  if (!result.ok()) std::abort();
                                  instance = *result;
                                  created = true;
                                });
    testbed.simulation().RunWhile([&] { return !created; });
    auto client = testbed.MakeClient(5);

    testbed.simulation().Schedule(sim::SimDuration::Seconds(10), [&] {
      class_object.EvolveInstance(instance, v2, [](Status status) {
        if (!status.ok()) std::abort();
      });
    });

    sim::SimTime start = testbed.simulation().Now();
    WorkloadResult result =
        DriveWorkload(testbed, *client, instance, "grid_fn0", 60);
    state.SetIterationTime((testbed.simulation().Now() - start).ToSeconds());
    state.counters["failed"] = result.failed_calls;
    state.counters["slow_gt_1s"] = result.slow_calls;
    state.counters["worst_latency_s"] = result.worst_latency;
  }
  state.SetLabel("60 calls @2/s across a monolithic evolution");
}
BENCHMARK(SimTime_AvailabilityMonolithicEvolution)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
