// E3 — Object creation cost (paper Section 4, "Overhead").
//
// Paper claims reproduced here:
//   * a DCDO with 500 functions in 50 components takes ~10 s to create
//     (each component is fetched from its ICO and mapped);
//   * a monolithic object with the same 500 functions takes ~2.2 s;
//   * "for more reasonably configured objects (e.g., with fewer components),
//     results are comparable to the static executables" — and when the
//     component images are already cached on the host, DCDO creation is
//     competitive regardless of component count.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "runtime/class_object.h"

namespace dcdo::bench {
namespace {

void SimTime_CreateDcdo(benchmark::State& state) {
  std::size_t functions = static_cast<std::size_t>(state.range(0));
  std::size_t components = static_cast<std::size_t>(state.range(1));
  bool cached = state.range(2) != 0;
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};  // fresh testbed per iteration: cold caches
    auto grid = MakeFunctionGrid(testbed, "grid", functions, components);
    auto manager = MakeManagerWithVersion(testbed, "bench", grid,
                                          MakeSingleVersionExplicit());
    if (cached) {
      for (const ImplementationComponent& comp : grid) {
        testbed.host(1)->CacheComponent(comp.id, comp.code_bytes);
      }
    }
    double seconds = SimSeconds(testbed, [&] {
      (void)CreateInstanceBlocking(testbed, *manager, testbed.host(1));
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(functions) + " fns / " +
                 std::to_string(components) + " comps, " +
                 (cached ? "cached" : "uncached"));
}
BENCHMARK(SimTime_CreateDcdo)
    ->UseManualTime()
    ->Iterations(3)
    ->Args({500, 50, 0})   // the paper's ~10 s configuration
    ->Args({500, 5, 0})
    ->Args({500, 1, 0})
    ->Args({100, 10, 0})
    ->Args({100, 1, 0})
    ->Args({500, 50, 1})   // warm host cache
    ->Args({100, 10, 1});

void SimTime_CreateMonolithic(benchmark::State& state) {
  std::size_t executable_bytes = static_cast<std::size_t>(state.range(0));
  bool remote_host = state.range(1) != 0;
  for (auto _ : state) {
    Testbed testbed{BenchOptions()};
    ClassObject class_object("legacy", testbed.host(0), &testbed.transport(),
                             &testbed.agent());
    Executable executable;
    executable.name = "legacy-v1";
    executable.bytes = executable_bytes;
    for (int i = 0; i < 500; ++i) {
      executable.methods.Add("fn" + std::to_string(i),
                             [](InstanceState&, const ByteBuffer& args) {
                               return Result<ByteBuffer>(args);
                             });
    }
    class_object.AddExecutable(std::move(executable));
    // Creating on the home host (executable present) matches the paper's
    // 2.2 s; a remote host adds the download.
    sim::SimHost* host = remote_host ? testbed.host(5) : testbed.host(0);
    double seconds = SimSeconds(testbed, [&] {
      bool done = false;
      class_object.CreateInstance(host, 0, [&](Result<ObjectId> result) {
        if (!result.ok()) std::abort();
        done = true;
      });
      testbed.simulation().RunWhile([&] { return !done; });
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::string("monolithic 500 fns, ") +
                 (remote_host ? "exec downloaded" : "exec on host"));
}
BENCHMARK(SimTime_CreateMonolithic)
    ->UseManualTime()
    ->Iterations(3)
    ->Args({5'100'000, 0})   // paper: 2.2 s
    ->Args({5'100'000, 1})
    ->Args({550'000, 0});

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
