// E14 — Naming directory at million-object scale (DESIGN.md §13).
//
// Three questions, one binary:
//
//   * SimTime_E14_LookupLoad/<objects>/<hosts>/<shards> — the directory
//     holds `objects` bindings spread across `hosts` sim hosts and absorbs
//     an open-loop lookup stream offered at 80% of aggregate capacity
//     (directory_lookup_service per request, per shard). Reported counters:
//     lookup p50/p99 (microseconds) and aggregate throughput (lookups/s).
//     Weak scaling: the offered load grows with the shard count, so flat
//     p50/p99 and linearly growing throughput demonstrate that shards serve
//     their slices independently.
//
//   * SimTime_E14_RebindStorm/<holders>/<shards> — `holders` binding caches
//     lease one object; a single migration pushes the fresh binding to all
//     of them. Iteration time is migration -> last delivery.
//
//   * SimTime_E14_StaleDiscovery/<leases>/<shards> — time for a client with
//     a warm (now stale) binding to reach the migrated object: the legacy
//     timeout-probe schedule (~31 s, the paper's 25-35 s band) vs the pushed
//     invalidation (sub-second).
//
// Full-scale entries (1M objects, 200 hosts, 1..16 shards; 500-holder storm)
// register only when DCDO_BENCH_SMOKE is unset; scripts/bench.sh --smoke
// sets it so CI runs the 10k-object / 2-shard miniatures.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "naming/binding_cache.h"
#include "rpc/client.h"

namespace dcdo::bench {
namespace {

// Deterministic 64-bit mix for key selection: benches must be reproducible
// bit-for-bit, so no library RNG and certainly no wall-clock seeding.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr double kLookupServiceMicros = 100.0;
// Offered load as a fraction of aggregate directory capacity. 0.7 keeps
// every shard comfortably stable even with the residual consistent-hash
// imbalance, so the p99 comparison across shard counts measures the
// architecture rather than which shard drew the short straw.
constexpr double kUtilization = 0.7;
// Ring points per shard for the load bench: 512 virtual points tighten the
// key split to a few percent (the 64-point default trades balance for a
// smaller ring; at bench scale the hotter shard would dominate p99).
constexpr int kRingPoints = 512;

// ===== Lookup load =====

void SimTime_E14_LookupLoad(benchmark::State& state) {
  const auto objects = static_cast<std::size_t>(state.range(0));
  const int hosts = static_cast<int>(state.range(1));
  const int shards = static_cast<int>(state.range(2));

  Testbed::Options options = BenchOptions();
  options.host_count = hosts;
  options.cost_model.naming_shard_count = shards;
  options.cost_model.naming_ring_points = kRingPoints;
  options.cost_model.directory_lookup_service =
      sim::SimDuration::Micros(kLookupServiceMicros);
  Testbed testbed(options);
  BindingAgent& agent = testbed.agent();

  std::vector<ObjectId> ids;
  ids.reserve(objects);
  for (std::size_t i = 0; i < objects; ++i) {
    ids.push_back(ObjectId::Next(domains::kInstance));
    agent.Bind(ids.back(),
               ObjectAddress{static_cast<sim::NodeId>(1 + i % hosts),
                             static_cast<sim::ProcessId>(100 + i), 1});
  }

  // Open-loop Poisson arrivals at kUtilization of aggregate capacity: each
  // shard serves 1/service lookups per second, so the offered stream scales
  // with the shard count (weak scaling). Poisson matters for the comparison:
  // hash-splitting a Poisson stream across k shards leaves every shard an
  // identically-distributed Poisson stream at the same per-shard rate, so
  // the latency distribution — p99 included — should be flat in k.
  // 10k samples per shard: enough tail mass that the p99 estimate is stable
  // across shard counts (at 2k the p99 comparison drowns in estimator noise).
  const std::size_t lookups = static_cast<std::size_t>(10000) * shards;
  const double rate_per_sec =
      kUtilization * shards * (1e6 / kLookupServiceMicros);  // aggregate /s

  for (auto _ : state) {
    std::vector<std::int64_t> latencies(lookups, 0);
    std::size_t completed = 0;
    double arrival_s = 0.0;
    sim::SimTime start = testbed.simulation().Now();
    for (std::size_t i = 0; i < lookups; ++i) {
      // Exponential inter-arrival via inverse transform on a deterministic
      // uniform draw (never exactly 0).
      double u = (static_cast<double>(Mix64(0xA0 + i) >> 11) + 1.0) / 9007199254740993.0;
      arrival_s += -std::log(u) / rate_per_sec;
      sim::SimDuration arrival = sim::SimDuration::Micros(arrival_s * 1e6);
      const ObjectId& key = ids[Mix64(0xE14 + i) % objects];
      testbed.simulation().Schedule(arrival, [&, i, key]() {
        sim::SimTime issued = testbed.simulation().Now();
        agent.AsyncLookup(key, /*holder=*/0, /*client=*/0,
                          [&, i, issued](Result<ObjectAddress> result,
                                         sim::SimTime) {
                            if (!result.ok()) std::abort();
                            latencies[i] =
                                (testbed.simulation().Now() - issued).nanos();
                            ++completed;
                          });
      });
    }
    testbed.RunAll();
    if (completed != lookups) std::abort();
    double makespan = (testbed.simulation().Now() - start).ToSeconds();
    state.SetIterationTime(makespan);

    std::sort(latencies.begin(), latencies.end());
    state.counters["p50_us"] = static_cast<double>(
        latencies[latencies.size() / 2]) / 1e3;
    state.counters["p99_us"] = static_cast<double>(
        latencies[latencies.size() * 99 / 100]) / 1e3;
    state.counters["throughput_per_s"] =
        static_cast<double>(lookups) / makespan;
  }
  state.SetLabel(std::to_string(objects) + " objects, " +
                 std::to_string(shards) + " shard(s)");
}

// ===== Rebind storm =====

void SimTime_E14_RebindStorm(benchmark::State& state) {
  const int holders = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));

  for (auto _ : state) {
    Testbed::Options options = BenchOptions();
    options.host_count = 24;
    options.cost_model.naming_shard_count = shards;
    options.cost_model.binding_lease_duration = sim::SimDuration::Seconds(60.0);
    Testbed testbed(options);
    BindingAgent& agent = testbed.agent();

    ObjectId target = ObjectId::Next(domains::kInstance);
    agent.Bind(target, ObjectAddress{2, 7, 1});
    std::vector<std::unique_ptr<BindingCache>> caches;
    caches.reserve(static_cast<std::size_t>(holders));
    for (int i = 0; i < holders; ++i) {
      caches.push_back(std::make_unique<BindingCache>(
          &agent, /*capacity=*/16,
          static_cast<sim::NodeId>(1 + i % options.host_count)));
      if (!caches.back()->Resolve(target).ok()) std::abort();
    }

    // One migration; the owning shard fans the fresh binding out to every
    // leaseholder. The measured span ends when the last notice lands.
    double seconds = SimSeconds(testbed, [&] {
      agent.Bind(target, ObjectAddress{3, 8, 2});
      testbed.RunAll();
    });
    if (agent.invalidations_delivered() != static_cast<std::uint64_t>(holders)) {
      std::abort();
    }
    for (const auto& cache : caches) {
      auto fresh = cache->CachedAddress(target);
      if (!fresh.has_value() || !(*fresh == ObjectAddress{3, 8, 2})) {
        std::abort();
      }
    }
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(holders) + " leaseholders");
}

// ===== Stale-binding discovery: probe schedule vs pushed invalidation =====

void SimTime_E14_StaleDiscovery(benchmark::State& state) {
  const bool leases = state.range(0) != 0;
  const int shards = static_cast<int>(state.range(1));

  for (auto _ : state) {
    Testbed::Options options = BenchOptions();
    options.cost_model.naming_shard_count = shards;
    if (leases) {
      options.cost_model.binding_lease_duration =
          sim::SimDuration::Seconds(60.0);
    }
    Testbed testbed(options);
    ObjectId target = ObjectId::Next(domains::kInstance);
    auto serve = [&](sim::NodeId node, sim::ProcessId pid,
                     std::uint64_t epoch) {
      testbed.transport().RegisterEndpoint(
          node, pid, epoch,
          [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
            reply(rpc::MethodResult::Ok(
                ByteBuffer::FromString(std::string(inv.method_name()))));
          });
      testbed.agent().Bind(target, ObjectAddress{node, pid, epoch});
    };
    serve(2, 10, 1);
    auto client = testbed.MakeClient(1);
    if (!client->InvokeBlocking(target, "warm").ok()) std::abort();

    // The object migrates: old activation gone, new one elsewhere.
    testbed.transport().UnregisterEndpoint(2, 10);
    double seconds = SimSeconds(testbed, [&] {
      serve(3, 20, 2);
      if (leases) {
        // Discovery = the push replacing the cached binding.
        testbed.simulation().RunWhile([&] {
          auto cached = client->cache().CachedAddress(target);
          return !cached.has_value() || !(*cached == ObjectAddress{3, 20, 2});
        });
      } else {
        // Discovery = the legacy timeout-probe schedule, measured end to end
        // through a real call (identical to E5).
        if (!client->InvokeBlocking(target, "recover").ok()) std::abort();
      }
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(leases ? "lease push" : "timeout probe schedule");
}

// Smoke-scale entries always exist (CI runs exactly these); the full-scale
// sweep registers only outside smoke mode. Shards are the LAST argument so
// the bench.sh drift allowlist can key on them.
const int dcdo_register_e14 = [] {
  using ::benchmark::RegisterBenchmark;
  auto* load = RegisterBenchmark("SimTime_E14_LookupLoad", SimTime_E14_LookupLoad)
                   ->UseManualTime()
                   ->Iterations(1)
                   ->Args({10000, 12, 1})
                   ->Args({10000, 12, 2});
  auto* storm =
      RegisterBenchmark("SimTime_E14_RebindStorm", SimTime_E14_RebindStorm)
          ->UseManualTime()
          ->Iterations(1)
          ->Args({50, 2});
  auto* stale =
      RegisterBenchmark("SimTime_E14_StaleDiscovery", SimTime_E14_StaleDiscovery)
          ->UseManualTime()
          ->Iterations(1)
          ->Args({0, 1})   // legacy probe schedule (the 25-35 s band)
          ->Args({1, 1});  // lease push, single shard
  if (std::getenv("DCDO_BENCH_SMOKE") == nullptr) {
    for (int shards : {1, 2, 4, 8, 16}) {
      load->Args({1000000, 200, shards});
    }
    storm->Args({500, 1})->Args({500, 8});
    stale->Args({1, 8});
  }
  return 0;
}();

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
