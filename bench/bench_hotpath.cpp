// E10 — Hot-path microbenchmarks for the dispatch/event/serialization layers.
//
// These are regression trackers, not paper reproductions: they time the three
// inner loops every simulated scenario turns on —
//
//   * DFM acquire/release (by name, by pre-resolved FunctionId, and from
//     many real threads against one mapper — the lock-light slot-table path);
//   * the discrete-event engine's schedule/fire loop, with and without heavy
//     cancellation traffic;
//   * wire-message serialization through the pooled-buffer Writer.
//
// Run via scripts/bench.sh to record the numbers into BENCH_dcdo.json and
// compare against the committed baseline.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "bench_util.h"
#include "common/serialize.h"
#include "dfm/mapper.h"
#include "rpc/message.h"
#include "sim/simulation.h"

namespace dcdo::bench {
namespace {

class NullCtx : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("none");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

void FillMapper(DynamicFunctionMapper& mapper, NativeCodeRegistry& registry,
                std::size_t functions) {
  ComponentBuilder builder("hot");
  builder.SetCodeBytes(64 * 1024);
  for (std::size_t i = 0; i < functions; ++i) {
    std::string fn = "hot_fn" + std::to_string(i);
    std::string symbol = "hot/" + fn;
    registry.Register(symbol, ImplementationType::Portable(),
                      [](CallContext&, const ByteBuffer& args) {
                        return Result<ByteBuffer>(args);
                      });
    builder.AddFunction(fn, "b(b)", symbol);
  }
  auto comp = builder.Build();
  if (!comp.ok()) std::abort();
  if (!mapper.IncorporateComponent(*comp, registry,
                                   sim::Architecture::kX86Linux).ok()) {
    std::abort();
  }
  if (!mapper.EnableFunction("hot_fn0", comp->id).ok()) std::abort();
}

// --- DFM dispatch ---

// Acquire+Release alone (no body call): the pure cost of the indirection.
void Wall_DfmAcquireRelease(benchmark::State& state) {
  NativeCodeRegistry registry;
  DynamicFunctionMapper mapper;
  FillMapper(mapper, registry, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto guard = mapper.Acquire("hot_fn0", CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + "-entry DFM");
}
BENCHMARK(Wall_DfmAcquireRelease)->Arg(10)->Arg(500);

void Wall_DfmAcquireReleaseById(benchmark::State& state) {
  NativeCodeRegistry registry;
  DynamicFunctionMapper mapper;
  FillMapper(mapper, registry, static_cast<std::size_t>(state.range(0)));
  FunctionId id = FunctionNameTable::Global().Find("hot_fn0");
  if (!id.valid()) std::abort();
  for (auto _ : state) {
    auto guard = mapper.Acquire(id, CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::to_string(state.range(0)) + "-entry DFM");
}
BENCHMARK(Wall_DfmAcquireReleaseById)->Arg(10)->Arg(500);

// Many real OS threads hammering one mapper: the shared-lock fast path under
// contention. items_per_second is total calls/sec across all threads.
void Wall_DfmAcquireMT(benchmark::State& state) {
  static NativeCodeRegistry* registry = nullptr;
  static DynamicFunctionMapper* mapper = nullptr;
  if (state.thread_index() == 0) {
    registry = new NativeCodeRegistry();
    mapper = new DynamicFunctionMapper();
    FillMapper(*mapper, *registry, 100);
  }
  NullCtx ctx;
  ByteBuffer args;
  for (auto _ : state) {
    auto guard = mapper->Acquire("hot_fn0", CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->body()(ctx, args));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    state.SetLabel("threads=" + std::to_string(state.threads()));
    delete mapper;
    delete registry;
    mapper = nullptr;
    registry = nullptr;
  }
}
BENCHMARK(Wall_DfmAcquireMT)->Threads(1)->Threads(2)->Threads(4)->UseRealTime();

// --- Discrete-event engine ---

// Steady-state schedule+fire throughput (items = events fired).
void Wall_SimEventThroughput(benchmark::State& state) {
  constexpr std::size_t kBatch = 4096;
  sim::Simulation simulation;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBatch; ++i) {
      simulation.Schedule(sim::SimDuration::Micros(static_cast<std::int64_t>(i)),
                          [&fired] { ++fired; });
    }
    simulation.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(Wall_SimEventThroughput);

// Timer churn: almost everything scheduled is cancelled before firing (the
// retry/timeout pattern). Exercises O(1) Cancel plus the skip loop.
void Wall_SimCancelHeavy(benchmark::State& state) {
  constexpr std::size_t kBatch = 4096;
  sim::Simulation simulation;
  std::vector<std::uint64_t> ids;
  ids.reserve(kBatch);
  std::uint64_t fired = 0;
  for (auto _ : state) {
    ids.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids.push_back(simulation.Schedule(
          sim::SimDuration::Micros(static_cast<std::int64_t>(i)),
          [&fired] { ++fired; }));
    }
    for (std::size_t i = 0; i < kBatch; ++i) {
      if (i % 16 != 0) simulation.Cancel(ids[i]);  // cancel 15 of every 16
    }
    simulation.Run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(Wall_SimCancelHeavy);

// --- Serialization ---

// Assembling a typical annotated-interface reply through the pooled-buffer
// Writer; bytes_per_second is the serialization throughput.
void Wall_MessageSerialize(benchmark::State& state) {
  const std::size_t entries = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> names;
  names.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    names.push_back("function_name_" + std::to_string(i));
  }
  std::int64_t bytes = 0;
  for (auto _ : state) {
    Writer writer(rpc::WireBufferPool::Acquire());
    writer.WriteU64(entries);
    for (const std::string& name : names) {
      writer.WriteString(name);
      writer.WriteString("b(b)");
      writer.WriteBool(false);
      writer.WriteBool(true);
    }
    ByteBuffer wire = std::move(writer).Take();
    bytes += static_cast<std::int64_t>(wire.size());
    rpc::WireBufferPool::Release(std::move(wire));
  }
  state.SetBytesProcessed(bytes);
  state.SetLabel(std::to_string(entries) + " interface entries");
}
BENCHMARK(Wall_MessageSerialize)->Arg(16)->Arg(256);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
