// E8 (ablation) — DFM table scaling and monitoring cost.
//
// The paper's overhead result implies two properties of the DFM that this
// bench verifies on real hardware (wall-clock):
//   * lookup cost is (near-)independent of the number of entries in the
//     table — calls don't slow down as objects grow;
//   * thread-activity monitoring (the guard counters) adds only a small
//     constant to each call;
//   * configuration operations (enable/disable/switch) stay cheap as the
//     table and the dependency set grow.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "dfm/mapper.h"

namespace dcdo::bench {
namespace {

class NullCtx : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("none");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

struct MapperScenario {
  NativeCodeRegistry registry;
  DynamicFunctionMapper mapper;
  ObjectId component_id;

  explicit MapperScenario(std::size_t entries) {
    ComponentBuilder builder("scale");
    builder.SetCodeBytes(64 * 1024);
    for (std::size_t i = 0; i < entries; ++i) {
      std::string fn = "fn" + std::to_string(i);
      std::string symbol = "scale/" + fn;
      registry.Register(symbol, ImplementationType::Portable(),
                        [](CallContext&, const ByteBuffer& args) {
                          return Result<ByteBuffer>(args);
                        });
      builder.AddFunction(fn, "b(b)", symbol);
    }
    auto comp = builder.Build();
    if (!comp.ok()) std::abort();
    component_id = comp->id;
    if (!mapper.IncorporateComponent(*comp, registry,
                                     sim::Architecture::kX86Linux).ok()) {
      std::abort();
    }
    // Enable every other function so lookups see a mixed table.
    for (std::size_t i = 0; i < entries; i += 2) {
      if (!mapper.EnableFunction("fn" + std::to_string(i),
                                 component_id).ok()) {
        std::abort();
      }
    }
  }
};

void Wall_AcquireByTableSize(benchmark::State& state) {
  MapperScenario scenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto guard = scenario.mapper.Acquire("fn0", CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->function());
  }
  state.SetLabel(std::to_string(state.range(0)) + " entries");
}
BENCHMARK(Wall_AcquireByTableSize)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096);

// Acquire + body + release (the guard's bookkeeping) vs. Acquire-less direct
// body execution: the cost of thread-activity monitoring.
void Wall_GuardedCall(benchmark::State& state) {
  MapperScenario scenario(256);
  NullCtx ctx;
  ByteBuffer args;
  for (auto _ : state) {
    auto guard = scenario.mapper.Acquire("fn0", CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->body()(ctx, args));
  }
  state.SetLabel("with activity monitoring");
}
BENCHMARK(Wall_GuardedCall);

void Wall_UnguardedBody(benchmark::State& state) {
  MapperScenario scenario(256);
  NullCtx ctx;
  ByteBuffer args;
  auto guard = scenario.mapper.Acquire("fn0", CallOrigin::kExternal);
  if (!guard.ok()) std::abort();
  DynamicFn body = guard->body();
  guard->Release();
  for (auto _ : state) {
    benchmark::DoNotOptimize(body(ctx, args));
  }
  state.SetLabel("raw body (no DFM, no monitoring)");
}
BENCHMARK(Wall_UnguardedBody);

// Rejected lookups (disabled / missing) are also cheap — error paths matter
// because the paper requires clients to handle absence gracefully.
void Wall_AcquireDisabled(benchmark::State& state) {
  MapperScenario scenario(256);
  for (auto _ : state) {
    auto guard = scenario.mapper.Acquire("fn1", CallOrigin::kExternal);
    benchmark::DoNotOptimize(guard.status());
  }
  state.SetLabel("disabled function (typed error)");
}
BENCHMARK(Wall_AcquireDisabled);

void Wall_EnableDisableCycle(benchmark::State& state) {
  MapperScenario scenario(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    if (!scenario.mapper.DisableFunction("fn0", scenario.component_id).ok()) {
      std::abort();
    }
    if (!scenario.mapper.EnableFunction("fn0", scenario.component_id).ok()) {
      std::abort();
    }
  }
  state.SetLabel(std::to_string(state.range(0)) + " entries");
}
BENCHMARK(Wall_EnableDisableCycle)->Arg(64)->Arg(1024)->Arg(4096);

// Configuration-time dependency checking: validation cost grows with the
// dependency set, not with the table.
void Wall_DisableWithDependencySet(benchmark::State& state) {
  MapperScenario scenario(512);
  std::size_t deps = static_cast<std::size_t>(state.range(0));
  // Dependencies among *disabled* functions: present in the set, never
  // binding, so the disable below stays legal while validation still scans.
  for (std::size_t i = 0; i < deps; ++i) {
    std::string from = "fn" + std::to_string(1 + 2 * (i % 200));  // odd: off
    std::string to = "fn" + std::to_string(1 + 2 * ((i + 7) % 200));
    if (!scenario.mapper.AddDependency(Dependency::TypeD(from, to)).ok()) {
      std::abort();
    }
  }
  for (auto _ : state) {
    if (!scenario.mapper.DisableFunction("fn0", scenario.component_id).ok()) {
      std::abort();
    }
    if (!scenario.mapper.EnableFunction("fn0", scenario.component_id).ok()) {
      std::abort();
    }
  }
  state.SetLabel(std::to_string(deps) + " dependencies in the set");
}
BENCHMARK(Wall_DisableWithDependencySet)->Arg(0)->Arg(32)->Arg(128);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
