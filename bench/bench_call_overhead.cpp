// E1 — Dynamic function call overhead (paper Section 4, "Overhead").
//
// Paper claims reproduced here:
//   * a dynamic function call costs 10-15 us (simulated time), and the cost
//     is the same for self-calls, intra-component, and inter-component calls;
//   * the cost is independent of how many functions/components the DCDO has.
//
// Two measurement modes:
//   * SimTime/* benches report *simulated* microseconds per call (manual
//     time) — these match the paper's absolute numbers by calibration.
//   * Wall/* benches measure the real indirection on the host CPU: a direct
//     C++ call vs. a call resolved through the DynamicFunctionMapper. The
//     absolute numbers are 2025-hardware nanoseconds; the *shape* (small
//     constant overhead, flat in table size) is the reproduced result.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/dcdo.h"

namespace dcdo::bench {
namespace {

struct CallScenario {
  std::unique_ptr<Testbed> testbed;
  std::unique_ptr<DcdoManager> manager;
  Dcdo* object = nullptr;
};

CallScenario MakeScenario(std::size_t functions, std::size_t components) {
  CallScenario scenario;
  scenario.testbed = std::make_unique<Testbed>(BenchOptions());
  auto grid = MakeFunctionGrid(*scenario.testbed, "grid", functions,
                               components);
  scenario.manager =
      MakeManagerWithVersion(*scenario.testbed, "bench", grid,
                             MakeSingleVersionExplicit());
  ObjectId instance = CreateInstanceBlocking(
      *scenario.testbed, *scenario.manager, scenario.testbed->host(1));
  scenario.object = scenario.manager->FindInstance(instance);
  return scenario;
}

// --- Simulated time: the paper's 10-15 us, flat across configurations ---

void SimTime_DynamicCall(benchmark::State& state) {
  auto scenario = MakeScenario(static_cast<std::size_t>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)));
  ByteBuffer args = ByteBuffer::FromString("x");
  for (auto _ : state) {
    double seconds = SimSeconds(*scenario.testbed, [&] {
      auto result = scenario.object->Call("grid_fn0", args);
      if (!result.ok()) std::abort();
    });
    state.SetIterationTime(seconds);
  }
  state.SetLabel(std::to_string(state.range(0)) + " fns / " +
                 std::to_string(state.range(1)) + " comps");
}
BENCHMARK(SimTime_DynamicCall)
    ->UseManualTime()
    ->Iterations(64)
    ->Args({10, 1})
    ->Args({100, 1})
    ->Args({100, 10})
    ->Args({500, 10})
    ->Args({500, 50});

// Self-call / intra-component / inter-component all pay the same DFM cost.
void SimTime_IntraObjectCallKinds(benchmark::State& state) {
  auto testbed = std::make_unique<Testbed>(BenchOptions());
  // comp X: caller plus callee (intra-component); comp Y: callee
  // (inter-component). Self-call: body calls its own name? The DFM treats a
  // recursive self-call identically; we model it with a one-level recursion
  // guard via args.
  testbed->registry().Register(
      "x/caller_same", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer& args) {
        return ctx.CallInternal("callee_same", args);
      });
  testbed->registry().Register(
      "x/callee_same", ImplementationType::Portable(),
      [](CallContext&, const ByteBuffer& args) {
        return Result<ByteBuffer>(args);
      });
  testbed->registry().Register(
      "x/caller_other", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer& args) {
        return ctx.CallInternal("callee_other", args);
      });
  testbed->registry().Register(
      "y/callee_other", ImplementationType::Portable(),
      [](CallContext&, const ByteBuffer& args) {
        return Result<ByteBuffer>(args);
      });
  testbed->registry().Register(
      "x/self", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer& args) {
        if (args.size() > 0) return Result<ByteBuffer>(args);
        return ctx.CallInternal("self", ByteBuffer::FromString("stop"));
      });
  auto comp_x = ComponentBuilder("x")
                    .AddFunction("caller_same", "b(b)", "x/caller_same")
                    .AddFunction("callee_same", "b(b)", "x/callee_same")
                    .AddFunction("caller_other", "b(b)", "x/caller_other")
                    .AddFunction("self", "b(b)", "x/self")
                    .Build();
  auto comp_y = ComponentBuilder("y")
                    .AddFunction("callee_other", "b(b)", "y/callee_other")
                    .Build();
  if (!comp_x.ok() || !comp_y.ok()) std::abort();
  auto manager = MakeManagerWithVersion(*testbed, "kinds",
                                        {*comp_x, *comp_y},
                                        MakeSingleVersionExplicit());
  ObjectId instance =
      CreateInstanceBlocking(*testbed, *manager, testbed->host(1));
  Dcdo* object = manager->FindInstance(instance);

  const char* kKinds[] = {"self", "caller_same", "caller_other"};
  const char* fn = kKinds[state.range(0)];
  // Each top-level Call makes two DFM-mediated calls (outer + inner).
  for (auto _ : state) {
    double seconds = SimSeconds(*testbed, [&] {
      auto result = object->Call(fn, ByteBuffer{});
      if (!result.ok()) std::abort();
    });
    state.SetIterationTime(seconds / 2.0);  // per dynamic call
  }
  const char* kLabels[] = {"self-call", "intra-component",
                           "inter-component"};
  state.SetLabel(kLabels[state.range(0)]);
}
BENCHMARK(SimTime_IntraObjectCallKinds)
    ->UseManualTime()
    ->Iterations(64)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

// --- Wall clock: real indirection cost on this host ---

void Wall_DirectCall(benchmark::State& state) {
  DynamicFn body = [](CallContext&, const ByteBuffer& args) {
    return Result<ByteBuffer>(args);
  };
  class NullCtx : public CallContext {
   public:
    Result<ByteBuffer> CallInternal(const std::string&,
                                    const ByteBuffer&) override {
      return FunctionMissingError("none");
    }
    ObjectId self_id() const override { return ObjectId(); }
    void BlockOnOutcall(double) override {}
  } ctx;
  ByteBuffer args;
  for (auto _ : state) {
    benchmark::DoNotOptimize(body(ctx, args));
  }
}
BENCHMARK(Wall_DirectCall);

class NullCtx : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("none");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

// A raw mapper with `functions` incorporated identity bodies, fn0 enabled.
void FillWallMapper(DynamicFunctionMapper& mapper, NativeCodeRegistry& registry,
                    std::size_t functions) {
  ComponentBuilder builder("wall");
  builder.SetCodeBytes(64 * 1024);
  for (std::size_t i = 0; i < functions; ++i) {
    std::string fn = "fn" + std::to_string(i);
    std::string symbol = "wall/" + fn;
    registry.Register(symbol, ImplementationType::Portable(),
                      [](CallContext&, const ByteBuffer& args) {
                        return Result<ByteBuffer>(args);
                      });
    builder.AddFunction(fn, "b(b)", symbol);
  }
  auto comp = builder.Build();
  if (!comp.ok()) std::abort();
  if (!mapper.IncorporateComponent(*comp, registry,
                                   sim::Architecture::kX86Linux).ok()) {
    std::abort();
  }
  if (!mapper.EnableFunction("fn0", comp->id).ok()) std::abort();
}

void Wall_DfmMediatedCall(benchmark::State& state) {
  NativeCodeRegistry registry;
  DynamicFunctionMapper mapper;
  std::size_t functions = static_cast<std::size_t>(state.range(0));
  FillWallMapper(mapper, registry, functions);
  NullCtx ctx;
  ByteBuffer args;
  for (auto _ : state) {
    auto guard = mapper.Acquire("fn0", CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->body()(ctx, args));
  }
  state.SetLabel(std::to_string(functions) + "-entry DFM");
}
BENCHMARK(Wall_DfmMediatedCall)->Arg(10)->Arg(100)->Arg(500);

// The resolve-once caller pattern: method tables and proxies intern the
// function name up front and dispatch by FunctionId, skipping even the name
// hash on the call path.
void Wall_DfmMediatedCallById(benchmark::State& state) {
  NativeCodeRegistry registry;
  DynamicFunctionMapper mapper;
  std::size_t functions = static_cast<std::size_t>(state.range(0));
  FillWallMapper(mapper, registry, functions);
  FunctionId id = FunctionNameTable::Global().Find("fn0");
  if (!id.valid()) std::abort();
  NullCtx ctx;
  ByteBuffer args;
  for (auto _ : state) {
    auto guard = mapper.Acquire(id, CallOrigin::kExternal);
    if (!guard.ok()) std::abort();
    benchmark::DoNotOptimize(guard->body()(ctx, args));
  }
  state.SetLabel(std::to_string(functions) + "-entry DFM");
}
BENCHMARK(Wall_DfmMediatedCallById)->Arg(10)->Arg(100)->Arg(500);

}  // namespace
}  // namespace dcdo::bench

DCDO_BENCH_MAIN();
