#!/usr/bin/env sh
# Static-analysis driver for the dcdo-tidy checks (DESIGN.md §12).
#
# Runs the six repo-specific checks over src/ against the committed
# suppression baseline (tools/dcdo-tidy/baseline.txt) and fails on any
# unsuppressed finding — this is what the CI `analyze` job gates on.
#
# Engine selection, in order of preference:
#   1. clang-tidy + the dcdo_tidy_module plugin (AST-backed; built only
#      when the clang-tidy dev headers are present), or
#   2. dcdo-analyze, the dependency-free fallback engine — always built
#      under -DDCDO_ANALYSIS=ON, so analysis works on every machine.
#
# Both engines share check names, NOLINT semantics, and the fixture suite
# under tests/analysis/fixtures/; both read the compile database the
# top-level CMakeLists always exports (CMAKE_EXPORT_COMPILE_COMMANDS), the
# same one scripts/lint.sh uses.
#
# Usage:
#   scripts/analyze.sh                    # analyze src/, gate on baseline
#   scripts/analyze.sh --update-baseline  # rewrite the baseline from HEAD
#   BUILD_DIR=build-foo scripts/analyze.sh
set -u

cd "$(dirname "$0")/.." || exit 1

BUILD_DIR=${BUILD_DIR:-build}
BASELINE=tools/dcdo-tidy/baseline.txt
UPDATE_BASELINE=0
for arg in "$@"; do
  case "$arg" in
    --update-baseline) UPDATE_BASELINE=1 ;;
    *) echo "usage: $0 [--update-baseline]" >&2; exit 2 ;;
  esac
done

# --- Ensure a configured build with the analysis tooling + compile db ----
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  echo "analyze: configuring $BUILD_DIR"
  cmake -B "$BUILD_DIR" -S . -DDCDO_ANALYSIS=ON >/dev/null \
    || { echo "analyze: cmake configure failed" >&2; exit 1; }
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # Always exported by the top-level CMakeLists; regenerate if missing.
  cmake -B "$BUILD_DIR" -S . >/dev/null \
    || { echo "analyze: cmake reconfigure failed" >&2; exit 1; }
fi

ANALYZE_SOURCES=$(find src \( -name '*.cc' -o -name '*.h' \) | sort)

# --- Preferred engine: clang-tidy with the dcdo plugin -------------------
PLUGIN=$(find "$BUILD_DIR/tools/dcdo-tidy" -name 'dcdo_tidy_module.*' \
         2>/dev/null | head -n 1)
if command -v clang-tidy >/dev/null 2>&1 && [ -n "$PLUGIN" ] \
   && [ "$UPDATE_BASELINE" = 0 ]; then
  echo "analyze: clang-tidy + dcdo_tidy_module"
  # shellcheck disable=SC2086
  clang-tidy --load="$PLUGIN" --checks='-*,dcdo-*' -p "$BUILD_DIR" \
    --quiet $ANALYZE_SOURCES
  exit $?
fi

# --- Fallback engine: dcdo-analyze ---------------------------------------
DCDO_ANALYZE="$BUILD_DIR/tools/dcdo-tidy/dcdo-analyze"
if [ ! -x "$DCDO_ANALYZE" ]; then
  echo "analyze: building dcdo-analyze"
  cmake --build "$BUILD_DIR" --target dcdo-analyze >/dev/null \
    || { echo "analyze: build failed" >&2; exit 1; }
fi

# src/trace/ exports wall-clock timestamps by design (Chrome trace files);
# bench/ measures real elapsed time. Everything else must use sim time.
set -- --allow-wallclock=src/trace/ --allow-wallclock=bench/

if [ "$UPDATE_BASELINE" = 1 ]; then
  # shellcheck disable=SC2086
  "$DCDO_ANALYZE" "$@" --write-baseline="$BASELINE" $ANALYZE_SOURCES
  exit $?
fi

# shellcheck disable=SC2086
"$DCDO_ANALYZE" "$@" --baseline="$BASELINE" $ANALYZE_SOURCES
STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "analyze: unsuppressed findings — fix them, add a NOLINT(check) with" >&2
  echo "analyze: a reason, or (transitionally) scripts/analyze.sh --update-baseline" >&2
fi
exit "$STATUS"
