#!/usr/bin/env sh
# Trace driver: builds the default preset (tracing is compiled in by
# default), runs the traced example, and summarizes the exported
# Chrome-trace JSON. Load the file itself in chrome://tracing or
# https://ui.perfetto.dev for the visual timeline.
#
# Usage:
#   scripts/trace.sh                   # run, write trace_evolution.json
#   scripts/trace.sh OUT.json          # run, write OUT.json
#   scripts/trace.sh --summarize F.json  # summarize an existing trace only
set -u

cd "$(dirname "$0")/.." || exit 1

summarize() {
  python3 - "$1" <<'PYEOF'
import json
import sys

path = sys.argv[1]
try:
    with open(path) as f:
        trace = json.load(f)
except (OSError, json.JSONDecodeError) as err:
    print(f"trace: cannot read {path}: {err}", file=sys.stderr)
    sys.exit(2)

events = trace.get("traceEvents", [])
by_name = {}
roots = set()
for event in events:
    by_name.setdefault(event["name"], []).append(event)
    args = event.get("args", {})
    if args.get("root"):
        roots.add(args["root"])

print(f"trace: {path}: {len(events)} events, {len(roots)} causal trees")
for name in sorted(by_name):
    spans = by_name[name]
    durs = [e["dur"] for e in spans if "dur" in e]
    if durs:
        span_ms = sum(durs) / 1000.0
        print(f"  {name:<14} x{len(spans):<4} total {span_ms:.3f} ms (sim)")
    else:
        print(f"  {name:<14} x{len(spans):<4} (instant)")

metrics = trace.get("dcdoMetrics", {})
counters = metrics.get("counters", {})
if counters:
    print("counters:")
    for name in sorted(counters):
        print(f"  {name} = {counters[name]}")
histograms = metrics.get("histograms", {})
if histograms:
    print("histograms (sim time):")
    for name in sorted(histograms):
        h = histograms[name]
        print(
            f"  {name}: n={h['count']} mean={h['mean_ns'] / 1e6:.3f} ms "
            f"min={h['min_ns'] / 1e6:.3f} ms max={h['max_ns'] / 1e6:.3f} ms"
        )
PYEOF
}

if [ "${1:-}" = "--summarize" ]; then
  [ -n "${2:-}" ] || { echo "usage: $0 --summarize TRACE.json" >&2; exit 2; }
  summarize "$2"
  exit $?
fi

case "${1:-}" in
  --*) echo "usage: $0 [OUT.json] | --summarize TRACE.json" >&2; exit 2 ;;
esac
OUT=${1:-trace_evolution.json}

cmake --preset default >/dev/null || exit 1
cmake --build build -j "$(nproc)" --target traced_evolution || exit 1
./build/examples/traced_evolution "$OUT" || exit 1
summarize "$OUT"
