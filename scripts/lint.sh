#!/usr/bin/env sh
# Lint driver: clang-format (diff mode by default, --fix to rewrite) and
# clang-tidy over the source tree. Degrades gracefully: a missing tool is
# skipped with a notice rather than failing, so the script is usable both on
# dev boxes without LLVM and in CI (which installs both).
#
# Usage:
#   scripts/lint.sh               # check formatting + run clang-tidy
#   scripts/lint.sh --fix         # rewrite formatting in place
#   scripts/lint.sh --format-only # skip clang-tidy (fast pre-commit check)
set -u

cd "$(dirname "$0")/.." || exit 1

FIX=0
FORMAT_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --fix) FIX=1 ;;
    --format-only) FORMAT_ONLY=1 ;;
    *) echo "usage: $0 [--fix] [--format-only]" >&2; exit 2 ;;
  esac
done

SOURCES=$(find src tests bench examples \
  \( -name '*.cc' -o -name '*.cpp' -o -name '*.h' \) | sort)
FAILED=0

# --- clang-format ---
if command -v clang-format >/dev/null 2>&1; then
  if [ "$FIX" = 1 ]; then
    # shellcheck disable=SC2086
    clang-format -i $SOURCES
    echo "lint: formatting rewritten in place"
  else
    UNFORMATTED=""
    for f in $SOURCES; do
      if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
        UNFORMATTED="$UNFORMATTED $f"
      fi
    done
    if [ -n "$UNFORMATTED" ]; then
      echo "lint: files need formatting (run scripts/lint.sh --fix):"
      for f in $UNFORMATTED; do echo "  $f"; done
      FAILED=1
    else
      echo "lint: formatting clean"
    fi
  fi
else
  echo "lint: clang-format not found; skipping format check"
fi

[ "$FORMAT_ONLY" = 1 ] && exit "$FAILED"

# --- clang-tidy (shares the compile database with scripts/analyze.sh) ---
# The top-level CMakeLists always exports compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS); lint and analysis read the same one, so
# a single configure serves both.
if command -v clang-tidy >/dev/null 2>&1; then
  BUILD_DIR=${BUILD_DIR:-build}
  if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: generating compile database in $BUILD_DIR"
    cmake -B "$BUILD_DIR" -S . >/dev/null \
      || { echo "lint: cmake configure failed" >&2; exit 1; }
  fi
  # When the dcdo-tidy plugin is built, load it so the repo-specific
  # dcdo-* checks run alongside the stock ones (scripts/analyze.sh is the
  # gating driver for those; here they are advisory).
  PLUGIN=$(find "$BUILD_DIR/tools/dcdo-tidy" -name 'dcdo_tidy_module.*' \
           2>/dev/null | head -n 1)
  LOAD_ARGS=""
  [ -n "$PLUGIN" ] && LOAD_ARGS="--load=$PLUGIN"
  TIDY_SOURCES=$(find src \( -name '*.cc' -o -name '*.cpp' \) | sort)
  # shellcheck disable=SC2086
  if ! clang-tidy $LOAD_ARGS -p "$BUILD_DIR" --quiet $TIDY_SOURCES; then
    FAILED=1
  fi
else
  echo "lint: clang-tidy not found; skipping static analysis"
fi

exit "$FAILED"
