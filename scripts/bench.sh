#!/usr/bin/env sh
# Benchmark driver: builds the nocheck preset (invariant checking compiled
# out, so the numbers measure the runtime itself) and runs every bench
# binary, merging results into the regression-tracking JSON file.
#
# Usage:
#   scripts/bench.sh                 # full run, updates BENCH_dcdo.json
#   scripts/bench.sh --smoke         # quick CI pass (tiny min_time, no JSON
#                                    # update unless DCDO_BENCH_JSON is set)
#   scripts/bench.sh [--smoke] REGEX # only benches whose name matches REGEX
#   scripts/bench.sh --compare OLD.json NEW.json
#                                    # flag Wall_* regressions > 20% and any
#                                    # SimTime_* drift between two results
#                                    # files; exits 1 if anything is flagged.
#                                    # Entries matching the expected-drift
#                                    # allowlist regex (DCDO_BENCH_DRIFT_ALLOWLIST,
#                                    # default: E13 entries at fetch
#                                    # concurrency > 1, whose whole point is a
#                                    # different simulated time) are reported
#                                    # but never gate
#   scripts/bench.sh --trace-overhead BASE.json TRACED.json
#                                    # compare a DCDO_TRACING=OFF run against
#                                    # a tracing-compiled-but-disabled run:
#                                    # report Wall_* overhead > 5% and any
#                                    # SimTime_* drift. Report-only — always
#                                    # exits 0 when both files are readable
#                                    # (wall numbers are too host-noisy to
#                                    # gate CI on a 5% band)
#
# Environment:
#   DCDO_BENCH_JSON    output file (default: BENCH_dcdo.json at the repo root
#                      for full runs; unset for --smoke so CI runs do not
#                      produce machine-dependent diffs)
#   DCDO_BENCH_PRESET  configure/build preset to run benches from (default:
#                      nocheck; use notrace for the tracing-overhead baseline)
set -u

cd "$(dirname "$0")/.." || exit 1

if [ "${1:-}" = "--compare" ] || [ "${1:-}" = "--trace-overhead" ]; then
  MODE=$1
  OLD_JSON=${2:-}
  NEW_JSON=${3:-}
  if [ -z "$OLD_JSON" ] || [ -z "$NEW_JSON" ]; then
    echo "usage: $0 $MODE OLD.json NEW.json" >&2
    exit 2
  fi
  exec python3 - "$MODE" "$OLD_JSON" "$NEW_JSON" <<'PYEOF'
import json
import os
import re
import sys

# --compare: Wall_* numbers are host time: noisy, so only a > 20% slowdown is
# flagged (exit 1). SimTime_* numbers are simulated time: deterministic by
# design, so ANY drift is flagged — an unintended change to the cost model or
# event ordering.
#
# --trace-overhead: OLD is a DCDO_TRACING=OFF build, NEW has tracing compiled
# in but no context installed. The acceptance band is 5% on Wall_*; SimTime_*
# must not move at all (the tracing layer schedules no events). Report-only:
# wall numbers on shared CI hosts are too noisy to hard-gate a 5% band, so
# overhead is printed but never fails the run.
mode = sys.argv.pop(1)
WALL_REGRESSION_RATIO = 1.05 if mode == "--trace-overhead" else 1.20
REPORT_ONLY = mode == "--trace-overhead"

# Per-entry expected-drift allowlist: SimTime_* entries whose value is
# SUPPOSED to change between baselines (a bench that sweeps a modelled
# hardware knob). Matching entries are reported for visibility but never
# gate. The default exempts exactly the E13 parallel-acquisition entries
# whose last argument (fetch concurrency) is > 1, the E14 naming-scale
# entries whose last argument (shard count) is > 1, and the E16 open-loop
# entries that opt into sessions or formation (their numbers move whenever
# admission or batching policy is tuned). The concurrency-1 / shard-1 /
# E16 OpenLoopLegacy entries stay under the zero-drift gate — they must
# stay byte-identical to the sequential / monolithic / dedup-window
# calibration.
DRIFT_ALLOWLIST = re.compile(
    os.environ.get(
        "DCDO_BENCH_DRIFT_ALLOWLIST",
        r"^SimTime_E13_.*/(4|8|16)/|^SimTime_E14_.*/(2|4|8|16)/iterations"
        r"|^SimTime_E16_(OpenLoopSessions|OpenLoopFormation|"
        r"OpenLoopFormationUrgent|SlowServer|Incast|RetryStorm)/",
    )
)

old_path, new_path = sys.argv[1], sys.argv[2]
try:
    with open(old_path) as f:
        old = json.load(f).get("benchmarks", {})
    with open(new_path) as f:
        new = json.load(f).get("benchmarks", {})
except (OSError, json.JSONDecodeError) as err:
    print(f"bench-compare: cannot read results: {err}", file=sys.stderr)
    sys.exit(2)

common = sorted(set(old) & set(new))
if not common:
    print("bench-compare: no common benchmark entries; nothing to compare")
    sys.exit(0)

flagged = []
allowed = []
compared = 0
for name in common:
    old_ns = old[name].get("real_ns")
    new_ns = new[name].get("real_ns")
    if not isinstance(old_ns, (int, float)) or not isinstance(new_ns, (int, float)):
        continue
    base = name.split("/")[0]
    if base.startswith("Wall_"):
        compared += 1
        if old_ns > 0 and new_ns / old_ns > WALL_REGRESSION_RATIO:
            label = "WALL OVERHEAD  " if REPORT_ONLY else "WALL REGRESSION"
            flagged.append(
                f"  {label} {name}: {old_ns:g} ns -> {new_ns:g} ns "
                f"({new_ns / old_ns:.2f}x)"
            )
    elif base.startswith("SimTime_"):
        compared += 1
        if old_ns != new_ns:
            if DRIFT_ALLOWLIST.search(name):
                allowed.append(
                    f"  expected drift  {name}: {old_ns:g} ns -> {new_ns:g} ns"
                )
                continue
            flagged.append(
                f"  SIMTIME DRIFT   {name}: {old_ns:g} ns -> {new_ns:g} ns"
            )

print(f"bench-compare: {compared} entries compared ({old_path} -> {new_path})")
if allowed:
    print(f"bench-compare: {len(allowed)} allowlisted entries drifted (expected):")
    print("\n".join(allowed))
if flagged:
    print("\n".join(flagged))
    if REPORT_ONLY:
        print(
            f"bench-compare: tracing overhead above "
            f"{(WALL_REGRESSION_RATIO - 1) * 100:.0f}% on the entries above "
            "(report-only; not failing the run)"
        )
        sys.exit(0)
    sys.exit(1)
threshold = f"{(WALL_REGRESSION_RATIO - 1) * 100:.0f}%"
print(f"bench-compare: no Wall_* slowdowns > {threshold}, no SimTime_* drift")
PYEOF
fi

SMOKE=0
FILTER=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --*) echo "usage: $0 [--smoke|--compare OLD NEW] [benchmark-filter-regex]" >&2; exit 2 ;;
    *) FILTER="$arg" ;;
  esac
done

# Build (RelWithDebInfo, DCDO_CHECKING=OFF; preset overridable for the
# tracing-overhead baseline).
PRESET=${DCDO_BENCH_PRESET:-nocheck}
BUILD_DIR="build-$PRESET"
cmake --preset "$PRESET" >/dev/null || exit 1
cmake --build "$BUILD_DIR" -j "$(nproc)" || exit 1

if [ "$SMOKE" = 1 ]; then
  # Smoke mode: prove every bench still runs, not collect stable numbers.
  # DCDO_BENCH_SMOKE keeps the heavyweight registrations off (E14's
  # million-object sweep registers only when it is unset), so CI exercises
  # the same code paths at miniature scale.
  EXTRA_ARGS="--benchmark_min_time=0.01"
  DCDO_BENCH_SMOKE=1
  export DCDO_BENCH_SMOKE
else
  EXTRA_ARGS=""
  DCDO_BENCH_JSON=${DCDO_BENCH_JSON:-$PWD/BENCH_dcdo.json}
  export DCDO_BENCH_JSON
  echo "bench: recording results into $DCDO_BENCH_JSON"
fi
if [ -n "$FILTER" ]; then
  EXTRA_ARGS="$EXTRA_ARGS --benchmark_filter=$FILTER"
fi

FAILED=0
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  echo "== $(basename "$bench") =="
  # shellcheck disable=SC2086
  "$bench" $EXTRA_ARGS || FAILED=1
done

exit "$FAILED"
