#!/usr/bin/env sh
# Benchmark driver: builds the nocheck preset (invariant checking compiled
# out, so the numbers measure the runtime itself) and runs every bench
# binary, merging results into the regression-tracking JSON file.
#
# Usage:
#   scripts/bench.sh                 # full run, updates BENCH_dcdo.json
#   scripts/bench.sh --smoke         # quick CI pass (tiny min_time, no JSON
#                                    # update unless DCDO_BENCH_JSON is set)
#   scripts/bench.sh [--smoke] REGEX # only benches whose name matches REGEX
#
# Environment:
#   DCDO_BENCH_JSON  output file (default: BENCH_dcdo.json at the repo root
#                    for full runs; unset for --smoke so CI runs do not
#                    produce machine-dependent diffs)
set -u

cd "$(dirname "$0")/.." || exit 1

SMOKE=0
FILTER=""
for arg in "$@"; do
  case "$arg" in
    --smoke) SMOKE=1 ;;
    --*) echo "usage: $0 [--smoke] [benchmark-filter-regex]" >&2; exit 2 ;;
    *) FILTER="$arg" ;;
  esac
done

# Build (RelWithDebInfo, DCDO_CHECKING=OFF).
cmake --preset nocheck >/dev/null || exit 1
cmake --build build-nocheck -j "$(nproc)" || exit 1

if [ "$SMOKE" = 1 ]; then
  # Smoke mode: prove every bench still runs, not collect stable numbers.
  EXTRA_ARGS="--benchmark_min_time=0.01"
else
  EXTRA_ARGS=""
  DCDO_BENCH_JSON=${DCDO_BENCH_JSON:-$PWD/BENCH_dcdo.json}
  export DCDO_BENCH_JSON
  echo "bench: recording results into $DCDO_BENCH_JSON"
fi
if [ -n "$FILTER" ]; then
  EXTRA_ARGS="$EXTRA_ARGS --benchmark_filter=$FILTER"
fi

FAILED=0
for bench in build-nocheck/bench/bench_*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  echo "== $(basename "$bench") =="
  # shellcheck disable=SC2086
  "$bench" $EXTRA_ARGS || FAILED=1
done

exit "$FAILED"
