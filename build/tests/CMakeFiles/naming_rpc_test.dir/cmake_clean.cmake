file(REMOVE_RECURSE
  "CMakeFiles/naming_rpc_test.dir/naming/binding_test.cpp.o"
  "CMakeFiles/naming_rpc_test.dir/naming/binding_test.cpp.o.d"
  "CMakeFiles/naming_rpc_test.dir/naming/name_service_test.cpp.o"
  "CMakeFiles/naming_rpc_test.dir/naming/name_service_test.cpp.o.d"
  "CMakeFiles/naming_rpc_test.dir/rpc/client_test.cpp.o"
  "CMakeFiles/naming_rpc_test.dir/rpc/client_test.cpp.o.d"
  "CMakeFiles/naming_rpc_test.dir/rpc/transport_test.cpp.o"
  "CMakeFiles/naming_rpc_test.dir/rpc/transport_test.cpp.o.d"
  "naming_rpc_test"
  "naming_rpc_test.pdb"
  "naming_rpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_rpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
