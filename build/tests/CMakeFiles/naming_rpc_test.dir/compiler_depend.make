# Empty compiler generated dependencies file for naming_rpc_test.
# This may be replaced when dependencies are built.
