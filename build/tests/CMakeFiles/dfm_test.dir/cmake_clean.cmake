file(REMOVE_RECURSE
  "CMakeFiles/dfm_test.dir/dfm/compatibility_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/compatibility_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/concurrency_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/concurrency_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/dependency_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/dependency_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/descriptor_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/descriptor_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/descriptor_wire_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/descriptor_wire_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/mapper_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/mapper_test.cpp.o.d"
  "CMakeFiles/dfm_test.dir/dfm/state_test.cpp.o"
  "CMakeFiles/dfm_test.dir/dfm/state_test.cpp.o.d"
  "dfm_test"
  "dfm_test.pdb"
  "dfm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
