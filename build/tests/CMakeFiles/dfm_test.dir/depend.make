# Empty dependencies file for dfm_test.
# This may be replaced when dependencies are built.
