file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/coordinator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/coordinator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/dcdo_test.cpp.o"
  "CMakeFiles/core_test.dir/core/dcdo_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/manager_test.cpp.o"
  "CMakeFiles/core_test.dir/core/manager_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/policy_test.cpp.o"
  "CMakeFiles/core_test.dir/core/policy_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/proxy_test.cpp.o"
  "CMakeFiles/core_test.dir/core/proxy_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
