file(REMOVE_RECURSE
  "CMakeFiles/dcdo_sim.dir/cost_model.cc.o"
  "CMakeFiles/dcdo_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/dcdo_sim.dir/host.cc.o"
  "CMakeFiles/dcdo_sim.dir/host.cc.o.d"
  "CMakeFiles/dcdo_sim.dir/network.cc.o"
  "CMakeFiles/dcdo_sim.dir/network.cc.o.d"
  "CMakeFiles/dcdo_sim.dir/sim_time.cc.o"
  "CMakeFiles/dcdo_sim.dir/sim_time.cc.o.d"
  "CMakeFiles/dcdo_sim.dir/simulation.cc.o"
  "CMakeFiles/dcdo_sim.dir/simulation.cc.o.d"
  "libdcdo_sim.a"
  "libdcdo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
