# Empty compiler generated dependencies file for dcdo_sim.
# This may be replaced when dependencies are built.
