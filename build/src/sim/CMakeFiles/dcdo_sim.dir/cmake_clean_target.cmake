file(REMOVE_RECURSE
  "libdcdo_sim.a"
)
