file(REMOVE_RECURSE
  "CMakeFiles/dcdo_common.dir/bytes.cc.o"
  "CMakeFiles/dcdo_common.dir/bytes.cc.o.d"
  "CMakeFiles/dcdo_common.dir/logging.cc.o"
  "CMakeFiles/dcdo_common.dir/logging.cc.o.d"
  "CMakeFiles/dcdo_common.dir/object_id.cc.o"
  "CMakeFiles/dcdo_common.dir/object_id.cc.o.d"
  "CMakeFiles/dcdo_common.dir/serialize.cc.o"
  "CMakeFiles/dcdo_common.dir/serialize.cc.o.d"
  "CMakeFiles/dcdo_common.dir/status.cc.o"
  "CMakeFiles/dcdo_common.dir/status.cc.o.d"
  "CMakeFiles/dcdo_common.dir/strings.cc.o"
  "CMakeFiles/dcdo_common.dir/strings.cc.o.d"
  "CMakeFiles/dcdo_common.dir/version_id.cc.o"
  "CMakeFiles/dcdo_common.dir/version_id.cc.o.d"
  "libdcdo_common.a"
  "libdcdo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
