file(REMOVE_RECURSE
  "libdcdo_common.a"
)
