# Empty compiler generated dependencies file for dcdo_common.
# This may be replaced when dependencies are built.
