file(REMOVE_RECURSE
  "CMakeFiles/dcdo_core.dir/coordinator.cc.o"
  "CMakeFiles/dcdo_core.dir/coordinator.cc.o.d"
  "CMakeFiles/dcdo_core.dir/dcdo.cc.o"
  "CMakeFiles/dcdo_core.dir/dcdo.cc.o.d"
  "CMakeFiles/dcdo_core.dir/evolution_policy.cc.o"
  "CMakeFiles/dcdo_core.dir/evolution_policy.cc.o.d"
  "CMakeFiles/dcdo_core.dir/ico_directory.cc.o"
  "CMakeFiles/dcdo_core.dir/ico_directory.cc.o.d"
  "CMakeFiles/dcdo_core.dir/manager.cc.o"
  "CMakeFiles/dcdo_core.dir/manager.cc.o.d"
  "CMakeFiles/dcdo_core.dir/proxy.cc.o"
  "CMakeFiles/dcdo_core.dir/proxy.cc.o.d"
  "libdcdo_core.a"
  "libdcdo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
