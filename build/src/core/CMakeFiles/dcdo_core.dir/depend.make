# Empty dependencies file for dcdo_core.
# This may be replaced when dependencies are built.
