file(REMOVE_RECURSE
  "libdcdo_core.a"
)
