file(REMOVE_RECURSE
  "libdcdo_runtime.a"
)
