file(REMOVE_RECURSE
  "CMakeFiles/dcdo_runtime.dir/class_object.cc.o"
  "CMakeFiles/dcdo_runtime.dir/class_object.cc.o.d"
  "CMakeFiles/dcdo_runtime.dir/method_table.cc.o"
  "CMakeFiles/dcdo_runtime.dir/method_table.cc.o.d"
  "CMakeFiles/dcdo_runtime.dir/testbed.cc.o"
  "CMakeFiles/dcdo_runtime.dir/testbed.cc.o.d"
  "libdcdo_runtime.a"
  "libdcdo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
