# Empty dependencies file for dcdo_runtime.
# This may be replaced when dependencies are built.
