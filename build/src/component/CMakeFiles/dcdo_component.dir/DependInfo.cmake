
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/component/component.cc" "src/component/CMakeFiles/dcdo_component.dir/component.cc.o" "gcc" "src/component/CMakeFiles/dcdo_component.dir/component.cc.o.d"
  "/root/repo/src/component/dynamic_function.cc" "src/component/CMakeFiles/dcdo_component.dir/dynamic_function.cc.o" "gcc" "src/component/CMakeFiles/dcdo_component.dir/dynamic_function.cc.o.d"
  "/root/repo/src/component/ico.cc" "src/component/CMakeFiles/dcdo_component.dir/ico.cc.o" "gcc" "src/component/CMakeFiles/dcdo_component.dir/ico.cc.o.d"
  "/root/repo/src/component/implementation_type.cc" "src/component/CMakeFiles/dcdo_component.dir/implementation_type.cc.o" "gcc" "src/component/CMakeFiles/dcdo_component.dir/implementation_type.cc.o.d"
  "/root/repo/src/component/native_code_registry.cc" "src/component/CMakeFiles/dcdo_component.dir/native_code_registry.cc.o" "gcc" "src/component/CMakeFiles/dcdo_component.dir/native_code_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcdo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dcdo_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcdo_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
