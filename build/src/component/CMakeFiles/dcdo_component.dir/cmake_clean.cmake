file(REMOVE_RECURSE
  "CMakeFiles/dcdo_component.dir/component.cc.o"
  "CMakeFiles/dcdo_component.dir/component.cc.o.d"
  "CMakeFiles/dcdo_component.dir/dynamic_function.cc.o"
  "CMakeFiles/dcdo_component.dir/dynamic_function.cc.o.d"
  "CMakeFiles/dcdo_component.dir/ico.cc.o"
  "CMakeFiles/dcdo_component.dir/ico.cc.o.d"
  "CMakeFiles/dcdo_component.dir/implementation_type.cc.o"
  "CMakeFiles/dcdo_component.dir/implementation_type.cc.o.d"
  "CMakeFiles/dcdo_component.dir/native_code_registry.cc.o"
  "CMakeFiles/dcdo_component.dir/native_code_registry.cc.o.d"
  "libdcdo_component.a"
  "libdcdo_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
