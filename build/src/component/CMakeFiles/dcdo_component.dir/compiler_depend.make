# Empty compiler generated dependencies file for dcdo_component.
# This may be replaced when dependencies are built.
