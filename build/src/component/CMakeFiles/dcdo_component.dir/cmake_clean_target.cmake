file(REMOVE_RECURSE
  "libdcdo_component.a"
)
