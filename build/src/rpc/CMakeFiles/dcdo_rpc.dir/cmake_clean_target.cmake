file(REMOVE_RECURSE
  "libdcdo_rpc.a"
)
