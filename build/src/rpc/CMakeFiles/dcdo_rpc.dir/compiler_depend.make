# Empty compiler generated dependencies file for dcdo_rpc.
# This may be replaced when dependencies are built.
