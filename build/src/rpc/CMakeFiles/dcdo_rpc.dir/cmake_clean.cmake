file(REMOVE_RECURSE
  "CMakeFiles/dcdo_rpc.dir/client.cc.o"
  "CMakeFiles/dcdo_rpc.dir/client.cc.o.d"
  "CMakeFiles/dcdo_rpc.dir/message.cc.o"
  "CMakeFiles/dcdo_rpc.dir/message.cc.o.d"
  "CMakeFiles/dcdo_rpc.dir/transport.cc.o"
  "CMakeFiles/dcdo_rpc.dir/transport.cc.o.d"
  "libdcdo_rpc.a"
  "libdcdo_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
