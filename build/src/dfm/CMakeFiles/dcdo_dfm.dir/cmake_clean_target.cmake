file(REMOVE_RECURSE
  "libdcdo_dfm.a"
)
