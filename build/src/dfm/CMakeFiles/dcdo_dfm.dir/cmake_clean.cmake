file(REMOVE_RECURSE
  "CMakeFiles/dcdo_dfm.dir/compatibility.cc.o"
  "CMakeFiles/dcdo_dfm.dir/compatibility.cc.o.d"
  "CMakeFiles/dcdo_dfm.dir/dependency.cc.o"
  "CMakeFiles/dcdo_dfm.dir/dependency.cc.o.d"
  "CMakeFiles/dcdo_dfm.dir/descriptor.cc.o"
  "CMakeFiles/dcdo_dfm.dir/descriptor.cc.o.d"
  "CMakeFiles/dcdo_dfm.dir/descriptor_wire.cc.o"
  "CMakeFiles/dcdo_dfm.dir/descriptor_wire.cc.o.d"
  "CMakeFiles/dcdo_dfm.dir/mapper.cc.o"
  "CMakeFiles/dcdo_dfm.dir/mapper.cc.o.d"
  "CMakeFiles/dcdo_dfm.dir/state.cc.o"
  "CMakeFiles/dcdo_dfm.dir/state.cc.o.d"
  "libdcdo_dfm.a"
  "libdcdo_dfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_dfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
