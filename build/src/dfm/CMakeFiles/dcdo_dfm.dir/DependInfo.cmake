
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfm/compatibility.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/compatibility.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/compatibility.cc.o.d"
  "/root/repo/src/dfm/dependency.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/dependency.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/dependency.cc.o.d"
  "/root/repo/src/dfm/descriptor.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/descriptor.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/descriptor.cc.o.d"
  "/root/repo/src/dfm/descriptor_wire.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/descriptor_wire.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/descriptor_wire.cc.o.d"
  "/root/repo/src/dfm/mapper.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/mapper.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/mapper.cc.o.d"
  "/root/repo/src/dfm/state.cc" "src/dfm/CMakeFiles/dcdo_dfm.dir/state.cc.o" "gcc" "src/dfm/CMakeFiles/dcdo_dfm.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcdo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dcdo_component.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcdo_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dcdo_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
