# Empty dependencies file for dcdo_dfm.
# This may be replaced when dependencies are built.
