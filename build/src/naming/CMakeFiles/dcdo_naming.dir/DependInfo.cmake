
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/naming/address.cc" "src/naming/CMakeFiles/dcdo_naming.dir/address.cc.o" "gcc" "src/naming/CMakeFiles/dcdo_naming.dir/address.cc.o.d"
  "/root/repo/src/naming/binding_agent.cc" "src/naming/CMakeFiles/dcdo_naming.dir/binding_agent.cc.o" "gcc" "src/naming/CMakeFiles/dcdo_naming.dir/binding_agent.cc.o.d"
  "/root/repo/src/naming/binding_cache.cc" "src/naming/CMakeFiles/dcdo_naming.dir/binding_cache.cc.o" "gcc" "src/naming/CMakeFiles/dcdo_naming.dir/binding_cache.cc.o.d"
  "/root/repo/src/naming/name_service.cc" "src/naming/CMakeFiles/dcdo_naming.dir/name_service.cc.o" "gcc" "src/naming/CMakeFiles/dcdo_naming.dir/name_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dcdo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
