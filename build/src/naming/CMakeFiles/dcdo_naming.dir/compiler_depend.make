# Empty compiler generated dependencies file for dcdo_naming.
# This may be replaced when dependencies are built.
