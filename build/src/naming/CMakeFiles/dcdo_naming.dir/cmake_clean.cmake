file(REMOVE_RECURSE
  "CMakeFiles/dcdo_naming.dir/address.cc.o"
  "CMakeFiles/dcdo_naming.dir/address.cc.o.d"
  "CMakeFiles/dcdo_naming.dir/binding_agent.cc.o"
  "CMakeFiles/dcdo_naming.dir/binding_agent.cc.o.d"
  "CMakeFiles/dcdo_naming.dir/binding_cache.cc.o"
  "CMakeFiles/dcdo_naming.dir/binding_cache.cc.o.d"
  "CMakeFiles/dcdo_naming.dir/name_service.cc.o"
  "CMakeFiles/dcdo_naming.dir/name_service.cc.o.d"
  "libdcdo_naming.a"
  "libdcdo_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdo_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
