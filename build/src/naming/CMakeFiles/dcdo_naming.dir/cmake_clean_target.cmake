file(REMOVE_RECURSE
  "libdcdo_naming.a"
)
