file(REMOVE_RECURSE
  "CMakeFiles/coordinated_upgrade.dir/coordinated_upgrade.cpp.o"
  "CMakeFiles/coordinated_upgrade.dir/coordinated_upgrade.cpp.o.d"
  "coordinated_upgrade"
  "coordinated_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinated_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
