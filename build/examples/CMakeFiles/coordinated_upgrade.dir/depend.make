# Empty dependencies file for coordinated_upgrade.
# This may be replaced when dependencies are built.
