# Empty dependencies file for hot_patch_service.
# This may be replaced when dependencies are built.
