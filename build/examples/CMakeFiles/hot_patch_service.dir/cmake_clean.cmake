file(REMOVE_RECURSE
  "CMakeFiles/hot_patch_service.dir/hot_patch_service.cpp.o"
  "CMakeFiles/hot_patch_service.dir/hot_patch_service.cpp.o.d"
  "hot_patch_service"
  "hot_patch_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hot_patch_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
