file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_migration.dir/heterogeneous_migration.cpp.o"
  "CMakeFiles/heterogeneous_migration.dir/heterogeneous_migration.cpp.o.d"
  "heterogeneous_migration"
  "heterogeneous_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
