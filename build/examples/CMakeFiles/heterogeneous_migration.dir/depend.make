# Empty dependencies file for heterogeneous_migration.
# This may be replaced when dependencies are built.
