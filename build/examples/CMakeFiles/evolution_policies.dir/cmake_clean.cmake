file(REMOVE_RECURSE
  "CMakeFiles/evolution_policies.dir/evolution_policies.cpp.o"
  "CMakeFiles/evolution_policies.dir/evolution_policies.cpp.o.d"
  "evolution_policies"
  "evolution_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolution_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
