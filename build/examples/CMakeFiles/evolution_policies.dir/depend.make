# Empty dependencies file for evolution_policies.
# This may be replaced when dependencies are built.
