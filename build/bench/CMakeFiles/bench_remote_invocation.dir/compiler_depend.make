# Empty compiler generated dependencies file for bench_remote_invocation.
# This may be replaced when dependencies are built.
