
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_remote_invocation.cpp" "bench/CMakeFiles/bench_remote_invocation.dir/bench_remote_invocation.cpp.o" "gcc" "bench/CMakeFiles/bench_remote_invocation.dir/bench_remote_invocation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dcdo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfm/CMakeFiles/dcdo_dfm.dir/DependInfo.cmake"
  "/root/repo/build/src/component/CMakeFiles/dcdo_component.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcdo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/dcdo_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/dcdo_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcdo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dcdo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
