file(REMOVE_RECURSE
  "CMakeFiles/bench_remote_invocation.dir/bench_remote_invocation.cpp.o"
  "CMakeFiles/bench_remote_invocation.dir/bench_remote_invocation.cpp.o.d"
  "bench_remote_invocation"
  "bench_remote_invocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_remote_invocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
