file(REMOVE_RECURSE
  "CMakeFiles/bench_creation.dir/bench_creation.cpp.o"
  "CMakeFiles/bench_creation.dir/bench_creation.cpp.o.d"
  "bench_creation"
  "bench_creation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_creation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
