# Empty compiler generated dependencies file for bench_evolution_cost.
# This may be replaced when dependencies are built.
