file(REMOVE_RECURSE
  "CMakeFiles/bench_evolution_cost.dir/bench_evolution_cost.cpp.o"
  "CMakeFiles/bench_evolution_cost.dir/bench_evolution_cost.cpp.o.d"
  "bench_evolution_cost"
  "bench_evolution_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evolution_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
