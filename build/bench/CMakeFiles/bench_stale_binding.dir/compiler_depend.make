# Empty compiler generated dependencies file for bench_stale_binding.
# This may be replaced when dependencies are built.
