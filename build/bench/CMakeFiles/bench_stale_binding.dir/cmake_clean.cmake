file(REMOVE_RECURSE
  "CMakeFiles/bench_stale_binding.dir/bench_stale_binding.cpp.o"
  "CMakeFiles/bench_stale_binding.dir/bench_stale_binding.cpp.o.d"
  "bench_stale_binding"
  "bench_stale_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stale_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
