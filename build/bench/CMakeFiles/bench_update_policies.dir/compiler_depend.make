# Empty compiler generated dependencies file for bench_update_policies.
# This may be replaced when dependencies are built.
