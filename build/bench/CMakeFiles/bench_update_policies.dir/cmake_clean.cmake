file(REMOVE_RECURSE
  "CMakeFiles/bench_update_policies.dir/bench_update_policies.cpp.o"
  "CMakeFiles/bench_update_policies.dir/bench_update_policies.cpp.o.d"
  "bench_update_policies"
  "bench_update_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
