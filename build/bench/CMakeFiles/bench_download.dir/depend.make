# Empty dependencies file for bench_download.
# This may be replaced when dependencies are built.
