file(REMOVE_RECURSE
  "CMakeFiles/bench_download.dir/bench_download.cpp.o"
  "CMakeFiles/bench_download.dir/bench_download.cpp.o.d"
  "bench_download"
  "bench_download.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_download.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
