# Empty dependencies file for bench_dfm_scaling.
# This may be replaced when dependencies are built.
