file(REMOVE_RECURSE
  "CMakeFiles/bench_dfm_scaling.dir/bench_dfm_scaling.cpp.o"
  "CMakeFiles/bench_dfm_scaling.dir/bench_dfm_scaling.cpp.o.d"
  "bench_dfm_scaling"
  "bench_dfm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dfm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
