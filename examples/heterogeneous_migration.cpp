// Heterogeneous migration with implementation types (paper Section 2.1).
//
// "The most important reason [for implementation types] is so that a system
// can employ compiled, architecture-specific, executable code in a
// heterogeneous environment, and still allow objects to migrate from one
// node to another, even if the architectures of the two nodes are
// different."
//
// A checksum service is built from one component whose registry holds a
// *native build per architecture*. As the DCDO migrates around a mixed
// x86/SPARC/Alpha/NT cluster it keeps its version and its clients, while the
// mapped build swaps underneath. A second, x86-only service demonstrates the
// guard rail: migration to an incompatible host is refused up front.
//
//   ./build/examples/heterogeneous_migration
#include <cstdio>

#include "common/strings.h"
#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Testbed::Options options;
  options.heterogeneous = true;  // hosts rotate x86 / sparc / alpha / nt
  Testbed testbed(options);

  // One symbol, four native builds. Each build reports itself so we can see
  // which one the DFM mapped after each migration.
  for (auto arch : {sim::Architecture::kX86Linux,
                    sim::Architecture::kSparcSolaris,
                    sim::Architecture::kAlphaOsf, sim::Architecture::kX86Nt}) {
    testbed.registry().Register(
        "cksum/sum", ImplementationType::Native(arch),
        [arch](CallContext&, const ByteBuffer& args) {
          std::uint64_t sum = 0;
          for (std::byte b : args.span()) sum += std::to_integer<int>(b);
          return Result<ByteBuffer>(ByteBuffer::FromString(
              std::to_string(sum) + " (computed by the " +
              std::string(sim::ArchitectureName(arch)) + " build)"));
        });
  }
  auto comp = ComponentBuilder("cksum")
                  .SetType(ImplementationType::Portable())  // mappable anywhere
                  .SetCodeBytes(200 * 1024)
                  .AddFunction("sum", "u(b)", "cksum/sum")
                  .Build();
  Check(comp.status(), "build component");

  DcdoManager manager("cksum-svc", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeSingleVersionExplicit());
  Check(manager.PublishComponent(*comp).status(), "publish");
  VersionId v1 = *manager.CreateRootVersion();
  DfmDescriptor* d1 = *manager.MutableDescriptor(v1);
  Check(d1->IncorporateComponent(*comp), "incorporate");
  Check(d1->EnableFunction("sum", comp->id), "enable");
  Check(manager.MarkInstantiable(v1), "freeze");
  Check(manager.SetCurrentVersion(v1), "designate");

  ObjectId service;
  bool created = false;
  manager.CreateInstance(testbed.host(4), [&](Result<ObjectId> result) {
    Check(result.status(), "create");
    service = *result;
    created = true;
  });
  testbed.simulation().RunWhile([&] { return !created; });

  auto client = testbed.MakeClient(0);
  ByteBuffer payload = ByteBuffer::FromString("abc");

  // Tour the cluster: x86-linux (home) -> sparc -> alpha -> nt.
  for (std::size_t host_index : {4u, 1u, 2u, 3u}) {
    if (manager.FindInstance(service)->address().node !=
        testbed.host(host_index)->node()) {
      sim::SimTime start = testbed.simulation().Now();
      bool moved = false;
      manager.MigrateInstance(service, testbed.host(host_index),
                              [&](Status status) {
                                Check(status, "migrate");
                                moved = true;
                              });
      testbed.simulation().RunWhile([&] { return !moved; });
      std::printf("migrated to node %u (%s) in %s\n",
                  testbed.host(host_index)->node(),
                  std::string(sim::ArchitectureName(
                                  testbed.host(host_index)->architecture()))
                      .c_str(),
                  HumanSeconds((testbed.simulation().Now() - start)
                                   .ToSeconds())
                      .c_str());
    }
    auto reply = client->InvokeBlocking(service, "sum", payload);
    Check(reply.status(), "invoke");
    std::printf("  sum(\"abc\") = %s  [version %s]\n",
                reply->ToString().c_str(),
                manager.InstanceVersion(service)->ToString().c_str());
  }

  // The guard rail: a service whose only build is x86-linux native.
  std::printf("\nx86-only service:\n");
  testbed.registry().Register(
      "native86/sum", ImplementationType::Native(sim::Architecture::kX86Linux),
      [](CallContext&, const ByteBuffer&) {
        return Result<ByteBuffer>(ByteBuffer::FromString("x86 only"));
      });
  auto native = ComponentBuilder("native86")
                    .SetType(ImplementationType::Native(
                        sim::Architecture::kX86Linux))
                    .AddFunction("sum", "u(b)", "native86/sum")
                    .Build();
  Check(native.status(), "build native component");
  DcdoManager native_manager("native-svc", testbed.host(0),
                             &testbed.transport(), &testbed.agent(),
                             &testbed.registry(),
                             MakeSingleVersionExplicit());
  Check(native_manager.PublishComponent(*native).status(), "publish");
  VersionId nv1 = *native_manager.CreateRootVersion();
  DfmDescriptor* nd1 = *native_manager.MutableDescriptor(nv1);
  Check(nd1->IncorporateComponent(*native), "incorporate");
  Check(nd1->EnableFunction("sum", native->id), "enable");
  Check(native_manager.MarkInstantiable(nv1), "freeze");
  Check(native_manager.SetCurrentVersion(nv1), "designate");

  ObjectId pinned;
  created = false;
  native_manager.CreateInstance(testbed.host(4), [&](Result<ObjectId> r) {
    Check(r.status(), "create native");
    pinned = *r;
    created = true;
  });
  testbed.simulation().RunWhile([&] { return !created; });

  bool refused = false;
  native_manager.MigrateInstance(pinned, testbed.host(1),  // sparc host
                                 [&](Status status) {
                                   refused = !status.ok();
                                   std::printf(
                                       "  migrate x86-only service to sparc: "
                                       "%s\n",
                                       status.ToString().c_str());
                                 });
  testbed.simulation().Run();
  std::printf("  service still serving on its x86 host: %s\n",
              refused ? "yes" : "no");
  return 0;
}
