// The E6 evolution timeline, regenerated as a causal trace.
//
// Runs the paper's headline comparison — on-the-fly DCDO evolution vs. the
// stale-binding penalty of a replaced activation — on a traced testbed and
// exports the whole causal history as Chrome trace-event JSON. Load the
// file in chrome://tracing or https://ui.perfetto.dev: the ~31 s
// stale-binding recovery reads directly off the timeline as
//
//   rpc.call ── rpc.attempt[1] ─ rpc.timeout ─ rpc.attempt[2] ─ ... ─
//              rpc.rebind ─ rpc.attempt (rebound) ─ rpc.dispatch ─ reply
//
// while the DCDO evolution shows up as a sub-second `evolve` span with the
// service's dfm.call traffic flowing uninterrupted around it.
//
//   ./build/examples/traced_evolution [output.json]
#include <cstdio>
#include <string>

#include "common/strings.h"
#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "trace_evolution.json";

  Testbed::Options options;
  options.tracing = true;
  Testbed testbed(options);
  if (testbed.tracer() == nullptr) {
    std::fprintf(stderr,
                 "traced_evolution: this build has DCDO_TRACING off; "
                 "reconfigure with -DDCDO_TRACING=ON\n");
    return 1;
  }

  // --- Act 1: a DCDO service evolves on the fly (E6, DCDO side) ---------
  testbed.registry().Register(
      "pricing-v1/price", ImplementationType::Portable(),
      [](CallContext&, const ByteBuffer& args) {
        return Result<ByteBuffer>(
            ByteBuffer::FromString("surcharged:" + args.ToString()));
      });
  testbed.registry().Register(
      "pricing-v2/price", ImplementationType::Portable(),
      [](CallContext&, const ByteBuffer& args) {
        return Result<ByteBuffer>(
            ByteBuffer::FromString("discounted:" + args.ToString()));
      });
  auto comp_v1 = ComponentBuilder("pricing-v1")
                     .SetCodeBytes(550'000)
                     .AddFunction("price", "b(b)", "pricing-v1/price")
                     .Build();
  auto comp_v2 = ComponentBuilder("pricing-v2")
                     .SetCodeBytes(550'000)
                     .AddFunction("price", "b(b)", "pricing-v2/price")
                     .Build();
  Check(comp_v1.status(), "build component v1");
  Check(comp_v2.status(), "build component v2");

  DcdoManager manager("pricing", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeSingleVersionExplicit());
  Check(manager.PublishComponent(*comp_v1).status(), "publish v1");
  Check(manager.PublishComponent(*comp_v2).status(), "publish v2");

  VersionId v1 = *manager.CreateRootVersion();
  DfmDescriptor* d1 = *manager.MutableDescriptor(v1);
  Check(d1->IncorporateComponent(*comp_v1), "incorporate v1");
  Check(d1->EnableFunction("price", comp_v1->id), "enable price");
  Check(manager.MarkInstantiable(v1), "freeze v1");
  Check(manager.SetCurrentVersion(v1), "designate v1");

  ObjectId service;
  bool created = false;
  manager.CreateInstance(testbed.host(2), [&](Result<ObjectId> result) {
    Check(result.status(), "create service");
    service = *result;
    created = true;
  });
  testbed.simulation().RunWhile([&] { return !created; });

  auto client = testbed.MakeClient(9);
  Check(client->InvokeBlocking(service, "price", ByteBuffer::FromString("1000"))
            .status(),
        "pre-evolution call");

  VersionId v11 = *manager.DeriveVersion(v1);
  DfmDescriptor* d11 = *manager.MutableDescriptor(v11);
  Check(d11->IncorporateComponent(*comp_v2), "incorporate v2");
  Check(d11->SwitchImplementation("price", comp_v2->id), "switch price");
  Check(manager.MarkInstantiable(v11), "freeze v1.1");
  Check(manager.SetCurrentVersion(v11), "designate v1.1");

  sim::SimTime evolve_start = testbed.simulation().Now();
  bool evolved = false;
  manager.UpdateInstance(service, [&](Status status) {
    Check(status, "evolve service");
    evolved = true;
  });
  testbed.simulation().RunWhile([&] { return !evolved; });
  double evolve_seconds = (testbed.simulation().Now() - evolve_start).ToSeconds();

  Check(client->InvokeBlocking(service, "price", ByteBuffer::FromString("1000"))
            .status(),
        "post-evolution call");

  // --- Act 2: the stale-binding recovery (E6, monolithic side) ----------
  // A plain activation is replaced behind the client's back; the retries,
  // the timeouts, and the rebind all land in the same causal tree.
  ObjectId legacy = ObjectId::Next(domains::kInstance);
  testbed.transport().RegisterEndpoint(
      5, 50, 1, [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
        reply(rpc::MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  testbed.agent().Bind(legacy, ObjectAddress{5, 50, 1});
  Check(client->InvokeBlocking(legacy, "warmup").status(), "legacy warmup");

  testbed.transport().UnregisterEndpoint(5, 50);  // the executable swap
  testbed.transport().RegisterEndpoint(
      6, 60, 2, [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
        reply(rpc::MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  testbed.agent().Bind(legacy, ObjectAddress{6, 60, 2});

  sim::SimTime stale_start = testbed.simulation().Now();
  Check(client->InvokeBlocking(legacy, "afterSwap").status(),
        "stale-binding recovery call");
  double stale_seconds = (testbed.simulation().Now() - stale_start).ToSeconds();

  Check(testbed.DumpTrace(out_path), "export trace");

  const trace::MetricsRegistry& metrics = testbed.tracer()->metrics();
  std::printf("traced_evolution: DCDO evolution took %s; the stale-binding\n"
              "recovery took %s (%llu timeouts, %llu rebind)\n",
              HumanSeconds(evolve_seconds).c_str(),
              HumanSeconds(stale_seconds).c_str(),
              static_cast<unsigned long long>(
                  metrics.CounterValue("rpc.timeouts")),
              static_cast<unsigned long long>(
                  metrics.CounterValue("rpc.rebinds")));
  std::printf("traced_evolution: %zu spans exported to %s\n",
              testbed.tracer()->span_count(), out_path.c_str());
  return 0;
}
