// Coordinated cross-type upgrade (paper Section 3.4).
//
// The explicit-update policy exists so that "the policy for updating
// instances [can] be made by a different external object ... useful when,
// for example, multiple object types need to be updated in coordination
// with one another."
//
// Here a "gateway" type and a "store" type speak protocol A. Protocol B
// changes the wire format — upgrading one type without the other breaks the
// pipeline, so the operator uses an UpdateCoordinator to move both live
// instances in one validated batch. The example then shows the other half
// of the safety story: a batch containing an interface-breaking version is
// rejected up front by the compatibility check.
//
//   ./build/examples/coordinated_upgrade
#include <cstdio>

#include "common/strings.h"
#include "core/coordinator.h"
#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct Service {
  std::unique_ptr<DcdoManager> manager;
  ImplementationComponent comp_a;  // protocol A implementation
  ImplementationComponent comp_b;  // protocol B implementation
  VersionId v1, v2;
  ObjectId instance;
};

// Builds a type whose `handle` function reports which protocol it speaks.
Service MakeService(Testbed& testbed, const std::string& name,
                    std::size_t host) {
  Service service;
  for (const char* proto : {"A", "B"}) {
    std::string symbol = name + "-" + proto + "/handle";
    std::string tag = name + " speaks protocol " + proto;
    testbed.registry().Register(symbol, ImplementationType::Portable(),
                                [tag](CallContext&, const ByteBuffer&) {
                                  return Result<ByteBuffer>(
                                      ByteBuffer::FromString(tag));
                                });
  }
  service.comp_a = *ComponentBuilder(name + "-A")
                        .AddFunction("handle", "s(s)", name + "-A/handle")
                        .Build();
  service.comp_b = *ComponentBuilder(name + "-B")
                        .AddFunction("handle", "s(s)", name + "-B/handle")
                        .Build();
  service.manager = std::make_unique<DcdoManager>(
      name, testbed.host(0), &testbed.transport(), &testbed.agent(),
      &testbed.registry(), MakeMultiVersionHybrid());
  Check(service.manager->AttachNameService(&testbed.names()).ok()
            ? Status::Ok()
            : InternalError("attach"),
        "attach names");
  Check(service.manager->PublishComponent(service.comp_a).status(),
        "publish A");
  Check(service.manager->PublishComponent(service.comp_b).status(),
        "publish B");

  service.v1 = *service.manager->CreateRootVersion();
  DfmDescriptor* d1 = *service.manager->MutableDescriptor(service.v1);
  Check(d1->IncorporateComponent(service.comp_a), "incorporate A");
  Check(d1->EnableFunction("handle", service.comp_a.id), "enable");
  Check(service.manager->MarkInstantiable(service.v1), "freeze v1");
  Check(service.manager->SetCurrentVersion(service.v1), "designate v1");

  service.v2 = *service.manager->DeriveVersion(service.v1);
  DfmDescriptor* d2 = *service.manager->MutableDescriptor(service.v2);
  Check(d2->IncorporateComponent(service.comp_b), "incorporate B");
  Check(d2->SwitchImplementation("handle", service.comp_b.id), "switch");
  Check(service.manager->MarkInstantiable(service.v2), "freeze v2");

  bool done = false;
  service.manager->CreateInstance(testbed.host(host),
                                  [&](Result<ObjectId> result) {
                                    Check(result.status(), "create");
                                    service.instance = *result;
                                    done = true;
                                  });
  testbed.simulation().RunWhile([&] { return !done; });
  testbed.host(host)->CacheComponent(service.comp_b.id,
                                     service.comp_b.code_bytes);
  return service;
}

void Report(Testbed& testbed, Service& gateway, Service& store) {
  auto client = testbed.MakeClient(9);
  auto g = client->InvokeBlocking(gateway.instance, "handle");
  auto s = client->InvokeBlocking(store.instance, "handle");
  std::printf("  gateway: %s\n  store:   %s\n",
              g.ok() ? g->ToString().c_str() : g.status().ToString().c_str(),
              s.ok() ? s->ToString().c_str() : s.status().ToString().c_str());
}

}  // namespace

int main() {
  Testbed testbed;
  Service gateway = MakeService(testbed, "gateway", 2);
  Service store = MakeService(testbed, "store", 3);

  std::printf("before the upgrade:\n");
  Report(testbed, gateway, store);

  std::printf("\ncoordinated upgrade of both types to protocol B:\n");
  UpdateCoordinator coordinator;
  std::optional<UpdateCoordinator::Outcome> outcome;
  sim::SimTime start = testbed.simulation().Now();
  coordinator.Execute(
      {{gateway.manager.get(), gateway.instance, gateway.v2},
       {store.manager.get(), store.instance, store.v2}},
      [&](UpdateCoordinator::Outcome result) { outcome.emplace(result); });
  testbed.simulation().RunWhile([&] { return !outcome.has_value(); });
  std::printf("  outcome: %s, %zu applied, in %s\n",
              outcome->status.ToString().c_str(), outcome->applied,
              HumanSeconds((testbed.simulation().Now() - start).ToSeconds())
                  .c_str());
  for (const std::string& note : outcome->notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  Report(testbed, gateway, store);

  // The guard rail: a v3 for the store that *removes* handle() from the
  // exported interface. A compatibility-strict coordinator refuses the
  // whole batch before anything moves.
  std::printf("\nattempting a batch containing a breaking version:\n");
  VersionId v3 = *store.manager->DeriveVersion(store.v2);
  DfmDescriptor* d3 = *store.manager->MutableDescriptor(v3);
  Check(d3->SetVisibility("handle", store.comp_b.id, Visibility::kInternal),
        "hide handle");
  Check(store.manager->MarkInstantiable(v3), "freeze v3");

  UpdateCoordinator::Options strict_options;
  strict_options.require_client_compatible = true;
  UpdateCoordinator strict(strict_options);
  std::optional<UpdateCoordinator::Outcome> refused;
  strict.Execute({{store.manager.get(), store.instance, v3}},
                 [&](UpdateCoordinator::Outcome result) {
                   refused.emplace(result);
                 });
  testbed.simulation().RunWhile([&] { return !refused.has_value(); });
  std::printf("  outcome: %s\n", refused->status.ToString().c_str());
  for (const std::string& note : refused->notes) {
    std::printf("  note: %s\n", note.c_str());
  }
  Report(testbed, gateway, store);
  return 0;
}
