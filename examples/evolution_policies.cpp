// Evolution management strategies side by side (paper Sections 3.3-3.5).
//
// Runs the same upgrade — a fleet of 8 instances moving from version 1 to
// version 1.1 — under four different managers and reports when each instance
// actually changed behaviour:
//
//   * single/proactive      — everyone updates the moment 1.1 is designated;
//   * single/explicit       — nothing moves until updateInstance() is called;
//   * single/lazy-every-k   — instances update themselves on their k-th call;
//   * multi/no-update       — deployed instances never move; only new ones
//                             pick up 1.1.
//
//   ./build/examples/evolution_policies
#include <cstdio>
#include <functional>

#include "core/manager.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

struct Fleet {
  Testbed testbed;
  std::unique_ptr<DcdoManager> manager;
  std::vector<ObjectId> instances;
  ImplementationComponent comp_v1;
  ImplementationComponent comp_v2;
  VersionId v1, v11;

  explicit Fleet(std::unique_ptr<EvolutionPolicy> policy) {
    testbed.registry().Register("rates-v1/quote",
                                ImplementationType::Portable(),
                                [](CallContext&, const ByteBuffer&) {
                                  return Result<ByteBuffer>(
                                      ByteBuffer::FromString("v1"));
                                });
    testbed.registry().Register("rates-v2/quote",
                                ImplementationType::Portable(),
                                [](CallContext&, const ByteBuffer&) {
                                  return Result<ByteBuffer>(
                                      ByteBuffer::FromString("v1.1"));
                                });
    comp_v1 = *ComponentBuilder("rates-v1")
                   .AddFunction("quote", "s()", "rates-v1/quote")
                   .Build();
    comp_v2 = *ComponentBuilder("rates-v2")
                   .AddFunction("quote", "s()", "rates-v2/quote")
                   .Build();
    manager = std::make_unique<DcdoManager>(
        "rates", testbed.host(0), &testbed.transport(), &testbed.agent(),
        &testbed.registry(), std::move(policy));
    Check(manager->PublishComponent(comp_v1).status(), "publish v1");
    Check(manager->PublishComponent(comp_v2).status(), "publish v2");

    v1 = *manager->CreateRootVersion();
    DfmDescriptor* d1 = *manager->MutableDescriptor(v1);
    Check(d1->IncorporateComponent(comp_v1), "incorporate");
    Check(d1->EnableFunction("quote", comp_v1.id), "enable");
    Check(manager->MarkInstantiable(v1), "freeze v1");
    Check(manager->SetCurrentVersion(v1), "designate v1");

    for (int i = 0; i < 8; ++i) {
      bool done = false;
      manager->CreateInstance(testbed.host(1 + i),
                              [&](Result<ObjectId> result) {
                                Check(result.status(), "create");
                                instances.push_back(*result);
                                done = true;
                              });
      testbed.simulation().RunWhile([&] { return !done; });
    }

    v11 = *manager->DeriveVersion(v1);
    DfmDescriptor* d11 = *manager->MutableDescriptor(v11);
    Check(d11->IncorporateComponent(comp_v2), "incorporate v2");
    Check(d11->SwitchImplementation("quote", comp_v2.id), "switch");
    Check(manager->MarkInstantiable(v11), "freeze v1.1");
    // Pre-warm component caches so the comparison isolates policy behaviour.
    for (int i = 0; i < 8; ++i) {
      testbed.host(1 + i)->CacheComponent(comp_v2.id, comp_v2.code_bytes);
    }
  }

  int CountAt(const VersionId& version) {
    int count = 0;
    for (const ObjectId& instance : instances) {
      if (manager->InstanceVersion(instance).value_or(VersionId()) ==
          version) {
        ++count;
      }
    }
    return count;
  }

  std::string Quote(int index) {
    auto result = manager->FindInstance(instances[index])
                      ->Call("quote", ByteBuffer{});
    return result.ok() ? result->ToString() : result.status().ToString();
  }
};

}  // namespace

int main() {
  std::printf("upgrading a fleet of 8 'rates' instances from v1 to v1.1\n\n");

  {
    Fleet fleet(MakeSingleVersionProactive());
    std::printf("[single/proactive]\n");
    Check(fleet.manager->SetCurrentVersion(fleet.v11), "designate v1.1");
    fleet.testbed.simulation().Run();
    std::printf("  immediately after designation: %d/8 at v1.1, "
                "%llu updates pushed by the manager\n",
                fleet.CountAt(fleet.v11),
                static_cast<unsigned long long>(
                    fleet.manager->updates_pushed()));
  }

  {
    Fleet fleet(MakeSingleVersionExplicit());
    std::printf("[single/explicit]\n");
    Check(fleet.manager->SetCurrentVersion(fleet.v11), "designate v1.1");
    fleet.testbed.simulation().Run();
    std::printf("  after designation: %d/8 at v1.1 (nothing moves by itself)\n",
                fleet.CountAt(fleet.v11));
    for (int i = 0; i < 3; ++i) {  // an external coordinator updates 3 of 8
      bool done = false;
      fleet.manager->UpdateInstance(fleet.instances[i],
                                    [&](Status status) {
                                      Check(status, "updateInstance");
                                      done = true;
                                    });
      fleet.testbed.simulation().RunWhile([&] { return !done; });
    }
    std::printf("  after 3 explicit updateInstance() calls: %d/8 at v1.1\n",
                fleet.CountAt(fleet.v11));
  }

  {
    Fleet fleet(MakeSingleVersionLazyEveryK(3));
    std::printf("[single/lazy-every-3-calls]\n");
    Check(fleet.manager->SetCurrentVersion(fleet.v11), "designate v1.1");
    fleet.testbed.simulation().Run();
    std::printf("  after designation: %d/8 at v1.1\n",
                fleet.CountAt(fleet.v11));
    // Instance 0 receives traffic; the others stay idle.
    for (int call = 1; call <= 3; ++call) {
      std::string reply = fleet.Quote(0);
      std::printf("  instance 0, call %d -> %s\n", call, reply.c_str());
    }
    fleet.testbed.simulation().Run();
    std::printf("  instance 0 updated itself on its 3rd call; fleet: %d/8 at "
                "v1.1 (%llu lazy checks)\n",
                fleet.CountAt(fleet.v11),
                static_cast<unsigned long long>(fleet.manager->lazy_checks()));
  }

  {
    Fleet fleet(MakeMultiVersionNoUpdate());
    std::printf("[multi/no-update]\n");
    Check(fleet.manager->SetCurrentVersion(fleet.v11), "designate v1.1");
    fleet.testbed.simulation().Run();
    std::printf("  deployed instances: %d/8 at v1.1 (they never evolve)\n",
                fleet.CountAt(fleet.v11));
    bool done = false;
    fleet.manager->CreateInstance(fleet.testbed.host(9),
                                  [&](Result<ObjectId> result) {
                                    Check(result.status(), "create new");
                                    fleet.instances.push_back(*result);
                                    done = true;
                                  });
    fleet.testbed.simulation().RunWhile([&] { return !done; });
    std::printf("  a newly created instance runs %s\n",
                fleet.Quote(8).c_str());
  }
  return 0;
}
