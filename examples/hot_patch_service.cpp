// Hot-patching an always-on service: the paper's motivating scenario.
//
// A "pricing" service must be constantly operational, but its deployed
// implementation has a bug (it applies a 10% surcharge instead of a 10%
// discount). We fix it two ways and compare what clients experience:
//
//   1. the traditional Legion way — replace the monolithic executable
//      (capture state, kill the process, download the new executable,
//      respawn, restore). Clients hold stale bindings and pay the 25-35 s
//      discovery penalty on their next call;
//   2. the DCDO way — swap the one broken dynamic function's implementation
//      on the fly. Sub-second, and clients never notice.
//
//   ./build/examples/hot_patch_service
#include <cstdio>

#include "common/serialize.h"
#include "common/strings.h"
#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/class_object.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

int64_t DecodePrice(const Result<ByteBuffer>& reply) {
  if (!reply.ok()) return -1;
  Reader reader(*reply);
  return reader.ReadI64().value_or(-1);
}

ByteBuffer EncodePrice(std::int64_t cents) {
  Writer writer;
  writer.WriteI64(cents);
  return std::move(writer).Take();
}

// price(base) bodies: the buggy build surcharges, the fixed one discounts.
Result<ByteBuffer> BuggyPrice(CallContext&, const ByteBuffer& args) {
  Reader reader(args);
  std::int64_t base = reader.ReadI64().value_or(0);
  return EncodePrice(base + base / 10);  // BUG: +10%
}
Result<ByteBuffer> FixedPrice(CallContext&, const ByteBuffer& args) {
  Reader reader(args);
  std::int64_t base = reader.ReadI64().value_or(0);
  return EncodePrice(base - base / 10);  // correct: -10%
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Testbed testbed;
  std::printf("=== scenario 1: monolithic service, traditional evolution ===\n");
  {
    ClassObject legacy("pricing-legacy", testbed.host(0),
                       &testbed.transport(), &testbed.agent());
    Executable buggy;
    buggy.name = "pricing-v1";
    buggy.bytes = 5'100'000;  // the paper's "typical" implementation size
    buggy.methods.Add("price", [](InstanceState&, const ByteBuffer& args) {
      class Null : public CallContext {
        Result<ByteBuffer> CallInternal(const std::string&,
                                        const ByteBuffer&) override {
          return FunctionMissingError("none");
        }
        ObjectId self_id() const override { return ObjectId(); }
        void BlockOnOutcall(double) override {}
      } ctx;
      return BuggyPrice(ctx, args);
    });
    Executable fixed = buggy;
    fixed.name = "pricing-v2";
    fixed.methods.Add("price", [](InstanceState&, const ByteBuffer& args) {
      class Null : public CallContext {
        Result<ByteBuffer> CallInternal(const std::string&,
                                        const ByteBuffer&) override {
          return FunctionMissingError("none");
        }
        ObjectId self_id() const override { return ObjectId(); }
        void BlockOnOutcall(double) override {}
      } ctx;
      return FixedPrice(ctx, args);
    });
    legacy.AddExecutable(std::move(buggy));
    std::size_t v2 = legacy.AddExecutable(std::move(fixed));

    ObjectId service;
    bool created = false;
    legacy.CreateInstance(testbed.host(2), /*state=*/2 << 20,
                          [&](Result<ObjectId> result) {
                            Check(result.status(), "create legacy service");
                            service = *result;
                            created = true;
                          });
    testbed.simulation().RunWhile([&] { return !created; });

    auto client = testbed.MakeClient(9);
    std::printf("  price(1000) = %lld  (buggy: surcharge)\n",
                static_cast<long long>(DecodePrice(
                    client->InvokeBlocking(service, "price",
                                           EncodePrice(1000)))));

    sim::SimTime start = testbed.simulation().Now();
    bool evolved = false;
    legacy.EvolveInstance(service, v2, [&](Status status) {
      Check(status, "evolve legacy service");
      evolved = true;
    });
    testbed.simulation().RunWhile([&] { return !evolved; });
    double evolve_seconds = (testbed.simulation().Now() - start).ToSeconds();

    start = testbed.simulation().Now();
    std::int64_t price = DecodePrice(
        client->InvokeBlocking(service, "price", EncodePrice(1000)));
    double client_seconds = (testbed.simulation().Now() - start).ToSeconds();
    std::printf("  executable replacement took %s of downtime pipeline\n",
                HumanSeconds(evolve_seconds).c_str());
    std::printf("  price(1000) = %lld after fix, but the client's next call "
                "took %s (stale binding: %llu rebind)\n",
                static_cast<long long>(price),
                HumanSeconds(client_seconds).c_str(),
                static_cast<unsigned long long>(client->rebinds()));
  }

  std::printf("=== scenario 2: DCDO service, on-the-fly evolution ===\n");
  {
    testbed.registry().Register("pricing-v1/price",
                                ImplementationType::Portable(), BuggyPrice);
    testbed.registry().Register("pricing-v2/price",
                                ImplementationType::Portable(), FixedPrice);
    auto comp_v1 = ComponentBuilder("pricing-v1")
                       .SetCodeBytes(550'000)
                       .AddFunction("price", "i(i)", "pricing-v1/price")
                       .Build();
    auto comp_v2 = ComponentBuilder("pricing-v2")
                       .SetCodeBytes(550'000)
                       .AddFunction("price", "i(i)", "pricing-v2/price")
                       .Build();
    Check(comp_v1.status(), "build component v1");
    Check(comp_v2.status(), "build component v2");

    DcdoManager manager("pricing", testbed.host(0), &testbed.transport(),
                        &testbed.agent(), &testbed.registry(),
                        MakeSingleVersionExplicit());
    Check(manager.PublishComponent(*comp_v1).status(), "publish v1");
    Check(manager.PublishComponent(*comp_v2).status(), "publish v2");

    VersionId v1 = *manager.CreateRootVersion();
    DfmDescriptor* d1 = *manager.MutableDescriptor(v1);
    Check(d1->IncorporateComponent(*comp_v1), "incorporate v1");
    Check(d1->EnableFunction("price", comp_v1->id), "enable price");
    Check(manager.MarkInstantiable(v1), "freeze v1");
    Check(manager.SetCurrentVersion(v1), "designate v1");

    ObjectId service;
    bool created = false;
    manager.CreateInstance(testbed.host(2), [&](Result<ObjectId> result) {
      Check(result.status(), "create DCDO service");
      service = *result;
      created = true;
    });
    testbed.simulation().RunWhile([&] { return !created; });

    auto client = testbed.MakeClient(9);
    std::printf("  price(1000) = %lld  (buggy: surcharge)\n",
                static_cast<long long>(DecodePrice(
                    client->InvokeBlocking(service, "price",
                                           EncodePrice(1000)))));

    // Hot patch: derive v1.1 switching price() to the fixed component.
    VersionId v11 = *manager.DeriveVersion(v1);
    DfmDescriptor* d11 = *manager.MutableDescriptor(v11);
    Check(d11->IncorporateComponent(*comp_v2), "incorporate v2");
    Check(d11->SwitchImplementation("price", comp_v2->id), "switch price");
    Check(manager.MarkInstantiable(v11), "freeze v1.1");
    Check(manager.SetCurrentVersion(v11), "designate v1.1");

    sim::SimTime start = testbed.simulation().Now();
    bool evolved = false;
    manager.UpdateInstance(service, [&](Status status) {
      Check(status, "evolve DCDO service");
      evolved = true;
    });
    testbed.simulation().RunWhile([&] { return !evolved; });
    double evolve_seconds = (testbed.simulation().Now() - start).ToSeconds();

    start = testbed.simulation().Now();
    std::int64_t price = DecodePrice(
        client->InvokeBlocking(service, "price", EncodePrice(1000)));
    double client_seconds = (testbed.simulation().Now() - start).ToSeconds();
    std::printf("  DCDO evolution took %s, object stayed up\n",
                HumanSeconds(evolve_seconds).c_str());
    std::printf("  price(1000) = %lld after fix; the client's next call took "
                "%s (%llu rebinds, %llu timeouts)\n",
                static_cast<long long>(price),
                HumanSeconds(client_seconds).c_str(),
                static_cast<unsigned long long>(client->rebinds()),
                static_cast<unsigned long long>(client->timeouts()));
  }
  return 0;
}
