// Quickstart: the smallest end-to-end DCDO program.
//
// Builds an implementation component, publishes it through a DCDO Manager,
// creates a dynamically configurable object on another host, invokes it
// remotely, then evolves it — replacing a function's implementation while
// the object stays up — and invokes it again through the *same* client
// binding.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "common/strings.h"
#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/testbed.h"

using namespace dcdo;

namespace {

// Two implementations of `greet` with the same signature: the v1 component
// has a typo; v2 fixes it. Bodies live in the NativeCodeRegistry (the
// reproduction's stand-in for dynamically linked object code).
void RegisterBodies(NativeCodeRegistry& registry) {
  registry.Register("greeter-v1/greet", ImplementationType::Portable(),
                    [](CallContext&, const ByteBuffer& args) {
                      return Result<ByteBuffer>(ByteBuffer::FromString(
                          "Helo, " + args.ToString() + "!"));  // sic
                    });
  registry.Register("greeter-v2/greet", ImplementationType::Portable(),
                    [](CallContext&, const ByteBuffer& args) {
                      return Result<ByteBuffer>(ByteBuffer::FromString(
                          "Hello, " + args.ToString() + "!"));
                    });
}

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // A 16-node simulated cluster modelled on the paper's Centurion testbed.
  Testbed testbed;
  RegisterBodies(testbed.registry());

  // The manager owns the type "greeter": its components, versions, and
  // instances. Single-version explicit policy: updates happen when asked.
  DcdoManager manager("greeter", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeSingleVersionExplicit());

  auto v1_comp = ComponentBuilder("greeter-v1")
                     .SetCodeBytes(96 * 1024)
                     .AddFunction("greet", "s(s)", "greeter-v1/greet")
                     .Build();
  auto v2_comp = ComponentBuilder("greeter-v2")
                     .SetCodeBytes(96 * 1024)
                     .AddFunction("greet", "s(s)", "greeter-v2/greet")
                     .Build();
  Check(v1_comp.status(), "build v1 component");
  Check(v2_comp.status(), "build v2 component");
  Check(manager.PublishComponent(*v1_comp).status(), "publish v1");
  Check(manager.PublishComponent(*v2_comp).status(), "publish v2");

  // Version 1: greet() implemented by greeter-v1.
  VersionId v1 = *manager.CreateRootVersion();
  DfmDescriptor* d1 = *manager.MutableDescriptor(v1);
  Check(d1->IncorporateComponent(*v1_comp), "incorporate v1");
  Check(d1->EnableFunction("greet", v1_comp->id), "enable greet");
  Check(manager.MarkInstantiable(v1), "freeze version 1");
  Check(manager.SetCurrentVersion(v1), "designate version 1");

  // Create an instance on host 3.
  ObjectId instance;
  bool created = false;
  manager.CreateInstance(testbed.host(3), [&](Result<ObjectId> result) {
    Check(result.status(), "create instance");
    instance = *result;
    created = true;
  });
  testbed.simulation().RunWhile([&] { return !created; });
  std::printf("created %s at sim time %s\n", instance.ToString().c_str(),
              HumanSeconds(testbed.simulation().Now().ToSeconds()).c_str());

  // A client on host 7 invokes the exported dynamic function remotely.
  auto client = testbed.MakeClient(7);
  auto reply = client->InvokeBlocking(instance, "greet",
                                      ByteBuffer::FromString("world"));
  Check(reply.status(), "remote greet");
  std::printf("v1 replied: %s\n", reply->ToString().c_str());

  // Version 1.1: switch greet() to the fixed implementation.
  VersionId v11 = *manager.DeriveVersion(v1);
  DfmDescriptor* d11 = *manager.MutableDescriptor(v11);
  Check(d11->IncorporateComponent(*v2_comp), "incorporate v2");
  Check(d11->SwitchImplementation("greet", v2_comp->id), "switch greet");
  Check(manager.MarkInstantiable(v11), "freeze version 1.1");
  Check(manager.SetCurrentVersion(v11), "designate version 1.1");

  // Evolve the live instance. No process restart, no re-binding.
  sim::SimTime evolve_start = testbed.simulation().Now();
  bool evolved = false;
  manager.UpdateInstance(instance, [&](Status status) {
    Check(status, "evolve instance");
    evolved = true;
  });
  testbed.simulation().RunWhile([&] { return !evolved; });
  std::printf("evolved to %s in %s of simulated time\n",
              manager.InstanceVersion(instance)->ToString().c_str(),
              HumanSeconds((testbed.simulation().Now() - evolve_start)
                               .ToSeconds())
                  .c_str());

  // Same client, same binding — new behaviour.
  reply = client->InvokeBlocking(instance, "greet",
                                 ByteBuffer::FromString("world"));
  Check(reply.status(), "remote greet after evolution");
  std::printf("v1.1 replied: %s (client rebinds: %llu, timeouts: %llu)\n",
              reply->ToString().c_str(),
              static_cast<unsigned long long>(client->rebinds()),
              static_cast<unsigned long long>(client->timeouts()));
  return 0;
}
