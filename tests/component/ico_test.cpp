#include "component/ico.h"

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "rpc/client.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class IcoTest : public ::testing::Test {
 protected:
  IcoTest()
      : network_(&simulation_, sim::CostModel{}),
        transport_(&network_),
        home_(&simulation_, &network_, 1, sim::Architecture::kX86Linux),
        remote_(&simulation_, &network_, 2, sim::Architecture::kX86Linux) {}

  ImplementationComponent MakeComponent(std::size_t bytes = 550'000) {
    auto component = ComponentBuilder("libdemo")
                         .SetCodeBytes(bytes)
                         .AddFunction("hello", "s()", "libdemo/hello")
                         .Build();
    EXPECT_TRUE(component.ok());
    return *component;
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  rpc::RpcTransport transport_;
  sim::SimHost home_;
  sim::SimHost remote_;
  BindingAgent agent_;
};

TEST_F(IcoTest, ActivationBindsComponentId) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent());
  EXPECT_TRUE(agent_.Bound(ico.id()));
  EXPECT_TRUE(home_.ComponentCached(ico.id()));
  EXPECT_EQ(ico.node(), home_.node());
}

TEST_F(IcoTest, DestructionUnbinds) {
  ObjectId id;
  {
    ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                      MakeComponent());
    id = ico.id();
  }
  EXPECT_FALSE(agent_.Bound(id));
}

TEST_F(IcoTest, GetDescriptorOverRpc) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent());
  rpc::RpcClient client(&transport_, &agent_, remote_.node());
  auto reply = client.InvokeBlocking(
      ico.id(), ImplementationComponentObject::kGetDescriptor);
  ASSERT_TRUE(reply.ok());
  auto meta = ParseComponentMeta(*reply);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->name, "libdemo");
  EXPECT_EQ(meta->id, ico.id());
}

TEST_F(IcoTest, GetSizeOverRpc) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent(123'456));
  rpc::RpcClient client(&transport_, &agent_, remote_.node());
  auto reply =
      client.InvokeBlocking(ico.id(), ImplementationComponentObject::kGetSize);
  ASSERT_TRUE(reply.ok());
  Reader reader(*reply);
  EXPECT_EQ(reader.ReadU64().value_or(0), 123'456u);
}

TEST_F(IcoTest, UnknownMethodRejected) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent());
  rpc::RpcClient client(&transport_, &agent_, remote_.node());
  auto reply = client.InvokeBlocking(ico.id(), "selfDestruct");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

TEST_F(IcoTest, FetchToCachesAtDestinationWithDownloadCost) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent(550'000));
  ASSERT_FALSE(remote_.ComponentCached(ico.id()));
  bool done = false;
  ico.FetchTo(&remote_, [&](Status status) {
    EXPECT_TRUE(status.ok());
    done = true;
  });
  simulation_.Run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(remote_.ComponentCached(ico.id()));
  EXPECT_EQ(remote_.CachedComponentSize(ico.id()), 550'000u);
  // Component fetches use the fast object-to-object path: session overhead
  // (~160 ms) + streaming — a couple hundred ms for 550 KB, far cheaper than
  // the 4 s the same bytes cost through the executable file path.
  EXPECT_GT(simulation_.Now().ToSeconds(), 0.15);
  EXPECT_LT(simulation_.Now().ToSeconds(), 1.0);
  EXPECT_EQ(ico.fetches_served(), 1u);
}

TEST_F(IcoTest, FetchToCachedDestinationIsFree) {
  ImplementationComponentObject ico(&home_, &transport_, &agent_,
                                    MakeComponent());
  remote_.CacheComponent(ico.id(), 550'000);
  bool done = false;
  ico.FetchTo(&remote_, [&](Status status) {
    EXPECT_TRUE(status.ok());
    done = true;
  });
  EXPECT_TRUE(done);  // immediate, no events needed
  EXPECT_EQ(simulation_.Now(), sim::SimTime::Zero());
  EXPECT_EQ(ico.fetches_served(), 0u);
}

}  // namespace
}  // namespace dcdo
