// ComponentFetcher: the parallel acquisition pipeline.
//
// The fetcher's contract has two halves. At fetch_concurrency 1 it must
// reproduce the sequential chains it replaced exactly — the paper's ~10 s
// DCDO creation figure is re-asserted here. Above 1, the pipeline must
// overlap transfers under the fair-shared link model, coalesce co-hosted
// requests for the same image into one stream, and still report failures
// naming the exact component.
#include "component/fetcher.h"

#include <gtest/gtest.h>

#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class FetcherTest : public ::testing::Test {
 protected:
  static Testbed::Options Parallel(int fetch_concurrency) {
    Testbed::Options options;
    options.cost_model.fetch_concurrency = fetch_concurrency;
    return options;
  }

  // A manager whose current version incorporates `components` echo
  // components (one function each), published on host 0.
  static std::unique_ptr<DcdoManager> MakeManager(
      Testbed& testbed, const std::string& name, std::size_t components,
      std::vector<ImplementationComponent>* out_comps = nullptr) {
    auto manager = std::make_unique<DcdoManager>(
        name, testbed.host(0), &testbed.transport(), &testbed.agent(),
        &testbed.registry(), MakeMultiVersionIncreasing());
    std::vector<ImplementationComponent> comps;
    for (std::size_t i = 0; i < components; ++i) {
      comps.push_back(testing::MakeEchoComponent(
          testbed.registry(), name + "-comp" + std::to_string(i),
          {"fn" + std::to_string(i)}));
      EXPECT_TRUE(manager->PublishComponent(comps.back()).ok());
    }
    VersionId v1 = *manager->CreateRootVersion();
    DfmDescriptor* d1 = *manager->MutableDescriptor(v1);
    for (std::size_t i = 0; i < components; ++i) {
      EXPECT_TRUE(d1->IncorporateComponent(comps[i]).ok());
      EXPECT_TRUE(
          d1->EnableFunction("fn" + std::to_string(i), comps[i].id).ok());
    }
    EXPECT_TRUE(manager->MarkInstantiable(v1).ok());
    EXPECT_TRUE(manager->SetCurrentVersion(v1).ok());
    if (out_comps != nullptr) *out_comps = std::move(comps);
    return manager;
  }

  static Result<ObjectId> CreateBlocking(Testbed& testbed,
                                         DcdoManager& manager,
                                         sim::SimHost* host) {
    std::optional<Result<ObjectId>> out;
    manager.CreateInstance(host, [&](Result<ObjectId> r) { out = r; });
    testbed.simulation().RunWhile([&] { return !out.has_value(); });
    return *out;
  }
};

// Two instances of one type activating on the same host at the same time:
// every component image crosses the wire exactly once — the second
// instance's requests ride the first's open streams.
TEST_F(FetcherTest, SingleFlightSharesOneStreamAcrossInstances) {
  Testbed testbed{Parallel(8)};
  std::vector<ImplementationComponent> comps;
  auto manager = MakeManager(testbed, "shared", 4, &comps);

  std::optional<Result<ObjectId>> first, second;
  manager->CreateInstance(testbed.host(1),
                          [&](Result<ObjectId> r) { first = r; });
  manager->CreateInstance(testbed.host(1),
                          [&](Result<ObjectId> r) { second = r; });
  testbed.simulation().RunWhile(
      [&] { return !first.has_value() || !second.has_value(); });
  ASSERT_TRUE(first->ok()) << first->status().ToString();
  ASSERT_TRUE(second->ok()) << second->status().ToString();

  // One stream per unique component, ever.
  for (const ImplementationComponent& comp : comps) {
    ImplementationComponentObject* ico = *manager->icos().Find(comp.id);
    EXPECT_EQ(ico->fetches_served(), 1u) << comp.name;
  }
  EXPECT_EQ(manager->fetcher().fetches_issued(), comps.size());
  // The second instance's four requests all joined in-flight streams.
  EXPECT_EQ(manager->fetcher().fetches_coalesced(), comps.size());
}

// A mid-pipeline fetch failure surfaces the exact component that failed,
// not a generic "creation failed".
TEST_F(FetcherTest, FetchFailureNamesTheComponent) {
  Testbed testbed{Parallel(8)};
  auto manager = MakeManager(testbed, "failing", 3);
  testbed.network().SetPartitioned(testbed.host(0)->node(),
                                   testbed.host(1)->node(), true);

  Result<ObjectId> result = CreateBlocking(testbed, *manager, testbed.host(1));
  ASSERT_FALSE(result.ok());
  // The error names one of the components and the destination.
  EXPECT_NE(result.status().message().find("failing-comp"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("fetch to node"), std::string::npos)
      << result.status().ToString();
}

// Components already cached on the destination never open a stream.
TEST_F(FetcherTest, CachedComponentsSkipTheWire) {
  Testbed testbed{Parallel(8)};
  std::vector<ImplementationComponent> comps;
  auto manager = MakeManager(testbed, "warm", 3, &comps);
  for (const ImplementationComponent& comp : comps) {
    testbed.host(1)->CacheComponent(comp.id, comp.code_bytes);
  }
  Result<ObjectId> result = CreateBlocking(testbed, *manager, testbed.host(1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(manager->fetcher().fetches_issued(), 0u);
  for (const ImplementationComponent& comp : comps) {
    EXPECT_EQ((*manager->icos().Find(comp.id))->fetches_served(), 0u);
  }
}

// Prefetch warms the destination cache ahead of need; at concurrency 1 it
// must be a perfect no-op (the sequential calibration sees no transfers).
TEST_F(FetcherTest, PrefetchWarmsCacheOnlyWhenParallel) {
  for (int concurrency : {1, 8}) {
    Testbed testbed{Parallel(concurrency)};
    std::vector<ImplementationComponent> v2_comps;
    auto manager = MakeManager(testbed, "pf", 1);
    // Derive a v2 that adds two more components.
    VersionId v1 = manager->current_version();
    VersionId v2 = *manager->DeriveVersion(v1);
    DfmDescriptor* d2 = *manager->MutableDescriptor(v2);
    for (int i = 0; i < 2; ++i) {
      v2_comps.push_back(testing::MakeEchoComponent(
          testbed.registry(), "pf-extra" + std::to_string(i),
          {"extra" + std::to_string(i)}));
      ASSERT_TRUE(manager->PublishComponent(v2_comps.back()).ok());
      ASSERT_TRUE(d2->IncorporateComponent(v2_comps.back()).ok());
      ASSERT_TRUE(
          d2->EnableFunction("extra" + std::to_string(i), v2_comps.back().id)
              .ok());
    }
    ASSERT_TRUE(manager->MarkInstantiable(v2).ok());

    Result<ObjectId> instance =
        CreateBlocking(testbed, *manager, testbed.host(1));
    ASSERT_TRUE(instance.ok());
    manager->PrefetchInstanceVersion(*instance, v2);
    testbed.simulation().Run();
    for (const ImplementationComponent& comp : v2_comps) {
      EXPECT_EQ(testbed.host(1)->ComponentCached(comp.id), concurrency > 1)
          << "concurrency " << concurrency;
    }
  }
}

// The paper's configuration (500 functions / 50 components, cold caches):
// sequential acquisition reproduces the ~10 s figure; the pipeline at
// concurrency 8 cuts it by at least 3x on the same cost model.
TEST_F(FetcherTest, ParallelAcquisitionAtLeastThreeTimesFaster) {
  auto creation_seconds = [&](int concurrency) {
    Testbed testbed{Parallel(concurrency)};
    auto manager = std::make_unique<DcdoManager>(
        "paper", testbed.host(0), &testbed.transport(), &testbed.agent(),
        &testbed.registry(), MakeSingleVersionExplicit());
    // 50 components, 10 functions each, 100 KB images (the E3/E13 shape).
    std::vector<ImplementationComponent> comps;
    for (int c = 0; c < 50; ++c) {
      std::vector<std::string> fns;
      for (int f = 0; f < 10; ++f) {
        fns.push_back("fn" + std::to_string(c * 10 + f));
      }
      comps.push_back(testing::MakeEchoComponent(
          testbed.registry(), "paper-c" + std::to_string(c), fns, 100 * 1024));
      EXPECT_TRUE(manager->PublishComponent(comps.back()).ok());
    }
    VersionId v1 = *manager->CreateRootVersion();
    DfmDescriptor* d1 = *manager->MutableDescriptor(v1);
    for (const ImplementationComponent& comp : comps) {
      EXPECT_TRUE(d1->IncorporateComponent(comp).ok());
      for (const FunctionImplDescriptor& fn : comp.functions) {
        EXPECT_TRUE(d1->EnableFunction(fn.function.name, comp.id).ok());
      }
    }
    EXPECT_TRUE(manager->MarkInstantiable(v1).ok());
    EXPECT_TRUE(manager->SetCurrentVersion(v1).ok());
    sim::SimTime start = testbed.simulation().Now();
    Result<ObjectId> instance =
        CreateBlocking(testbed, *manager, testbed.host(1));
    EXPECT_TRUE(instance.ok()) << instance.status().ToString();
    return (testbed.simulation().Now() - start).ToSeconds();
  };

  double sequential = creation_seconds(1);
  double parallel = creation_seconds(8);
  // Paper range for the sequential figure (Section 6: "approximately ten
  // seconds" for the 500-function configuration).
  EXPECT_GT(sequential, 9.0);
  EXPECT_LT(sequential, 12.0);
  EXPECT_LE(parallel, sequential / 3.0)
      << "sequential " << sequential << " s, parallel " << parallel << " s";
}

}  // namespace
}  // namespace dcdo
