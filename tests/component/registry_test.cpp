#include "component/native_code_registry.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

class FakeContext : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("fake context has no functions");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

DynamicFn TagBody(const std::string& tag) {
  return [tag](CallContext&, const ByteBuffer&) {
    return Result<ByteBuffer>(ByteBuffer::FromString(tag));
  };
}

std::string RunBody(const DynamicFn& fn) {
  FakeContext ctx;
  auto result = fn(ctx, ByteBuffer{});
  return result.ok() ? result->ToString() : result.status().ToString();
}

TEST(NativeCodeRegistryTest, ResolveRegisteredSymbol) {
  NativeCodeRegistry registry;
  registry.Register("lib/sort", ImplementationType::Portable(),
                    TagBody("sorted"));
  auto body = registry.Resolve("lib/sort", sim::Architecture::kX86Linux);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(RunBody(*body), "sorted");
}

TEST(NativeCodeRegistryTest, UnknownSymbolFails) {
  NativeCodeRegistry registry;
  auto body = registry.Resolve("missing", sim::Architecture::kX86Linux);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), ErrorCode::kNotFound);
}

TEST(NativeCodeRegistryTest, ReRegisterSameTypeReplacesBody) {
  NativeCodeRegistry registry;
  registry.Register("f", ImplementationType::Portable(), TagBody("v1"));
  registry.Register("f", ImplementationType::Portable(), TagBody("v2"));
  EXPECT_EQ(RunBody(*registry.Resolve("f", sim::Architecture::kX86Linux)), "v2");
  EXPECT_EQ(registry.size(), 1u);
}

TEST(NativeCodeRegistryTest, PerArchitectureBuildsCoexist) {
  NativeCodeRegistry registry;
  registry.Register("f", ImplementationType::Native(sim::Architecture::kX86Linux),
                    TagBody("x86"));
  registry.Register("f",
                    ImplementationType::Native(sim::Architecture::kSparcSolaris),
                    TagBody("sparc"));
  EXPECT_EQ(RunBody(*registry.Resolve("f", sim::Architecture::kX86Linux)), "x86");
  EXPECT_EQ(RunBody(*registry.Resolve("f", sim::Architecture::kSparcSolaris)),
            "sparc");
}

TEST(NativeCodeRegistryTest, WrongArchWithoutPortableFails) {
  NativeCodeRegistry registry;
  registry.Register("f", ImplementationType::Native(sim::Architecture::kX86Linux),
                    TagBody("x86"));
  auto body = registry.Resolve("f", sim::Architecture::kAlphaOsf);
  ASSERT_FALSE(body.ok());
  EXPECT_EQ(body.status().code(), ErrorCode::kArchMismatch);
}

TEST(NativeCodeRegistryTest, NativePreferredOverPortable) {
  NativeCodeRegistry registry;
  registry.Register("f", ImplementationType::Portable(), TagBody("portable"));
  registry.Register("f", ImplementationType::Native(sim::Architecture::kX86Nt),
                    TagBody("nt-native"));
  EXPECT_EQ(RunBody(*registry.Resolve("f", sim::Architecture::kX86Nt)),
            "nt-native");
  // Other architectures fall back to the portable build.
  EXPECT_EQ(RunBody(*registry.Resolve("f", sim::Architecture::kAlphaOsf)),
            "portable");
}

}  // namespace
}  // namespace dcdo
