#include "component/component.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(ComponentBuilderTest, BuildsValidComponent) {
  auto component = ComponentBuilder("libmath")
                       .SetCodeBytes(128 * 1024)
                       .AddFunction("add", "i(ii)", "libmath/add")
                       .AddFunction("mul", "i(ii)", "libmath/mul",
                                    Visibility::kInternal)
                       .Build();
  ASSERT_TRUE(component.ok());
  EXPECT_EQ(component->name, "libmath");
  EXPECT_EQ(component->function_count(), 2u);
  EXPECT_EQ(component->code_bytes, 128u * 1024);
  EXPECT_FALSE(component->id.nil());
  EXPECT_EQ(component->id.domain(), domains::kComponent);
}

TEST(ComponentBuilderTest, FindLocatesFunctions) {
  auto component = ComponentBuilder("lib")
                       .AddFunction("f", "v()", "lib/f")
                       .Build();
  ASSERT_TRUE(component.ok());
  ASSERT_NE(component->Find("f"), nullptr);
  EXPECT_EQ(component->Find("f")->symbol, "lib/f");
  EXPECT_EQ(component->Find("g"), nullptr);
}

TEST(ComponentBuilderTest, ConstraintAndCallsRecorded) {
  auto component =
      ComponentBuilder("lib")
          .AddFunction("sort", "a(a)", "lib/sort", Visibility::kExported,
                       Constraint::kFullyDynamic, {"compare"})
          .AddFunction("compare", "i(ii)", "lib/compare",
                       Visibility::kInternal, Constraint::kMandatory)
          .Build();
  ASSERT_TRUE(component.ok());
  EXPECT_EQ(component->Find("sort")->calls,
            (std::vector<std::string>{"compare"}));
  EXPECT_EQ(component->Find("compare")->constraint, Constraint::kMandatory);
}

TEST(ComponentValidateTest, RejectsDuplicateFunction) {
  auto component = ComponentBuilder("lib")
                       .AddFunction("f", "v()", "lib/f1")
                       .AddFunction("f", "v()", "lib/f2")
                       .Build();
  ASSERT_FALSE(component.ok());
  EXPECT_EQ(component.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ComponentValidateTest, RejectsEmptySymbol) {
  auto component = ComponentBuilder("lib").AddFunction("f", "v()", "").Build();
  EXPECT_FALSE(component.ok());
}

TEST(ComponentValidateTest, RejectsFunctionsWithoutImage) {
  auto component = ComponentBuilder("lib")
                       .SetCodeBytes(0)
                       .AddFunction("f", "v()", "lib/f")
                       .Build();
  EXPECT_FALSE(component.ok());
}

TEST(ComponentValidateTest, EmptyNameRejected) {
  auto component = ComponentBuilder("").Build();
  EXPECT_FALSE(component.ok());
}

TEST(ComponentMetaWireTest, RoundTripPreservesEverything) {
  auto component =
      ComponentBuilder("libnet")
          .SetType(ImplementationType::Native(sim::Architecture::kAlphaOsf))
          .SetCodeBytes(550'000)
          .AddFunction("send", "i(b)", "libnet/send", Visibility::kExported,
                       Constraint::kPermanent, {"checksum"})
          .AddFunction("checksum", "i(b)", "libnet/checksum",
                       Visibility::kInternal, Constraint::kMandatory)
          .Build();
  ASSERT_TRUE(component.ok());

  ByteBuffer wire = SerializeComponentMeta(*component);
  auto parsed = ParseComponentMeta(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->id, component->id);
  EXPECT_EQ(parsed->name, "libnet");
  EXPECT_EQ(parsed->type, component->type);
  EXPECT_EQ(parsed->code_bytes, 550'000u);
  ASSERT_EQ(parsed->function_count(), 2u);
  EXPECT_EQ(parsed->Find("send")->constraint, Constraint::kPermanent);
  EXPECT_EQ(parsed->Find("send")->calls,
            (std::vector<std::string>{"checksum"}));
  EXPECT_EQ(parsed->Find("checksum")->visibility, Visibility::kInternal);
}

TEST(ComponentMetaWireTest, GarbageFailsToParse) {
  auto parsed = ParseComponentMeta(ByteBuffer::FromString("not a component"));
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace dcdo
