#include "component/implementation_type.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(ImplementationTypeTest, NativeMatchesOwnArchOnly) {
  ImplementationType native =
      ImplementationType::Native(sim::Architecture::kSparcSolaris);
  EXPECT_TRUE(native.CompatibleWith(sim::Architecture::kSparcSolaris));
  EXPECT_FALSE(native.CompatibleWith(sim::Architecture::kX86Linux));
  EXPECT_FALSE(native.CompatibleWith(sim::Architecture::kAlphaOsf));
}

TEST(ImplementationTypeTest, PortableRunsEverywhere) {
  ImplementationType portable = ImplementationType::Portable();
  EXPECT_TRUE(portable.CompatibleWith(sim::Architecture::kX86Linux));
  EXPECT_TRUE(portable.CompatibleWith(sim::Architecture::kSparcSolaris));
  EXPECT_TRUE(portable.CompatibleWith(sim::Architecture::kAlphaOsf));
  EXPECT_TRUE(portable.CompatibleWith(sim::Architecture::kX86Nt));
}

TEST(ImplementationTypeTest, ToStringDescribesAllFields) {
  ImplementationType type{sim::Architecture::kAlphaOsf,
                          CodeFormat::kElfSharedObject, Language::kFortran};
  EXPECT_EQ(type.ToString(), "alpha-osf/elf-so/fortran");
  EXPECT_EQ(ImplementationType::Portable().ToString(),
            "x86-linux/bytecode/any");
}

TEST(ImplementationTypeTest, EqualityIsFieldWise) {
  EXPECT_EQ(ImplementationType::Portable(), ImplementationType::Portable());
  EXPECT_NE(ImplementationType::Native(sim::Architecture::kX86Linux),
            ImplementationType::Native(sim::Architecture::kX86Nt));
}

TEST(ImplementationTypeTest, EnumNamesCovered) {
  EXPECT_EQ(CodeFormatName(CodeFormat::kCoffDll), "coff-dll");
  EXPECT_EQ(LanguageName(Language::kJava), "java");
  EXPECT_EQ(LanguageName(Language::kC), "c");
}

}  // namespace
}  // namespace dcdo
