// Shared helpers for building components and registering bodies in tests.
#pragma once

#include <string>
#include <vector>

#include "component/component.h"
#include "component/native_code_registry.h"

namespace dcdo::testing {

// Registers a portable body under `symbol` that returns "<tag>:<args>".
inline void RegisterEcho(NativeCodeRegistry& registry,
                         const std::string& symbol, const std::string& tag) {
  registry.Register(symbol, ImplementationType::Portable(),
                    [tag](CallContext&, const ByteBuffer& args) {
                      return Result<ByteBuffer>(ByteBuffer::FromString(
                          tag + ":" + args.ToString()));
                    });
}

// Registers a body that forwards to another dynamic function through the
// DFM (used to exercise intra-object calls and dependency machinery).
inline void RegisterForwarder(NativeCodeRegistry& registry,
                              const std::string& symbol,
                              const std::string& callee) {
  registry.Register(symbol, ImplementationType::Portable(),
                    [callee](CallContext& ctx, const ByteBuffer& args) {
                      return ctx.CallInternal(callee, args);
                    });
}

// Builds a component named `name` exporting `functions`, with echo bodies
// registered as "<name>/<function>" and tags "<name>.<function>".
inline ImplementationComponent MakeEchoComponent(
    NativeCodeRegistry& registry, const std::string& name,
    const std::vector<std::string>& functions,
    std::size_t code_bytes = 64 * 1024) {
  ComponentBuilder builder(name);
  builder.SetCodeBytes(code_bytes);
  for (const std::string& fn : functions) {
    std::string symbol = name + "/" + fn;
    RegisterEcho(registry, symbol, name + "." + fn);
    builder.AddFunction(fn, "b(b)", symbol);
  }
  auto built = builder.Build();
  // Tests construct well-formed components; surface mistakes loudly.
  if (!built.ok()) {
    throw std::runtime_error("MakeEchoComponent: " +
                             built.status().ToString());
  }
  return *built;
}

}  // namespace dcdo::testing
