#include "naming/name_service.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

class NameServiceTest : public ::testing::Test {
 protected:
  ObjectId NewId() { return ObjectId::Next(domains::kComponent); }
  NameService names_;
};

TEST_F(NameServiceTest, NormalizeRules) {
  EXPECT_TRUE(NameService::Normalize("/a/b").ok());
  EXPECT_TRUE(NameService::Normalize("/").ok());
  EXPECT_FALSE(NameService::Normalize("").ok());
  EXPECT_FALSE(NameService::Normalize("a/b").ok());
  EXPECT_FALSE(NameService::Normalize("/a/").ok());
  EXPECT_FALSE(NameService::Normalize("/a//b").ok());
}

TEST_F(NameServiceTest, BindAndLookup) {
  ObjectId id = NewId();
  ASSERT_TRUE(names_.Bind("/components/libsort/2", id).ok());
  auto found = names_.Lookup("/components/libsort/2");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, id);
  EXPECT_TRUE(names_.IsName("/components/libsort/2"));
  EXPECT_TRUE(names_.IsDirectory("/components"));
  EXPECT_TRUE(names_.IsDirectory("/components/libsort"));
  EXPECT_FALSE(names_.IsName("/components"));
}

TEST_F(NameServiceTest, DoubleBindRejected) {
  ASSERT_TRUE(names_.Bind("/x", NewId()).ok());
  EXPECT_EQ(names_.Bind("/x", NewId()).code(), ErrorCode::kAlreadyExists);
}

TEST_F(NameServiceTest, NameDirectoryCollisionRejectedBothWays) {
  ASSERT_TRUE(names_.Bind("/a/b/c", NewId()).ok());
  // "/a/b" is now a directory: cannot be bound as a name.
  EXPECT_EQ(names_.Bind("/a/b", NewId()).code(), ErrorCode::kAlreadyExists);
  // And a bound name cannot become a directory.
  ASSERT_TRUE(names_.Bind("/leaf", NewId()).ok());
  EXPECT_EQ(names_.Bind("/leaf/child", NewId()).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(NameServiceTest, RootCannotBeBound) {
  EXPECT_FALSE(names_.Bind("/", NewId()).ok());
  EXPECT_FALSE(names_.Bind("/nil-target", ObjectId::Nil()).ok());
}

TEST_F(NameServiceTest, UnbindRemovesAndDirectoriesEvaporate) {
  ASSERT_TRUE(names_.Bind("/dir/only", NewId()).ok());
  EXPECT_TRUE(names_.IsDirectory("/dir"));
  ASSERT_TRUE(names_.Unbind("/dir/only").ok());
  EXPECT_FALSE(names_.IsDirectory("/dir"));
  EXPECT_EQ(names_.Unbind("/dir/only").code(), ErrorCode::kNotFound);
  EXPECT_EQ(names_.size(), 0u);
}

TEST_F(NameServiceTest, ListDistinguishesNamesAndDirectories) {
  ASSERT_TRUE(names_.Bind("/c/libsort/1", NewId()).ok());
  ASSERT_TRUE(names_.Bind("/c/libsort/2", NewId()).ok());
  ASSERT_TRUE(names_.Bind("/c/libcmp", NewId()).ok());
  ASSERT_TRUE(names_.Bind("/hosts/n1", NewId()).ok());

  auto root = names_.List("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, (std::vector<std::string>{"c/", "hosts/"}));

  auto c = names_.List("/c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, (std::vector<std::string>{"libcmp", "libsort/"}));

  auto libsort = names_.List("/c/libsort");
  ASSERT_TRUE(libsort.ok());
  EXPECT_EQ(*libsort, (std::vector<std::string>{"1", "2"}));
}

TEST_F(NameServiceTest, ListErrors) {
  ASSERT_TRUE(names_.Bind("/a/b", NewId()).ok());
  EXPECT_EQ(names_.List("/nope").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(names_.List("/a/b").status().code(),
            ErrorCode::kFailedPrecondition)
      << "listing a name, not a directory";
}

TEST_F(NameServiceTest, EmptyRootListsEmpty) {
  auto root = names_.List("/");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->empty());
}

// Similar sibling prefixes must not bleed into each other's listings.
TEST_F(NameServiceTest, PrefixSiblingsDoNotCollide) {
  ASSERT_TRUE(names_.Bind("/ab/x", NewId()).ok());
  ASSERT_TRUE(names_.Bind("/abc/y", NewId()).ok());
  auto ab = names_.List("/ab");
  ASSERT_TRUE(ab.ok());
  EXPECT_EQ(*ab, (std::vector<std::string>{"x"}));
}

// ===== Interned (NameId-keyed) paths =====

TEST_F(NameServiceTest, BindInternedReturnsUsableId) {
  ObjectId id = NewId();
  auto bound = names_.BindInterned("/c/libsort/3", id);
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(bound->valid());

  // Id-keyed lookup resolves without any string in sight...
  auto by_id = names_.Lookup(*bound);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(*by_id, id);
  // ...and agrees with the by-name path.
  auto by_name = names_.Lookup("/c/libsort/3");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, id);

  // Interning the same path again yields the same id.
  auto again = NameService::Intern("/c/libsort/3");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *bound);
}

TEST_F(NameServiceTest, UnbindByIdRemovesTheName) {
  auto bound = names_.BindInterned("/u/leaf", NewId());
  ASSERT_TRUE(bound.ok());
  ASSERT_TRUE(names_.Unbind(*bound).ok());
  EXPECT_FALSE(names_.IsName("/u/leaf"));
  EXPECT_EQ(names_.size(), 0u);
  EXPECT_EQ(names_.Unbind(*bound).code(), ErrorCode::kNotFound);
  EXPECT_EQ(names_.Lookup(*bound).status().code(), ErrorCode::kNotFound);
}

TEST_F(NameServiceTest, InvalidIdLookupsFailCleanly) {
  EXPECT_EQ(names_.Lookup(NameId::Invalid()).status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(names_.Unbind(NameId::Invalid()).code(), ErrorCode::kNotFound);
}

// A name interned process-wide but never bound in *this* service instance
// must not resolve here (services are independent namespaces).
TEST_F(NameServiceTest, InternedButUnboundDoesNotResolve) {
  auto interned = NameService::Intern("/interned/but/not/bound");
  ASSERT_TRUE(interned.ok());
  EXPECT_EQ(names_.Lookup(*interned).status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(names_.Lookup("/interned/but/not/bound").status().code(),
            ErrorCode::kNotFound);
  EXPECT_FALSE(names_.IsName("/interned/but/not/bound"));
}

TEST_F(NameServiceTest, InternRejectsMalformedPaths) {
  EXPECT_FALSE(NameService::Intern("no/leading/slash").ok());
  EXPECT_FALSE(NameService::Intern("/trailing/").ok());
}

TEST(ObjectNameTableTest, FindNeverCreates) {
  ObjectNameTable& table = ObjectNameTable::Global();
  EXPECT_FALSE(table.Find("/object-name-table-test/never-interned").valid());
  NameId id = table.Intern("/object-name-table-test/interned");
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(table.Find("/object-name-table-test/interned"), id);
  EXPECT_EQ(table.NameOf(id), "/object-name-table-test/interned");
  // Re-interning is idempotent.
  EXPECT_EQ(table.Intern("/object-name-table-test/interned"), id);
}

}  // namespace
}  // namespace dcdo
