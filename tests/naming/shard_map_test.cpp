// ShardMap (consistent-hash partitioning) and LeaseTable (per-shard lease
// bookkeeping) unit coverage: routing determinism, balance, stability under
// growth, and the lease grant/expiry/drop lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "naming/lease_table.h"
#include "naming/shard_map.h"

namespace dcdo {
namespace {

TEST(ShardMapTest, SingleShardRoutesEverythingToZero) {
  ShardMap map;  // default: shard_count 1
  EXPECT_EQ(map.shard_count(), 1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(map.ShardForHash(static_cast<std::uint64_t>(i) * 0x9e3779b9u), 0);
    EXPECT_EQ(map.ShardFor(NameId{static_cast<std::uint32_t>(i)}), 0);
  }
  EXPECT_EQ(map.ShardFor(ObjectId::Next(domains::kInstance)), 0);
}

TEST(ShardMapTest, RoutingIsDeterministicAcrossBuilds) {
  ShardMap a;
  ShardMap b;
  a.Build(8, 64);
  b.Build(8, 64);
  std::vector<ObjectId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) ids.push_back(ObjectId::Next(domains::kInstance));
  for (const ObjectId& id : ids) {
    int shard = a.ShardFor(id);
    EXPECT_EQ(shard, b.ShardFor(id));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
  }
}

TEST(ShardMapTest, KeysSpreadAcrossShardsWithinBand) {
  constexpr int kShards = 8;
  constexpr int kKeys = 100000;
  ShardMap map;
  map.Build(kShards, 64);
  std::vector<int> per_shard(kShards, 0);
  for (int i = 0; i < kKeys; ++i) {
    ++per_shard[static_cast<std::size_t>(
        map.ShardFor(ObjectId::Next(domains::kInstance)))];
  }
  // 64 virtual points per shard keep the spread near uniform; allow a wide
  // band (half to double the fair share) so the test pins the property, not
  // the hash function's exact output.
  constexpr int kFair = kKeys / kShards;
  for (int shard = 0; shard < kShards; ++shard) {
    EXPECT_GT(per_shard[static_cast<std::size_t>(shard)], kFair / 2)
        << "shard " << shard << " is starved";
    EXPECT_LT(per_shard[static_cast<std::size_t>(shard)], kFair * 2)
        << "shard " << shard << " is overloaded";
  }
}

TEST(ShardMapTest, GrowingByOneShardMovesOnlyASliver) {
  constexpr int kKeys = 20000;
  ShardMap before;
  ShardMap after;
  before.Build(8, 64);
  after.Build(9, 64);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    ObjectId id = ObjectId::Next(domains::kInstance);
    if (before.ShardFor(id) != after.ShardFor(id)) ++moved;
  }
  // Consistent hashing: ~1/9 of the keys should move; rehash-everything
  // schemes would move ~8/9. Assert well under the midpoint.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 4);
}

TEST(ShardMapTest, NameIdsRouteLikeAnyOtherKey) {
  ShardMap map;
  map.Build(4, 64);
  std::vector<int> per_shard(4, 0);
  for (std::uint32_t v = 0; v < 4000; ++v) {
    int shard = map.ShardFor(NameId{v});
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 4);
    ++per_shard[static_cast<std::size_t>(shard)];
  }
  // Sequential ids (the realistic NameId pattern) must not cluster.
  for (int count : per_shard) EXPECT_GT(count, 0);
}

class LeaseTableTest : public ::testing::Test {
 protected:
  static sim::SimTime At(double seconds) {
    return sim::SimTime{} + sim::SimDuration::Seconds(seconds);
  }

  LeaseTable table_;
  ObjectId object_ = ObjectId::Next(domains::kInstance);
};

TEST_F(LeaseTableTest, LiveHoldersAreOrderedByHolderId) {
  table_.Grant(object_, 5, At(0), At(60));
  table_.Grant(object_, 2, At(0), At(60));
  table_.Grant(object_, 9, At(0), At(60));
  EXPECT_EQ(table_.LiveHolders(object_, At(1)),
            (std::vector<std::uint64_t>{2, 5, 9}));
  EXPECT_EQ(table_.LiveCount(At(1)), 3u);
}

TEST_F(LeaseTableTest, ExpiredLeasesAreNotLive) {
  table_.Grant(object_, 1, At(0), At(60));
  table_.Grant(object_, 2, At(0), At(120));
  EXPECT_EQ(table_.LiveHolders(object_, At(90)),
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(table_.LiveCount(At(90)), 1u);
  EXPECT_TRUE(table_.LiveHolders(object_, At(150)).empty());
  EXPECT_EQ(table_.LiveCount(At(150)), 0u);
}

TEST_F(LeaseTableTest, RegrantExtendsTheLease) {
  table_.Grant(object_, 1, At(0), At(60));
  table_.Grant(object_, 1, At(30), At(90));  // renewal, not a second lease
  EXPECT_EQ(table_.LiveHolders(object_, At(75)),
            (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(table_.LiveCount(At(75)), 1u);
}

TEST_F(LeaseTableTest, GrantPurgesExpiredSiblings) {
  table_.Grant(object_, 1, At(0), At(60));
  // Holder 1's lease is long dead by the time holder 2 shows up; the grant
  // sweeps it out so the table holds only live state.
  table_.Grant(object_, 2, At(100), At(160));
  EXPECT_EQ(table_.LiveHolders(object_, At(101)),
            (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(table_.LiveCount(At(101)), 1u);
}

TEST_F(LeaseTableTest, DropForgetsTheObject) {
  table_.Grant(object_, 1, At(0), At(60));
  table_.Grant(object_, 2, At(0), At(60));
  table_.Drop(object_);
  EXPECT_TRUE(table_.LiveHolders(object_, At(1)).empty());
  EXPECT_TRUE(table_.empty());
}

TEST_F(LeaseTableTest, DropHolderForgetsOnlyThatHolder) {
  ObjectId other = ObjectId::Next(domains::kInstance);
  table_.Grant(object_, 1, At(0), At(60));
  table_.Grant(object_, 2, At(0), At(60));
  table_.Grant(other, 1, At(0), At(60));
  table_.DropHolder(1);
  EXPECT_EQ(table_.LiveHolders(object_, At(1)),
            (std::vector<std::uint64_t>{2}));
  EXPECT_TRUE(table_.LiveHolders(other, At(1)).empty());
  EXPECT_EQ(table_.LiveCount(At(1)), 1u);
}

}  // namespace
}  // namespace dcdo
