#include "naming/binding_agent.h"
#include "naming/binding_cache.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(BindingAgentTest, BindAndLookup) {
  BindingAgent agent;
  ObjectId id = ObjectId::Next(domains::kInstance);
  ObjectAddress address{1, 42, 1};
  agent.Bind(id, address);
  auto found = agent.Lookup(id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, address);
}

TEST(BindingAgentTest, LookupUnknownFails) {
  BindingAgent agent;
  auto found = agent.Lookup(ObjectId::Next(domains::kInstance));
  EXPECT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), ErrorCode::kNotFound);
}

TEST(BindingAgentTest, RebindReplaces) {
  BindingAgent agent;
  ObjectId id = ObjectId::Next(domains::kInstance);
  agent.Bind(id, ObjectAddress{1, 42, 1});
  agent.Bind(id, ObjectAddress{2, 7, 2});
  EXPECT_EQ(agent.Lookup(id)->node, 2u);
  EXPECT_EQ(agent.size(), 1u);
}

TEST(BindingAgentTest, UnbindRemoves) {
  BindingAgent agent;
  ObjectId id = ObjectId::Next(domains::kInstance);
  agent.Bind(id, ObjectAddress{1, 42, 1});
  agent.Unbind(id);
  EXPECT_FALSE(agent.Bound(id));
  EXPECT_FALSE(agent.Lookup(id).ok());
}

TEST(BindingAgentTest, CountsLookups) {
  BindingAgent agent;
  ObjectId id = ObjectId::Next(domains::kInstance);
  agent.Bind(id, ObjectAddress{1, 1, 1});
  (void)agent.Lookup(id);
  (void)agent.Lookup(id);
  EXPECT_EQ(agent.lookups_served(), 2u);
}

TEST(AddressTest, ValidityAndFormat) {
  EXPECT_FALSE(ObjectAddress::Invalid().valid());
  ObjectAddress address{3, 17, 2};
  EXPECT_TRUE(address.valid());
  EXPECT_EQ(address.ToString(), "node3/pid17@e2");
  EXPECT_EQ(ObjectAddress::Invalid().ToString(), "<unbound>");
}

class BindingCacheTest : public ::testing::Test {
 protected:
  BindingCacheTest() : cache_(&agent_) {
    id_ = ObjectId::Next(domains::kInstance);
    agent_.Bind(id_, ObjectAddress{1, 42, 1});
  }
  BindingAgent agent_;
  BindingCache cache_;
  ObjectId id_;
};

TEST_F(BindingCacheTest, FirstResolveMissesThenHits) {
  ASSERT_TRUE(cache_.Resolve(id_).ok());
  EXPECT_EQ(cache_.misses(), 1u);
  EXPECT_EQ(cache_.hits(), 0u);
  ASSERT_TRUE(cache_.Resolve(id_).ok());
  EXPECT_EQ(cache_.hits(), 1u);
  EXPECT_EQ(agent_.lookups_served(), 1u) << "second resolve served locally";
}

// The crux of the stale-binding problem: the cache keeps serving a dead
// address until explicitly refreshed.
TEST_F(BindingCacheTest, CachedEntryGoesStaleSilently) {
  ASSERT_TRUE(cache_.Resolve(id_).ok());
  agent_.Bind(id_, ObjectAddress{2, 99, 2});  // the object moved
  auto stale = cache_.Resolve(id_);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->node, 1u) << "cache still returns the old address";
  auto fresh = cache_.RefreshFromAgent(id_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->node, 2u);
  EXPECT_EQ(cache_.refreshes(), 1u);
}

TEST_F(BindingCacheTest, InvalidateForcesAgentRoundTrip) {
  ASSERT_TRUE(cache_.Resolve(id_).ok());
  cache_.Invalidate(id_);
  EXPECT_FALSE(cache_.Cached(id_));
  ASSERT_TRUE(cache_.Resolve(id_).ok());
  EXPECT_EQ(agent_.lookups_served(), 2u);
}

TEST_F(BindingCacheTest, RefreshOfUnboundObjectFails) {
  agent_.Unbind(id_);
  cache_.InvalidateAll();
  EXPECT_FALSE(cache_.Resolve(id_).ok());
  EXPECT_FALSE(cache_.RefreshFromAgent(id_).ok());
}

}  // namespace
}  // namespace dcdo
