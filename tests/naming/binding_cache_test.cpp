// LRU behavior of the bounded BindingCache: eviction order, touch-on-hit,
// counter accuracy, and list/map consistency across invalidation.
#include "naming/binding_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "naming/binding_agent.h"

namespace dcdo {
namespace {

class BindingCacheLruTest : public ::testing::Test {
 protected:
  // Binds `count` fresh objects at distinct addresses and returns their ids.
  std::vector<ObjectId> BindFresh(std::size_t count) {
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < count; ++i) {
      ObjectId id = ObjectId::Next(domains::kInstance);
      agent_.Bind(id, ObjectAddress{static_cast<sim::NodeId>(i + 1), 1, 1});
      ids.push_back(id);
    }
    return ids;
  }

  BindingAgent agent_;
};

TEST_F(BindingCacheLruTest, ResolvePopulatesAndHits) {
  BindingCache cache(&agent_, /*capacity=*/4);
  std::vector<ObjectId> ids = BindFresh(1);
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());  // miss: agent lookup + store
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());  // hit
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(agent_.lookups_served(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(BindingCacheLruTest, EvictsLeastRecentlyUsed) {
  BindingCache cache(&agent_, /*capacity=*/3);
  std::vector<ObjectId> ids = BindFresh(4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache.Resolve(ids[i]).ok());
  ASSERT_TRUE(cache.Resolve(ids[3]).ok());  // evicts ids[0], the coldest
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Cached(ids[0]));
  EXPECT_TRUE(cache.Cached(ids[1]));
  EXPECT_TRUE(cache.Cached(ids[3]));
}

TEST_F(BindingCacheLruTest, HitRefreshesRecency) {
  BindingCache cache(&agent_, /*capacity=*/3);
  std::vector<ObjectId> ids = BindFresh(4);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache.Resolve(ids[i]).ok());
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());  // touch: ids[0] is MRU now
  ASSERT_TRUE(cache.Resolve(ids[3]).ok());  // evicts ids[1] instead
  EXPECT_TRUE(cache.Cached(ids[0]));
  EXPECT_FALSE(cache.Cached(ids[1]));
  EXPECT_TRUE(cache.Cached(ids[2]));
}

TEST_F(BindingCacheLruTest, CapacityZeroIsUnbounded) {
  BindingCache cache(&agent_, /*capacity=*/0);
  std::vector<ObjectId> ids = BindFresh(64);
  for (const ObjectId& id : ids) ASSERT_TRUE(cache.Resolve(id).ok());
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST_F(BindingCacheLruTest, EvictedEntryIsRefetchedFromAgent) {
  BindingCache cache(&agent_, /*capacity=*/1);
  std::vector<ObjectId> ids = BindFresh(2);
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());
  ASSERT_TRUE(cache.Resolve(ids[1]).ok());  // evicts ids[0]
  auto again = cache.Resolve(ids[0]);       // miss: authoritative lookup
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->node, 1u);
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(agent_.lookups_served(), 3u);
}

TEST_F(BindingCacheLruTest, RefreshReplacesWithoutGrowth) {
  BindingCache cache(&agent_, /*capacity=*/2);
  std::vector<ObjectId> ids = BindFresh(2);
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());
  ASSERT_TRUE(cache.Resolve(ids[1]).ok());
  agent_.Bind(ids[0], ObjectAddress{9, 9, 2});  // object moved
  auto fresh = cache.RefreshFromAgent(ids[0]);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->node, 9u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.refreshes(), 1u);
  EXPECT_EQ(cache.Resolve(ids[0])->node, 9u);
}

TEST_F(BindingCacheLruTest, FailedRefreshLeavesNoStaleEntry) {
  BindingCache cache(&agent_, /*capacity=*/4);
  std::vector<ObjectId> ids = BindFresh(1);
  ASSERT_TRUE(cache.Resolve(ids[0]).ok());
  agent_.Unbind(ids[0]);
  EXPECT_FALSE(cache.RefreshFromAgent(ids[0]).ok());
  EXPECT_FALSE(cache.Cached(ids[0]));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(BindingCacheLruTest, InvalidateKeepsLruConsistent) {
  BindingCache cache(&agent_, /*capacity=*/3);
  std::vector<ObjectId> ids = BindFresh(5);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(cache.Resolve(ids[i]).ok());
  // Remove the middle entry; the LRU list must shed it too, so subsequent
  // fills evict the true coldest survivor (ids[0]) and nothing crashes.
  cache.Invalidate(ids[1]);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.Resolve(ids[3]).ok());  // size 3, at capacity
  ASSERT_TRUE(cache.Resolve(ids[4]).ok());  // evicts ids[0]
  EXPECT_FALSE(cache.Cached(ids[0]));
  EXPECT_TRUE(cache.Cached(ids[2]));
  EXPECT_TRUE(cache.Cached(ids[3]));
  EXPECT_TRUE(cache.Cached(ids[4]));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST_F(BindingCacheLruTest, InvalidateAllEmptiesBothStructures) {
  BindingCache cache(&agent_, /*capacity=*/4);
  std::vector<ObjectId> ids = BindFresh(3);
  for (const ObjectId& id : ids) ASSERT_TRUE(cache.Resolve(id).ok());
  cache.InvalidateAll();
  EXPECT_EQ(cache.size(), 0u);
  // Refilling past capacity still evicts correctly (list was really cleared).
  std::vector<ObjectId> more = BindFresh(5);
  for (const ObjectId& id : more) ASSERT_TRUE(cache.Resolve(id).ok());
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
}

}  // namespace
}  // namespace dcdo
