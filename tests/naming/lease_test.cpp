// Lease/invalidation protocol coverage (DESIGN.md §13): granted leases,
// invalidation-beats-expiry, lost invalidations falling back to lease
// expiry, the client's mid-call switch to a pushed binding, a rebind storm
// against hundreds of leaseholders under the installed checkers, and a
// partitioned leaseholder reconverging after heal.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "naming/binding_cache.h"
#include "rpc/client.h"
#include "runtime/testbed.h"

namespace dcdo {
namespace {

constexpr sim::NodeId kShardNode = 9;
constexpr sim::SimDuration kLease = sim::SimDuration::Seconds(60.0);

sim::CostModel LeaseModel() {
  sim::CostModel cost;
  cost.binding_lease_duration = kLease;
  return cost;
}

class LeaseTest : public ::testing::Test {
 protected:
  LeaseTest() : network_(&simulation_, LeaseModel()), transport_(&network_) {
    for (sim::NodeId n = 1; n <= 5; ++n) network_.AddNode(n);
    network_.AddNode(kShardNode);
    target_ = ObjectId::Next(domains::kInstance);
  }

  void SetUp() override {
    DirectoryConfig config;
    config.lease_duration = kLease;
    ASSERT_TRUE(
        agent_.Configure(config, &simulation_, &network_, {kShardNode}).ok());
  }

  // Lets `duration` of sim time elapse (an empty event pins the clock).
  void Advance(sim::SimDuration duration) {
    simulation_.Schedule(duration, []() {});
    simulation_.Run();
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  rpc::RpcTransport transport_;
  BindingAgent agent_;
  ObjectId target_;
};

TEST_F(LeaseTest, ResolveGrantsLeaseAndRebindPushesFreshBinding) {
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  BindingCache cache(&agent_, /*capacity=*/16, /*node=*/1);
  ASSERT_TRUE(cache.Resolve(target_).ok());
  EXPECT_EQ(agent_.leases_granted(), 1u);
  EXPECT_EQ(agent_.live_leases(), 1u);

  // Migration: the shard pushes the replacement binding. The notice arrives
  // a network hop later — milliseconds, not the 25-35 s probe schedule, and
  // nowhere near the 60 s lease expiry.
  sim::SimTime migrated_at = simulation_.Now();
  agent_.Bind(target_, ObjectAddress{3, 20, 2});
  EXPECT_EQ(agent_.invalidations_sent(), 1u);
  simulation_.Run();

  EXPECT_EQ(agent_.invalidations_delivered(), 1u);
  EXPECT_EQ(cache.invalidations_received(), 1u);
  auto pushed = cache.CachedAddress(target_);
  ASSERT_TRUE(pushed.has_value());
  EXPECT_EQ(*pushed, (ObjectAddress{3, 20, 2}));
  EXPECT_LT((simulation_.Now() - migrated_at).ToSeconds(), 1.0);
  // The pushed entry is served directly — no second agent lookup.
  std::uint64_t lookups_before = agent_.lookups_served();
  ASSERT_TRUE(cache.Resolve(target_).ok());
  EXPECT_EQ(agent_.lookups_served(), lookups_before);
}

TEST_F(LeaseTest, UnbindPushesDropNotice) {
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  BindingCache cache(&agent_, /*capacity=*/16, /*node=*/1);
  ASSERT_TRUE(cache.Resolve(target_).ok());

  agent_.Unbind(target_);
  simulation_.Run();

  EXPECT_EQ(cache.invalidations_received(), 1u);
  EXPECT_FALSE(cache.Cached(target_));
  EXPECT_EQ(agent_.live_leases(), 0u);  // drop notices consume the leases
  EXPECT_FALSE(cache.Resolve(target_).ok());  // authoritative miss now
}

TEST_F(LeaseTest, LostInvalidationFallsBackToLeaseExpiry) {
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  BindingCache cache(&agent_, /*capacity=*/16, /*node=*/1);
  ASSERT_TRUE(cache.Resolve(target_).ok());

  // The holder is partitioned from its shard when the binding moves: the
  // push is silently dropped (exactly a real LAN's failure mode).
  network_.SetPartitioned(1, kShardNode, true);
  agent_.Bind(target_, ObjectAddress{3, 20, 2});
  simulation_.Run();
  EXPECT_EQ(agent_.invalidations_sent(), 1u);
  EXPECT_EQ(cache.invalidations_received(), 0u);

  // Until the lease runs out the cache (correctly, per the protocol) still
  // serves the stale address...
  auto stale = cache.CachedAddress(target_);
  ASSERT_TRUE(stale.has_value());
  EXPECT_EQ(*stale, (ObjectAddress{2, 10, 1}));

  // ...but never past expiry: the entry then misses and the re-fetch (the
  // partition healed meanwhile) returns the fresh binding with a new lease.
  network_.SetPartitioned(1, kShardNode, false);
  Advance(kLease + sim::SimDuration::Seconds(1.0));
  EXPECT_EQ(cache.CachedAddress(target_), std::nullopt);
  auto refetched = cache.Resolve(target_);
  ASSERT_TRUE(refetched.ok());
  EXPECT_EQ(*refetched, (ObjectAddress{3, 20, 2}));
  EXPECT_EQ(cache.lease_expirations(), 1u);
  EXPECT_EQ(agent_.leases_granted(), 2u);
}

TEST_F(LeaseTest, HealedLeaseholderReceivesLaterPushes) {
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  BindingCache cache(&agent_, /*capacity=*/16, /*node=*/1);
  ASSERT_TRUE(cache.Resolve(target_).ok());

  // Stale across a partition (push lost), then heal and reconverge through
  // expiry + re-fetch...
  network_.SetPartitioned(1, kShardNode, true);
  agent_.Bind(target_, ObjectAddress{3, 20, 2});
  simulation_.Run();
  network_.SetPartitioned(1, kShardNode, false);
  Advance(kLease + sim::SimDuration::Seconds(1.0));
  ASSERT_TRUE(cache.Resolve(target_).ok());

  // ...after which the holder is a first-class leaseholder again: the next
  // migration's push reaches it immediately.
  agent_.Bind(target_, ObjectAddress{4, 30, 3});
  simulation_.Run();
  EXPECT_EQ(cache.invalidations_received(), 1u);
  auto pushed = cache.CachedAddress(target_);
  ASSERT_TRUE(pushed.has_value());
  EXPECT_EQ(*pushed, (ObjectAddress{4, 30, 3}));
}

TEST_F(LeaseTest, DestroyedCacheStopsReceivingPushes) {
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  {
    BindingCache cache(&agent_, /*capacity=*/16, /*node=*/1);
    ASSERT_TRUE(cache.Resolve(target_).ok());
  }  // unregisters its holder handle; its leases die with it
  EXPECT_EQ(agent_.live_leases(), 0u);
  agent_.Bind(target_, ObjectAddress{3, 20, 2});
  simulation_.Run();
  EXPECT_EQ(agent_.invalidations_sent(), 0u);
}

// The rpc client under leases: a fresh call after the push resolves the new
// address straight from the cache (zero timeouts), and a call already in
// flight switches at its first timeout instead of finishing the probe
// schedule.
class LeaseClientTest : public LeaseTest {
 protected:
  void SetUp() override {
    LeaseTest::SetUp();  // the cache registers as a leaseholder only if the
                         // agent is configured before the client exists
    client_ = std::make_unique<rpc::RpcClient>(&transport_, &agent_,
                                               /*node=*/1);
  }

  void ServeEchoAt(sim::NodeId node, sim::ProcessId pid, std::uint64_t epoch) {
    transport_.RegisterEndpoint(
        node, pid, epoch, [](const rpc::MethodInvocation& inv,
                             rpc::ReplyFn reply) {
          reply(rpc::MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    agent_.Bind(target_, ObjectAddress{node, pid, epoch});
  }

  rpc::RpcClient& client() { return *client_; }

  std::unique_ptr<rpc::RpcClient> client_;
};

TEST_F(LeaseClientTest, PushedBindingServesNewCallsWithoutTimeouts) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client().InvokeBlocking(target_, "warmup").ok());

  // Migrate; the push lands in the client's cache within a network hop.
  transport_.UnregisterEndpoint(2, 10);
  ServeEchoAt(3, 20, 2);
  simulation_.Run();

  sim::SimTime start = simulation_.Now();
  ASSERT_TRUE(client().InvokeBlocking(target_, "afterMigration").ok());
  EXPECT_EQ(client().timeouts(), 0u);
  EXPECT_EQ(client().rebinds(), 0u);
  EXPECT_LT((simulation_.Now() - start).ToSeconds(), 1.0);
}

TEST_F(LeaseClientTest, InFlightCallSwitchesToPushedBindingAtFirstTimeout) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client().InvokeBlocking(target_, "warmup").ok());

  // The call goes out to the old address; the object migrates 2 s later.
  transport_.UnregisterEndpoint(2, 10);
  simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                       [this]() { ServeEchoAt(3, 20, 2); });
  sim::SimTime start = simulation_.Now();
  auto result = client().InvokeBlocking(target_, "midFlight");
  ASSERT_TRUE(result.ok());

  // One timeout (the attempt already on the wire), then the pushed binding
  // takes over — no stale retries, no rebind query, ~10 s instead of ~31 s.
  EXPECT_EQ(client().timeouts(), 1u);
  EXPECT_EQ(client().lease_rebinds(), 1u);
  EXPECT_EQ(client().rebinds(), 0u);
  double seconds = (simulation_.Now() - start).ToSeconds();
  EXPECT_LT(seconds, 12.0);
  sim::CostModel legacy;
  EXPECT_LT(seconds, legacy.StaleBindingDiscovery().ToSeconds());
}

// Rebind storm: hundreds of holders lease one binding; a single migration
// pushes to all of them. Runs over a full Testbed with the invariant checker
// and race detector installed — zero diagnostics allowed — and the whole
// fan-out must land in under a second of sim time.
TEST(LeaseStormTest, RebindStormConvergesSubSecondUnderChecker) {
  Testbed::Options options;
  options.host_count = 20;
  options.cost_model.binding_lease_duration = kLease;
  Testbed testbed(options);
  auto& transport = testbed.transport();
  ObjectId target = ObjectId::Next(domains::kInstance);

  transport.RegisterEndpoint(
      2, 7, 1, [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
        reply(rpc::MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  testbed.agent().Bind(target, ObjectAddress{2, 7, 1});

  constexpr int kHolders = 300;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  clients.reserve(kHolders);
  for (int i = 0; i < kHolders; ++i) {
    clients.push_back(testbed.MakeClient(i % options.host_count));
    ASSERT_TRUE(clients.back()->InvokeBlocking(target, "warmup").ok());
  }
  EXPECT_EQ(testbed.agent().live_leases(), static_cast<std::size_t>(kHolders));

  // One migration; every holder gets the fresh binding pushed.
  transport.UnregisterEndpoint(2, 7);
  transport.RegisterEndpoint(
      3, 8, 2, [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
        reply(rpc::MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  sim::SimTime migrated_at = testbed.simulation().Now();
  testbed.agent().Bind(target, ObjectAddress{3, 8, 2});
  testbed.RunAll();

  EXPECT_EQ(testbed.agent().invalidations_sent(),
            static_cast<std::uint64_t>(kHolders));
  EXPECT_EQ(testbed.agent().invalidations_delivered(),
            static_cast<std::uint64_t>(kHolders));
  EXPECT_LT((testbed.simulation().Now() - migrated_at).ToSeconds(), 1.0);
  for (const auto& client : clients) {
    auto pushed = client->cache().CachedAddress(target);
    ASSERT_TRUE(pushed.has_value());
    EXPECT_EQ(*pushed, (ObjectAddress{3, 8, 2}));
  }
  // And the storm left every invariant intact.
  if (auto* checker = testbed.checker()) {
    EXPECT_EQ(checker->diagnostics().count(), 0u)
        << checker->diagnostics().DumpText();
  }
}

// Legacy guard: with leases off (the default cost model) nothing registers,
// nothing is pushed, and staleness is still discovered by timeout probing.
TEST(LeaseOffTest, DefaultModelTakesLegacyPath) {
  sim::Simulation simulation;
  sim::SimNetwork network(&simulation, sim::CostModel{});
  BindingAgent agent;
  EXPECT_FALSE(agent.leases_enabled());
  ObjectId target = ObjectId::Next(domains::kInstance);
  agent.Bind(target, ObjectAddress{2, 10, 1});
  BindingCache cache(&agent, /*capacity=*/16, /*node=*/1);
  ASSERT_TRUE(cache.Resolve(target).ok());
  EXPECT_EQ(agent.leases_granted(), 0u);
  agent.Bind(target, ObjectAddress{3, 20, 2});
  simulation.Run();
  EXPECT_EQ(agent.invalidations_sent(), 0u);
  // The cache still serves the (now stale) entry — the rpc layer's timeout
  // probing is the only discovery mechanism, exactly as before.
  auto cached = cache.CachedAddress(target);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, (ObjectAddress{2, 10, 1}));
}

}  // namespace
}  // namespace dcdo
