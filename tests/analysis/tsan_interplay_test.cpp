// Satellite regression test for the static/dynamic race-detection overlap:
// the reduced `lookups_served_`-style mutable-counter race in
// fixtures/mutable-race/racy_service.h is flagged BOTH ways —
//
//   * statically: dcdo-analyze's dcdo-mutable-nonatomic-in-const fires on
//     the header in every build mode;
//   * dynamically: the compiled analysis_race_fixture binary races for
//     real, and under the `tsan` preset (DCDO_SANITIZE=thread)
//     ThreadSanitizer reports the data race and fails the process. In
//     non-TSan builds the fixture exits cleanly (the race is benign-looking
//     there — which is exactly why the static check earns its keep).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef DCDO_ANALYZE_BIN
#error "build must define DCDO_ANALYZE_BIN"
#endif
#ifndef DCDO_RACE_FIXTURE_BIN
#error "build must define DCDO_RACE_FIXTURE_BIN"
#endif
#ifndef DCDO_ANALYSIS_FIXTURE_DIR
#error "build must define DCDO_ANALYSIS_FIXTURE_DIR"
#endif

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanBuild = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanBuild = true;
#else
constexpr bool kTsanBuild = false;
#endif
#else
constexpr bool kTsanBuild = false;
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunCommand(const std::string& command) {
  RunResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(TsanInterplayTest, StaticCheckFlagsTheRacyFixture) {
  const std::string header =
      std::string(DCDO_ANALYSIS_FIXTURE_DIR) + "/mutable-race/racy_service.h";
  RunResult run = RunCommand(
      std::string(DCDO_ANALYZE_BIN) +
      " --checks=dcdo-mutable-nonatomic-in-const " + header);
  EXPECT_EQ(run.exit_code, 1) << run.output;
  EXPECT_NE(run.output.find("lookups_served_"), std::string::npos)
      << run.output;
  EXPECT_NE(run.output.find("dcdo-mutable-nonatomic-in-const"),
            std::string::npos)
      << run.output;
}

TEST(TsanInterplayTest, DynamicDetectorFlagsTheSameRaceUnderTsan) {
  // exitcode=66 makes a TSan report unambiguous against ordinary failures.
  RunResult run = RunCommand(
      "env TSAN_OPTIONS=\"exitcode=66 halt_on_error=1\" " +
      std::string(DCDO_RACE_FIXTURE_BIN));
  if (kTsanBuild) {
    EXPECT_EQ(run.exit_code, 66)
        << "expected ThreadSanitizer to flag the mutable-counter race\n"
        << run.output;
    EXPECT_NE(run.output.find("ThreadSanitizer"), std::string::npos)
        << run.output;
  } else {
    // Without TSan the racy fixture runs to completion: the bug class is
    // invisible at runtime in normal builds, so only the static check and
    // the tsan preset stand between it and production.
    EXPECT_EQ(run.exit_code, 0) << run.output;
  }
}

}  // namespace
