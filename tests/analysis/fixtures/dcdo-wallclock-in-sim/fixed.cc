// The clean counterparts: time comes from the simulation clock, jitter
// from a deterministic engine seeded by configuration. Replays are
// byte-identical because every input is part of the scenario.
#include <cstdint>
#include <random>

namespace fixture {

struct Simulation {
  std::int64_t NowNanos() const;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(std::uint64_t seed) : rng_(seed) {}

  // Deadline in sim time: deterministic under replay.
  std::int64_t DeadlineNanos(const Simulation& sim) const {
    return sim.NowNanos() + budget_ns_;
  }

  // Jitter from a seeded engine: the seed is scenario configuration.
  std::int64_t JitterNanos() {
    return static_cast<std::int64_t>(rng_() % 1000);
  }

 private:
  std::int64_t budget_ns_ = 0;
  std::mt19937_64 rng_;
};

}  // namespace fixture
