// Wall-clock and OS-randomness reads inside simulation logic. Replays of
// the same scenario must produce byte-identical SimTime_* results; a
// std::chrono clock read, rand(), or std::random_device seed makes the
// outcome depend on the host instead of the event queue. (Wall stamps are
// legitimate in src/trace — spans carry both sim and wall time — which is
// why scripts/analyze.sh allowlists that path prefix.)
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>

namespace fixture {

class RetryPolicy {
 public:
  // Deadline computed from the host clock instead of sim time.
  std::int64_t DeadlineNanos() const {
    auto now = std::chrono::steady_clock::now();  // expect: dcdo-wallclock-in-sim
    return now.time_since_epoch().count() + budget_ns_;
  }

  // Jitter from the global C RNG: unseeded, platform-varying.
  std::int64_t JitterNanos() const {
    return rand() % 1000;  // expect: dcdo-wallclock-in-sim
  }

  // Nondeterministic seeding: every replay walks a different schedule.
  std::uint64_t PickSeed() const {
    std::random_device entropy;  // expect: dcdo-wallclock-in-sim
    return entropy();
  }

 private:
  std::int64_t budget_ns_ = 0;
};

}  // namespace fixture
