// The committed fixes for the PR 4 race class, all of which must stay
// clean: an atomic counter (the real fix — BindingAgent now holds a
// trace::Counter), a trace::Counter-shaped wrapper type, and a mutex-guarded
// write.
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>

namespace fixture {

struct Address {
  int node = 0;
};

// The real fix's shape: relaxed atomic counter type.
class RelaxedCounter {
 public:
  void Increment() { value_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class BindingDirectory {
 public:
  void Bind(int id, const Address& address) { bindings_[id] = address; }

  // Clean: std::atomic member.
  const Address* Probe(int id) const {
    probes_served_.fetch_add(1, std::memory_order_relaxed);
    auto it = bindings_.find(id);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  const Address* Lookup(int id) const;

  // Clean: mutex held around the mutable write.
  std::uint64_t DrainStats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t out = stat_window_;
    stat_window_ = 0;
    return out;
  }

 private:
  std::map<int, Address> bindings_;
  mutable RelaxedCounter lookups_served_;
  mutable std::atomic<std::uint64_t> probes_served_{0};
  mutable std::mutex mutex_;
  mutable std::uint64_t stat_window_ = 0;
};

// Clean: counter type is atomic (Counter-shaped), out-of-line.
const Address* BindingDirectory::Lookup(int id) const {
  lookups_served_.Increment();
  auto it = bindings_.find(id);
  return it == bindings_.end() ? nullptr : &it->second;
}

}  // namespace fixture
