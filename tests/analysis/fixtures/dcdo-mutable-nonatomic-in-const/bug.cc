// Reduced reproduction of the PR 4 race class: BindingAgent::Lookup was a
// const method incrementing `mutable std::uint64_t lookups_served_`.
// Concurrent test threads probing the agent raced on the plain increment —
// invisible in single-threaded runs, flagged by TSan, fixed by moving the
// counter to an atomic (trace::Counter).
//
// Both the inline-method and the out-of-line-definition shape are here
// because the real bug was split across binding_agent.h / binding_agent.cc.
#include <cstdint>
#include <map>
#include <string>

namespace fixture {

struct Address {
  int node = 0;
};

class BindingDirectory {
 public:
  void Bind(int id, const Address& address) { bindings_[id] = address; }

  // Inline shape: the const query bumps a plain mutable counter.
  const Address* Probe(int id) const {
    ++probes_served_;  // expect: dcdo-mutable-nonatomic-in-const
    auto it = bindings_.find(id);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  const Address* Lookup(int id) const;

  std::uint64_t lookups_served() const { return lookups_served_; }

 private:
  std::map<int, Address> bindings_;
  mutable std::uint64_t lookups_served_ = 0;
  mutable std::uint64_t probes_served_ = 0;
};

// Out-of-line shape: the exact historical layout (member declared in the
// header, write in the .cc).
const Address* BindingDirectory::Lookup(int id) const {
  lookups_served_ += 1;  // expect: dcdo-mutable-nonatomic-in-const
  auto it = bindings_.find(id);
  return it == bindings_.end() ? nullptr : &it->second;
}

}  // namespace fixture
