// The committed fix pattern (PR 5, SimNetwork::RecomputeShares): copy the
// keys out of the unordered container, sort them, and schedule in sorted
// order. Also shows the other clean shape — iterating the unordered
// container is fine when the body never reaches an event-scheduling sink.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Simulation {
  std::uint64_t Schedule(std::int64_t delay_ns, std::function<void()> fn);
};

struct Flow {
  std::int64_t restart_delay_ns = 0;
};

class FlowTable {
 public:
  // Deterministic: schedule order is key order, independent of hash layout.
  void RescheduleAll(Simulation& sim) {
    std::vector<int> ids;
    ids.reserve(flows_.size());
    for (const auto& [id, flow] : flows_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    for (int id : ids) {
      sim.Schedule(flows_[id].restart_delay_ns, [] {});
    }
  }

  // Clean: unordered iteration with no scheduling sink in the body.
  std::int64_t TotalDelay() const {
    std::int64_t total = 0;
    for (const auto& [id, flow] : flows_) {
      total += flow.restart_delay_ns;
    }
    return total;
  }

  void Send(int node);

 private:
  std::unordered_map<int, Flow> flows_;
  std::unordered_set<int> dirty_nodes_;
};

}  // namespace fixture
