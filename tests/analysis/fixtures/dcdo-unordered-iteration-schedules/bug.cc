// Reduced reproduction of the PR 5 determinism hazard: scheduling
// simulation events (or sending messages) while iterating an unordered
// container. Event order then depends on hash-table layout — which varies
// across libstdc++ versions, platforms, and insertion histories — so the
// byte-identical SimTime_* baselines drift. PR 5's SimNetwork fair-share
// recompute had to impose flow-id ordering for exactly this reason.
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Simulation {
  std::uint64_t Schedule(std::int64_t delay_ns, std::function<void()> fn);
};

struct Flow {
  std::int64_t restart_delay_ns = 0;
};

class FlowTable {
 public:
  // Hash-order iteration feeding the event queue: nondeterministic event
  // ordering at equal timestamps.
  void RescheduleAll(Simulation& sim) {
    for (auto& [id, flow] : flows_) {  // expect: dcdo-unordered-iteration-schedules
      sim.Schedule(flow.restart_delay_ns, [] {});
    }
  }

  // Same hazard through a message-send sink.
  void NotifyAll() {
    for (int node : dirty_nodes_) {  // expect: dcdo-unordered-iteration-schedules
      Send(node);
    }
  }

  void Send(int node);

 private:
  std::unordered_map<int, Flow> flows_;
  std::unordered_set<int> dirty_nodes_;
};

}  // namespace fixture
