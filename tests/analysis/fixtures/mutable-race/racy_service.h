// A reduced `lookups_served_`-style mutable-counter race, kept as a LIVE
// fixture: this header is
//   (a) analyzed by dcdo-analyze in tsan_interplay_test — the
//       dcdo-mutable-nonatomic-in-const check must flag the increment; and
//   (b) compiled into the analysis_race_fixture binary, whose concurrent
//       Lookup() hammering ThreadSanitizer flags at runtime under the
//       `tsan` preset (DCDO_SANITIZE=thread).
// One bug, both detectors — the static check catches at compile time what
// the dynamic detector needs a racy schedule to see.
//
// Deliberately buggy. Do NOT fix; do NOT include from production code.
#ifndef DCDO_TESTS_ANALYSIS_FIXTURES_MUTABLE_RACE_RACY_SERVICE_H_
#define DCDO_TESTS_ANALYSIS_FIXTURES_MUTABLE_RACE_RACY_SERVICE_H_

#include <cstdint>
#include <map>

namespace fixture {

class ProbeService {
 public:
  void Bind(int id, int node) { bindings_[id] = node; }

  // The PR 4 bug shape: const lookup path, plain mutable counter, no lock.
  int Lookup(int id) const {
    ++lookups_served_;  // expect: dcdo-mutable-nonatomic-in-const
    auto it = bindings_.find(id);
    return it == bindings_.end() ? -1 : it->second;
  }

  std::uint64_t lookups_served() const { return lookups_served_; }

 private:
  std::map<int, int> bindings_;
  mutable std::uint64_t lookups_served_ = 0;
};

}  // namespace fixture

#endif  // DCDO_TESTS_ANALYSIS_FIXTURES_MUTABLE_RACE_RACY_SERVICE_H_
