// Reduced reproduction of the PR 3 leak class (found again in PR 5): a
// continuation loop stored through shared_ptr<std::function> that captures
// its own owner by value. The closure inside *next owns a strong reference
// to itself, the refcount never reaches zero, and the whole capture set —
// including the caller's `done` callback — leaks after every chain run.
// This is the exact shape of the manager `fetch_next` / dcdo `poll` /
// coordinator `apply`/`rollback` bugs LeakSanitizer surfaced.
//
// The expectation markers drive tests/analysis/analysis_fixture_test.cpp.
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Step {
  int id = 0;
};

void RunChain(std::vector<Step> steps, std::function<void()> done) {
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  auto next = std::make_shared<std::function<void(std::size_t)>>();
  *next = [next, shared_done](std::size_t index) {  // expect: dcdo-shared-function-self-capture
    if (index == 0) {
      (*shared_done)();
      return;
    }
    (*next)(index - 1);
  };
  (*next)(steps.size());
}

// Variant: the self-reference hides behind an init-capture alias.
void RunAliased(std::vector<Step> steps, std::function<void()> done) {
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  std::shared_ptr<std::function<void(std::size_t)>> apply =
      std::make_shared<std::function<void(std::size_t)>>();
  *apply = [self = apply, shared_done](std::size_t index) {  // expect: dcdo-shared-function-self-capture
    if (index == 0) {
      (*shared_done)();
      return;
    }
    (*self)(index - 1);
  };
  (*apply)(steps.size());
}

}  // namespace fixture
