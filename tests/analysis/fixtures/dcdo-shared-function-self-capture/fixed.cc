// The two committed fixes for the PR 3/PR 5 leak class, both of which the
// check must accept as clean:
//
//  1. Weak self-capture (coordinator apply/rollback after the PR 3 review
//     pass): the stored closure holds only a weak_ptr to itself; the strong
//     reference rides in each pending continuation.
//  2. enable_shared_from_this driver structs (PR 5: SequentialDriver,
//     PollDriver, RemovalDriver): `self = shared_from_this()` is captured
//     into *pending* continuations, not into a closure the shared_ptr owns.
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace fixture {

struct Step {
  int id = 0;
};

void RunChain(std::vector<Step> steps, std::function<void()> done) {
  auto shared_done = std::make_shared<std::function<void()>>(std::move(done));
  auto next = std::make_shared<std::function<void(std::size_t)>>();
  *next = [weak_next = std::weak_ptr<std::function<void(std::size_t)>>(next),
           shared_done](std::size_t index) {
    if (index == 0) {
      (*shared_done)();
      return;
    }
    // The strong reference rides the pending continuation, not the stored
    // closure: once the chain finishes, nothing keeps *next alive.
    auto strong_next = weak_next.lock();
    (*strong_next)(index - 1);
  };
  (*next)(steps.size());
}

// Driver-struct form: no shared_ptr<std::function> at all.
struct ChainDriver : std::enable_shared_from_this<ChainDriver> {
  std::vector<Step> steps;
  std::function<void()> done;

  void Run(std::size_t index) {
    if (index == 0) {
      done();
      return;
    }
    Defer([self = shared_from_this(), index] { self->Run(index - 1); });
  }

  static void Defer(std::function<void()> fn) { fn(); }
};

void RunDriven(std::vector<Step> steps, std::function<void()> done) {
  auto driver = std::make_shared<ChainDriver>();
  driver->steps = std::move(steps);
  driver->done = std::move(done);
  driver->Run(driver->steps.size());
}

}  // namespace fixture
