// The clean handling patterns for Status returns: examine it, branch on
// it, return it, or — when dropping is genuinely intended — cast to void
// with a comment saying why.
#include <string>

namespace fixture {

class Status {
 public:
  Status() = default;
  bool ok() const { return code_ == 0; }

 private:
  int code_ = 0;
};

Status ValidateConfig(const std::string& name);

class Mapper {
 public:
  Status Remove(int function_id);
  Status Disable(int function_id);
  void Note(int function_id);
};

Status DriveEvolution(Mapper& mapper, const std::string& config) {
  Status validated = ValidateConfig(config);
  if (!validated.ok()) {
    return validated;
  }
  mapper.Note(1);
  // Best-effort cleanup: the instance may already be gone, and that is fine.
  (void)mapper.Remove(2);
  if (!mapper.Disable(3).ok()) {
    return Status();
  }
  return ValidateConfig(config);
}

}  // namespace fixture
