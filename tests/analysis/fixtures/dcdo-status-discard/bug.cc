// Discarded common::Status returns: a silently dropped failure path. The
// paper's model (§3.2) makes absence an ordinary typed error — which only
// works if every Status actually gets looked at. `Status` carries a
// class-level [[nodiscard]], so the compiler flags by-value discards too;
// this check is the analyzer-side net for the same class, and what the
// fixture pins.
#include <string>

namespace fixture {

class Status {
 public:
  Status() = default;
  bool ok() const { return code_ == 0; }

 private:
  int code_ = 0;
};

Status ValidateConfig(const std::string& name);

class Mapper {
 public:
  Status Remove(int function_id);
  Status Disable(int function_id);
  void Note(int function_id);
};

void DriveEvolution(Mapper& mapper, const std::string& config) {
  ValidateConfig(config);  // expect: dcdo-status-discard
  mapper.Note(1);
  mapper.Remove(2);  // expect: dcdo-status-discard
  if (!mapper.Disable(3).ok()) {
    return;
  }
}

}  // namespace fixture
