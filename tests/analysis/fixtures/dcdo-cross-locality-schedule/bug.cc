// Reduced reproduction of the PR 8 parallel-executor hazard: handing a
// deferred scheduling sink a lambda that captures locals by reference.
// Under the locality executor (DESIGN.md §14) the callback may fire on a
// different worker thread after this frame has returned, so `[&]` / `[&x]`
// captures dangle (stack lifetime) or race (the referent is touched
// concurrently with the locality that owns it). The single-threaded legacy
// path hides the bug completely — events fire before the caller's stack
// unwinds only by accident of Run() being on the same thread.
#include <cstdint>
#include <functional>

namespace fixture {

struct Simulation {
  std::uint64_t Schedule(std::int64_t delay_ns, std::function<void()> fn);
  std::uint64_t ScheduleFor(std::uint32_t affinity, std::int64_t delay_ns,
                            std::function<void()> fn);
};

struct Network {
  void Send(int from, int to, int bytes, std::function<void()> deliver);
};

class Churn {
 public:
  // Default by-ref capture into a deferred callback: every local it
  // touches is stack storage that is gone by fire time.
  void RestartLater(Simulation& sim) {
    int attempts = 0;
    sim.Schedule(1000, [&] { ++attempts; });  // expect: dcdo-cross-locality-schedule
  }

  // Named by-ref capture across an affinity boundary: the worker owning
  // `affinity` fires the callback while this thread still owns `pending`.
  void TrackCompletion(Simulation& sim, std::uint32_t affinity) {
    int pending = 1;
    sim.ScheduleFor(affinity, 2000,
                    [this, &pending] { pending += seen_; });  // expect: dcdo-cross-locality-schedule
  }

  // A multi-line call is still one argument span; the delivery callback
  // runs on the destination node's locality.
  void Deliver(Network& net, int from, int to) {
    bool delivered = false;
    net.Send(from, to, 64,
             [&delivered] { delivered = true; });  // expect: dcdo-cross-locality-schedule
  }

 private:
  int seen_ = 0;
};

}  // namespace fixture
