// The committed fix patterns (PR 8 Schedule-call audit, DESIGN.md §14):
// deferred callbacks capture by value — ids, copies, or an owner pointer
// whose lifetime the scheduler controls (`this` for components torn down
// only after the simulation drains). By-reference captures remain fine in
// immediate callers (predicates, comparators) that run inside the
// capturing frame, and driver code that provably drains the queue before
// its frame returns may keep one behind a NOLINT with a reason.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace fixture {

struct Simulation {
  std::uint64_t Schedule(std::int64_t delay_ns, std::function<void()> fn);
  std::uint64_t ScheduleFor(std::uint32_t affinity, std::int64_t delay_ns,
                            std::function<void()> fn);
  bool RunWhile(std::function<bool()> predicate);
};

struct Network {
  void Send(int from, int to, int bytes, std::function<void()> deliver);
};

class Churn {
 public:
  // Value captures: the callback owns copies of everything it needs, and
  // `this` outlives the drained queue by construction.
  void RestartLater(Simulation& sim, int attempt) {
    sim.Schedule(1000, [this, attempt] { seen_ = attempt; });
  }

  // Immediate execution is not a deferred sink: RunWhile's predicate and
  // std::sort's comparator run inside this frame, so by-reference
  // captures are safe there.
  void DrainUntil(Simulation& sim, int target) {
    int fired = 0;
    sim.RunWhile([&] { return fired < target; });
    std::vector<int> order = {3, 1, 2};
    std::sort(order.begin(), order.end(),
              [&target](int a, int b) { return a % target < b % target; });
  }

  // The escape hatch: test-driver code that drains the simulation before
  // this frame returns documents the exception instead of copying.
  void Probe(Simulation& sim) {
    bool done = false;
    sim.Schedule(500,
                 // NOLINTNEXTLINE(dcdo-cross-locality-schedule): drained below
                 [&done] { done = true; });
    sim.RunWhile([&] { return !done; });
  }

 private:
  int seen_ = 0;
};

}  // namespace fixture
