// Golden-output tests for the dcdo-tidy checks (DESIGN.md §12).
//
// Each check has a fixture pair under tests/analysis/fixtures/<check>/:
//   bug.cc    — a reduced reproduction of the real historical bug; the
//               check must fire on exactly the lines carrying an
//               `// expect: <check>` marker, and nowhere else.
//   fixed.cc  — the committed fix pattern(s); the check must stay silent.
//
// The expectations live in the fixtures themselves (the `// expect:`
// markers), so adding a case means editing one file. The tests drive the
// dcdo-analyze engine binary; when the clang-tidy plugin is built, the
// same fixtures can be run through `clang-tidy --load` by hand (the checks
// share names and NOLINT semantics).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

#ifndef DCDO_ANALYZE_BIN
#error "build must define DCDO_ANALYZE_BIN"
#endif
#ifndef DCDO_ANALYSIS_FIXTURE_DIR
#error "build must define DCDO_ANALYSIS_FIXTURE_DIR"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult RunAnalyzer(const std::string& args) {
  std::string command = std::string(DCDO_ANALYZE_BIN) + " " + args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// (line, check) pairs expected from the `// expect:` markers in `path`.
std::set<std::pair<int, std::string>> ParseExpectations(
    const std::string& path) {
  std::set<std::pair<int, std::string>> expected;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open fixture " << path;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t at = line.find("// expect:");
    if (at == std::string::npos) continue;
    std::stringstream names(line.substr(at + 10));
    std::string name;
    while (std::getline(names, name, ',')) {
      std::size_t begin = name.find_first_not_of(" \t");
      std::size_t end = name.find_last_not_of(" \t");
      if (begin == std::string::npos) continue;
      expected.emplace(lineno, name.substr(begin, end - begin + 1));
    }
  }
  return expected;
}

// (line, check) pairs from analyzer output lines
// `path:line:col: warning: msg [check]`.
std::set<std::pair<int, std::string>> ParseFindings(
    const std::string& output) {
  std::set<std::pair<int, std::string>> found;
  std::stringstream ss(output);
  std::string line;
  while (std::getline(ss, line)) {
    std::size_t warn = line.find(": warning: ");
    std::size_t open = line.rfind(" [");
    if (warn == std::string::npos || open == std::string::npos ||
        line.back() != ']') {
      continue;
    }
    std::string check = line.substr(open + 2, line.size() - open - 3);
    // path:LINE:col — line number is between the first and second ':'
    // after the path; scan from the warning marker backwards.
    std::size_t col_colon = line.rfind(':', warn - 1);
    if (col_colon == std::string::npos) continue;
    std::size_t line_colon = line.rfind(':', col_colon - 1);
    if (line_colon == std::string::npos) continue;
    int lineno =
        std::stoi(line.substr(line_colon + 1, col_colon - line_colon - 1));
    found.emplace(lineno, check);
  }
  return found;
}

std::string FixturePath(const std::string& check, const std::string& leaf) {
  return std::string(DCDO_ANALYSIS_FIXTURE_DIR) + "/" + check + "/" + leaf;
}

class CheckFixtureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckFixtureTest, FiresOnReducedHistoricalBug) {
  const std::string check = GetParam();
  const std::string bug = FixturePath(check, "bug.cc");
  RunResult run = RunAnalyzer("--checks=" + check + " " + bug);
  EXPECT_EQ(run.exit_code, 1) << run.output;

  auto expected = ParseExpectations(bug);
  ASSERT_FALSE(expected.empty())
      << "fixture " << bug << " has no // expect: markers";
  EXPECT_EQ(ParseFindings(run.output), expected) << run.output;
}

TEST_P(CheckFixtureTest, SilentOnCommittedFix) {
  const std::string check = GetParam();
  const std::string fixed = FixturePath(check, "fixed.cc");
  RunResult run = RunAnalyzer("--checks=" + check + " " + fixed);
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(ParseFindings(run.output).empty()) << run.output;
}

// Running EVERY check over a fixed fixture must stay silent too — a fix
// for one bug class must not trip a sibling check.
TEST_P(CheckFixtureTest, FixIsCleanUnderAllChecks) {
  const std::string fixed = FixturePath(GetParam(), "fixed.cc");
  RunResult run = RunAnalyzer(fixed);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

INSTANTIATE_TEST_SUITE_P(
    AllChecks, CheckFixtureTest,
    ::testing::Values("dcdo-shared-function-self-capture",
                      "dcdo-mutable-nonatomic-in-const",
                      "dcdo-unordered-iteration-schedules",
                      "dcdo-wallclock-in-sim", "dcdo-status-discard",
                      "dcdo-cross-locality-schedule"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AnalyzerDriverTest, ListChecksNamesAllSix) {
  RunResult run = RunAnalyzer("--list-checks");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* check :
       {"dcdo-shared-function-self-capture", "dcdo-mutable-nonatomic-in-const",
        "dcdo-unordered-iteration-schedules", "dcdo-wallclock-in-sim",
        "dcdo-status-discard", "dcdo-cross-locality-schedule"}) {
    EXPECT_NE(run.output.find(check), std::string::npos) << run.output;
  }
}

TEST(AnalyzerDriverTest, NolintSuppressesAndBaselineSuppresses) {
  const std::string bug =
      FixturePath("dcdo-wallclock-in-sim", "bug.cc");

  // Baseline written from the current findings silences the run.
  std::string baseline = ::testing::TempDir() + "/dcdo_tidy_baseline.txt";
  RunResult write =
      RunAnalyzer("--checks=dcdo-wallclock-in-sim --write-baseline=" +
                  baseline + " " + bug);
  EXPECT_EQ(write.exit_code, 0) << write.output;
  RunResult masked = RunAnalyzer("--checks=dcdo-wallclock-in-sim --baseline=" +
                                 baseline + " " + bug);
  EXPECT_EQ(masked.exit_code, 0) << masked.output;
  EXPECT_TRUE(ParseFindings(masked.output).empty()) << masked.output;
}

TEST(AnalyzerDriverTest, WallclockAllowlistSilencesTraceStylePaths) {
  const std::string bug = FixturePath("dcdo-wallclock-in-sim", "bug.cc");
  RunResult run = RunAnalyzer(
      "--checks=dcdo-wallclock-in-sim --allow-wallclock=" +
      std::string(DCDO_ANALYSIS_FIXTURE_DIR) + " " + bug);
  EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(AnalyzerDriverTest, UnknownCheckIsAUsageError) {
  RunResult run = RunAnalyzer("--checks=dcdo-no-such-check /dev/null");
  EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
