// Unit tests for the dcdo-tidy engine's source-text layer: comment and
// string blanking (checks must never match inside prose) and the
// NOLINT / NOLINTNEXTLINE suppression semantics shared with clang-tidy.
#include "engine/text.h"

#include <gtest/gtest.h>

#include <string>

namespace dcdo_tidy {
namespace {

SourceFile Make(const std::string& text) {
  SourceFile file;
  file.LoadFromString("test.cc", text);
  return file;
}

TEST(SourceFileTest, BlanksCommentsAndStringsButKeepsOffsets) {
  SourceFile file = Make(
      "int a = 1; // rand() in a comment\n"
      "const char* s = \"std::random_device inside a string\";\n"
      "/* steady_clock::now() in a block\n"
      "   comment */ int b = 2;\n");
  EXPECT_EQ(file.code().size(), file.raw().size());
  EXPECT_EQ(file.code().find("rand"), std::string::npos);
  EXPECT_EQ(file.code().find("random_device"), std::string::npos);
  EXPECT_EQ(file.code().find("steady_clock"), std::string::npos);
  EXPECT_NE(file.code().find("int b = 2;"), std::string::npos);
  // Offsets preserved: `int b` sits at the same offset in both views.
  EXPECT_EQ(file.code().find("int b"), file.raw().find("int b"));
}

TEST(SourceFileTest, HandlesRawStringsAndDigitSeparators) {
  SourceFile file = Make(
      "auto j = R\"x({\"rand()\": 1})x\";\n"
      "int big = 1'000'000;\n"
      "int after = 7;\n");
  EXPECT_EQ(file.code().find("rand"), std::string::npos);
  EXPECT_NE(file.code().find("int big = 1'000'000;"), std::string::npos);
  EXPECT_NE(file.code().find("int after = 7;"), std::string::npos);
}

TEST(SourceFileTest, LineAndColumnReporting) {
  SourceFile file = Make("abc\ndefg\nhi\n");
  EXPECT_EQ(file.LineOf(0), 1u);
  EXPECT_EQ(file.LineOf(4), 2u);   // 'd'
  EXPECT_EQ(file.ColOf(5), 2u);    // 'e'
  EXPECT_EQ(file.LineOf(9), 3u);   // 'h'
  EXPECT_EQ(file.RawLine(2), "defg");
}

TEST(SourceFileTest, BareNolintSuppressesEverything) {
  SourceFile file = Make("x = 1;  // NOLINT\n");
  EXPECT_TRUE(file.IsSuppressed(1, "dcdo-status-discard"));
  EXPECT_TRUE(file.IsSuppressed(1, "dcdo-wallclock-in-sim"));
}

TEST(SourceFileTest, FilteredNolintSuppressesOnlyListedChecks) {
  SourceFile file = Make("x = 1;  // NOLINT(dcdo-status-discard)\n");
  EXPECT_TRUE(file.IsSuppressed(1, "dcdo-status-discard"));
  EXPECT_FALSE(file.IsSuppressed(1, "dcdo-wallclock-in-sim"));
}

TEST(SourceFileTest, NolintNextlineCoversTheFollowingLineOnly) {
  SourceFile file = Make(
      "// NOLINTNEXTLINE(dcdo-wallclock-in-sim)\n"
      "auto t = now();\n"
      "auto u = now();\n");
  EXPECT_TRUE(file.IsSuppressed(2, "dcdo-wallclock-in-sim"));
  EXPECT_FALSE(file.IsSuppressed(3, "dcdo-wallclock-in-sim"));
  EXPECT_FALSE(file.IsSuppressed(1, "dcdo-wallclock-in-sim"));
}

TEST(SourceFileTest, NolintGlobMatchesCheckFamily) {
  SourceFile file = Make("x = 1;  // NOLINT(dcdo-*)\n");
  EXPECT_TRUE(file.IsSuppressed(1, "dcdo-status-discard"));
  EXPECT_TRUE(file.IsSuppressed(1, "dcdo-mutable-nonatomic-in-const"));
}

TEST(TokenHelpersTest, FindIdentMatchesWholeTokensOnly) {
  std::string code = "rands(); rand(); std::rand();";
  std::size_t pos = FindIdent(code, "rand");
  EXPECT_EQ(pos, 9u);  // skips `rands`
}

TEST(TokenHelpersTest, MatchForwardBalancesNestedTemplates) {
  std::string code = "shared_ptr<std::function<void(std::size_t)>> x;";
  std::size_t lt = code.find('<');
  std::size_t gt = MatchForward(code, lt);
  ASSERT_NE(gt, std::string::npos);
  EXPECT_EQ(code[gt], '>');
  // The outer '<' closes at the SECOND '>' of the '>>' token.
  EXPECT_EQ(code.substr(gt), std::string("> x;"));
}

}  // namespace
}  // namespace dcdo_tidy
