// Runtime half of the mutable-counter race fixture: hammers the const
// Lookup() path from several threads so the racy `++lookups_served_` in
// racy_service.h actually races. Exits 0 on its own; under
// DCDO_SANITIZE=thread, ThreadSanitizer reports the data race and (with
// halt_on_error / a nonzero exitcode option) fails the process — which is
// exactly what tsan_interplay_test asserts.
#include <cstdio>
#include <thread>
#include <vector>

#include "fixtures/mutable-race/racy_service.h"

int main() {
  fixture::ProbeService service;
  for (int id = 0; id < 16; ++id) {
    service.Bind(id, id * 10);
  }
  constexpr int kThreads = 4;
  constexpr int kLookupsPerThread = 200000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        service.Lookup(i & 15);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  // Under the race the total is typically (and legally, per the C++ memory
  // model, unobservably) less than the true count — print it so a human
  // running the fixture by hand can see the loss.
  std::printf("lookups_served = %llu (submitted %d)\n",
              static_cast<unsigned long long>(service.lookups_served()),
              kThreads * kLookupsPerThread);
  return 0;
}
