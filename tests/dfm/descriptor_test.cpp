#include "dfm/descriptor.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dcdo {
namespace {

class DescriptorTest : public ::testing::Test {
 protected:
  DescriptorTest() : descriptor_(VersionId::Root()) {
    comp_a_ = testing::MakeEchoComponent(registry_, "libA", {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(registry_, "libB", {"f"});
  }

  NativeCodeRegistry registry_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  DfmDescriptor descriptor_;
};

TEST_F(DescriptorTest, StartsConfigurable) {
  EXPECT_FALSE(descriptor_.instantiable());
  EXPECT_EQ(descriptor_.version(), VersionId::Root());
  EXPECT_TRUE(descriptor_.IncorporateComponent(comp_a_).ok());
  EXPECT_TRUE(descriptor_.EnableFunction("f", comp_a_.id).ok());
}

TEST_F(DescriptorTest, MarkInstantiableFreezes) {
  ASSERT_TRUE(descriptor_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(descriptor_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(descriptor_.MarkInstantiable().ok());
  EXPECT_TRUE(descriptor_.instantiable());

  // "The DFM descriptor of an instantiable version cannot be changed."
  EXPECT_EQ(descriptor_.IncorporateComponent(comp_b_).code(),
            ErrorCode::kVersionFrozen);
  EXPECT_EQ(descriptor_.EnableFunction("g", comp_a_.id).code(),
            ErrorCode::kVersionFrozen);
  EXPECT_EQ(descriptor_.DisableFunction("f", comp_a_.id).code(),
            ErrorCode::kVersionFrozen);
  EXPECT_EQ(descriptor_.RemoveComponent(comp_a_.id).code(),
            ErrorCode::kVersionFrozen);
  EXPECT_EQ(descriptor_.MarkMandatory("f").code(), ErrorCode::kVersionFrozen);
  EXPECT_EQ(descriptor_.AddDependency(Dependency::TypeD("f", "g")).code(),
            ErrorCode::kVersionFrozen);
}

TEST_F(DescriptorTest, MarkInstantiableIsIdempotent) {
  ASSERT_TRUE(descriptor_.MarkInstantiable().ok());
  EXPECT_TRUE(descriptor_.MarkInstantiable().ok());
}

TEST_F(DescriptorTest, MarkInstantiableValidates) {
  auto needs = ComponentBuilder("needs")
                   .AddFunction("must", "v()", "needs/must",
                                Visibility::kExported, Constraint::kMandatory)
                   .Build();
  ASSERT_TRUE(needs.ok());
  ASSERT_TRUE(descriptor_.IncorporateComponent(*needs).ok());
  // Mandatory function with no enabled implementation: cannot freeze.
  EXPECT_EQ(descriptor_.MarkInstantiable().code(),
            ErrorCode::kMandatoryViolation);
  ASSERT_TRUE(descriptor_.EnableFunction("must", needs->id).ok());
  EXPECT_TRUE(descriptor_.MarkInstantiable().ok());
}

TEST_F(DescriptorTest, DeriveChildCopiesConfigurationUnfrozen) {
  ASSERT_TRUE(descriptor_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(descriptor_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(descriptor_.MarkInstantiable().ok());

  DfmDescriptor child = descriptor_.DeriveChild(VersionId::Root().Child(1));
  EXPECT_EQ(child.version().ToString(), "1.1");
  EXPECT_FALSE(child.instantiable());
  // The copy starts from the parent's configuration...
  EXPECT_NE(child.state().EnabledImpl("f"), nullptr);
  // ...and is independently editable.
  ASSERT_TRUE(child.EnableFunction("g", comp_a_.id).ok());
  EXPECT_EQ(descriptor_.state().EnabledImpl("g"), nullptr)
      << "parent untouched";
}

// --- ComputePlan ---

TEST_F(DescriptorTest, PlanEmptyForIdenticalStates) {
  ASSERT_TRUE(descriptor_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(descriptor_.EnableFunction("f", comp_a_.id).ok());
  EvolutionPlan plan = ComputePlan(descriptor_.state(), descriptor_.state());
  EXPECT_TRUE(plan.Empty());
}

TEST_F(DescriptorTest, PlanDetectsIncorporateAndEnable) {
  DfmState from;
  DfmState to;
  ASSERT_TRUE(to.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(to.EnableFunction("f", comp_a_.id).ok());

  EvolutionPlan plan = ComputePlan(from, to);
  ASSERT_EQ(plan.incorporate.size(), 1u);
  EXPECT_EQ(plan.incorporate[0].id, comp_a_.id);
  ASSERT_EQ(plan.enable.size(), 1u);
  EXPECT_EQ(plan.enable[0].first, "f");
  EXPECT_TRUE(plan.remove.empty());
  EXPECT_TRUE(plan.NeedsNewComponents());
}

TEST_F(DescriptorTest, PlanDetectsRemovalWithoutExplicitDisables) {
  DfmState from;
  ASSERT_TRUE(from.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(from.EnableFunction("f", comp_a_.id).ok());
  DfmState to;

  EvolutionPlan plan = ComputePlan(from, to);
  ASSERT_EQ(plan.remove.size(), 1u);
  EXPECT_EQ(plan.remove[0], comp_a_.id);
  EXPECT_TRUE(plan.disable.empty())
      << "removal subsumes disables of the removed component";
  EXPECT_FALSE(plan.NeedsNewComponents());
}

TEST_F(DescriptorTest, PlanDetectsSwitchAsEnablePlusDisable) {
  DfmState from;
  ASSERT_TRUE(from.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(from.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(from.EnableFunction("f", comp_a_.id).ok());

  DfmState to;
  ASSERT_TRUE(to.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(to.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(to.EnableFunction("f", comp_b_.id).ok());

  EvolutionPlan plan = ComputePlan(from, to);
  EXPECT_TRUE(plan.incorporate.empty());
  ASSERT_EQ(plan.enable.size(), 1u);
  EXPECT_EQ(plan.enable[0].second, comp_b_.id);
  ASSERT_EQ(plan.disable.size(), 1u);
  EXPECT_EQ(plan.disable[0].second, comp_a_.id);
  EXPECT_EQ(plan.TotalSteps(), 2u);
}

}  // namespace
}  // namespace dcdo
