#include "dfm/dependency.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

const ObjectId kC1(domains::kComponent, 1);
const ObjectId kC2(domains::kComponent, 2);
const ObjectId kC3(domains::kComponent, 3);

TEST(DependencyTest, FactoriesProduceValidRecords) {
  EXPECT_TRUE(Dependency::TypeA("f1", kC1, "f2").Validate().ok());
  EXPECT_TRUE(Dependency::TypeB("f1", kC1, "f2", kC2).Validate().ok());
  EXPECT_TRUE(Dependency::TypeC("f1", "f2", kC2).Validate().ok());
  EXPECT_TRUE(Dependency::TypeD("f1", "f2").Validate().ok());
}

TEST(DependencyTest, WrongOptionalFieldsRejected) {
  Dependency dep = Dependency::TypeA("f1", kC1, "f2");
  dep.kind = DependencyKind::kTypeD;  // Type D must not carry C1
  EXPECT_FALSE(dep.Validate().ok());

  Dependency dep2 = Dependency::TypeD("f1", "f2");
  dep2.kind = DependencyKind::kTypeB;  // Type B needs both components
  EXPECT_FALSE(dep2.Validate().ok());
}

TEST(DependencyTest, EmptyNamesRejected) {
  EXPECT_FALSE(Dependency::TypeD("", "f2").Validate().ok());
  EXPECT_FALSE(Dependency::TypeD("f1", "").Validate().ok());
}

TEST(DependencyTest, ToStringShowsKind) {
  EXPECT_EQ(Dependency::TypeD("a", "b").ToString(), "[a]->[b] (Type D)");
}

TEST(EnabledSnapshotTest, TracksPerImplementationState) {
  EnabledSnapshot snapshot;
  EXPECT_FALSE(snapshot.AnyEnabled("f"));
  snapshot.Enable("f", kC1);
  EXPECT_TRUE(snapshot.IsEnabled("f", kC1));
  EXPECT_FALSE(snapshot.IsEnabled("f", kC2));
  EXPECT_TRUE(snapshot.AnyEnabled("f"));
  snapshot.Disable("f", kC1);
  EXPECT_FALSE(snapshot.AnyEnabled("f"));
}

class DependencySetTest : public ::testing::Test {
 protected:
  DependencySet deps_;
  EnabledSnapshot snapshot_;
};

// Type A: [F1,C1] -> [F2] — some impl of F2 must exist while (F1,C1) runs.
TEST_F(DependencySetTest, TypeASatisfiedByAnyImplementation) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeA("sort", kC1, "compare")).ok());
  snapshot_.Enable("sort", kC1);
  snapshot_.Enable("compare", kC3);  // any component will do
  EXPECT_TRUE(deps_.Validate(snapshot_).ok());
  snapshot_.Disable("compare", kC3);
  EXPECT_EQ(deps_.Validate(snapshot_).code(),
            ErrorCode::kDependencyViolation);
}

// Type B: [F1,C1] -> [F2,C2] — exactly C2's implementation must be enabled.
TEST_F(DependencySetTest, TypeBRequiresSpecificImplementation) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeB("sort", kC1, "compare", kC2)).ok());
  snapshot_.Enable("sort", kC1);
  snapshot_.Enable("compare", kC3);  // wrong component
  EXPECT_FALSE(deps_.Validate(snapshot_).ok());
  snapshot_.Disable("compare", kC3);
  snapshot_.Enable("compare", kC2);
  EXPECT_TRUE(deps_.Validate(snapshot_).ok());
}

// Type C: [F1] -> [F2,C2] — any impl of F1 binds the specific target.
TEST_F(DependencySetTest, TypeCBindsForAnyDependentImpl) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeC("serve", "auth", kC2)).ok());
  snapshot_.Enable("serve", kC3);  // some implementation of serve
  EXPECT_FALSE(deps_.Validate(snapshot_).ok());
  snapshot_.Enable("auth", kC2);
  EXPECT_TRUE(deps_.Validate(snapshot_).ok());
}

// Type D: [F1] -> [F2] — fully structural.
TEST_F(DependencySetTest, TypeDStructural) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeD("serve", "log")).ok());
  snapshot_.Enable("serve", kC1);
  EXPECT_FALSE(deps_.Validate(snapshot_).ok());
  snapshot_.Enable("log", kC2);
  EXPECT_TRUE(deps_.Validate(snapshot_).ok());
}

// Dependencies bind only while the head is enabled: disabling the dependent
// function "retracts" the constraint.
TEST_F(DependencySetTest, VacuousWhenHeadDisabled) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeA("sort", kC1, "compare")).ok());
  EXPECT_TRUE(deps_.Validate(snapshot_).ok()) << "nothing enabled";
  snapshot_.Enable("sort", kC2);  // different impl of sort, not (sort,C1)
  EXPECT_TRUE(deps_.Validate(snapshot_).ok());
}

TEST_F(DependencySetTest, AddIsIdempotent) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeD("a", "b")).ok());
  ASSERT_TRUE(deps_.Add(Dependency::TypeD("a", "b")).ok());
  EXPECT_EQ(deps_.size(), 1u);
}

TEST_F(DependencySetTest, RemoveExactMatchOnly) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeD("a", "b")).ok());
  EXPECT_EQ(deps_.Remove(Dependency::TypeD("a", "c")).code(),
            ErrorCode::kNotFound);
  EXPECT_TRUE(deps_.Remove(Dependency::TypeD("a", "b")).ok());
  EXPECT_EQ(deps_.size(), 0u);
}

TEST_F(DependencySetTest, AddRejectsMalformed) {
  Dependency bad = Dependency::TypeD("a", "b");
  bad.target_component = kC1;  // Type D must not carry a target component
  EXPECT_FALSE(deps_.Add(bad).ok());
}

TEST_F(DependencySetTest, BindingDependenciesOnFindsActiveHeads) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeA("sort", kC1, "compare")).ok());
  ASSERT_TRUE(deps_.Add(Dependency::TypeB("merge", kC2, "compare", kC3)).ok());
  snapshot_.Enable("sort", kC1);

  // Only sort's dependency is binding (merge is disabled).
  auto on_any = deps_.BindingDependenciesOn("compare", kC3, snapshot_);
  ASSERT_EQ(on_any.size(), 1u);
  EXPECT_EQ(on_any[0]->dependent, "sort");

  snapshot_.Enable("merge", kC2);
  EXPECT_EQ(deps_.BindingDependenciesOn("compare", kC3, snapshot_).size(), 2u);
  // Type B targets a specific component: asking about a different component
  // of compare only matches the structural (Type A) dependency.
  EXPECT_EQ(deps_.BindingDependenciesOn("compare", kC1, snapshot_).size(), 1u);
}

// Self-dependency: "by indicating that a function depends on itself, a
// programmer can ensure that recursive functions are not changed or removed
// while they are executing."
TEST_F(DependencySetTest, SelfDependencyBindsWhileEnabled) {
  ASSERT_TRUE(deps_.Add(Dependency::TypeC("fib", "fib", kC1)).ok());
  snapshot_.Enable("fib", kC1);
  auto binding = deps_.BindingDependenciesOn("fib", kC1, snapshot_);
  ASSERT_EQ(binding.size(), 1u);
  EXPECT_EQ(binding[0]->dependent, "fib");
}

}  // namespace
}  // namespace dcdo
