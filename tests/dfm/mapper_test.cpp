#include "dfm/mapper.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dcdo {
namespace {

constexpr auto kArch = sim::Architecture::kX86Linux;

class NullContext : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("null context");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

class MapperTest : public ::testing::Test {
 protected:
  MapperTest() {
    comp_a_ = testing::MakeEchoComponent(registry_, "libA", {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(registry_, "libB", {"f"});
  }

  std::string CallThrough(const std::string& function,
                          CallOrigin origin = CallOrigin::kExternal) {
    auto guard = mapper_.Acquire(function, origin);
    if (!guard.ok()) return guard.status().ToString();
    NullContext ctx;
    auto result = guard->body()(ctx, ByteBuffer::FromString("x"));
    return result.ok() ? result->ToString() : result.status().ToString();
  }

  NativeCodeRegistry registry_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  DynamicFunctionMapper mapper_;
};

TEST_F(MapperTest, IncorporateResolvesAndCallsBody) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  EXPECT_EQ(CallThrough("f"), "libA.f:x");
  EXPECT_EQ(mapper_.calls_resolved(), 1u);
}

TEST_F(MapperTest, ErrorTaxonomyMatchesProblemClasses) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  // Present but disabled -> kFunctionDisabled.
  auto disabled = mapper_.Acquire("f", CallOrigin::kExternal);
  EXPECT_EQ(disabled.status().code(), ErrorCode::kFunctionDisabled);
  // Entirely absent -> kFunctionMissing.
  auto missing = mapper_.Acquire("zap", CallOrigin::kExternal);
  EXPECT_EQ(missing.status().code(), ErrorCode::kFunctionMissing);
  EXPECT_EQ(mapper_.calls_rejected(), 2u);
}

TEST_F(MapperTest, InternalFunctionInvisibleExternally) {
  auto internal = ComponentBuilder("libI")
                      .AddFunction("helper", "v()", "libI/helper",
                                   Visibility::kInternal)
                      .Build();
  ASSERT_TRUE(internal.ok());
  testing::RegisterEcho(registry_, "libI/helper", "helper");
  ASSERT_TRUE(mapper_.IncorporateComponent(*internal, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("helper", internal->id).ok());

  // Externally it looks missing (not merely disabled).
  auto external = mapper_.Acquire("helper", CallOrigin::kExternal);
  EXPECT_EQ(external.status().code(), ErrorCode::kFunctionMissing);
  // Internally it works.
  auto internal_call = mapper_.Acquire("helper", CallOrigin::kInternal);
  EXPECT_TRUE(internal_call.ok());
}

TEST_F(MapperTest, IncorporateIsAllOrNothingOnUnresolvedSymbol) {
  auto broken = ComponentBuilder("broken")
                    .AddFunction("ok", "v()", "broken/ok")
                    .AddFunction("bad", "v()", "broken/missing-symbol")
                    .Build();
  ASSERT_TRUE(broken.ok());
  testing::RegisterEcho(registry_, "broken/ok", "ok");
  // "broken/missing-symbol" never registered.
  Status status = mapper_.IncorporateComponent(*broken, registry_, kArch);
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_FALSE(mapper_.state().HasComponent(broken->id));
}

TEST_F(MapperTest, IncorporateRejectsIncompatibleArchitecture) {
  auto native = ComponentBuilder("natA")
                    .SetType(ImplementationType::Native(
                        sim::Architecture::kSparcSolaris))
                    .AddFunction("f", "v()", "natA/f")
                    .Build();
  ASSERT_TRUE(native.ok());
  Status status = mapper_.IncorporateComponent(*native, registry_, kArch);
  EXPECT_EQ(status.code(), ErrorCode::kArchMismatch);
}

// --- Thread activity monitoring ---

TEST_F(MapperTest, GuardTracksActiveThreadCounts) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  {
    auto g1 = mapper_.Acquire("f", CallOrigin::kExternal);
    ASSERT_TRUE(g1.ok());
    EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 1);
    {
      auto g2 = mapper_.Acquire("f", CallOrigin::kExternal);
      EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 2);
      EXPECT_EQ(mapper_.TotalActive(), 2);
    }
    EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 1);
  }
  EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 0);
}

TEST_F(MapperTest, GuardMoveTransfersOwnership) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  auto g1 = mapper_.Acquire("f", CallOrigin::kExternal);
  ASSERT_TRUE(g1.ok());
  DynamicFunctionMapper::CallGuard g2 = std::move(*g1);
  EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 1) << "still one call";
  g2.Release();
  EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 0);
  g2.Release();  // double release is harmless
  EXPECT_EQ(mapper_.ActiveCount("f", comp_a_.id), 0);
}

TEST_F(MapperTest, RemoveComponentBlockedByActiveThreads) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  auto guard = mapper_.Acquire("f", CallOrigin::kExternal);
  ASSERT_TRUE(guard.ok());

  Status blocked = mapper_.RemoveComponent(comp_a_.id);
  EXPECT_EQ(blocked.code(), ErrorCode::kActiveThreads);
  guard->Release();
  EXPECT_TRUE(mapper_.RemoveComponent(comp_a_.id).ok());
}

TEST_F(MapperTest, ForcePolicyRemovesDespiteActiveThreads) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  auto guard = mapper_.Acquire("f", CallOrigin::kExternal);
  ASSERT_TRUE(guard.ok());
  EXPECT_TRUE(
      mapper_.RemoveComponent(comp_a_.id, ActiveThreadPolicy::kForce).ok());
  // The paper's observation: the in-flight call can still finish, because
  // the guard holds the body alive even though the table row is gone.
  NullContext ctx;
  auto result = guard->body()(ctx, ByteBuffer::FromString("y"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libA.f:y");
}

// A thread can proceed inside a *disabled* function; only new calls are
// rejected. ("There is no reason why a thread cannot proceed inside a
// deactivated function.")
TEST_F(MapperTest, DisableDoesNotAffectInFlightCalls) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  auto guard = mapper_.Acquire("f", CallOrigin::kExternal);
  ASSERT_TRUE(guard.ok());

  ASSERT_TRUE(mapper_.DisableFunction("f", comp_a_.id).ok());
  // New calls rejected...
  EXPECT_EQ(mapper_.Acquire("f", CallOrigin::kExternal).status().code(),
            ErrorCode::kFunctionDisabled);
  // ...but the in-flight one still runs.
  NullContext ctx;
  EXPECT_TRUE(guard->body()(ctx, ByteBuffer{}).ok());
}

// Disable deferred while a *dependent* function is executing — the paper's
// combination of activity monitoring with dependencies.
TEST_F(MapperTest, DisableBlockedWhileDependentActive) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(mapper_.EnableFunction("g", comp_a_.id).ok());
  ASSERT_TRUE(mapper_.AddDependency(
      Dependency::TypeA("f", comp_a_.id, "g")).ok());

  auto guard = mapper_.Acquire("f", CallOrigin::kExternal);  // f is running
  ASSERT_TRUE(guard.ok());
  Status blocked = mapper_.DisableFunction("g", comp_a_.id,
                                           /*respect_active_dependents=*/true);
  EXPECT_EQ(blocked.code(), ErrorCode::kActiveThreads);

  guard->Release();
  // With f idle the dependency still *exists*, so the disable now fails on
  // the dependency check instead (f is still enabled).
  EXPECT_EQ(mapper_.DisableFunction("g", comp_a_.id).code(),
            ErrorCode::kDependencyViolation);
  ASSERT_TRUE(mapper_.DisableFunction("f", comp_a_.id).ok());
  EXPECT_TRUE(mapper_.DisableFunction("g", comp_a_.id).ok());
}

TEST_F(MapperTest, SwitchChangesWhichBodyRuns) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_b_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());
  EXPECT_EQ(CallThrough("f"), "libA.f:x");
  ASSERT_TRUE(mapper_.SwitchImplementation("f", comp_b_.id).ok());
  EXPECT_EQ(CallThrough("f"), "libB.f:x");
}

TEST_F(MapperTest, SyncMetadataAdoptsMarksAndDeps) {
  ASSERT_TRUE(mapper_.IncorporateComponent(comp_a_, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", comp_a_.id).ok());

  DfmState target;
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(target.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(target.MarkMandatory("f").ok());

  ASSERT_TRUE(mapper_.SyncMetadata(target).ok());
  EXPECT_TRUE(mapper_.state().IsMandatory("f"));
}

TEST_F(MapperTest, RemapBodiesForNewArchitecture) {
  // A symbol with two native builds.
  auto dual = ComponentBuilder("dual")
                  .SetType(ImplementationType::Portable())
                  .AddFunction("f", "v()", "dual/f")
                  .Build();
  ASSERT_TRUE(dual.ok());
  registry_.Register("dual/f",
                     ImplementationType::Native(sim::Architecture::kX86Linux),
                     [](CallContext&, const ByteBuffer&) {
                       return Result<ByteBuffer>(
                           ByteBuffer::FromString("x86-body"));
                     });
  registry_.Register(
      "dual/f", ImplementationType::Native(sim::Architecture::kSparcSolaris),
      [](CallContext&, const ByteBuffer&) {
        return Result<ByteBuffer>(ByteBuffer::FromString("sparc-body"));
      });

  ASSERT_TRUE(mapper_.IncorporateComponent(*dual, registry_, kArch).ok());
  ASSERT_TRUE(mapper_.EnableFunction("f", dual->id).ok());
  EXPECT_EQ(CallThrough("f"), "x86-body");

  ASSERT_TRUE(
      mapper_.RemapBodies(registry_, sim::Architecture::kSparcSolaris).ok());
  EXPECT_EQ(CallThrough("f"), "sparc-body");
}

}  // namespace
}  // namespace dcdo
