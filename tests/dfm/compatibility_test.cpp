#include "dfm/compatibility.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dcdo {
namespace {

class CompatibilityTest : public ::testing::Test {
 protected:
  CompatibilityTest() {
    comp_a_ = testing::MakeEchoComponent(registry_, "libA", {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(registry_, "libB", {"f"});
  }

  DfmState WithEnabled(
      const std::vector<std::pair<std::string, const ImplementationComponent*>>&
          enables) {
    DfmState state;
    EXPECT_TRUE(state.IncorporateComponent(comp_a_).ok());
    EXPECT_TRUE(state.IncorporateComponent(comp_b_).ok());
    for (const auto& [fn, comp] : enables) {
      EXPECT_TRUE(state.EnableFunction(fn, comp->id).ok());
    }
    return state;
  }

  NativeCodeRegistry registry_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
};

TEST_F(CompatibilityTest, IdenticalConfigurations) {
  DfmState from = WithEnabled({{"f", &comp_a_}});
  DfmState to = WithEnabled({{"f", &comp_a_}});
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kIdentical);
  EXPECT_TRUE(report.SafeForExistingClients());
  EXPECT_EQ(report.Summary(), "identical");
}

TEST_F(CompatibilityTest, ReimplementationIsBehavioral) {
  DfmState from = WithEnabled({{"f", &comp_a_}});
  DfmState to = WithEnabled({{"f", &comp_b_}});  // same name+signature
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kBehavioral);
  EXPECT_TRUE(report.SafeForExistingClients());
  ASSERT_EQ(report.reimplemented.size(), 1u);
  EXPECT_EQ(report.reimplemented[0], "f");
}

TEST_F(CompatibilityTest, AddingExportsIsExtension) {
  DfmState from = WithEnabled({{"f", &comp_a_}});
  DfmState to = WithEnabled({{"f", &comp_a_}, {"g", &comp_a_}});
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kExtension);
  EXPECT_TRUE(report.SafeForExistingClients());
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0].name, "g");
}

TEST_F(CompatibilityTest, RemovingExportIsBreaking) {
  DfmState from = WithEnabled({{"f", &comp_a_}, {"g", &comp_a_}});
  DfmState to = WithEnabled({{"f", &comp_a_}});
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kBreaking);
  EXPECT_FALSE(report.SafeForExistingClients());
  ASSERT_EQ(report.removed.size(), 1u);
  EXPECT_EQ(report.removed[0].name, "g");
}

TEST_F(CompatibilityTest, SignatureChangeIsBreaking) {
  DfmState from = WithEnabled({{"f", &comp_a_}});
  // A different component whose f has a different signature.
  auto resigned = ComponentBuilder("libC")
                      .AddFunction("f", "i(s)", "libC/f")  // new signature
                      .Build();
  ASSERT_TRUE(resigned.ok());
  testing::RegisterEcho(registry_, "libC/f", "libC.f");
  DfmState to;
  ASSERT_TRUE(to.IncorporateComponent(*resigned).ok());
  ASSERT_TRUE(to.EnableFunction("f", resigned->id).ok());

  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kBreaking);
  ASSERT_EQ(report.signature_changed.size(), 1u);
  EXPECT_EQ(report.signature_changed[0].signature, "b(b)");
}

TEST_F(CompatibilityTest, InternalFunctionsInvisibleToClassification) {
  DfmState from = WithEnabled({{"f", &comp_a_}, {"g", &comp_a_}});
  ASSERT_TRUE(from.SetVisibility("g", comp_a_.id,
                                 Visibility::kInternal).ok());
  DfmState to = WithEnabled({{"f", &comp_a_}});
  // g was internal in `from`, so its absence in `to` breaks nothing.
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kIdentical);
}

TEST_F(CompatibilityTest, MixedChangesReportBreakingWithDetail) {
  DfmState from = WithEnabled({{"f", &comp_a_}, {"g", &comp_a_}});
  DfmState to = WithEnabled({{"f", &comp_b_}});  // g removed, f moved
  CompatibilityReport report = ClassifyTransition(from, to);
  EXPECT_EQ(report.level, Compatibility::kBreaking);
  EXPECT_EQ(report.removed.size(), 1u);
  EXPECT_EQ(report.reimplemented.size(), 1u);
  EXPECT_NE(report.Summary().find("removed: g"), std::string::npos);
  EXPECT_NE(report.Summary().find("reimplemented: f"), std::string::npos);
}

TEST_F(CompatibilityTest, NamesCovered) {
  EXPECT_EQ(CompatibilityName(Compatibility::kIdentical), "identical");
  EXPECT_EQ(CompatibilityName(Compatibility::kBehavioral), "behavioral");
  EXPECT_EQ(CompatibilityName(Compatibility::kExtension), "extension");
  EXPECT_EQ(CompatibilityName(Compatibility::kBreaking), "breaking");
}

}  // namespace
}  // namespace dcdo
