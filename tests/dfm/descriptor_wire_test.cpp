#include "dfm/descriptor_wire.h"

#include <gtest/gtest.h>

#include "common/serialize.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class DescriptorWireTest : public ::testing::Test {
 protected:
  DescriptorWireTest() {
    comp_a_ = testing::MakeEchoComponent(registry_, "libA", {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(registry_, "libB", {"f", "h"});
  }

  // A descriptor exercising every serialized feature.
  DfmDescriptor MakeRich() {
    DfmDescriptor descriptor(VersionId{3, 2, 1});
    EXPECT_TRUE(descriptor.IncorporateComponent(comp_a_, false).ok());
    EXPECT_TRUE(descriptor.IncorporateComponent(comp_b_, false).ok());
    EXPECT_TRUE(descriptor.EnableFunction("f", comp_a_.id).ok());
    EXPECT_TRUE(descriptor.EnableFunction("g", comp_a_.id).ok());
    EXPECT_TRUE(descriptor.EnableFunction("h", comp_b_.id).ok());
    EXPECT_TRUE(descriptor.SetVisibility("g", comp_a_.id,
                                         Visibility::kInternal).ok());
    EXPECT_TRUE(descriptor.MarkMandatory("f").ok());
    EXPECT_TRUE(descriptor.MarkPermanent("h", comp_b_.id).ok());
    EXPECT_TRUE(descriptor.AddDependency(
        Dependency::TypeA("f", comp_a_.id, "g")).ok());
    EXPECT_TRUE(descriptor.AddDependency(
        Dependency::TypeB("h", comp_b_.id, "g", comp_a_.id)).ok());
    return descriptor;
  }

  NativeCodeRegistry registry_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
};

TEST_F(DescriptorWireTest, RoundTripPreservesEverything) {
  DfmDescriptor original = MakeRich();
  ByteBuffer wire = SerializeDescriptor(original);
  auto parsed = ParseDescriptor(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->version(), original.version());
  EXPECT_FALSE(parsed->instantiable());
  const DfmState& state = parsed->state();
  EXPECT_EQ(state.component_count(), 2u);
  EXPECT_EQ(state.entry_count(), 4u);
  ASSERT_NE(state.EnabledImpl("f"), nullptr);
  EXPECT_EQ(state.EnabledImpl("f")->component, comp_a_.id);
  EXPECT_EQ(state.FindEntry("g", comp_a_.id)->visibility,
            Visibility::kInternal);
  EXPECT_TRUE(state.IsMandatory("f"));
  EXPECT_TRUE(state.FindEntry("h", comp_b_.id)->permanent);
  EXPECT_EQ(state.dependencies().size(), 2u);

  // An evolution plan between original and parsed states is empty: they are
  // the same configuration.
  EXPECT_TRUE(ComputePlan(original.state(), state).Empty());
}

TEST_F(DescriptorWireTest, InstantiableFlagSurvives) {
  DfmDescriptor original = MakeRich();
  ASSERT_TRUE(original.MarkInstantiable().ok());
  auto parsed = ParseDescriptor(SerializeDescriptor(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->instantiable());
  // And the parsed copy is frozen like the original.
  EXPECT_EQ(parsed->EnableFunction("f", comp_b_.id).code(),
            ErrorCode::kVersionFrozen);
}

TEST_F(DescriptorWireTest, EmptyDescriptorRoundTrips) {
  DfmDescriptor empty(VersionId::Root());
  auto parsed = ParseDescriptor(SerializeDescriptor(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->state().component_count(), 0u);
  EXPECT_EQ(parsed->state().entry_count(), 0u);
}

TEST_F(DescriptorWireTest, GarbageRejected) {
  EXPECT_FALSE(ParseDescriptor(ByteBuffer::FromString("garbage")).ok());
  EXPECT_FALSE(ParseDescriptor(ByteBuffer{}).ok());
}

TEST_F(DescriptorWireTest, TruncationRejectedEverywhere) {
  DfmDescriptor original = MakeRich();
  ByteBuffer wire = SerializeDescriptor(original);
  // Chop the wire at a sweep of prefixes: every truncation must fail
  // cleanly, never crash or mis-parse.
  for (std::size_t cut = 0; cut + 1 < wire.size();
       cut += std::max<std::size_t>(1, wire.size() / 40)) {
    std::vector<std::byte> prefix(wire.data(), wire.data() + cut);
    auto parsed = ParseDescriptor(ByteBuffer(std::move(prefix)));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
  }
}

TEST_F(DescriptorWireTest, InconsistentWireRejectedByValidation) {
  // Hand-craft a wire image whose instantiable flag is set but whose
  // mandatory function has no enabled implementation: reconstruction runs
  // the real MarkInstantiable validation, which must refuse.
  DfmDescriptor descriptor(VersionId::Root());
  ASSERT_TRUE(descriptor.IncorporateComponent(comp_a_, false).ok());
  ASSERT_TRUE(descriptor.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(descriptor.MarkMandatory("f").ok());
  ByteBuffer wire = SerializeDescriptor(descriptor);

  // Flip the enabled bit of the single enabled row by re-serializing a
  // tampered clone: disable is illegal through the API (mandatory), so
  // build the tampered image manually from a fresh descriptor without the
  // enable, then splice the instantiable flag on.
  DfmDescriptor tampered(VersionId::Root());
  ASSERT_TRUE(tampered.IncorporateComponent(comp_a_, false).ok());
  ASSERT_TRUE(tampered.MarkMandatory("f").ok());
  ByteBuffer bad_wire = SerializeDescriptor(tampered);
  // Set the instantiable flag (byte right after the version id:
  // u64 count + 1×u32 part + bool).
  std::vector<std::byte> bytes(bad_wire.data(),
                               bad_wire.data() + bad_wire.size());
  bytes[sizeof(std::uint64_t) + sizeof(std::uint32_t)] = std::byte{1};
  auto parsed = ParseDescriptor(ByteBuffer(std::move(bytes)));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kMandatoryViolation);
}

}  // namespace
}  // namespace dcdo
