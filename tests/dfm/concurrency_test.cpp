// Real-thread hammering of the DynamicFunctionMapper: the mapper is the one
// component of the reproduction that must be *actually* thread-safe (every
// call in a real deployment races configuration changes). These tests run
// OS threads, not simulated ones.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dfm/mapper.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

constexpr auto kArch = sim::Architecture::kX86Linux;

class NullCtx : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("none");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

TEST(MapperConcurrency, CallersRaceConfigurationSafely) {
  NativeCodeRegistry registry;
  auto comp_a = testing::MakeEchoComponent(registry, "ca", {"f"});
  auto comp_b = testing::MakeEchoComponent(registry, "cb", {"f"});
  DynamicFunctionMapper mapper;
  ASSERT_TRUE(mapper.IncorporateComponent(comp_a, registry, kArch).ok());
  ASSERT_TRUE(mapper.IncorporateComponent(comp_b, registry, kArch).ok());
  ASSERT_TRUE(mapper.EnableFunction("f", comp_a.id).ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> successes{0};
  std::atomic<std::uint64_t> typed_failures{0};

  // 4 caller threads: every outcome must be success or a typed evolution
  // error; anything else (crash, data race, wrong payload) fails the test.
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      NullCtx ctx;
      ByteBuffer args = ByteBuffer::FromString("x");
      while (!stop.load(std::memory_order_relaxed)) {
        auto guard = mapper.Acquire("f", CallOrigin::kExternal);
        if (!guard.ok()) {
          ASSERT_TRUE(guard.status().code() == ErrorCode::kFunctionDisabled ||
                      guard.status().code() == ErrorCode::kFunctionMissing)
              << guard.status();
          ++typed_failures;
          continue;
        }
        auto result = guard->body()(ctx, args);
        ASSERT_TRUE(result.ok());
        std::string reply = result->ToString();
        ASSERT_TRUE(reply == "ca.f:x" || reply == "cb.f:x") << reply;
        ++successes;
      }
    });
  }

  // 1 configurator thread: keeps switching f's implementation and
  // occasionally disables/re-enables it.
  std::thread configurator([&] {
    bool to_b = true;
    for (int i = 0; i < 3000; ++i) {
      ObjectId target = to_b ? comp_b.id : comp_a.id;
      (void)mapper.SwitchImplementation("f", target);
      to_b = !to_b;
      if (i % 100 == 0) {
        const DfmEntry* enabled = nullptr;
        // Snapshot under the mapper's own synchronization via public API.
        enabled = mapper.state().EnabledImpl("f");
        if (enabled != nullptr) {
          (void)mapper.DisableFunction("f", enabled->component,
                                       /*respect_active_dependents=*/false);
          (void)mapper.EnableFunction("f", target);
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  configurator.join();
  stop.store(true);
  for (std::thread& thread : callers) thread.join();

  EXPECT_GT(successes.load(), 0u);
  EXPECT_EQ(mapper.TotalActive(), 0) << "all guards released";
  // The mapper's own counters are consistent with what the threads saw.
  EXPECT_GE(mapper.calls_resolved(), successes.load());
}

TEST(MapperConcurrency, RemovalRacesActiveGuards) {
  NativeCodeRegistry registry;
  auto comp = testing::MakeEchoComponent(registry, "cr", {"f"});
  DynamicFunctionMapper mapper;
  ASSERT_TRUE(mapper.IncorporateComponent(comp, registry, kArch).ok());
  ASSERT_TRUE(mapper.EnableFunction("f", comp.id).ok());

  std::atomic<bool> stop{false};
  std::thread caller([&] {
    NullCtx ctx;
    while (!stop.load(std::memory_order_relaxed)) {
      auto guard = mapper.Acquire("f", CallOrigin::kExternal);
      if (guard.ok()) {
        (void)guard->body()(ctx, ByteBuffer{});
      }
    }
  });

  // Try to remove while calls are in flight: must either succeed (no active
  // threads at that instant) or fail with kActiveThreads — never crash.
  int removed_attempts = 0;
  bool removed = false;
  for (int i = 0; i < 2000; ++i) {
    Status status = mapper.RemoveComponent(comp.id);
    ++removed_attempts;
    if (status.ok()) {
      removed = true;
      break;
    }
    ASSERT_EQ(status.code(), ErrorCode::kActiveThreads);
  }
  stop.store(true);
  caller.join();
  if (!removed) {
    // All attempts raced with an active call (likely on a fast machine, where
    // the caller thread reacquires immediately). Give it one guaranteed-quiet
    // chance now that the caller has stopped.
    EXPECT_TRUE(mapper.RemoveComponent(comp.id).ok());
  }
  EXPECT_FALSE(mapper.state().HasComponent(comp.id));
  EXPECT_GT(removed_attempts, 0);
}

}  // namespace
}  // namespace dcdo
