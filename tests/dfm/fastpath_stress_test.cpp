// Stress test of the lock-light dispatch fast path: many OS threads
// acquiring through both Acquire overloads (by name and by pre-resolved
// FunctionId) while a churn thread switches implementations, flips enable
// state, and removes/re-incorporates a whole component. Runs with a
// CheckContext installed so every call start/end and configuration change
// feeds the race detector; at the end the detector's ledgers must balance
// and all seven built-in invariants must be quiet at error level (the only
// legal noise is race-unquiesced-swap / dfm-no-dangling warnings, which the
// paper explicitly permits: threads may proceed inside deactivated code).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/check_context.h"
#include "dfm/mapper.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

constexpr auto kArch = sim::Architecture::kX86Linux;

class NullCtx : public CallContext {
 public:
  Result<ByteBuffer> CallInternal(const std::string&,
                                  const ByteBuffer&) override {
    return FunctionMissingError("none");
  }
  ObjectId self_id() const override { return ObjectId(); }
  void BlockOnOutcall(double) override {}
};

TEST(FastPathStress, AcquirersRaceChurnWithCheckerInstalled) {
  check::CheckContext checker;
  checker.Install();

  NativeCodeRegistry registry;
  auto comp_a = testing::MakeEchoComponent(registry, "sa", {"f", "g"});
  auto comp_b = testing::MakeEchoComponent(registry, "sb", {"f"});
  DynamicFunctionMapper mapper;
  ObjectId owner = ObjectId::Next(domains::kInstance);
  mapper.SetCheckOwner(owner);
  ASSERT_TRUE(mapper.IncorporateComponent(comp_a, registry, kArch).ok());
  ASSERT_TRUE(mapper.IncorporateComponent(comp_b, registry, kArch).ok());
  ASSERT_TRUE(mapper.EnableFunction("f", comp_a.id).ok());
  ASSERT_TRUE(mapper.EnableFunction("g", comp_a.id).ok());

  FunctionId f_id = FunctionNameTable::Global().Find("f");
  ASSERT_TRUE(f_id.valid());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> successes{0};

  // Two by-name acquirers and two by-id acquirers. Every outcome must be a
  // completed call or a typed evolution error — never a crash, a torn slot
  // read, or a stale body producing the wrong payload.
  std::vector<std::thread> acquirers;
  for (int t = 0; t < 4; ++t) {
    acquirers.emplace_back([&, t] {
      NullCtx ctx;
      ByteBuffer args = ByteBuffer::FromString("x");
      while (!stop.load(std::memory_order_relaxed)) {
        auto guard = (t % 2 == 0)
                         ? mapper.Acquire("f", CallOrigin::kExternal)
                         : mapper.Acquire(f_id, CallOrigin::kExternal);
        if (!guard.ok()) {
          ASSERT_TRUE(guard.status().code() == ErrorCode::kFunctionMissing ||
                      guard.status().code() == ErrorCode::kFunctionDisabled)
              << guard.status();
          continue;
        }
        auto result = guard->body()(ctx, args);
        ASSERT_TRUE(result.ok());
        std::string reply = result->ToString();
        ASSERT_TRUE(reply == "sa.f:x" || reply == "sb.f:x") << reply;
        ++successes;
      }
    });
  }

  // Churn: implementation switches on every step, enable flips, and a full
  // remove/re-incorporate cycle of component B (quiescence-respecting — the
  // removal retries until it catches a gap between calls).
  std::uint64_t version_before = mapper.table_version();
  std::thread churn([&] {
    bool to_b = true;
    for (int i = 0; i < 2000; ++i) {
      (void)mapper.SwitchImplementation("f", to_b ? comp_b.id : comp_a.id);
      to_b = !to_b;
      if (i % 50 == 0) {
        const DfmEntry* enabled = mapper.state().EnabledImpl("f");
        if (enabled != nullptr) {
          ObjectId target = enabled->component;
          (void)mapper.DisableFunction("f", target,
                                       /*respect_active_dependents=*/false);
          (void)mapper.EnableFunction("f", target);
        }
      }
      if (i % 100 == 0) {
        // Steer calls onto A so B can quiesce, then remove and bring it back.
        (void)mapper.SwitchImplementation("f", comp_a.id);
        Status removed = Status::Ok();
        for (int attempt = 0; attempt < 200; ++attempt) {
          removed = mapper.RemoveComponent(comp_b.id);
          if (removed.ok()) break;
          ASSERT_EQ(removed.code(), ErrorCode::kActiveThreads) << removed;
        }
        if (removed.ok()) {
          ASSERT_TRUE(
              mapper.IncorporateComponent(comp_b, registry, kArch).ok());
        }
      }
    }
    stop.store(true, std::memory_order_relaxed);
  });

  churn.join();
  stop.store(true);
  for (std::thread& thread : acquirers) thread.join();

  EXPECT_GT(successes.load(), 0u);
  EXPECT_GT(mapper.table_version(), version_before)
      << "mutations bump the table stamp";

  // Every guard was released: the mapper's counters and the race detector's
  // invocation ledger both drain to zero.
  EXPECT_EQ(mapper.TotalActive(), 0);
  EXPECT_EQ(mapper.ActiveCount("f", comp_a.id), 0);
  EXPECT_EQ(mapper.ActiveCount("f", comp_b.id), 0);
  EXPECT_GE(mapper.calls_resolved(), successes.load());

  checker.EvaluateAtEnd();
  EXPECT_EQ(checker.races().InFlightCalls(owner), 0);
  // No forced removals happened, so nothing may be error-level.
  EXPECT_TRUE(checker.diagnostics().Clean())
      << checker.diagnostics().DumpText();
  EXPECT_EQ(checker.diagnostics().CountFor("race-forced-removal"), 0u);
  EXPECT_EQ(checker.diagnostics().CountFor("thread-accounting"), 0u);
  checker.Uninstall();
}

// The by-id fast path sees configuration changes exactly like the by-name
// path: after a switch, the next Acquire(FunctionId) resolves to the new
// component (no caller-side caching of bodies across table versions).
TEST(FastPathStress, ByIdAcquireObservesSwitchImmediately) {
  NativeCodeRegistry registry;
  auto comp_a = testing::MakeEchoComponent(registry, "ia", {"h"});
  auto comp_b = testing::MakeEchoComponent(registry, "ib", {"h"});
  DynamicFunctionMapper mapper;
  ASSERT_TRUE(mapper.IncorporateComponent(comp_a, registry, kArch).ok());
  ASSERT_TRUE(mapper.IncorporateComponent(comp_b, registry, kArch).ok());
  ASSERT_TRUE(mapper.EnableFunction("h", comp_a.id).ok());

  FunctionId id = FunctionNameTable::Global().Find("h");
  ASSERT_TRUE(id.valid());
  NullCtx ctx;
  ByteBuffer args = ByteBuffer::FromString("z");

  auto first = mapper.Acquire(id, CallOrigin::kExternal);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->body()(ctx, args)->ToString(), "ia.h:z");
  first->Release();

  std::uint64_t stamp = mapper.table_version();
  ASSERT_TRUE(mapper.SwitchImplementation("h", comp_b.id).ok());
  EXPECT_GT(mapper.table_version(), stamp);

  auto second = mapper.Acquire(id, CallOrigin::kExternal);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->component(), comp_b.id);
  EXPECT_EQ(second->body()(ctx, args)->ToString(), "ib.h:z");
}

}  // namespace
}  // namespace dcdo
