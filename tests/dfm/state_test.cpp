#include "dfm/state.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace dcdo {
namespace {

class DfmStateTest : public ::testing::Test {
 protected:
  // Two components both implementing "f" plus some singletons.
  DfmStateTest() {
    comp_a_ = testing::MakeEchoComponent(registry_, "libA", {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(registry_, "libB", {"f", "h"});
  }

  NativeCodeRegistry registry_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  DfmState state_;
};

TEST_F(DfmStateTest, IncorporateAddsDisabledEntries) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  EXPECT_TRUE(state_.HasComponent(comp_a_.id));
  EXPECT_EQ(state_.component_count(), 1u);
  EXPECT_EQ(state_.entry_count(), 2u);
  EXPECT_EQ(state_.EnabledImpl("f"), nullptr) << "functions start disabled";
  EXPECT_TRUE(state_.AnyImplPresent("f"));
  EXPECT_TRUE(state_.ExportedInterface().empty());
}

TEST_F(DfmStateTest, DoubleIncorporateRejected) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  EXPECT_EQ(state_.IncorporateComponent(comp_a_).code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(DfmStateTest, EnableExposesExportedFunction) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  const DfmEntry* entry = state_.EnabledImpl("f");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->component, comp_a_.id);
  auto interface = state_.ExportedInterface();
  ASSERT_EQ(interface.size(), 1u);
  EXPECT_EQ(interface[0].name, "f");
}

TEST_F(DfmStateTest, OnlyOneImplementationEnabledPerFunction) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  Status second = state_.EnableFunction("f", comp_b_.id);
  EXPECT_EQ(second.code(), ErrorCode::kFailedPrecondition);
}

TEST_F(DfmStateTest, SwitchReplacesImplementationAtomically) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.SwitchImplementation("f", comp_b_.id).ok());
  EXPECT_EQ(state_.EnabledImpl("f")->component, comp_b_.id);
  EXPECT_FALSE(state_.FindEntry("f", comp_a_.id)->enabled);
}

TEST_F(DfmStateTest, SwitchToUnknownComponentFails) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  EXPECT_EQ(state_.SwitchImplementation("f", comp_b_.id).code(),
            ErrorCode::kFunctionMissing);
}

TEST_F(DfmStateTest, EnableDisableAreIdempotent) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  EXPECT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.DisableFunction("f", comp_a_.id).ok());
  EXPECT_TRUE(state_.DisableFunction("f", comp_a_.id).ok());
}

TEST_F(DfmStateTest, RemoveComponentDropsRows) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.RemoveComponent(comp_a_.id).ok());
  EXPECT_FALSE(state_.HasComponent(comp_a_.id));
  EXPECT_EQ(state_.entry_count(), 0u);
  EXPECT_EQ(state_.RemoveComponent(comp_a_.id).code(),
            ErrorCode::kComponentMissing);
}

// --- Mandatory functions ---

TEST_F(DfmStateTest, MandatoryCannotBeDisabled) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("f").ok());
  EXPECT_EQ(state_.DisableFunction("f", comp_a_.id).code(),
            ErrorCode::kMandatoryViolation);
}

TEST_F(DfmStateTest, MandatoryCanStillBeSwitched) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("f").ok());
  EXPECT_TRUE(state_.SwitchImplementation("f", comp_b_.id).ok())
      << "mandatory pins the function, not the implementation";
}

TEST_F(DfmStateTest, MandatoryBlocksRemovalOfLastImplementation) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("g", comp_a_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("g").ok());  // only libA implements g
  EXPECT_EQ(state_.RemoveComponent(comp_a_.id).code(),
            ErrorCode::kMandatoryViolation);
}

TEST_F(DfmStateTest, MandatoryAllowsRemovalWhenAnotherImplExists) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_b_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("f").ok());
  // libA's f is disabled and libB still implements f: removal is fine.
  EXPECT_TRUE(state_.RemoveComponent(comp_a_.id).ok());
}

TEST_F(DfmStateTest, MarkMandatoryUnknownFunctionFails) {
  EXPECT_EQ(state_.MarkMandatory("ghost").code(),
            ErrorCode::kFunctionMissing);
}

// --- Permanent implementations ---

TEST_F(DfmStateTest, PermanentCannotBeDisabledSwitchedOrRemoved) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.MarkPermanent("f", comp_a_.id).ok());
  EXPECT_TRUE(state_.FindEntry("f", comp_a_.id)->enabled)
      << "marking permanent enables the implementation";

  EXPECT_EQ(state_.DisableFunction("f", comp_a_.id).code(),
            ErrorCode::kPermanentViolation);
  EXPECT_EQ(state_.SwitchImplementation("f", comp_b_.id).code(),
            ErrorCode::kPermanentViolation);
  EXPECT_EQ(state_.RemoveComponent(comp_a_.id).code(),
            ErrorCode::kPermanentViolation);
}

TEST_F(DfmStateTest, TwoPermanentImplsOfSameFunctionRejected) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.MarkPermanent("f", comp_a_.id).ok());
  EXPECT_EQ(state_.MarkPermanent("f", comp_b_.id).code(),
            ErrorCode::kPermanentViolation);
}

// The paper's incorporate-conflict rule: a component carrying a permanent F
// cannot join a DFM that already has a different permanent impl of F.
TEST_F(DfmStateTest, IncorporateConflictingPermanentRejected) {
  auto perm_a = ComponentBuilder("permA")
                    .AddFunction("f", "v()", "permA/f", Visibility::kExported,
                                 Constraint::kPermanent)
                    .Build();
  auto perm_b = ComponentBuilder("permB")
                    .AddFunction("f", "v()", "permB/f", Visibility::kExported,
                                 Constraint::kPermanent)
                    .Build();
  ASSERT_TRUE(perm_a.ok());
  ASSERT_TRUE(perm_b.ok());
  ASSERT_TRUE(state_.IncorporateComponent(*perm_a).ok());
  Status conflict = state_.IncorporateComponent(*perm_b);
  EXPECT_EQ(conflict.code(), ErrorCode::kPermanentViolation);
  EXPECT_FALSE(state_.HasComponent(perm_b->id)) << "incorporate rolled back";
}

TEST_F(DfmStateTest, ComponentMandatoryMarkingApplies) {
  auto with_mandatory =
      ComponentBuilder("libM")
          .AddFunction("core", "v()", "libM/core", Visibility::kExported,
                       Constraint::kMandatory)
          .Build();
  ASSERT_TRUE(with_mandatory.ok());
  ASSERT_TRUE(state_.IncorporateComponent(*with_mandatory).ok());
  EXPECT_TRUE(state_.IsMandatory("core"));
}

// --- Dependencies in mutations ---

TEST_F(DfmStateTest, DisableBlockedByBindingDependency) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.EnableFunction("g", comp_a_.id).ok());
  ASSERT_TRUE(state_.AddDependency(Dependency::TypeD("f", "g")).ok());
  EXPECT_EQ(state_.DisableFunction("g", comp_a_.id).code(),
            ErrorCode::kDependencyViolation);
  // Disable the dependent first, and the constraint retracts.
  ASSERT_TRUE(state_.DisableFunction("f", comp_a_.id).ok());
  EXPECT_TRUE(state_.DisableFunction("g", comp_a_.id).ok());
}

TEST_F(DfmStateTest, EnableBlockedWhenItsOwnDependencyUnmet) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.AddDependency(
      Dependency::TypeA("f", comp_a_.id, "g")).ok());
  EXPECT_EQ(state_.EnableFunction("f", comp_a_.id).code(),
            ErrorCode::kDependencyViolation)
      << "f structurally needs g, which is disabled";
  ASSERT_TRUE(state_.EnableFunction("g", comp_a_.id).ok());
  EXPECT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
}

TEST_F(DfmStateTest, RemoveComponentBlockedByDependencyFromOutside) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("h", comp_b_.id).ok());
  ASSERT_TRUE(state_.EnableFunction("g", comp_a_.id).ok());
  // h (libB) behaviorally depends on g's implementation in libA.
  ASSERT_TRUE(state_.AddDependency(
      Dependency::TypeC("h", "g", comp_a_.id)).ok());
  EXPECT_EQ(state_.RemoveComponent(comp_a_.id).code(),
            ErrorCode::kDependencyViolation);
}

TEST_F(DfmStateTest, AddDependencyRetroactivelyViolatedRejected) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  // f is enabled and g is not: adding [f]->[g] now would be instantly
  // violated, so the add must fail.
  EXPECT_EQ(state_.AddDependency(Dependency::TypeD("f", "g")).code(),
            ErrorCode::kDependencyViolation);
}

TEST_F(DfmStateTest, AutoStructuralDepsFromComponentHints) {
  auto caller = ComponentBuilder("caller")
                    .AddFunction("outer", "v()", "caller/outer",
                                 Visibility::kExported,
                                 Constraint::kFullyDynamic, {"inner"})
                    .Build();
  ASSERT_TRUE(caller.ok());
  testing::RegisterEcho(registry_, "caller/outer", "outer");
  ASSERT_TRUE(state_.IncorporateComponent(*caller,
                                          /*auto_structural_deps=*/true).ok());
  EXPECT_EQ(state_.dependencies().size(), 1u);
  // outer cannot be enabled until some impl of inner exists and is enabled.
  EXPECT_EQ(state_.EnableFunction("outer", caller->id).code(),
            ErrorCode::kDependencyViolation);
}

// --- Visibility ---

TEST_F(DfmStateTest, VisibilityEditsTrackedAndPermanentFrozen) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.SetVisibility("f", comp_a_.id,
                                   Visibility::kInternal).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  EXPECT_TRUE(state_.ExportedInterface().empty());

  ASSERT_TRUE(state_.MarkPermanent("f", comp_a_.id).ok());
  EXPECT_EQ(state_.SetVisibility("f", comp_a_.id,
                                 Visibility::kExported).code(),
            ErrorCode::kPermanentViolation);
}

// --- ValidateComplete (instantiability) ---

TEST_F(DfmStateTest, ValidateCompleteRequiresMandatoryEnabled) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("f").ok());
  EXPECT_TRUE(state_.ValidateComplete().ok());

  // A freshly incorporated mandatory function with no enabled impl fails.
  auto needs = ComponentBuilder("needs")
                   .AddFunction("must", "v()", "needs/must",
                                Visibility::kExported, Constraint::kMandatory)
                   .Build();
  ASSERT_TRUE(needs.ok());
  testing::RegisterEcho(registry_, "needs/must", "must");
  ASSERT_TRUE(state_.IncorporateComponent(*needs).ok());
  EXPECT_EQ(state_.ValidateComplete().code(),
            ErrorCode::kMandatoryViolation);
  ASSERT_TRUE(state_.EnableFunction("must", needs->id).ok());
  EXPECT_TRUE(state_.ValidateComplete().ok());
}

// --- AdoptConfiguration (evolution) ---

TEST_F(DfmStateTest, AdoptConfigurationFlipsToTarget) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());

  DfmState target;
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(target.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(target.EnableFunction("f", comp_b_.id).ok());  // switched
  ASSERT_TRUE(target.EnableFunction("h", comp_b_.id).ok());  // newly on

  ASSERT_TRUE(state_.AdoptConfiguration(target, /*enforce_marks=*/true).ok());
  EXPECT_EQ(state_.EnabledImpl("f")->component, comp_b_.id);
  EXPECT_NE(state_.EnabledImpl("h"), nullptr);
}

TEST_F(DfmStateTest, AdoptRequiresComponentsIncorporatedFirst) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  DfmState target;
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(target.IncorporateComponent(comp_b_).ok());
  EXPECT_EQ(state_.AdoptConfiguration(target, true).code(),
            ErrorCode::kComponentMissing);
}

TEST_F(DfmStateTest, AdoptEnforcesPermanentWhenAsked) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.MarkPermanent("f", comp_a_.id).ok());

  DfmState target;  // target has f disabled
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());

  EXPECT_EQ(state_.AdoptConfiguration(target, /*enforce_marks=*/true).code(),
            ErrorCode::kPermanentViolation);
  // The general-evolution policy may force it through.
  EXPECT_TRUE(state_.AdoptConfiguration(target, /*enforce_marks=*/false).ok());
  EXPECT_EQ(state_.EnabledImpl("f"), nullptr);
}

TEST_F(DfmStateTest, AdoptEnforcesMandatoryWhenAsked) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(state_.MarkMandatory("f").ok());

  DfmState target;
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());  // all disabled
  EXPECT_EQ(state_.AdoptConfiguration(target, true).code(),
            ErrorCode::kMandatoryViolation);
}

TEST_F(DfmStateTest, AdoptReplacesDependencySet) {
  ASSERT_TRUE(state_.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(state_.AddDependency(Dependency::TypeD("f", "g")).ok());

  DfmState target;
  ASSERT_TRUE(target.IncorporateComponent(comp_a_).ok());
  ASSERT_TRUE(target.EnableFunction("f", comp_a_.id).ok());
  // Target dropped the dependency, so f alone is fine after adoption.
  ASSERT_TRUE(state_.AdoptConfiguration(target, true).ok());
  EXPECT_EQ(state_.dependencies().size(), 0u);
  EXPECT_NE(state_.EnabledImpl("f"), nullptr);
}

}  // namespace
}  // namespace dcdo
