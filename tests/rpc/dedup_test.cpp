// At-most-once dispatch: the per-endpoint dedup window keyed by
// (origin node, call_id).
//
// The headline scenario is the one that motivated the window: a client
// timeout does NOT mean the attempt was lost. A slow first attempt plus its
// retry can both arrive, and before this layer existed both executed the
// method body — disastrous for non-idempotent configuration calls. These
// tests pin the three behaviors: an in-flight duplicate is dropped, a
// completed duplicate replays the cached reply without re-running the body,
// and entries retire after
// invocation_timeout * 2 * (stale_retry_count + 1) + rebind_query — past
// the client's whole retry schedule.
#include <gtest/gtest.h>

#include <string>

#include "rpc/client.h"

namespace dcdo::rpc {
namespace {

class DedupTest : public ::testing::Test {
 protected:
  DedupTest()
      : network_(&simulation_, sim::CostModel{}),
        transport_(&network_),
        client_(&transport_, &agent_, /*node=*/1) {
    network_.AddNode(1);
    network_.AddNode(2);
    target_ = ObjectId::Next(domains::kInstance);
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
  BindingAgent agent_;
  RpcClient client_;
  ObjectId target_;
};

// Both attempts deliver, the body runs once, the client gets one reply.
//
// Timeline (default CostModel: 10 s timeout):
//   t~0   attempt #1 arrives; the handler runs the body and parks its reply
//         for 2 s (a slow method, not a lost message).
//   t=1   the 1<->2 link partitions.
//   t=2   the parked reply is sent — and dropped at the partition. The
//         *execution* already happened; only the answer was lost.
//   t=3   the partition heals.
//   t=10  the client times out and retries the same binding. The retry
//         arrives, the window finds the completed entry, and the cached
//         reply is replayed WITHOUT running the body again.
TEST_F(DedupTest, RetryAfterLostReplyReplaysCachedAnswer) {
  int body_runs = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation& inv, ReplyFn reply) {
        ++body_runs;
        ByteBuffer answer =
            ByteBuffer::FromString("answer#" + std::to_string(body_runs) +
                                   ":" + std::string(inv.method_name()));
        simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                             [reply = std::move(reply),
                              answer = std::move(answer)]() mutable {
                               reply(MethodResult::Ok(std::move(answer)));
                             });
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});

  simulation_.Schedule(sim::SimDuration::Seconds(1.0),
                       [&]() { network_.SetPartitioned(1, 2, true); });
  simulation_.Schedule(sim::SimDuration::Seconds(3.0),
                       [&]() { network_.SetPartitioned(1, 2, false); });

  int callback_runs = 0;
  std::string payload;
  client_.Invoke(target_, "transferFunds", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_TRUE(result.ok());
    payload = result->ToString();
  });
  simulation_.Run();

  EXPECT_EQ(body_runs, 1);     // exactly-once execution
  EXPECT_EQ(callback_runs, 1);  // exactly one reply surfaced
  EXPECT_EQ(payload, "answer#1:transferFunds");  // ...and it is attempt #1's
  EXPECT_EQ(transport_.dedup_hits(), 1u);
  EXPECT_EQ(client_.timeouts(), 1u);
  EXPECT_EQ(client_.rebinds(), 0u);
  // The body ran once, so delivery was counted once; the replay was not a
  // second delivery.
  EXPECT_EQ(transport_.invocations_delivered(), 1u);
}

// A duplicate of a call whose original is STILL executing is dropped
// outright: the parked first attempt will answer, and that answer completes
// the client's call even though the client had already timed out attempt #1.
TEST_F(DedupTest, InFlightDuplicateIsDropped) {
  int body_runs = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation&, ReplyFn reply) {
        ++body_runs;
        // Parked past the 10 s client timeout: the retry arrives while the
        // original is still "executing".
        simulation_.Schedule(sim::SimDuration::Seconds(15.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok(
                                   ByteBuffer::FromString("slowAnswer")));
                             });
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});

  int callback_runs = 0;
  std::string payload;
  client_.Invoke(target_, "slowMethod", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_TRUE(result.ok());
    payload = result->ToString();
  });
  simulation_.Run();

  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(payload, "slowAnswer");
  // The 10 s retry found the in-flight entry and was dropped; no cached
  // reply existed yet, so nothing was replayed.
  EXPECT_GE(transport_.dedup_hits(), 1u);
  EXPECT_EQ(transport_.invocations_delivered(), 1u);
}

// Window retirement: entries expire after
// invocation_timeout * 2 * (stale_retry_count + 1) + rebind_query — 60.9 s
// under the default model — at which point a reused call_id executes again.
// The client's last possible retry leaves at 50.9 s (two binding rounds of
// 3 attempts each plus the rebind query), so the window must still hold the
// entry THEN; a shorter TTL re-opens the double-execution hole inside the
// client's own retry schedule. Raw transport invocations with hand-set call
// ids drive the window directly.
TEST_F(DedupTest, EntriesRetireAfterTtl) {
  int body_runs = 0;
  transport_.RegisterEndpoint(2, 10, 1,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                ++body_runs;
                                reply(MethodResult::Ok());
                              });

  auto invoke_with_id = [&](std::uint64_t call_id) {
    MethodInvocation invocation;
    invocation.method = "poke";
    invocation.call_id = call_id;
    transport_.Invoke(1, 2, 10, std::move(invocation), [](MethodResult) {});
  };

  invoke_with_id(101);
  simulation_.Run();
  EXPECT_EQ(body_runs, 1);

  // Within the TTL the same id is a duplicate (replayed, body not re-run) —
  // including at 55 s, when the client protocol could still be delivering
  // its final rebound-round retry.
  simulation_.Schedule(sim::SimDuration::Seconds(5.0),
                       [&]() { invoke_with_id(101); });
  simulation_.Schedule(sim::SimDuration::Seconds(55.0),
                       [&]() { invoke_with_id(101); });
  simulation_.Run();
  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(transport_.dedup_hits(), 2u);
  EXPECT_EQ(transport_.dedup_evictions(), 0u);

  // ...but past it the entry has retired: the purge runs on the next
  // delivery, the eviction is counted, and the body runs again.
  simulation_.Schedule(sim::SimDuration::Seconds(10.0),
                       [&]() { invoke_with_id(101); });
  simulation_.Run();
  EXPECT_EQ(body_runs, 2);
  EXPECT_EQ(transport_.dedup_hits(), 2u);
  EXPECT_GE(transport_.dedup_evictions(), 1u);
}

// Expired entries are also shed WITHOUT further traffic to the endpoint:
// any RegisterEndpoint sweeps every window, so an endpoint that goes idle
// does not hold its cached replies forever.
TEST_F(DedupTest, RegistrationSweepsIdleWindows) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  MethodInvocation invocation;
  invocation.method = "poke";
  invocation.call_id = 42;
  transport_.Invoke(1, 2, 10, std::move(invocation), [](MethodResult) {});
  simulation_.Run();
  EXPECT_EQ(transport_.dedup_evictions(), 0u);

  // Long after the TTL, a different endpoint registers. No delivery ever
  // reaches (2, 10) again, yet its expired entry retires via the sweep.
  simulation_.Schedule(sim::SimDuration::Seconds(120.0), [&]() {
    transport_.RegisterEndpoint(2, 99, 1,
                                [](const MethodInvocation&, ReplyFn) {});
  });
  simulation_.Run();
  EXPECT_GE(transport_.dedup_evictions(), 1u);
}

// call_id 0 — a hand-rolled invocation that never set one — bypasses the
// window entirely: every delivery runs the body.
TEST_F(DedupTest, CallIdZeroBypassesWindow) {
  int body_runs = 0;
  transport_.RegisterEndpoint(2, 10, 1,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                ++body_runs;
                                reply(MethodResult::Ok());
                              });
  for (int i = 0; i < 3; ++i) {
    MethodInvocation invocation;
    invocation.method = "unkeyed";
    transport_.Invoke(1, 2, 10, std::move(invocation), [](MethodResult) {});
  }
  simulation_.Run();
  EXPECT_EQ(body_runs, 3);
  EXPECT_EQ(transport_.dedup_hits(), 0u);
}

// Two clients on the SAME node must not collide in a server's window: call
// ids come from a process-global allocator, so concurrent calls from
// co-located clients are distinct (origin, call_id) keys.
TEST_F(DedupTest, CoLocatedClientsDoNotCollide) {
  int body_runs = 0;
  transport_.RegisterEndpoint(2, 10, 1,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                ++body_runs;
                                reply(MethodResult::Ok());
                              });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});

  RpcClient second(&transport_, &agent_, /*node=*/1);
  int replies = 0;
  client_.Invoke(target_, "fromFirst", {},
                 [&](Result<ByteBuffer> r) { replies += r.ok(); });
  second.Invoke(target_, "fromSecond", {},
                [&](Result<ByteBuffer> r) { replies += r.ok(); });
  simulation_.Run();

  EXPECT_EQ(body_runs, 2);
  EXPECT_EQ(replies, 2);
  EXPECT_EQ(transport_.dedup_hits(), 0u);
}

// Capacity cap (CostModel::dedup_window_max_entries): a hot endpoint's
// window cannot grow past the cap — the oldest entry is evicted early and
// counted separately from TTL retirement, since a capacity eviction can
// forget an answer the retry schedule still needed.
TEST(DedupCapacityTest, WindowEvictsOldestPastTheCap) {
  sim::Simulation simulation;
  sim::CostModel cost;
  cost.dedup_window_max_entries = 4;
  sim::SimNetwork network(&simulation, cost);
  RpcTransport transport(&network);
  network.AddNode(1);
  network.AddNode(2);

  int body_runs = 0;
  transport.RegisterEndpoint(2, 10, 1,
                             [&](const MethodInvocation&, ReplyFn reply) {
                               ++body_runs;
                               reply(MethodResult::Ok());
                             });
  auto invoke_with_id = [&](std::uint64_t call_id) {
    MethodInvocation invocation;
    invocation.method = "poke";
    invocation.call_id = call_id;
    transport.Invoke(1, 2, 10, std::move(invocation), [](MethodResult) {});
  };

  // Ten distinct calls, all inside the TTL: only the cap evicts.
  for (std::uint64_t id = 1; id <= 10; ++id) invoke_with_id(id);
  simulation.Run();
  EXPECT_EQ(body_runs, 10);
  EXPECT_EQ(transport.dedup_capacity_evictions(), 6u);
  EXPECT_EQ(transport.dedup_evictions(), 0u);  // nothing TTL-expired

  // The newest entries survived: their duplicates still replay...
  invoke_with_id(10);
  simulation.Run();
  EXPECT_EQ(body_runs, 10);
  EXPECT_EQ(transport.dedup_hits(), 1u);
  // ...while a capacity-evicted call's duplicate re-executes — the bounded
  // risk the cap trades for its memory bound (and what sessions eliminate).
  invoke_with_id(1);
  simulation.Run();
  EXPECT_EQ(body_runs, 11);
}

// An endpoint that re-registers (new activation, same (node, pid)) gets a
// FRESH window; a reply parked by the old activation lands harmlessly in the
// old window instead of poisoning the successor's.
TEST_F(DedupTest, ReRegistrationResetsWindow) {
  int old_runs = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation&, ReplyFn reply) {
        ++old_runs;
        // Parked forever-ish; fires long after the endpoint is replaced.
        simulation_.Schedule(sim::SimDuration::Seconds(60.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok());
                             });
      });

  MethodInvocation first;
  first.method = "toOldActivation";
  first.call_id = 777;
  transport_.Invoke(1, 2, 10, std::move(first), [](MethodResult) {});
  // Let the first invocation land on the old activation before replacing it.
  int new_body_runs = 0;
  simulation_.Schedule(sim::SimDuration::Seconds(2.0), [&]() {
    transport_.RegisterEndpoint(2, 10, 2,
                                [&](const MethodInvocation&, ReplyFn reply) {
                                  ++new_body_runs;
                                  reply(MethodResult::Ok());
                                });
    MethodInvocation second;
    second.method = "toNewActivation";
    second.call_id = 777;  // same key as the old activation saw
    transport_.Invoke(1, 2, 10, std::move(second), [](MethodResult) {});
  });
  simulation_.Run();

  EXPECT_EQ(old_runs, 1);
  EXPECT_EQ(new_body_runs, 1);  // fresh window: 777 is not a duplicate here
  EXPECT_EQ(transport_.dedup_hits(), 0u);
}

}  // namespace
}  // namespace dcdo::rpc
