#include "rpc/client.h"

#include <gtest/gtest.h>

namespace dcdo::rpc {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : network_(&simulation_, sim::CostModel{}),
        transport_(&network_),
        client_(&transport_, &agent_, /*node=*/1) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
    target_ = ObjectId::Next(domains::kInstance);
  }

  // Registers an echo server for `target_` at (node, pid, epoch) and binds it.
  void ServeAt(sim::NodeId node, sim::ProcessId pid, std::uint64_t epoch) {
    transport_.RegisterEndpoint(
        node, pid, epoch, [](const MethodInvocation& inv, ReplyFn reply) {
          reply(MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    agent_.Bind(target_, ObjectAddress{node, pid, epoch});
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
  BindingAgent agent_;
  RpcClient client_;
  ObjectId target_;
};

TEST_F(ClientTest, BlockingInvokeReturnsPayload) {
  ServeAt(2, 10, 1);
  auto result = client_.InvokeBlocking(target_, "echoMe");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "echoMe");
  EXPECT_EQ(client_.timeouts(), 0u);
  // A healthy call completes in milliseconds, not timeout territory.
  EXPECT_LT(simulation_.Now().ToSeconds(), 0.1);
}

TEST_F(ClientTest, UnknownTargetFailsFast) {
  auto result = client_.InvokeBlocking(ObjectId::Next(domains::kInstance),
                                       "anything");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

// The paper's stale-binding scenario: the object re-activated elsewhere; the
// client's cached binding points at a dead process. Recovery takes the
// timeout-retry-rebind protocol — 25-35 simulated seconds.
TEST_F(ClientTest, StaleBindingRecoveredWithinPaperBand) {
  ServeAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warm").ok());  // cache binding

  // The object "evolves": old endpoint dies, new activation at node 3.
  transport_.UnregisterEndpoint(2, 10);
  ServeAt(3, 20, 2);

  sim::SimTime start = simulation_.Now();
  auto result = client_.InvokeBlocking(target_, "afterEvolve");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "afterEvolve");

  double seconds = (simulation_.Now() - start).ToSeconds();
  EXPECT_GE(seconds, 25.0);
  EXPECT_LE(seconds, 35.0);
  EXPECT_EQ(client_.rebinds(), 1u);
  EXPECT_GE(client_.timeouts(), 3u);  // initial + retries
}

TEST_F(ClientTest, SecondCallAfterRebindIsFastAgain) {
  ServeAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warm").ok());
  transport_.UnregisterEndpoint(2, 10);
  ServeAt(3, 20, 2);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "recover").ok());

  sim::SimTime start = simulation_.Now();
  ASSERT_TRUE(client_.InvokeBlocking(target_, "fast").ok());
  EXPECT_LT((simulation_.Now() - start).ToSeconds(), 0.1);
}

TEST_F(ClientTest, ObjectTrulyGoneTimesOutAfterRebind) {
  ServeAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warm").ok());
  transport_.UnregisterEndpoint(2, 10);
  // Binding agent still points at the dead activation (no new one).

  auto result = client_.InvokeBlocking(target_, "lost");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(ClientTest, UnboundAfterDeathReportsUnavailable) {
  ServeAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warm").ok());
  transport_.UnregisterEndpoint(2, 10);
  agent_.Unbind(target_);  // deactivated with no forwarding address

  auto result = client_.InvokeBlocking(target_, "lost");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kUnavailable);
}

TEST_F(ClientTest, EpochChangeAtSameAddressIsAlsoStale) {
  ServeAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warm").ok());
  // Re-activation reuses (node, pid) but bumps the epoch.
  transport_.UnregisterEndpoint(2, 10);
  ServeAt(2, 10, 2);

  auto result = client_.InvokeBlocking(target_, "again");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(client_.rebinds(), 1u);
}

TEST_F(ClientTest, ApplicationErrorsDoNotTriggerRetry) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Error(
                                    FunctionDisabledError("off")));
                              });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  auto result = client_.InvokeBlocking(target_, "disabledFn");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFunctionDisabled);
  EXPECT_EQ(client_.timeouts(), 0u);
  EXPECT_LT(simulation_.Now().ToSeconds(), 1.0);
}

TEST_F(ClientTest, AsyncInvokeRunsCallbackOnce) {
  ServeAt(2, 10, 1);
  int calls = 0;
  client_.Invoke(target_, "once", {}, [&](Result<ByteBuffer>) { ++calls; });
  simulation_.Run();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace dcdo::rpc
