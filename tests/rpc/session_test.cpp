// RPC session slot machinery (src/rpc/session.*): the client pool's grant /
// release / FIFO-backpressure behavior, the server table's duplicate
// taxonomy, and the O(slots) memory bound that replaces the dedup window's
// TTL arithmetic for sessioned traffic.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "rpc/client.h"
#include "rpc/session.h"

namespace dcdo::rpc {
namespace {

// --- SessionPool ----------------------------------------------------------

TEST(SessionPoolTest, GrantsDistinctSlotsUpToTheBoundThenQueues) {
  SessionPool pool(/*slots=*/2);
  ObjectAddress server{2, 10, 1};

  std::vector<SlotGrant> grants;
  auto grab = [&]() {
    pool.Acquire(server, [&](SlotGrant g) { grants.push_back(g); });
  };
  grab();
  grab();
  ASSERT_EQ(grants.size(), 2u);  // both granted inline
  EXPECT_EQ(grants[0].session_id, grants[1].session_id);
  EXPECT_NE(grants[0].slot, grants[1].slot);
  EXPECT_EQ(grants[0].seq, 1u);  // first occupancy of each slot
  EXPECT_EQ(grants[1].seq, 1u);
  EXPECT_EQ(pool.backpressure_waits(), 0u);

  // Third caller finds the session saturated: parked, counted.
  grab();
  EXPECT_EQ(grants.size(), 2u);
  EXPECT_EQ(pool.backpressure_waits(), 1u);
  EXPECT_EQ(pool.queued(), 1u);

  // Releasing a slot hands it straight to the waiter with the NEXT seq.
  pool.Release(server, grants[0]);
  ASSERT_EQ(grants.size(), 3u);
  EXPECT_EQ(pool.queued(), 0u);
  EXPECT_EQ(grants[2].slot, grants[0].slot);
  EXPECT_EQ(grants[2].seq, grants[0].seq + 1);
}

TEST(SessionPoolTest, QueuedCallersAdmitFifo) {
  SessionPool pool(/*slots=*/1);
  ObjectAddress server{2, 10, 1};
  SlotGrant first;
  pool.Acquire(server, [&](SlotGrant g) { first = g; });

  std::vector<int> admitted;
  for (int i = 0; i < 3; ++i) {
    pool.Acquire(server, [&admitted, i](SlotGrant) { admitted.push_back(i); });
  }
  EXPECT_EQ(pool.backpressure_waits(), 3u);

  // Each release admits exactly the longest waiter. The inline-admitted
  // waiter's grant is released right back, admitting the next.
  pool.Release(server, first);
  ASSERT_EQ(admitted, (std::vector<int>{0}));
  // (Grants handed to waiters advance the seq; the test only checks order.)
}

TEST(SessionPoolTest, SessionsAreKeyedByActivationNotNode) {
  SessionPool pool(/*slots=*/1);
  // Same (node, pid), different epoch = a different activation = a distinct
  // session: a rebound target must not inherit the predecessor's slot state.
  ObjectAddress old_epoch{2, 10, 1};
  ObjectAddress new_epoch{2, 10, 2};
  SlotGrant a, b;
  pool.Acquire(old_epoch, [&](SlotGrant g) { a = g; });
  pool.Acquire(new_epoch, [&](SlotGrant g) { b = g; });
  EXPECT_TRUE(a.held());
  EXPECT_TRUE(b.held());  // no queueing: separate sessions, separate slots
  EXPECT_NE(a.session_id, b.session_id);
}

TEST(SessionPoolTest, StaleGrantFromForeignSessionIsIgnored) {
  SessionPool pool(/*slots=*/1);
  ObjectAddress server{2, 10, 1};
  SlotGrant g;
  pool.Acquire(server, [&](SlotGrant grant) { g = grant; });
  // A grant whose session id does not match (e.g. minted by another pool)
  // must not corrupt the free list.
  SlotGrant foreign = g;
  foreign.session_id = g.session_id + 999;
  pool.Release(server, foreign);
  // The real slot is still occupied: a second acquire queues.
  pool.Acquire(server, [](SlotGrant) {});
  EXPECT_EQ(pool.queued(), 1u);
}

// --- ServerSessionTable ---------------------------------------------------

TEST(ServerSessionTableTest, DuplicateTaxonomy) {
  ServerSessionTable table;
  using D = ServerSessionTable::Disposition;

  // First contact materializes the session and admits for execution.
  EXPECT_EQ(table.Admit(1, 7, 0, 1).disposition, D::kExecute);
  EXPECT_EQ(table.session_count(), 1u);

  // Same seq before completion: the original is still executing.
  EXPECT_EQ(table.Admit(1, 7, 0, 1).disposition, D::kDropInFlight);

  MethodResult reply = MethodResult::Ok(ByteBuffer::FromString("cached"));
  table.Complete(1, 7, 0, 1, reply);

  // Same seq after completion: replay, with the cached payload.
  ServerSessionTable::Decision replay = table.Admit(1, 7, 0, 1);
  EXPECT_EQ(replay.disposition, D::kReplayReply);
  ASSERT_NE(replay.reply, nullptr);
  EXPECT_EQ(replay.reply->payload.ToString(), "cached");

  // The slot's next occupant executes; the predecessor's ghost is stale.
  EXPECT_EQ(table.Admit(1, 7, 0, 2).disposition, D::kExecute);
  EXPECT_EQ(table.Admit(1, 7, 0, 1).disposition, D::kDropStale);
}

TEST(ServerSessionTableTest, SkippedSeqStillExecutes) {
  // The client may abandon a call the server never saw (terminal timeout on
  // a partition) and the slot's next occupant then arrives with seq jumped
  // ahead. Monotone comparison, not equality-with-next, admits it.
  ServerSessionTable table;
  using D = ServerSessionTable::Disposition;
  EXPECT_EQ(table.Admit(1, 7, 2, 5).disposition, D::kExecute);
  EXPECT_EQ(table.Admit(1, 7, 2, 4).disposition, D::kDropStale);
}

TEST(ServerSessionTableTest, GhostCompletionCannotClobberSuccessor) {
  ServerSessionTable table;
  using D = ServerSessionTable::Disposition;
  EXPECT_EQ(table.Admit(1, 7, 0, 1).disposition, D::kExecute);
  // The slot moves on before call #1's parked handler completes.
  EXPECT_EQ(table.Admit(1, 7, 0, 2).disposition, D::kExecute);
  table.Complete(1, 7, 0, 1, MethodResult::Ok(ByteBuffer::FromString("old")));
  // Call #1's late completion was discarded: seq 2 is still in flight.
  EXPECT_EQ(table.Admit(1, 7, 0, 2).disposition, D::kDropInFlight);
  table.Complete(1, 7, 0, 2, MethodResult::Ok(ByteBuffer::FromString("new")));
  ServerSessionTable::Decision replay = table.Admit(1, 7, 0, 2);
  ASSERT_EQ(replay.disposition, D::kReplayReply);
  EXPECT_EQ(replay.reply->payload.ToString(), "new");
}

TEST(ServerSessionTableTest, MemoryStaysBoundedBySlotsNotCallCount) {
  // The claim that retires the TTL arithmetic: any number of calls through a
  // bounded slot set leaves O(slots) records, where the window would have
  // held one entry per call for its whole TTL.
  ServerSessionTable table;
  constexpr std::uint32_t kSlots = 4;
  for (std::uint64_t seq = 1; seq <= 10000; ++seq) {
    for (std::uint32_t slot = 0; slot < kSlots; ++slot) {
      ASSERT_EQ(table.Admit(1, 7, slot, seq).disposition,
                ServerSessionTable::Disposition::kExecute);
      table.Complete(1, 7, slot, seq, MethodResult::Ok());
    }
  }
  EXPECT_EQ(table.session_count(), 1u);
  EXPECT_EQ(table.slot_count(), static_cast<std::size_t>(kSlots));
}

TEST(ServerSessionTableTest, CorruptSlotIndexIsRejectedNotAllocated) {
  ServerSessionTable table;
  EXPECT_EQ(table.Admit(1, 7, ServerSessionTable::kMaxSlots, 1).disposition,
            ServerSessionTable::Disposition::kDropStale);
  EXPECT_EQ(table.slot_count(), 0u);
  // seq 0 is the never-used sentinel; a wire value of 0 is equally bogus.
  EXPECT_EQ(table.Admit(1, 7, 0, 0).disposition,
            ServerSessionTable::Disposition::kDropStale);
}

// --- End-to-end through transport + client --------------------------------

sim::CostModel SessionModel(int slots) {
  sim::CostModel cost;
  cost.session_slots = slots;
  return cost;
}

class SessionRpcTest : public ::testing::Test {
 protected:
  SessionRpcTest()
      : network_(&simulation_, SessionModel(2)),
        transport_(&network_),
        client_(&transport_, &agent_, /*node=*/1) {
    network_.AddNode(1);
    network_.AddNode(2);
    target_ = ObjectId::Next(domains::kInstance);
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
  BindingAgent agent_;
  RpcClient client_;
  ObjectId target_;
};

// The dedup_test headline scenario on the sessioned path: a slow body's
// reply is lost, the retry replays the slot's cached answer, the body runs
// once — with the window never involved.
TEST_F(SessionRpcTest, RetryAfterLostReplyReplaysFromSlot) {
  int body_runs = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation& inv, ReplyFn reply) {
        ++body_runs;
        EXPECT_NE(inv.session_id, 0u);  // the call really is sessioned
        EXPECT_EQ(inv.session_seq, 1u);
        simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok(
                                   ByteBuffer::FromString("answer")));
                             });
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  simulation_.Schedule(sim::SimDuration::Seconds(1.0),
                       [&]() { network_.SetPartitioned(1, 2, true); });
  simulation_.Schedule(sim::SimDuration::Seconds(3.0),
                       [&]() { network_.SetPartitioned(1, 2, false); });

  int callback_runs = 0;
  std::string payload;
  client_.Invoke(target_, "transferFunds", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_TRUE(result.ok());
    payload = result->ToString();
  });
  simulation_.Run();

  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(payload, "answer");
  EXPECT_EQ(transport_.session_hits(), 1u);
  EXPECT_EQ(transport_.dedup_hits(), 0u);
  EXPECT_EQ(transport_.invocations_delivered(), 1u);
}

// Admission: with 2 slots and 3 concurrent calls, the third queues client-
// side and is admitted when a slot frees — every call completes, the server
// never sees more than `slots` of this client's calls in flight.
TEST_F(SessionRpcTest, SlotSaturationQueuesClientSide) {
  int in_flight = 0;
  int max_in_flight = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation&, ReplyFn reply) {
        max_in_flight = std::max(max_in_flight, ++in_flight);
        simulation_.Schedule(sim::SimDuration::Seconds(1.0),
                             [&in_flight, reply = std::move(reply)]() mutable {
                               --in_flight;
                               reply(MethodResult::Ok());
                             });
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});

  int replies = 0;
  for (int i = 0; i < 3; ++i) {
    client_.Invoke(target_, "work", {},
                   [&](Result<ByteBuffer> r) { replies += r.ok(); });
  }
  EXPECT_EQ(client_.backpressure_waits(), 1u);
  EXPECT_EQ(client_.queued_calls(), 1u);
  simulation_.Run();

  EXPECT_EQ(replies, 3);
  EXPECT_EQ(client_.queued_calls(), 0u);
  EXPECT_EQ(max_in_flight, 2);
}

// Re-registration (a new activation at the same (node, pid)) resets the
// server's slot state, mirroring the dedup window's epoch semantics; the
// client's fresh-epoch session is distinct, so nothing cross-talks.
TEST_F(SessionRpcTest, ReRegistrationResetsServerSessions) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  int replies = 0;
  client_.Invoke(target_, "first", {},
                 [&](Result<ByteBuffer> r) { replies += r.ok(); });
  simulation_.Run();
  ASSERT_EQ(replies, 1);
  const ServerSessionTable* old_table = transport_.EndpointSessions(2, 10);
  ASSERT_NE(old_table, nullptr);
  EXPECT_EQ(old_table->session_count(), 1u);

  transport_.RegisterEndpoint(2, 10, 2,
                              [&](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  const ServerSessionTable* fresh = transport_.EndpointSessions(2, 10);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->session_count(), 0u);
}

// Wire accounting: sessioned invocations carry kSessionWireBytes extra;
// unsessioned ones are byte-identical to before the feature existed.
TEST(SessionWireTest, SessionCarriageCostsBytesOnlyWhenPresent) {
  MethodInvocation plain;
  plain.method = "m";
  const std::size_t base = plain.WireSize();
  MethodInvocation sessioned;
  sessioned.method = "m";
  sessioned.session_id = 42;
  sessioned.session_slot = 1;
  sessioned.session_seq = 7;
  EXPECT_EQ(sessioned.WireSize(), base + kSessionWireBytes);
}

}  // namespace
}  // namespace dcdo::rpc
