// Overload coverage for the sessioned RPC path (DESIGN.md §15): the three
// E16 stress shapes — slow-server, incast, retry-storm — run small enough
// for the tier-1 suite, under the invariant checker + race detector at
// every-event cadence, with the one property the whole PR exists to defend
// asserted directly: every logical call's method body executes EXACTLY once,
// no matter how many timeouts, duplicates, or retries the overload produced.
//
// Parameterized over session_slots like the rebind regression: 0 drives the
// legacy dedup window, >0 the slot-sequenced sessions. Both must uphold
// exactly-once here; only the sessioned runs additionally bound the server's
// concurrent in-flight work (admission happens client-side, so the server
// never sees more than slots x clients bodies at once).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/check_context.h"
#include "runtime/testbed.h"

namespace dcdo::rpc {
namespace {

using check::CheckContext;

class OverloadTest : public ::testing::TestWithParam<int> {
 protected:
  Testbed::Options MakeOptions() const {
    Testbed::Options options;
    options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
    options.cost_model.session_slots = GetParam();  // 0 = legacy window
    return options;
  }

  bool Sessions() const { return GetParam() > 0; }

  static void ExpectBodiesRanExactlyOnce(
      const std::map<std::string, int>& executions, std::size_t expected) {
    EXPECT_EQ(executions.size(), expected);
    for (const auto& [tag, runs] : executions) {
      EXPECT_EQ(runs, 1) << "body for call " << tag << " ran " << runs
                         << " times";
    }
  }
};

// A server whose service time exceeds invocation_timeout: every call's retry
// arrives while the original body is still executing. The duplicate must be
// dropped (in-flight suppression), never run a second body, and the original
// answer must still reach the caller.
TEST_P(OverloadTest, SlowServerRetriesNeverReExecuteTheParkedBody) {
  Testbed testbed(MakeOptions());
  const ObjectAddress address{1, 70, 1};
  std::map<std::string, int> executions;
  testbed.transport().RegisterEndpoint(
      address.node, address.pid, address.epoch,
      [&](const MethodInvocation& inv, ReplyFn reply) {
        const std::string tag = inv.args().ToString();
        ++executions[tag];
        // Service takes 12 s against a 10 s invocation timeout: the reply is
        // parked past at least one client retry.
        testbed.simulation().Schedule(
            sim::SimDuration::Seconds(12.0),
            [reply = std::move(reply), tag]() mutable {
              reply(MethodResult::Ok(ByteBuffer::FromString("ok:" + tag)));
            });
      });
  ObjectId target = ObjectId::Next(domains::kInstance);
  testbed.agent().Bind(target, address);

  constexpr int kClients = 8;
  constexpr int kCallsPerClient = 3;  // > session_slots: admission queues
  std::vector<std::unique_ptr<RpcClient>> clients;
  int replies = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(testbed.MakeClient(1 + static_cast<std::size_t>(c)));
    for (int i = 0; i < kCallsPerClient; ++i) {
      const std::string tag =
          "c" + std::to_string(c) + ".i" + std::to_string(i);
      clients.back()->Invoke(target, "slow", ByteBuffer::FromString(tag),
                             [&replies, tag](Result<ByteBuffer> r) {
                               ++replies;
                               ASSERT_TRUE(r.ok()) << r.status().ToString();
                               EXPECT_EQ(r->ToString(), "ok:" + tag);
                             });
    }
  }
  testbed.RunAll();

  ExpectBodiesRanExactlyOnce(executions, kClients * kCallsPerClient);
  EXPECT_EQ(replies, kClients * kCallsPerClient);
  if (Sessions()) {
    // Every parked call's retry was suppressed by its slot, and the third
    // call per client had to wait for a slot.
    EXPECT_GT(testbed.transport().session_hits(), 0u);
    EXPECT_EQ(testbed.transport().dedup_hits(), 0u);
    for (const auto& client : clients) {
      EXPECT_GT(client->backpressure_waits(), 0u);
      EXPECT_EQ(client->queued_calls(), 0u);
    }
  } else {
    EXPECT_GT(testbed.transport().dedup_hits(), 0u);
  }
  ASSERT_NE(testbed.checker(), nullptr);
  EXPECT_TRUE(testbed.checker()->diagnostics().Clean())
      << testbed.checker()->diagnostics().DumpText();
}

// Incast: a dozen clients converge on one endpoint at once. Sessions turn
// the unbounded pile-up into client-side queueing — the server's concurrent
// in-flight bodies stay under clients x slots — while the legacy path admits
// everything. Exactly-once must hold either way.
TEST_P(OverloadTest, IncastBoundsServerConcurrencyUnderSessions) {
  Testbed testbed(MakeOptions());
  const ObjectAddress address{1, 71, 1};
  std::map<std::string, int> executions;
  int in_flight = 0;
  int max_in_flight = 0;
  testbed.transport().RegisterEndpoint(
      address.node, address.pid, address.epoch,
      [&](const MethodInvocation& inv, ReplyFn reply) {
        ++executions[inv.args().ToString()];
        ++in_flight;
        max_in_flight = std::max(max_in_flight, in_flight);
        testbed.simulation().Schedule(
            sim::SimDuration::Seconds(1.0),
            [&in_flight, reply = std::move(reply)]() mutable {
              --in_flight;
              reply(MethodResult::Ok({}));
            });
      });
  ObjectId target = ObjectId::Next(domains::kInstance);
  testbed.agent().Bind(target, address);

  constexpr int kClients = 12;
  constexpr int kCallsPerClient = 6;
  std::vector<std::unique_ptr<RpcClient>> clients;
  int replies = 0;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(testbed.MakeClient(1 + static_cast<std::size_t>(c)));
    for (int i = 0; i < kCallsPerClient; ++i) {
      clients.back()->Invoke(
          target, "burst",
          ByteBuffer::FromString("c" + std::to_string(c) + ".i" +
                                 std::to_string(i)),
          [&replies](Result<ByteBuffer> r) { replies += r.ok(); });
    }
  }
  testbed.RunAll();

  ExpectBodiesRanExactlyOnce(executions, kClients * kCallsPerClient);
  EXPECT_EQ(replies, kClients * kCallsPerClient);
  if (Sessions()) {
    EXPECT_LE(max_in_flight, kClients * GetParam());
    for (const auto& client : clients) {
      EXPECT_GT(client->backpressure_waits(), 0u);
      EXPECT_EQ(client->queued_calls(), 0u);
    }
  } else {
    // No admission control: the full incast lands on the server at once.
    EXPECT_EQ(max_in_flight, kClients * kCallsPerClient);
  }
  ASSERT_NE(testbed.checker(), nullptr);
  EXPECT_TRUE(testbed.checker()->diagnostics().Clean())
      << testbed.checker()->diagnostics().DumpText();
}

// Retry storm: the body executes on the FIRST attempt, then the link drops
// before the reply escapes, and every retry of the whole probe schedule is
// lost too. When the partition heals mid-schedule, the landing retry must be
// answered from the cached reply (window entry or session slot) — the bodies
// must not run a second time even though, from the clients' point of view,
// the server was silent for ~50 s.
TEST_P(OverloadTest, RetryStormAfterPartitionHealReplaysCachedReplies) {
  Testbed testbed(MakeOptions());
  const ObjectAddress address{1, 72, 1};
  std::map<std::string, int> executions;
  testbed.transport().RegisterEndpoint(
      address.node, address.pid, address.epoch,
      [&](const MethodInvocation& inv, ReplyFn reply) {
        const std::string tag = inv.args().ToString();
        ++executions[tag];
        // The body has run; the reply tries to leave at t=2 — after the
        // partition closed at t=0.5 — and is lost.
        testbed.simulation().Schedule(
            sim::SimDuration::Seconds(2.0),
            [reply = std::move(reply), tag]() mutable {
              reply(MethodResult::Ok(ByteBuffer::FromString("first:" + tag)));
            });
      });
  ObjectId target = ObjectId::Next(domains::kInstance);
  testbed.agent().Bind(target, address);

  constexpr int kClients = 8;
  std::vector<std::unique_ptr<RpcClient>> clients;
  int replies = 0;
  for (int c = 0; c < kClients; ++c) {
    const auto client_node = static_cast<sim::NodeId>(2 + c);
    clients.push_back(testbed.MakeClient(1 + static_cast<std::size_t>(c)));
    const std::string tag = "storm.c" + std::to_string(c);
    clients.back()->Invoke(target, "storm", ByteBuffer::FromString(tag),
                           [&replies, tag](Result<ByteBuffer> r) {
                             ++replies;
                             ASSERT_TRUE(r.ok()) << r.status().ToString();
                             // The cached FIRST execution's answer, not a
                             // re-run.
                             EXPECT_EQ(r->ToString(), "first:" + tag);
                           });
    // Cut each client's link to the server after attempt #1 has landed
    // (delivery is sub-millisecond) but before the parked reply departs;
    // heal at 45 s so the refreshed round's last retry (50.9 s) gets
    // through while the schedule is still alive.
    testbed.simulation().Schedule(
        sim::SimDuration::Seconds(0.5), [&testbed, client_node]() {
          testbed.network().SetPartitioned(client_node, 1, true);
        });
    testbed.simulation().Schedule(
        sim::SimDuration::Seconds(45.0), [&testbed, client_node]() {
          testbed.network().SetPartitioned(client_node, 1, false);
        });
  }
  testbed.RunAll();

  ExpectBodiesRanExactlyOnce(executions, kClients);
  EXPECT_EQ(replies, kClients);
  if (Sessions()) {
    // One replay per client: the landing retry carried the original
    // (session, slot, seq) through the whole storm.
    EXPECT_GE(testbed.transport().session_hits(),
              static_cast<std::uint64_t>(kClients));
    EXPECT_EQ(testbed.transport().dedup_hits(), 0u);
  } else {
    // The window entry (TTL 60.9 s) outlived the storm; the retry hit it.
    EXPECT_GE(testbed.transport().dedup_hits(),
              static_cast<std::uint64_t>(kClients));
  }
  ASSERT_NE(testbed.checker(), nullptr);
  EXPECT_TRUE(testbed.checker()->diagnostics().Clean())
      << testbed.checker()->diagnostics().DumpText();
}

INSTANTIATE_TEST_SUITE_P(LegacyWindowAndSessions, OverloadTest,
                         ::testing::Values(0, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "LegacyWindow"
                                                  : "Sessions";
                         });

}  // namespace
}  // namespace dcdo::rpc
