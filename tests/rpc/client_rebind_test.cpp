// Rebind state-machine coverage: retry -> agent refresh -> success/failure,
// the late-reply-after-rebind race, a partition forming mid-flight, and the
// by-id/by-name wire forms the fast path introduced.
#include <gtest/gtest.h>

#include "rpc/client.h"

namespace dcdo::rpc {
namespace {

class ClientRebindTest : public ::testing::Test {
 protected:
  ClientRebindTest()
      : network_(&simulation_, sim::CostModel{}),
        transport_(&network_),
        client_(&transport_, &agent_, /*node=*/1) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
    target_ = ObjectId::Next(domains::kInstance);
  }

  // Registers an echo server for `target_` at (node, pid, epoch), binds it.
  void ServeEchoAt(sim::NodeId node, sim::ProcessId pid, std::uint64_t epoch) {
    transport_.RegisterEndpoint(
        node, pid, epoch, [](const MethodInvocation& inv, ReplyFn reply) {
          reply(MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    agent_.Bind(target_, ObjectAddress{node, pid, epoch});
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
  BindingAgent agent_;
  RpcClient client_;
  ObjectId target_;
};

// An interned (non-config) method ships by id: no string on the wire, fixed
// 8-byte method field, and the server resolves it back to the same name.
TEST_F(ClientRebindTest, InternedMethodShipsById) {
  FunctionNameTable::Global().Intern("rebindFastpathFn");
  bool saw_id_form = false;
  std::size_t wire_size = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation& inv, ReplyFn reply) {
        saw_id_form = inv.method.empty() && inv.ResolvedId().valid();
        wire_size = inv.WireSize();
        reply(MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});

  auto result = client_.InvokeBlocking(target_, "rebindFastpathFn");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "rebindFastpathFn");
  EXPECT_TRUE(saw_id_form);
  EXPECT_EQ(wire_size, kHeaderBytes + kMethodIdWireBytes);
}

// A name no one ever interned must use the string wire form.
TEST_F(ClientRebindTest, UnknownNameStaysOnStringPath) {
  bool saw_string_form = false;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation& inv, ReplyFn reply) {
        saw_string_form = !inv.method.empty() && !inv.method_id.valid();
        reply(MethodResult::Ok());
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  ASSERT_TRUE(
      client_.InvokeBlocking(target_, "neverInternedAnywhere987").ok());
  EXPECT_TRUE(saw_string_form);
}

// Config methods are gated off the id path even when interned, so the
// configurable-object layer keeps seeing them by name.
TEST_F(ClientRebindTest, ConfigMethodsNeverShipById) {
  FunctionNameTable::Global().Intern("dcdo.getVersion");
  bool saw_string_form = false;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation& inv, ReplyFn reply) {
        saw_string_form = !inv.method.empty() && !inv.method_id.valid();
        reply(MethodResult::Ok());
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  ASSERT_TRUE(client_.InvokeBlocking(target_, "dcdo.getVersion").ok());
  EXPECT_TRUE(saw_string_form);
}

// A receiver whose intern table has not reached the sender's epoch must fall
// back to the name rather than misresolve the id.
TEST_F(ClientRebindTest, ForgedEpochFallsBackToName) {
  MethodInvocation invocation;
  invocation.method = "someMethod";
  invocation.method_id = FunctionId{7};
  invocation.name_epoch = 0xFFFFFF00u;  // far beyond any real table size
  EXPECT_FALSE(invocation.ResolvedId().valid());
  EXPECT_EQ(invocation.method_name(), "someMethod");
}

// Full recovery sequence with exact counters: 1 initial timeout + 2 retries
// on the stale binding, one agent refresh, then success on the fresh one.
TEST_F(ClientRebindTest, RetryThenRebindCountersAreExact) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());
  transport_.UnregisterEndpoint(2, 10);
  ServeEchoAt(3, 20, 2);  // new activation; client cache still points at 2/10

  auto result = client_.InvokeBlocking(target_, "afterEvolve");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(client_.timeouts(), 3u);
  EXPECT_EQ(client_.rebinds(), 1u);
  EXPECT_EQ(client_.calls_started(), 2u);
  EXPECT_EQ(client_.cache().refreshes(), 1u);
  // The refreshed binding is cached: the next call is fast and quiet.
  sim::SimTime start = simulation_.Now();
  ASSERT_TRUE(client_.InvokeBlocking(target_, "fastAgain").ok());
  EXPECT_LT((simulation_.Now() - start).ToSeconds(), 0.1);
  EXPECT_EQ(client_.timeouts(), 3u);
}

// The late-reply race: the old activation answers *after* the client has
// already rebound and completed the call elsewhere. The late reply must be
// discarded; the callback runs exactly once, with the rebind-path result.
// The retries to the old activation carry the same call_id, so its dedup
// window suppresses them while the first attempt's reply is parked — the
// handler body runs once, not once per retry.
TEST_F(ClientRebindTest, LateReplyAfterRebindRunsCallbackOnce) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());

  // Replace the old activation with one that parks every invocation and
  // replies 35 s later — after the ~31 s retry+rebind sequence completes.
  transport_.UnregisterEndpoint(2, 10);
  int old_endpoint_hits = 0;
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation&, ReplyFn reply) {
        ++old_endpoint_hits;
        simulation_.Schedule(sim::SimDuration::Seconds(35.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok(
                                   ByteBuffer::FromString("tooLate")));
                             });
      });
  // The agent already knows the new activation; the client cache does not.
  transport_.RegisterEndpoint(
      3, 20, 2, [](const MethodInvocation& inv, ReplyFn reply) {
        reply(MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  agent_.Bind(target_, ObjectAddress{3, 20, 2});

  int callback_runs = 0;
  std::string payload;
  client_.Invoke(target_, "whoAnswers", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_TRUE(result.ok());
    payload = result->ToString();
  });
  simulation_.Run();  // drains the late replies too

  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(payload, "whoAnswers");  // the fresh activation's echo won
  // Only the initial attempt reached the handler; both retries were
  // recognized as duplicates of the still-in-flight call and dropped.
  EXPECT_EQ(old_endpoint_hits, 1);
  EXPECT_EQ(transport_.dedup_hits(), 2u);
  EXPECT_EQ(client_.rebinds(), 1u);
}

// A partition that forms while the invocation is in flight: the message is
// dropped at delivery time (messages_dropped_in_flight), the client times
// out once, and the retry succeeds after the partition heals.
TEST_F(ClientRebindTest, PartitionMidFlightDropsThenRetrySucceeds) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());
  std::uint64_t dropped_before = network_.messages_dropped_in_flight();

  int callback_runs = 0;
  client_.Invoke(target_, "throughPartition", {},
                 [&](Result<ByteBuffer> result) {
                   ++callback_runs;
                   EXPECT_TRUE(result.ok());
                 });
  // The invocation is now in flight (delivery is a pending event); cut the
  // link before it lands, heal it well before the retry.
  network_.SetPartitioned(1, 2, true);
  simulation_.Schedule(sim::SimDuration::Seconds(5.0),
                       [&]() { network_.SetPartitioned(1, 2, false); });
  simulation_.Run();

  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(network_.messages_dropped_in_flight(), dropped_before + 1);
  EXPECT_EQ(client_.timeouts(), 1u);
  EXPECT_EQ(client_.rebinds(), 0u);  // same binding was fine; just lossy
}

// Rebind failure path: the agent's fresh answer is the same dead address, so
// the refreshed round times out too and the call fails with kTimeout.
TEST_F(ClientRebindTest, RefreshedBindingStillDeadTimesOut) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());
  transport_.UnregisterEndpoint(2, 10);  // dead, and agent never updated

  auto result = client_.InvokeBlocking(target_, "noOneHome");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
  EXPECT_EQ(client_.rebinds(), 1u);
  EXPECT_EQ(client_.timeouts(), 6u);  // 3 on the stale + 3 on the "fresh"
}

// Retries and the post-rebind attempt reuse one shared argument buffer; the
// payload that finally lands must be byte-identical to what was passed in.
TEST_F(ClientRebindTest, ArgsSurviveRetriesAndRebindIntact) {
  ServeEchoAt(2, 10, 1);
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());
  transport_.UnregisterEndpoint(2, 10);
  // New activation echoes the *args* back.
  transport_.RegisterEndpoint(
      3, 20, 2, [](const MethodInvocation& inv, ReplyFn reply) {
        reply(MethodResult::Ok(ByteBuffer(inv.args())));
      });
  agent_.Bind(target_, ObjectAddress{3, 20, 2});

  std::string blob(2048, 'x');
  blob[0] = 'y';
  blob[2047] = 'z';
  auto result =
      client_.InvokeBlocking(target_, "echoArgs", ByteBuffer::FromString(blob));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), blob);
  EXPECT_EQ(client_.timeouts(), 3u);  // the buffer really did cross a rebind
}

}  // namespace
}  // namespace dcdo::rpc
