#include "rpc/transport.h"

#include <gtest/gtest.h>

#include "sim/simulation.h"

namespace dcdo::rpc {
namespace {

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : network_(&simulation_, sim::CostModel{}), transport_(&network_) {
    network_.AddNode(1);
    network_.AddNode(2);
  }

  MethodInvocation MakeCall(const std::string& method,
                            std::uint64_t epoch = 1) {
    MethodInvocation invocation;
    invocation.target = ObjectId::Next(domains::kInstance);
    invocation.method = method;
    invocation.expected_epoch = epoch;
    return invocation;
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
};

TEST_F(TransportTest, RoundTripDeliversAndReplies) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [](const MethodInvocation& inv, ReplyFn reply) {
                                EXPECT_EQ(inv.method, "ping");
                                reply(MethodResult::Ok(
                                    ByteBuffer::FromString("pong")));
                              });
  std::string got;
  transport_.Invoke(1, 2, 10, MakeCall("ping"),
                    [&](MethodResult result) {
                      ASSERT_TRUE(result.status.ok());
                      got = result.payload.ToString();
                    });
  simulation_.Run();
  EXPECT_EQ(got, "pong");
  EXPECT_EQ(transport_.invocations_delivered(), 1u);
}

TEST_F(TransportTest, CallToDeadProcessVanishes) {
  bool replied = false;
  transport_.Invoke(1, 2, 999, MakeCall("ping"),
                    [&](MethodResult) { replied = true; });
  simulation_.Run();
  EXPECT_FALSE(replied);
  EXPECT_EQ(transport_.invocations_delivered(), 0u);
}

// An invocation carrying a previous activation's epoch is discarded — the
// signal behind stale-binding detection.
TEST_F(TransportTest, EpochMismatchDiscards) {
  transport_.RegisterEndpoint(2, 10, /*epoch=*/5,
                              [](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  bool replied = false;
  transport_.Invoke(1, 2, 10, MakeCall("ping", /*epoch=*/4),
                    [&](MethodResult) { replied = true; });
  simulation_.Run();
  EXPECT_FALSE(replied);
  EXPECT_EQ(transport_.epoch_rejections(), 1u);
}

TEST_F(TransportTest, EpochZeroSkipsCheck) {
  transport_.RegisterEndpoint(2, 10, 5,
                              [](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  bool replied = false;
  transport_.Invoke(1, 2, 10, MakeCall("ping", /*epoch=*/0),
                    [&](MethodResult) { replied = true; });
  simulation_.Run();
  EXPECT_TRUE(replied);
}

TEST_F(TransportTest, UnregisterKillsEndpoint) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [](const MethodInvocation&, ReplyFn reply) {
                                reply(MethodResult::Ok());
                              });
  transport_.UnregisterEndpoint(2, 10);
  EXPECT_FALSE(transport_.EndpointAlive(2, 10));
  bool replied = false;
  transport_.Invoke(1, 2, 10, MakeCall("ping"),
                    [&](MethodResult) { replied = true; });
  simulation_.Run();
  EXPECT_FALSE(replied);
}

TEST_F(TransportTest, HandlerMayDeferReply) {
  // The handler parks the reply and sends it 2 s later — the shape of a
  // DCDO thread blocked on an outcall.
  transport_.RegisterEndpoint(
      2, 10, 1, [this](const MethodInvocation&, ReplyFn reply) {
        simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok());
                             });
      });
  bool replied = false;
  transport_.Invoke(1, 2, 10, MakeCall("slow"),
                    [&](MethodResult) { replied = true; });
  simulation_.Run();
  EXPECT_TRUE(replied);
  EXPECT_GT(simulation_.Now().ToSeconds(), 2.0);
}

TEST_F(TransportTest, ErrorStatusTravelsBack) {
  transport_.RegisterEndpoint(2, 10, 1,
                              [](const MethodInvocation& inv, ReplyFn reply) {
                                reply(MethodResult::Error(FunctionMissingError(
                                    "no " + inv.method)));
                              });
  Status got;
  transport_.Invoke(1, 2, 10, MakeCall("gone"),
                    [&](MethodResult result) { got = result.status; });
  simulation_.Run();
  EXPECT_EQ(got.code(), ErrorCode::kFunctionMissing);
}

TEST_F(TransportTest, WireSizeIncludesHeaderMethodAndArgs) {
  MethodInvocation invocation = MakeCall("doWork");
  invocation.SetArgs(ByteBuffer::Opaque(100));
  EXPECT_EQ(invocation.WireSize(), kHeaderBytes + 6 + 100);
  MethodResult result = MethodResult::Ok(ByteBuffer::Opaque(32));
  EXPECT_EQ(result.WireSize(), kHeaderBytes + 32);
}

}  // namespace
}  // namespace dcdo::rpc
