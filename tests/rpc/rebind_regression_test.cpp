// Regression: lease rebinds re-opening retry double-execution (DESIGN.md
// §15.2).
//
// The PR 4 dedup window's TTL was derived from the legacy retry schedule:
// last possible retry at 50.9 s, entries retire at 60.9 s. PR 7's lease
// pushes broke that derivation — every pushed rebind RESTARTS the client's
// retry round, so a call chasing a churning binding keeps sending retries
// past 60.9 s. A retry landing after the server purged the entry re-executes
// the method body: exactly the double execution the window exists to
// prevent, re-opened by the feature interaction.
//
// The scenario (default model: 10 s timeout, 2 retries, 0.9 s rebind query,
// leases on):
//   t~0    attempt #1 reaches activation A=(2,10,1); the body runs; the
//          reply parks 2 s and is then lost to a partition. A's window entry
//          is cached, old-TTL good until 60.9 s.
//   1..65  the 1<->2 link is partitioned; every probe of A vanishes.
//   0..30  the normal first round times out (attempts at 0/10/20).
//   30.9   rebind query: the directory still says A; refreshed round starts.
//   32     the object "migrates": the directory now says B=(3,20,2) and
//          leases push B into the client's cache. Nothing listens at B.
//   40.9   the timed-out client sees pushed B, switches, and — here is the
//          bug — resets its per-binding attempt count (round 2).
//   40.9/50.9/60.9  attempts at B vanish (no endpoint).
//   62     the object "migrates back": leases push A again.
//   70.9   the client switches back to A (round 3) and retries; the
//          partition healed at 65, so the retry LANDS at A — after the old
//          TTL purged A's entry.
//
// On the unfixed code the body runs twice. The fix is two-sided: the legacy
// path caps pushed rebinds at CostModel::lease_rebind_limit and extends the
// TTL to budget for exactly those rounds (DedupWindowTtl); the sessioned
// path (session_slots > 0) removes the TTL entirely — the retry carries the
// same (session, slot, seq) even across the rebind round-trip, and the
// server replays the slot's cached reply.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "rpc/client.h"

namespace dcdo::rpc {
namespace {

constexpr sim::NodeId kClientNode = 1;
constexpr sim::NodeId kShardNode = 9;
const ObjectAddress kActivationA{2, 10, 1};
const ObjectAddress kActivationB{3, 20, 2};

class RebindRegressionTest : public ::testing::TestWithParam<int> {
 protected:
  RebindRegressionTest() : network_(&simulation_, Model()), transport_(&network_) {
    network_.AddNode(kClientNode);
    network_.AddNode(2);
    network_.AddNode(3);
    network_.AddNode(kShardNode);
    target_ = ObjectId::Next(domains::kInstance);
  }

  void SetUp() override {
    DirectoryConfig config;
    config.lease_duration = sim::SimDuration::Seconds(300.0);
    ASSERT_TRUE(
        agent_.Configure(config, &simulation_, &network_, {kShardNode}).ok());
    // After Configure: the client's cache registers as a leaseholder only if
    // the agent already grants leases when the client is built.
    client_ = std::make_unique<RpcClient>(&transport_, &agent_, kClientNode);
  }

  RpcClient& client() { return *client_; }

  sim::CostModel Model() const {
    sim::CostModel cost;
    // Long enough that lease expiry never interferes; the pushes do the work.
    cost.binding_lease_duration = sim::SimDuration::Seconds(300.0);
    cost.session_slots = GetParam();  // 0 = legacy window, >0 = sessions
    return cost;
  }

  sim::Simulation simulation_;
  sim::SimNetwork network_;
  RpcTransport transport_;
  BindingAgent agent_;
  std::unique_ptr<RpcClient> client_;
  ObjectId target_;
};

TEST_P(RebindRegressionTest, RebindRoundTripRetryReplaysInsteadOfReExecuting) {
  int body_runs = 0;
  transport_.RegisterEndpoint(
      kActivationA.node, kActivationA.pid, kActivationA.epoch,
      [&](const MethodInvocation& inv, ReplyFn reply) {
        ++body_runs;
        ByteBuffer answer = ByteBuffer::FromString(
            "run#" + std::to_string(body_runs) + ":" +
            std::string(inv.method_name()));
        // A slow, not lost, method: the body HAS executed by the time the
        // client starts probing.
        simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                             [reply = std::move(reply),
                              answer = std::move(answer)]() mutable {
                               reply(MethodResult::Ok(std::move(answer)));
                             });
      });
  agent_.Bind(target_, kActivationA);

  // The client-server link drops just after attempt #1 lands and heals only
  // after the old 60.9 s TTL would have expired.
  simulation_.Schedule(sim::SimDuration::Seconds(1.0),
                       [&]() { network_.SetPartitioned(1, 2, true); });
  simulation_.Schedule(sim::SimDuration::Seconds(65.0),
                       [&]() { network_.SetPartitioned(1, 2, false); });
  // Migration churn, pushed to the leaseholder: away at 32 s, back at 62 s.
  simulation_.Schedule(sim::SimDuration::Seconds(32.0),
                       [&]() { agent_.Bind(target_, kActivationB); });
  simulation_.Schedule(sim::SimDuration::Seconds(62.0),
                       [&]() { agent_.Bind(target_, kActivationA); });

  int callback_runs = 0;
  std::string payload;
  client().Invoke(target_, "transferFunds", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    payload = result->ToString();
  });
  simulation_.Run();

  // The heart of the regression: the retry that lands back at A after the
  // rebind round-trip must get attempt #1's cached answer, not a second
  // execution.
  EXPECT_EQ(body_runs, 1);
  EXPECT_EQ(callback_runs, 1);
  EXPECT_EQ(payload, "run#1:transferFunds");
  // Both pushed switches happened (A -> B at 40.9 s, B -> A at 70.9 s) and
  // stayed under the cap.
  EXPECT_EQ(client().lease_rebinds(), 2u);
  if (GetParam() == 0) {
    EXPECT_EQ(transport_.dedup_hits(), 1u);
  } else {
    EXPECT_EQ(transport_.session_hits(), 1u);
    EXPECT_EQ(transport_.dedup_hits(), 0u);  // sessions bypass the window
  }
}

// The cap itself: a target that migrates forever must not retry forever.
// Bindings flip to a dead address on every timeout; after lease_rebind_limit
// pushed rounds the call falls back to the ordinary schedule and fails with
// kTimeout instead of chasing pushes unboundedly.
TEST_P(RebindRegressionTest, PerpetualChurnExhaustsRebindCapAndFails) {
  // Two dead activations the directory flips between; nothing ever listens.
  agent_.Bind(target_, ObjectAddress{2, 40, 5});
  // Flip the binding every 9.5 s, forever-ish: each 10 s client timeout then
  // finds a pushed address different from the one it just probed, so an
  // uncapped client switches on EVERY timeout and never terminates its
  // schedule.
  for (int i = 1; i <= 60; ++i) {
    simulation_.Schedule(sim::SimDuration::Seconds(9.5 * i), [this, i]() {
      agent_.Bind(target_, (i % 2 != 0) ? ObjectAddress{3, 41, 6}
                                        : ObjectAddress{2, 40, 5});
    });
  }

  int callback_runs = 0;
  Status failure = Status::Ok();
  sim::SimTime failed_at;
  client().Invoke(target_, "chase", {}, [&](Result<ByteBuffer> result) {
    ++callback_runs;
    ASSERT_FALSE(result.ok());
    failure = result.status();
    failed_at = simulation_.Now();
  });
  simulation_.Run();  // runs past the call failure: the flips keep firing

  EXPECT_EQ(callback_runs, 1);  // the call terminated
  EXPECT_EQ(failure.code(), ErrorCode::kTimeout);
  const sim::CostModel cost = Model();
  EXPECT_LE(client().lease_rebinds(),
            static_cast<std::uint64_t>(cost.lease_rebind_limit));
  // And it terminated within the budget the dedup TTL is derived from: the
  // capped schedule's last send plus one timeout of transit slack.
  EXPECT_LE(failed_at - sim::SimTime{},
            cost.DedupWindowTtl() + sim::SimDuration::Seconds(30.0));
}

INSTANTIATE_TEST_SUITE_P(LegacyWindowAndSessions, RebindRegressionTest,
                         ::testing::Values(0, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? "LegacyWindow"
                                                  : "Sessions";
                         });

}  // namespace
}  // namespace dcdo::rpc
