// Scenarios lifted verbatim from the paper's prose, reproduced end-to-end.
#include <algorithm>
#include <gtest/gtest.h>

#include "common/serialize.h"
#include "core/dcdo.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

// ===== Section 3.2's sort/compare example =====
//
// "Suppose function Integer[] sort(Integer[]) calls another function
// Integer compare(Integer, Integer), the current implementation of which
// returns the smaller of two integers. In general, it is possible to replace
// compare() with a different implementation that has the same signature, but
// that instead returns the larger of the two numbers. This change would not
// cause sort() to fail due to a violated structural dependency ... but the
// change would alter sort()'s output — the order of the sorted array would
// be reversed. The provider of sort() may want to ensure that this doesn't
// happen; to do so, she can set a behavioral dependency."

ByteBuffer EncodeInts(const std::vector<std::int64_t>& values) {
  Writer writer;
  writer.WriteU64(values.size());
  for (std::int64_t v : values) writer.WriteI64(v);
  return std::move(writer).Take();
}

std::vector<std::int64_t> DecodeInts(const ByteBuffer& buffer) {
  Reader reader(buffer);
  std::vector<std::int64_t> out;
  std::uint64_t count = reader.ReadU64().value_or(0);
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(reader.ReadI64().value_or(0));
  }
  return out;
}

class SortCompareExample : public ::testing::Test {
 protected:
  SortCompareExample() {
    auto& registry = testbed_.registry();
    // sort(): insertion sort that delegates every comparison to the
    // dynamic function compare() through the DFM.
    registry.Register(
        "libsort/sort", ImplementationType::Portable(),
        [](CallContext& ctx, const ByteBuffer& args) -> Result<ByteBuffer> {
          std::vector<std::int64_t> values = DecodeInts(args);
          for (std::size_t i = 1; i < values.size(); ++i) {
            for (std::size_t j = i; j > 0; --j) {
              Writer pair;
              pair.WriteI64(values[j - 1]);
              pair.WriteI64(values[j]);
              DCDO_ASSIGN_OR_RETURN(
                  ByteBuffer winner_wire,
                  ctx.CallInternal("compare", std::move(pair).Take()));
              Reader reader(winner_wire);
              std::int64_t winner = reader.ReadI64().value_or(0);
              // compare() returns the element that should come first.
              if (winner == values[j] && values[j] != values[j - 1]) {
                std::swap(values[j], values[j - 1]);
              } else {
                break;
              }
            }
          }
          return EncodeInts(values);
        });
    auto compare_body = [](bool smaller) {
      return [smaller](CallContext&, const ByteBuffer& args)
                 -> Result<ByteBuffer> {
        Reader reader(args);
        DCDO_ASSIGN_OR_RETURN(std::int64_t a, reader.ReadI64());
        DCDO_ASSIGN_OR_RETURN(std::int64_t b, reader.ReadI64());
        Writer writer;
        writer.WriteI64(smaller ? std::min(a, b) : std::max(a, b));
        return std::move(writer).Take();
      };
    };
    registry.Register("libcmp-asc/compare", ImplementationType::Portable(),
                      compare_body(true));
    registry.Register("libcmp-desc/compare", ImplementationType::Portable(),
                      compare_body(false));

    sort_comp_ = *ComponentBuilder("libsort")
                      .AddFunction("sort", "a(a)", "libsort/sort",
                                   Visibility::kExported,
                                   Constraint::kFullyDynamic, {"compare"})
                      .Build();
    asc_comp_ = *ComponentBuilder("libcmp-asc")
                     .AddFunction("compare", "i(ii)", "libcmp-asc/compare",
                                  Visibility::kInternal)
                     .Build();
    desc_comp_ = *ComponentBuilder("libcmp-desc")
                      .AddFunction("compare", "i(ii)", "libcmp-desc/compare",
                                   Visibility::kInternal)
                      .Build();

    object_ = std::make_unique<Dcdo>("sorter", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
    for (const auto* comp : {&sort_comp_, &asc_comp_, &desc_comp_}) {
      testbed_.host(1)->CacheComponent(comp->id, comp->code_bytes);
      EXPECT_TRUE(object_->IncorporateCached(*comp).ok());
    }
    EXPECT_TRUE(object_->EnableFunction("compare", asc_comp_.id).ok());
    EXPECT_TRUE(object_->EnableFunction("sort", sort_comp_.id).ok());
  }

  std::vector<std::int64_t> Sort(std::vector<std::int64_t> values) {
    auto result = object_->Call("sort", EncodeInts(values));
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? DecodeInts(*result) : std::vector<std::int64_t>{};
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent sort_comp_, asc_comp_, desc_comp_;
  std::unique_ptr<Dcdo> object_;
};

TEST_F(SortCompareExample, SortsAscendingInitially) {
  EXPECT_EQ(Sort({5, 1, 4, 2, 3}),
            (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

// Without a behavioral dependency, the swap is legal and silently reverses
// sort()'s output — exactly the hazard the paper describes.
TEST_F(SortCompareExample, StructuralDependencyAlonePermitsBehaviourChange) {
  ASSERT_TRUE(object_->SwitchImplementation("compare", desc_comp_.id).ok());
  EXPECT_EQ(Sort({5, 1, 4, 2, 3}),
            (std::vector<std::int64_t>{5, 4, 3, 2, 1}))
      << "no structural violation, but the output order reversed";
}

// With a Type B behavioral dependency pinning sort()'s compare() to the
// ascending component, the swap is refused.
TEST_F(SortCompareExample, TypeBDependencyPinsCompareImplementation) {
  ASSERT_TRUE(object_->AddDependency(
      Dependency::TypeB("sort", sort_comp_.id, "compare", asc_comp_.id)).ok());
  Status swap = object_->SwitchImplementation("compare", desc_comp_.id);
  EXPECT_EQ(swap.code(), ErrorCode::kDependencyViolation);
  EXPECT_EQ(Sort({3, 1, 2}), (std::vector<std::int64_t>{1, 2, 3}))
      << "behaviour protected";

  // Retraction: once sort() itself is disabled, the dependency no longer
  // binds and the swap becomes legal.
  ASSERT_TRUE(object_->DisableFunction("sort", sort_comp_.id).ok());
  EXPECT_TRUE(object_->SwitchImplementation("compare", desc_comp_.id).ok());
}

// ===== Section 3.2's security-function example (Type C/D) =====
//
// "A function F1 may require that a security function F2 be enabled to
// restrict access to F1. In this case F1 may not call F2, but still
// requires that it be present."
TEST_F(SortCompareExample, TypeDRequiresPresenceWithoutCalls) {
  auto audit = testing::MakeEchoComponent(testbed_.registry(), "libaudit",
                                          {"audit"});
  testbed_.host(1)->CacheComponent(audit.id, audit.code_bytes);
  ASSERT_TRUE(object_->IncorporateCached(audit).ok());
  ASSERT_TRUE(object_->EnableFunction("audit", audit.id).ok());
  // sort never calls audit, but demands its presence.
  ASSERT_TRUE(object_->AddDependency(
      Dependency::TypeD("sort", "audit")).ok());
  EXPECT_EQ(object_->DisableFunction("audit", audit.id).code(),
            ErrorCode::kDependencyViolation);
  // Disable sort, and audit may go.
  ASSERT_TRUE(object_->DisableFunction("sort", sort_comp_.id).ok());
  EXPECT_TRUE(object_->DisableFunction("audit", audit.id).ok());
}

// ===== Section 3.2's mandatory-retraction scenario =====
//
// "A programmer marks internal function F2 as mandatory because it is
// called by some enabled implementation of F1 ... Then F1 is disabled and
// removed. Now the programmer is left with F2 being marked mandatory, but
// the main reason no longer applies" — dependencies avoid the over-pinning
// that blanket mandatory marks cause.
TEST_F(SortCompareExample, DependenciesRetractWhereMandatoryCannot) {
  // Variant A: mark compare mandatory. After sort is gone, compare is still
  // pinned forever.
  ASSERT_TRUE(object_->MarkMandatory("compare").ok());
  ASSERT_TRUE(object_->DisableFunction("sort", sort_comp_.id).ok());
  ASSERT_TRUE(object_->RemoveComponent(sort_comp_.id).ok());
  EXPECT_EQ(object_->DisableFunction("compare", asc_comp_.id).code(),
            ErrorCode::kMandatoryViolation)
      << "the mark outlived its reason";
}

TEST_F(SortCompareExample, DependencyVariantReleasesCompare) {
  // Variant B: a Type A dependency instead of a mark. Removing sort retracts
  // the constraint and compare becomes fully dynamic again.
  ASSERT_TRUE(object_->AddDependency(
      Dependency::TypeA("sort", sort_comp_.id, "compare")).ok());
  ASSERT_TRUE(object_->DisableFunction("sort", sort_comp_.id).ok());
  ASSERT_TRUE(object_->RemoveComponent(sort_comp_.id).ok());
  EXPECT_TRUE(object_->DisableFunction("compare", asc_comp_.id).ok())
      << "constraint retracted with its dependent";
}

}  // namespace
}  // namespace dcdo
