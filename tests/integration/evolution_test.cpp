// End-to-end evolution-cost comparisons: the paper's headline result is that
// evolving a DCDO costs well under a second (unless components must be
// downloaded), while evolving a monolithic Legion object costs tens of
// seconds and leaves clients holding stale bindings.
#include <gtest/gtest.h>

#include "core/manager.h"
#include "rpc/client.h"
#include "runtime/class_object.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class EvolutionCostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    manager_ = std::make_unique<DcdoManager>(
        "svc", testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
        &testbed_.registry(), MakeSingleVersionExplicit());
    comp_v1_ = testing::MakeEchoComponent(testbed_.registry(), "impl-v1",
                                          {"serve", "audit"});
    comp_v2_ = testing::MakeEchoComponent(testbed_.registry(), "impl-v2",
                                          {"serve"},
                                          /*code_bytes=*/5'100'000);
    ASSERT_TRUE(manager_->PublishComponent(comp_v1_).ok());
    ASSERT_TRUE(manager_->PublishComponent(comp_v2_).ok());

    v1_ = *manager_->CreateRootVersion();
    auto d1 = *manager_->MutableDescriptor(v1_);
    ASSERT_TRUE(d1->IncorporateComponent(comp_v1_).ok());
    ASSERT_TRUE(d1->EnableFunction("serve", comp_v1_.id).ok());
    ASSERT_TRUE(d1->EnableFunction("audit", comp_v1_.id).ok());
    ASSERT_TRUE(manager_->MarkInstantiable(v1_).ok());
    ASSERT_TRUE(manager_->SetCurrentVersion(v1_).ok());

    std::optional<Result<ObjectId>> created;
    manager_->CreateInstance(testbed_.host(1), [&](Result<ObjectId> result) {
      created.emplace(std::move(result));
    });
    testbed_.simulation().RunWhile([&] { return !created.has_value(); });
    ASSERT_TRUE(created.has_value());
    ASSERT_TRUE(created->ok());
    instance_ = created->value();
  }

  Status EvolveBlocking(const VersionId& version) {
    std::optional<Status> out;
    manager_->EvolveInstanceTo(instance_, version,
                               [&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("evolve never completed"));
  }

  // Derives an instantiable child of v1 configured by `configure` and
  // designates it current (the single-version policy only permits evolution
  // to the current version).
  VersionId MakeChild(const std::function<void(DfmDescriptor*)>& configure) {
    VersionId child = *manager_->DeriveVersion(v1_);
    DfmDescriptor* descriptor = *manager_->MutableDescriptor(child);
    configure(descriptor);
    EXPECT_TRUE(manager_->MarkInstantiable(child).ok());
    EXPECT_TRUE(manager_->SetCurrentVersion(child).ok());
    return child;
  }

  Testbed testbed_;
  std::unique_ptr<DcdoManager> manager_;
  ImplementationComponent comp_v1_;
  ImplementationComponent comp_v2_;
  VersionId v1_;
  ObjectId instance_;
};

// Enable/disable-only evolution: "less than half a second".
TEST_F(EvolutionCostTest, FlipOnlyEvolutionIsSubSecond) {
  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->DisableFunction("audit", comp_v1_.id).ok());
  });
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(EvolveBlocking(child).ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_LT(seconds, 0.5);
  EXPECT_EQ(manager_->InstanceVersion(instance_).value_or(VersionId()),
            child);
}

// Incorporating a *cached* component is ~200 us each.
TEST_F(EvolutionCostTest, CachedComponentIncorporationIsMicroseconds) {
  // Warm the instance host's cache first.
  testbed_.host(1)->CacheComponent(comp_v2_.id, comp_v2_.code_bytes);
  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE(d->SwitchImplementation("serve", comp_v2_.id).ok());
  });
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(EvolveBlocking(child).ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_LT(seconds, 0.5);

  Dcdo* object = manager_->FindInstance(instance_);
  auto result = object->Call("serve", ByteBuffer::FromString("q"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "impl-v2.serve:q");
}

// When the component must be downloaded, evolution cost is dominated by the
// transfer: the 5.1 MB component's streaming time dwarfs the flip cost and
// pushes evolution past the paper's half-second bound.
TEST_F(EvolutionCostTest, UncachedComponentEvolutionIsDownloadDominated) {
  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE(d->SwitchImplementation("serve", comp_v2_.id).ok());
  });
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(EvolveBlocking(child).ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GT(seconds, 0.5);
  EXPECT_LT(seconds, 3.0);
}

// Clients keep their binding across DCDO evolution — no stale-binding
// penalty, unlike the monolithic baseline.
TEST_F(EvolutionCostTest, ClientsSurviveDcdoEvolutionWithoutRebind) {
  auto client = testbed_.MakeClient(3);
  ASSERT_TRUE(client->InvokeBlocking(instance_, "serve").ok());

  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->DisableFunction("audit", comp_v1_.id).ok());
  });
  ASSERT_TRUE(EvolveBlocking(child).ok());

  sim::SimTime start = testbed_.simulation().Now();
  auto reply = client->InvokeBlocking(instance_, "serve");
  ASSERT_TRUE(reply.ok());
  EXPECT_LT((testbed_.simulation().Now() - start).ToSeconds(), 0.1);
  EXPECT_EQ(client->rebinds(), 0u);
  EXPECT_EQ(client->timeouts(), 0u);
}

// Head-to-head: the same behavioural change (swap serve()'s implementation)
// as a DCDO evolution vs. a monolithic executable replacement.
TEST_F(EvolutionCostTest, DcdoBeatsMonolithicEvolutionByOrdersOfMagnitude) {
  // --- DCDO side ---
  testbed_.host(1)->CacheComponent(comp_v2_.id, comp_v2_.code_bytes);
  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE(d->SwitchImplementation("serve", comp_v2_.id).ok());
  });
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(EvolveBlocking(child).ok());
  double dcdo_seconds = (testbed_.simulation().Now() - start).ToSeconds();

  // --- Monolithic baseline ---
  ClassObject baseline("legacy", testbed_.host(0), &testbed_.transport(),
                       &testbed_.agent());
  Executable e1;
  e1.name = "legacy-v1";
  e1.bytes = 5'100'000;
  e1.methods.Add("serve", [](InstanceState&, const ByteBuffer&) {
    return Result<ByteBuffer>(ByteBuffer::FromString("v1"));
  });
  Executable e2 = e1;
  e2.name = "legacy-v2";
  std::size_t v1_index = baseline.AddExecutable(std::move(e1));
  std::size_t v2_index = baseline.AddExecutable(std::move(e2));
  ASSERT_TRUE(baseline.SetCurrentExecutable(v1_index).ok());

  std::optional<Result<ObjectId>> created;
  baseline.CreateInstance(testbed_.host(2), 1 << 20,
                          [&](Result<ObjectId> result) {
                            created.emplace(std::move(result));
                          });
  testbed_.simulation().RunWhile([&] { return !created.has_value(); });
  ASSERT_TRUE(created->ok());

  std::optional<Status> evolved;
  start = testbed_.simulation().Now();
  baseline.EvolveInstance(created->value(), v2_index,
                          [&](Status status) { evolved = status; });
  testbed_.simulation().RunWhile([&] { return !evolved.has_value(); });
  ASSERT_TRUE(evolved->ok());
  double monolithic_seconds =
      (testbed_.simulation().Now() - start).ToSeconds();

  EXPECT_LT(dcdo_seconds, 0.5);
  EXPECT_GT(monolithic_seconds, 18.0);
  EXPECT_GT(monolithic_seconds / dcdo_seconds, 100.0)
      << "DCDO evolution is orders of magnitude cheaper";
}

// Evolution respects marks under the hybrid policy but not under general.
TEST_F(EvolutionCostTest, MarkEnforcementFollowsPolicy) {
  // Mark serve()'s current implementation permanent on the live instance.
  Dcdo* object = manager_->FindInstance(instance_);
  ASSERT_TRUE(object->MarkPermanent("serve", comp_v1_.id).ok());

  testbed_.host(1)->CacheComponent(comp_v2_.id, comp_v2_.code_bytes);
  VersionId child = MakeChild([&](DfmDescriptor* d) {
    ASSERT_TRUE(d->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE(d->SwitchImplementation("serve", comp_v2_.id).ok());
  });

  // Default manager policy enforces marks: the evolution is rejected.
  Status status = EvolveBlocking(child);
  EXPECT_EQ(status.code(), ErrorCode::kPermanentViolation);
  EXPECT_EQ(manager_->InstanceVersion(instance_).value_or(VersionId()), v1_);
}

}  // namespace
}  // namespace dcdo
