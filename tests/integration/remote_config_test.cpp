// Full remote-configuration round: a client evolves a DCDO purely through
// its exported configuration interface — the paper's point that "an object's
// external interface is the mechanism that is used to evolve its
// implementation".
#include <gtest/gtest.h>

#include "common/serialize.h"
#include "component/ico.h"
#include "core/dcdo.h"
#include "core/proxy.h"
#include "dfm/descriptor_wire.h"
#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

ByteBuffer WireFunctionComponent(const std::string& function,
                                 const ObjectId& component) {
  Writer writer;
  writer.WriteString(function);
  writer.WriteObjectId(component);
  return std::move(writer).Take();
}

ByteBuffer WireDependency(const Dependency& dep) {
  Writer writer;
  writer.WriteU32(static_cast<std::uint32_t>(dep.kind));
  writer.WriteString(dep.dependent);
  writer.WriteBool(dep.dependent_component.has_value());
  if (dep.dependent_component) writer.WriteObjectId(*dep.dependent_component);
  writer.WriteString(dep.target);
  writer.WriteBool(dep.target_component.has_value());
  if (dep.target_component) writer.WriteObjectId(*dep.target_component);
  return std::move(writer).Take();
}

class RemoteConfigTest : public ::testing::Test {
 protected:
  RemoteConfigTest() {
    comp_a_ = testing::MakeEchoComponent(testbed_.registry(), "libA",
                                         {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(testbed_.registry(), "libB", {"f"});
    ico_a_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_a_);
    ico_b_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_b_);
    icos_.Register(ico_a_.get());
    icos_.Register(ico_b_.get());
    object_ = std::make_unique<Dcdo>("svc", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
    client_ = testbed_.MakeClient(4);
  }

  Result<ByteBuffer> Config(const std::string& method, ByteBuffer args) {
    return client_->InvokeBlocking(object_->id(), method, std::move(args));
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  std::unique_ptr<ImplementationComponentObject> ico_a_;
  std::unique_ptr<ImplementationComponentObject> ico_b_;
  std::unique_ptr<Dcdo> object_;
  std::unique_ptr<rpc::RpcClient> client_;
};

// The whole lifecycle driven remotely: incorporate both components, enable,
// call, add a dependency, mark mandatory, switch implementations.
TEST_F(RemoteConfigTest, FullEvolutionViaExportedInterface) {
  Writer inc_a;
  inc_a.WriteObjectId(comp_a_.id);
  ASSERT_TRUE(Config("dcdo.incorporateComponent",
                     std::move(inc_a).Take()).ok());
  Writer inc_b;
  inc_b.WriteObjectId(comp_b_.id);
  ASSERT_TRUE(Config("dcdo.incorporateComponent",
                     std::move(inc_b).Take()).ok());

  ASSERT_TRUE(Config("dcdo.enableFunction",
                     WireFunctionComponent("g", comp_a_.id)).ok());
  ASSERT_TRUE(Config("dcdo.enableFunction",
                     WireFunctionComponent("f", comp_a_.id)).ok());

  auto reply = client_->InvokeBlocking(object_->id(), "f",
                                       ByteBuffer::FromString("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "libA.f:x");

  // Add a Type D dependency remotely; now disabling g is refused remotely.
  ASSERT_TRUE(Config("dcdo.addDependency",
                     WireDependency(Dependency::TypeD("f", "g"))).ok());
  auto refused = Config("dcdo.disableFunction",
                        WireFunctionComponent("g", comp_a_.id));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kDependencyViolation);

  // Remove it again, and the disable goes through.
  ASSERT_TRUE(Config("dcdo.removeDependency",
                     WireDependency(Dependency::TypeD("f", "g"))).ok());
  ASSERT_TRUE(Config("dcdo.disableFunction",
                     WireFunctionComponent("g", comp_a_.id)).ok());

  // Mark f mandatory remotely; a remote disable is refused with the typed
  // error; a remote switch still works.
  Writer mandatory;
  mandatory.WriteString("f");
  ASSERT_TRUE(Config("dcdo.markMandatory", std::move(mandatory).Take()).ok());
  auto mviolation = Config("dcdo.disableFunction",
                           WireFunctionComponent("f", comp_a_.id));
  EXPECT_EQ(mviolation.status().code(), ErrorCode::kMandatoryViolation);
  ASSERT_TRUE(Config("dcdo.switchImplementation",
                     WireFunctionComponent("f", comp_b_.id)).ok());
  reply = client_->InvokeBlocking(object_->id(), "f",
                                  ByteBuffer::FromString("y"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "libB.f:y");

  // And the annotated interface reflects the mark for any proxy client.
  DcdoProxy proxy(client_.get(), object_->id());
  ASSERT_TRUE(proxy.RefreshInterface().ok());
  EXPECT_TRUE(proxy.IsAssured("f"));
}

TEST_F(RemoteConfigTest, MarkPermanentRemotely) {
  Writer inc_a;
  inc_a.WriteObjectId(comp_a_.id);
  ASSERT_TRUE(Config("dcdo.incorporateComponent",
                     std::move(inc_a).Take()).ok());
  ASSERT_TRUE(Config("dcdo.markPermanent",
                     WireFunctionComponent("f", comp_a_.id)).ok());
  // Permanent implies enabled.
  EXPECT_NE(object_->mapper().state().EnabledImpl("f"), nullptr);
  auto refused = Config("dcdo.disableFunction",
                        WireFunctionComponent("f", comp_a_.id));
  EXPECT_EQ(refused.status().code(), ErrorCode::kPermanentViolation);
}

// Evolution by shipping a whole serialized descriptor: the manager-less
// remote path.
TEST_F(RemoteConfigTest, EvolveToSerializedDescriptorOverRpc) {
  // Build the target configuration locally and freeze it.
  DfmDescriptor target(VersionId{1, 1});
  ASSERT_TRUE(target.IncorporateComponent(comp_a_, false).ok());
  ASSERT_TRUE(target.IncorporateComponent(comp_b_, false).ok());
  ASSERT_TRUE(target.EnableFunction("f", comp_b_.id).ok());
  ASSERT_TRUE(target.MarkInstantiable().ok());

  Writer writer;
  writer.WriteBytes(SerializeDescriptor(target));
  writer.WriteBool(true);  // enforce marks
  auto reply = Config("dcdo.evolveTo", std::move(writer).Take());
  ASSERT_TRUE(reply.ok()) << reply.status();

  EXPECT_EQ(object_->version(), (VersionId{1, 1}));
  auto call = client_->InvokeBlocking(object_->id(), "f",
                                      ByteBuffer::FromString("z"));
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(call->ToString(), "libB.f:z");
}

TEST_F(RemoteConfigTest, EvolveToGarbageDescriptorRejected) {
  Writer writer;
  writer.WriteBytes(ByteBuffer::FromString("not a descriptor"));
  writer.WriteBool(true);
  auto reply = Config("dcdo.evolveTo", std::move(writer).Take());
  ASSERT_FALSE(reply.ok());
  EXPECT_TRUE(object_->GetComponents().empty()) << "nothing was applied";
}

TEST_F(RemoteConfigTest, EvolveToConfigurableDescriptorRejected) {
  DfmDescriptor target(VersionId{1, 1});
  ASSERT_TRUE(target.IncorporateComponent(comp_a_, false).ok());
  // Never marked instantiable.
  Writer writer;
  writer.WriteBytes(SerializeDescriptor(target));
  writer.WriteBool(true);
  auto reply = Config("dcdo.evolveTo", std::move(writer).Take());
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kVersionNotInstantiable);
}

TEST_F(RemoteConfigTest, MalformedConfigArgsRejected) {
  auto r1 = Config("dcdo.enableFunction", ByteBuffer::FromString("junk"));
  EXPECT_FALSE(r1.ok());
  auto r2 = Config("dcdo.addDependency", ByteBuffer{});
  EXPECT_FALSE(r2.ok());
  Writer bad_kind;
  bad_kind.WriteU32(99);
  auto r3 = Config("dcdo.addDependency", std::move(bad_kind).Take());
  EXPECT_FALSE(r3.ok());
}

}  // namespace
}  // namespace dcdo
