// Failure injection: hosts dying, partitions forming, and managers coping.
// A wide-area system's evolution machinery must degrade cleanly when the
// network does not cooperate.
#include <gtest/gtest.h>

#include "core/manager.h"
#include "core/proxy.h"
#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  void InitManager(std::unique_ptr<EvolutionPolicy> policy) {
    manager_ = std::make_unique<DcdoManager>(
        "svc", testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
        &testbed_.registry(), std::move(policy));
    comp_v1_ = testing::MakeEchoComponent(testbed_.registry(), "c-v1",
                                          {"serve"});
    comp_v2_ = testing::MakeEchoComponent(testbed_.registry(), "c-v2",
                                          {"serve"});
    ASSERT_TRUE(manager_->PublishComponent(comp_v1_).ok());
    ASSERT_TRUE(manager_->PublishComponent(comp_v2_).ok());
    v1_ = *manager_->CreateRootVersion();
    auto d1 = *manager_->MutableDescriptor(v1_);
    ASSERT_TRUE(d1->IncorporateComponent(comp_v1_).ok());
    ASSERT_TRUE(d1->EnableFunction("serve", comp_v1_.id).ok());
    ASSERT_TRUE(manager_->MarkInstantiable(v1_).ok());
    ASSERT_TRUE(manager_->SetCurrentVersion(v1_).ok());

    v11_ = *manager_->DeriveVersion(v1_);
    auto d11 = *manager_->MutableDescriptor(v11_);
    ASSERT_TRUE(d11->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE(d11->SwitchImplementation("serve", comp_v2_.id).ok());
    ASSERT_TRUE(manager_->MarkInstantiable(v11_).ok());
  }

  Result<ObjectId> CreateBlocking(std::size_t host_index) {
    std::optional<Result<ObjectId>> out;
    manager_->CreateInstance(testbed_.host(host_index),
                             [&](Result<ObjectId> result) {
                               out.emplace(std::move(result));
                             });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("create never completed"));
  }

  Testbed testbed_;
  std::unique_ptr<DcdoManager> manager_;
  ImplementationComponent comp_v1_;
  ImplementationComponent comp_v2_;
  VersionId v1_, v11_;
};

TEST_F(FailureTest, CallToPartitionedObjectTimesOut) {
  InitManager(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(2);
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(5);
  ASSERT_TRUE(client->InvokeBlocking(*instance, "serve").ok());

  // Cut the client's host off from the object's host. The binding agent
  // still advertises the same (reachable-in-principle) address, so the
  // client retries, rebinds to the same place, retries again, and finally
  // reports a timeout.
  testbed_.network().SetPartitioned(testbed_.host(5)->node(),
                                    testbed_.host(2)->node(), true);
  auto result = client->InvokeBlocking(*instance, "serve");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);

  // Healing the partition restores service without any repair action.
  testbed_.network().SetPartitioned(testbed_.host(5)->node(),
                                    testbed_.host(2)->node(), false);
  EXPECT_TRUE(client->InvokeBlocking(*instance, "serve").ok());
}

TEST_F(FailureTest, HostDeathMakesInstanceUnavailableUntilMigration) {
  InitManager(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(2);
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(5);
  ASSERT_TRUE(client->InvokeBlocking(*instance, "serve").ok());

  testbed_.host(2)->SetUp(false);
  auto result = client->InvokeBlocking(*instance, "serve");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kTimeout);
}

TEST_F(FailureTest, ProactivePushSurvivesOnePartitionedInstance) {
  InitManager(MakeSingleVersionProactive());
  std::vector<ObjectId> instances;
  for (std::size_t i = 2; i <= 5; ++i) {
    auto instance = CreateBlocking(i);
    ASSERT_TRUE(instance.ok());
    instances.push_back(*instance);
  }
  // Partition host 3's instance from the ICO home (host 0) so its component
  // fetch during the push cannot complete.
  testbed_.network().SetPartitioned(testbed_.host(0)->node(),
                                    testbed_.host(3)->node(), true);
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  testbed_.simulation().RunUntil(testbed_.simulation().Now() +
                                 sim::SimDuration::Seconds(120));

  int at_new = 0;
  for (const ObjectId& instance : instances) {
    if (manager_->InstanceVersion(instance).value_or(VersionId()) == v11_) {
      ++at_new;
    }
  }
  EXPECT_EQ(at_new, 3) << "the partitioned instance lags; the rest converge";

  // Heal and update explicitly: the straggler catches up.
  testbed_.network().SetPartitioned(testbed_.host(0)->node(),
                                    testbed_.host(3)->node(), false);
  std::optional<Status> updated;
  manager_->UpdateInstance(instances[1],
                           [&](Status status) { updated = status; });
  testbed_.simulation().RunWhile([&] { return !updated.has_value(); });
  ASSERT_TRUE(updated.has_value());
  EXPECT_TRUE(updated->ok());
  EXPECT_EQ(manager_->InstanceVersion(instances[1]).value_or(VersionId()),
            v11_);
}

TEST_F(FailureTest, EvolutionToUnresolvableComponentFailsCleanly) {
  InitManager(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(2);
  ASSERT_TRUE(instance.ok());

  // A version referencing a component that was never published (no ICO):
  // evolution fails with kComponentMissing and the instance is untouched.
  auto ghost = testing::MakeEchoComponent(testbed_.registry(), "ghost",
                                          {"spook"});
  VersionId v12 = *manager_->DeriveVersion(v1_);
  auto d12 = *manager_->MutableDescriptor(v12);
  ASSERT_TRUE(d12->IncorporateComponent(ghost).ok());
  ASSERT_TRUE(d12->EnableFunction("spook", ghost.id).ok());
  ASSERT_TRUE(manager_->MarkInstantiable(v12).ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v12).ok());

  std::optional<Status> evolved;
  manager_->EvolveInstanceTo(*instance, v12,
                             [&](Status status) { evolved = status; });
  testbed_.simulation().RunWhile([&] { return !evolved.has_value(); });
  ASSERT_TRUE(evolved.has_value());
  EXPECT_EQ(evolved->code(), ErrorCode::kComponentMissing);
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);
  Dcdo* object = manager_->FindInstance(*instance);
  EXPECT_TRUE(object->Call("serve", ByteBuffer{}).ok()) << "still serving";
}

TEST_F(FailureTest, ProxySurvivesEvolutionDuringPartition) {
  InitManager(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(2);
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(5);
  DcdoProxy proxy(client.get(), *instance);
  ASSERT_TRUE(proxy.Call("serve", ByteBuffer{}).ok());

  // The object evolves while the client is partitioned away; on healing,
  // the proxy's named call picks up the new implementation transparently.
  testbed_.network().SetPartitioned(testbed_.host(5)->node(),
                                    testbed_.host(2)->node(), true);
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  std::optional<Status> evolved;
  manager_->EvolveInstanceTo(*instance, v11_,
                             [&](Status status) { evolved = status; });
  testbed_.simulation().RunWhile([&] { return !evolved.has_value(); });
  ASSERT_TRUE(evolved->ok());
  testbed_.network().SetPartitioned(testbed_.host(5)->node(),
                                    testbed_.host(2)->node(), false);

  auto result = proxy.Call("serve", ByteBuffer::FromString("q"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "c-v2.serve:q");
}

TEST_F(FailureTest, MessagesDroppedDuringPartitionAreCounted) {
  InitManager(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(2);
  ASSERT_TRUE(instance.ok());
  std::uint64_t dropped_before = testbed_.network().messages_dropped();
  testbed_.network().SetPartitioned(testbed_.host(5)->node(),
                                    testbed_.host(2)->node(), true);
  auto client = testbed_.MakeClient(5);
  (void)client->InvokeBlocking(*instance, "serve");
  EXPECT_GT(testbed_.network().messages_dropped(), dropped_before);
}

}  // namespace
}  // namespace dcdo
