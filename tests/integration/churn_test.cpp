// Randomized long-run churn: a manager with a growing version tree and a
// small fleet, driven by a seeded random mix of derive / configure / freeze /
// designate / evolve / update / migrate / call operations. After every step
// the system-wide invariants must hold. This is the "does the whole machine
// stay consistent under realistic messiness" test.
#include <gtest/gtest.h>

#include <random>

#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class ChurnProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChurnProperty, InvariantsHoldUnderRandomOperations) {
  std::mt19937 rng(GetParam());
  Testbed testbed;
  DcdoManager manager("churn", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeMultiVersionIncreasing());
  ASSERT_TRUE(manager.AttachNameService(&testbed.names()).ok());

  // Component pool: five components over three function names.
  std::vector<ImplementationComponent> pool;
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q0",
                                            {"alpha", "beta"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q1",
                                            {"alpha"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q2",
                                            {"beta", "gamma"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q3",
                                            {"gamma"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q4",
                                            {"alpha", "gamma"}));
  for (const ImplementationComponent& comp : pool) {
    ASSERT_TRUE(manager.PublishComponent(comp).ok());
  }

  VersionId root = *manager.CreateRootVersion();
  {
    DfmDescriptor* d = *manager.MutableDescriptor(root);
    ASSERT_TRUE(d->IncorporateComponent(pool[0]).ok());
    ASSERT_TRUE(d->EnableFunction("alpha", pool[0].id).ok());
    ASSERT_TRUE(manager.MarkInstantiable(root).ok());
    ASSERT_TRUE(manager.SetCurrentVersion(root).ok());
  }

  std::vector<ObjectId> instances;
  std::vector<VersionId> instantiable{root};
  std::vector<VersionId> configurable;

  auto create_instance = [&] {
    std::uniform_int_distribution<std::size_t> host_dist(1, 10);
    bool done = false;
    manager.CreateInstance(testbed.host(host_dist(rng)),
                           [&](Result<ObjectId> result) {
                             if (result.ok()) instances.push_back(*result);
                             done = true;
                           });
    testbed.simulation().RunWhile([&] { return !done; });
  };
  create_instance();

  auto check_invariants = [&] {
    // Every instance's version is a known instantiable version...
    for (const ObjectId& instance : instances) {
      auto version = manager.InstanceVersion(instance);
      ASSERT_TRUE(version.ok());
      bool known = false;
      for (const VersionId& v : instantiable) {
        if (v == *version) known = true;
      }
      ASSERT_TRUE(known) << "instance at unknown/configurable version "
                         << version->ToString();
      // ...and the live object's configuration validates completely.
      Dcdo* object = manager.FindInstance(instance);
      ASSERT_NE(object, nullptr);
      ASSERT_TRUE(object->mapper().state().ValidateComplete().ok());
    }
    // Version ids in the DFM store form a tree rooted at "1".
    for (const VersionId& version : manager.Versions()) {
      ASSERT_TRUE(version.IsDerivedFrom(root));
    }
  };

  std::uniform_int_distribution<int> op_dist(0, 7);
  for (int step = 0; step < 120; ++step) {
    switch (op_dist(rng)) {
      case 0: {  // derive a new configurable version from a random existing
        std::vector<VersionId> all = manager.Versions();
        std::uniform_int_distribution<std::size_t> pick(0, all.size() - 1);
        auto derived = manager.DeriveVersion(all[pick(rng)]);
        if (derived.ok()) configurable.push_back(*derived);
        break;
      }
      case 1: {  // randomly configure a configurable version
        if (configurable.empty()) break;
        std::uniform_int_distribution<std::size_t> pick(
            0, configurable.size() - 1);
        auto descriptor = manager.MutableDescriptor(configurable[pick(rng)]);
        if (!descriptor.ok()) break;
        std::uniform_int_distribution<std::size_t> comp_pick(0,
                                                             pool.size() - 1);
        const ImplementationComponent& comp = pool[comp_pick(rng)];
        // Ignore failures: illegal configurations must fail cleanly.
        (void)(*descriptor)->IncorporateComponent(comp);
        if (!comp.functions.empty()) {
          (void)(*descriptor)
              ->SwitchImplementation(comp.functions[0].function.name,
                                     comp.id);
        }
        break;
      }
      case 2: {  // freeze a configurable version
        if (configurable.empty()) break;
        std::uniform_int_distribution<std::size_t> pick(
            0, configurable.size() - 1);
        std::size_t index = pick(rng);
        if (manager.MarkInstantiable(configurable[index]).ok()) {
          instantiable.push_back(configurable[index]);
          configurable.erase(configurable.begin() +
                             static_cast<std::ptrdiff_t>(index));
        }
        break;
      }
      case 3: {  // designate a random instantiable version current
        std::uniform_int_distribution<std::size_t> pick(
            0, instantiable.size() - 1);
        (void)manager.SetCurrentVersion(instantiable[pick(rng)]);
        break;
      }
      case 4: {  // evolve a random instance to a random instantiable version
        if (instances.empty()) break;
        std::uniform_int_distribution<std::size_t> ipick(0,
                                                         instances.size() - 1);
        std::uniform_int_distribution<std::size_t> vpick(
            0, instantiable.size() - 1);
        bool done = false;
        manager.EvolveInstanceTo(instances[ipick(rng)],
                                 instantiable[vpick(rng)],
                                 [&](Status) { done = true; });
        testbed.simulation().RunWhile([&] { return !done; });
        break;
      }
      case 5: {  // explicit update of a random instance
        if (instances.empty()) break;
        std::uniform_int_distribution<std::size_t> ipick(0,
                                                         instances.size() - 1);
        bool done = false;
        manager.UpdateInstance(instances[ipick(rng)],
                               [&](Status) { done = true; });
        testbed.simulation().RunWhile([&] { return !done; });
        break;
      }
      case 6: {  // call a random instance (must succeed or fail typed)
        if (instances.empty()) break;
        std::uniform_int_distribution<std::size_t> ipick(0,
                                                         instances.size() - 1);
        Dcdo* object = manager.FindInstance(instances[ipick(rng)]);
        const char* fns[] = {"alpha", "beta", "gamma"};
        std::uniform_int_distribution<int> fpick(0, 2);
        auto result = object->Call(fns[fpick(rng)], ByteBuffer{});
        if (!result.ok()) {
          ErrorCode code = result.status().code();
          ASSERT_TRUE(code == ErrorCode::kFunctionMissing ||
                      code == ErrorCode::kFunctionDisabled)
              << result.status();
        }
        break;
      }
      case 7: {  // create (rarely) or migrate an instance
        if (instances.size() < 4) {
          create_instance();
        } else {
          std::uniform_int_distribution<std::size_t> ipick(
              0, instances.size() - 1);
          std::uniform_int_distribution<std::size_t> host_dist(1, 10);
          bool done = false;
          manager.MigrateInstance(instances[ipick(rng)],
                                  testbed.host(host_dist(rng)),
                                  [&](Status) { done = true; });
          testbed.simulation().RunWhile([&] { return !done; });
        }
        break;
      }
    }
    testbed.simulation().Run();
    check_invariants();
  }

  // The name service stayed consistent with the DCDO table.
  auto listed = testbed.names().List("/types/churn/instances");
  ASSERT_TRUE(listed.ok());
  EXPECT_EQ(listed->size(), manager.instance_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace dcdo
