// Stress: concurrent remote invocations racing evolution churn, with the
// full checking layer (invariants + race detector) installed. Replies may
// come back by id or by name, callers may hit a function mid-swap or
// mid-disable — every outcome must be a success or a typed evolution error,
// and the checkers must stay silent throughout.
#include <gtest/gtest.h>

#include <random>

#include "common/serialize.h"
#include "component/ico.h"
#include "core/dcdo.h"
#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class RemoteChurnTest : public ::testing::Test {
 protected:
  RemoteChurnTest() {
    comp_a_ = testing::MakeEchoComponent(testbed_.registry(), "libA",
                                         {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(testbed_.registry(), "libB", {"f"});
    ico_a_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_a_);
    ico_b_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_b_);
    icos_.Register(ico_a_.get());
    icos_.Register(ico_b_.get());
    object_ = std::make_unique<Dcdo>("churned", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
    // Three independent callers on three hosts, each with its own cache.
    for (std::size_t host : {4u, 5u, 6u}) {
      clients_.push_back(testbed_.MakeClient(host));
    }
    config_client_ = testbed_.MakeClient(7);
  }

  // Incorporates a component remotely, exactly as a manager would.
  void Incorporate(const ImplementationComponent& comp) {
    Writer writer;
    writer.WriteObjectId(comp.id);
    ASSERT_TRUE(config_client_
                    ->InvokeBlocking(object_->id(),
                                     "dcdo.incorporateComponent",
                                     std::move(writer).Take())
                    .ok());
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  std::unique_ptr<ImplementationComponentObject> ico_a_;
  std::unique_ptr<ImplementationComponentObject> ico_b_;
  std::unique_ptr<Dcdo> object_;
  std::vector<std::unique_ptr<rpc::RpcClient>> clients_;
  std::unique_ptr<rpc::RpcClient> config_client_;
};

TEST_F(RemoteChurnTest, ConcurrentCallsVersusEvolutionChurnStayClean) {
  Incorporate(comp_a_);
  Incorporate(comp_b_);
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("g", comp_a_.id).ok());

  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> fn_pick(0, 1);
  std::uniform_int_distribution<int> op_pick(0, 3);
  std::uniform_int_distribution<std::int64_t> jitter_us(0, 800);

  int completed = 0;
  int typed_failures = 0;
  const char* fns[] = {"f", "g"};
  for (int round = 0; round < 40; ++round) {
    // A burst of async remote calls from every client, staggered so they
    // overlap the configuration change below while in flight.
    int launched = 0;
    for (auto& client : clients_) {
      for (int k = 0; k < 2; ++k) {
        const char* fn = fns[fn_pick(rng)];
        ++launched;
        testbed_.simulation().Schedule(
            sim::SimDuration::Micros(jitter_us(rng)),
            [&, fn, client = client.get()]() {
              client->Invoke(object_->id(), fn, ByteBuffer::FromString("x"),
                             [&](Result<ByteBuffer> result) {
                               ++completed;
                               if (result.ok()) return;
                               ErrorCode code = result.status().code();
                               EXPECT_TRUE(
                                   code == ErrorCode::kFunctionMissing ||
                                   code == ErrorCode::kFunctionDisabled)
                                   << result.status();
                               ++typed_failures;
                             });
            });
      }
    }
    // One configuration mutation lands mid-burst.
    testbed_.simulation().Schedule(
        sim::SimDuration::Micros(400), [&, op = op_pick(rng)]() {
          switch (op) {
            case 0:
              (void)object_->SwitchImplementation("f", comp_b_.id);
              break;
            case 1:
              (void)object_->SwitchImplementation("f", comp_a_.id);
              break;
            case 2:
              (void)object_->DisableFunction("g", comp_a_.id);
              break;
            case 3:
              (void)object_->EnableFunction("g", comp_a_.id);
              break;
          }
        });
    testbed_.RunAll();
    ASSERT_EQ(completed, launched) << "round " << round;
    completed = 0;
  }
  // Churn really exercised both outcomes.
  EXPECT_GT(typed_failures, 0);

  // The checking layer watched every event: zero diagnostics of any
  // severity, from the invariants and from the race detector alike.
  if (auto* checker = testbed_.checker()) {
    checker->Evaluate();
    EXPECT_EQ(checker->diagnostics().count(), 0u)
        << checker->diagnostics().DumpText();
  }
}

}  // namespace
}  // namespace dcdo
