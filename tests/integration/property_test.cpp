// Parameterized property sweeps over system invariants:
//   * DFM invariants hold under randomized mutation sequences,
//   * every single-version update policy converges all instances to the
//     current version,
//   * evolution between any two versions in a derivation chain preserves
//     the exported-interface contract implied by mandatory marks.
#include <gtest/gtest.h>

#include <random>

#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

// ===== DFM invariants under randomized mutations =====

class DfmFuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(DfmFuzzProperty, InvariantsHoldUnderRandomMutations) {
  std::mt19937 rng(GetParam());
  NativeCodeRegistry registry;
  DfmState state;

  // Pool: 4 components, overlapping function sets.
  std::vector<ImplementationComponent> pool;
  pool.push_back(testing::MakeEchoComponent(registry, "p0", {"a", "b"}));
  pool.push_back(testing::MakeEchoComponent(registry, "p1", {"b", "c"}));
  pool.push_back(testing::MakeEchoComponent(registry, "p2", {"a", "c", "d"}));
  pool.push_back(testing::MakeEchoComponent(registry, "p3", {"d"}));
  const std::vector<std::string> functions{"a", "b", "c", "d"};

  auto check_invariants = [&] {
    // Invariant 1: at most one enabled implementation per function.
    for (const std::string& fn : functions) {
      int enabled = 0;
      for (const DfmEntry* entry : state.AllEntries()) {
        if (entry->function.name == fn && entry->enabled) ++enabled;
      }
      EXPECT_LE(enabled, 1) << "function " << fn;
    }
    // Invariant 2: no binding dependency is violated.
    EXPECT_TRUE(state.dependencies().Validate(state.Snapshot()).ok());
    // Invariant 3: every enabled entry's component is incorporated.
    for (const DfmEntry* entry : state.AllEntries()) {
      EXPECT_TRUE(state.HasComponent(entry->component));
    }
    // Invariant 4: permanent entries are enabled.
    for (const DfmEntry* entry : state.AllEntries()) {
      if (entry->permanent) {
        EXPECT_TRUE(entry->enabled);
      }
    }
  };

  std::uniform_int_distribution<int> op_dist(0, 6);
  std::uniform_int_distribution<std::size_t> comp_dist(0, pool.size() - 1);
  std::uniform_int_distribution<std::size_t> fn_dist(0, functions.size() - 1);

  for (int step = 0; step < 300; ++step) {
    const ImplementationComponent& comp = pool[comp_dist(rng)];
    const std::string& fn = functions[fn_dist(rng)];
    // Statuses are intentionally ignored: illegal mutations must *fail
    // cleanly* without breaking invariants.
    switch (op_dist(rng)) {
      case 0: (void)state.IncorporateComponent(comp); break;
      case 1: (void)state.RemoveComponent(comp.id); break;
      case 2: (void)state.EnableFunction(fn, comp.id); break;
      case 3: (void)state.DisableFunction(fn, comp.id); break;
      case 4: (void)state.SwitchImplementation(fn, comp.id); break;
      case 5:
        (void)state.AddDependency(
            Dependency::TypeD(fn, functions[fn_dist(rng)]));
        break;
      case 6: {
        auto deps = state.dependencies().all();
        if (!deps.empty()) {
          (void)state.RemoveDependency(deps[step % deps.size()]);
        }
        break;
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfmFuzzProperty, ::testing::Range(1, 9));

// ===== Policy convergence =====

struct PolicyCase {
  const char* label;
  std::unique_ptr<EvolutionPolicy> (*make)();
};

std::unique_ptr<EvolutionPolicy> MakeLazyK3() {
  return MakeSingleVersionLazyEveryK(3);
}
std::unique_ptr<EvolutionPolicy> MakeLazyPeriodic10s() {
  return MakeSingleVersionLazyPeriodic(sim::SimDuration::Seconds(10));
}

class PolicyConvergence : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyConvergence, AllInstancesReachCurrentVersion) {
  Testbed testbed;
  DcdoManager manager("conv", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      GetParam().make());

  auto comp = testing::MakeEchoComponent(testbed.registry(), "base",
                                         {"serve"});
  ASSERT_TRUE(manager.PublishComponent(comp).ok());
  VersionId v1 = *manager.CreateRootVersion();
  auto d1 = *manager.MutableDescriptor(v1);
  ASSERT_TRUE(d1->IncorporateComponent(comp).ok());
  ASSERT_TRUE(d1->EnableFunction("serve", comp.id).ok());
  ASSERT_TRUE(manager.MarkInstantiable(v1).ok());
  ASSERT_TRUE(manager.SetCurrentVersion(v1).ok());

  std::vector<ObjectId> instances;
  for (int i = 0; i < 6; ++i) {
    std::optional<Result<ObjectId>> out;
    manager.CreateInstance(testbed.host(1 + (i % 4)),
                           [&](Result<ObjectId> result) {
                             out.emplace(std::move(result));
                           });
    testbed.simulation().RunWhile([&] { return !out.has_value(); });
    ASSERT_TRUE(out->ok());
    instances.push_back(out->value());
  }

  // New current version: disable nothing, just re-derive (a pure version
  // bump keeps the diff trivial so convergence is purely policy-driven).
  VersionId v11 = *manager.DeriveVersion(v1);
  ASSERT_TRUE(manager.MarkInstantiable(v11).ok());
  ASSERT_TRUE(manager.SetCurrentVersion(v11).ok());

  // Drive the system: time passes, instances get called, explicit updates
  // are requested. Whatever the policy, everyone must converge.
  for (int round = 0; round < 5; ++round) {
    testbed.simulation().AdvanceInline(sim::SimDuration::Seconds(11));
    for (const ObjectId& instance : instances) {
      Dcdo* object = manager.FindInstance(instance);
      ASSERT_NE(object, nullptr);
      (void)object->Call("serve", ByteBuffer{});
      std::optional<Status> updated;
      manager.UpdateInstance(instance,
                             [&](Status status) { updated = status; });
      testbed.simulation().RunWhile([&] { return !updated.has_value(); });
    }
    testbed.simulation().Run();
  }

  for (const ObjectId& instance : instances) {
    EXPECT_EQ(manager.InstanceVersion(instance).value_or(VersionId()), v11)
        << "policy " << GetParam().label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyConvergence,
    ::testing::Values(
        PolicyCase{"proactive", &MakeSingleVersionProactive},
        PolicyCase{"explicit", &MakeSingleVersionExplicit},
        PolicyCase{"lazy-every-call", &MakeSingleVersionLazyEveryCall},
        PolicyCase{"lazy-k3", &MakeLazyK3},
        PolicyCase{"lazy-periodic", &MakeLazyPeriodic10s}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ===== Derivation-chain evolution preserves mandatory functions =====

class ChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChainProperty, MandatoryFunctionSurvivesWholeChain) {
  int chain_length = GetParam();
  Testbed testbed;
  DcdoManager manager("chain", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeMultiVersionIncreasing());

  auto core = testing::MakeEchoComponent(testbed.registry(), "core",
                                         {"must", "extra"});
  ASSERT_TRUE(manager.PublishComponent(core).ok());
  VersionId version = *manager.CreateRootVersion();
  auto d = *manager.MutableDescriptor(version);
  ASSERT_TRUE(d->IncorporateComponent(core).ok());
  ASSERT_TRUE(d->EnableFunction("must", core.id).ok());
  ASSERT_TRUE(d->EnableFunction("extra", core.id).ok());
  ASSERT_TRUE(d->MarkMandatory("must").ok());
  ASSERT_TRUE(manager.MarkInstantiable(version).ok());
  ASSERT_TRUE(manager.SetCurrentVersion(version).ok());

  std::optional<Result<ObjectId>> created;
  manager.CreateInstance(testbed.host(1), [&](Result<ObjectId> result) {
    created.emplace(std::move(result));
  });
  testbed.simulation().RunWhile([&] { return !created.has_value(); });
  ASSERT_TRUE(created->ok());
  ObjectId instance = created->value();

  // Derive a chain, alternately toggling "extra"; "must" is untouchable.
  for (int i = 0; i < chain_length; ++i) {
    VersionId child = *manager.DeriveVersion(version);
    DfmDescriptor* descriptor = *manager.MutableDescriptor(child);
    if (i % 2 == 0) {
      ASSERT_TRUE(descriptor->DisableFunction("extra", core.id).ok());
    } else {
      ASSERT_TRUE(descriptor->EnableFunction("extra", core.id).ok());
    }
    // Dropping "must" from a derived version must be impossible to freeze.
    Status illegal = descriptor->DisableFunction("must", core.id);
    EXPECT_EQ(illegal.code(), ErrorCode::kMandatoryViolation);
    ASSERT_TRUE(manager.MarkInstantiable(child).ok());

    std::optional<Status> evolved;
    manager.EvolveInstanceTo(instance, child,
                             [&](Status status) { evolved = status; });
    testbed.simulation().RunWhile([&] { return !evolved.has_value(); });
    ASSERT_TRUE(evolved->ok());
    version = child;

    // The mandatory function is always callable at every version.
    Dcdo* object = manager.FindInstance(instance);
    auto result = object->Call("must", ByteBuffer{});
    ASSERT_TRUE(result.ok()) << "at version " << version.ToString();
  }
  EXPECT_EQ(manager.InstanceVersion(instance).value_or(VersionId()).depth(),
            static_cast<std::size_t>(chain_length) + 1);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, ChainProperty,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace dcdo
