// Randomized churn with the parallel fetch pipeline engaged: concurrent
// creations, evolutions, and migrations at fetch_concurrency 8 over a small
// bounded component cache, with the checker at every-event cadence and the
// race detector watching. The pipeline reorders component arrivals relative
// to the sequential path, so this is the test that proves completion-order
// incorporation never violates the dependency/permanence invariants or the
// happens-before rules — a long run of legal operations must end with zero
// reports.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <vector>

#include "check/check_context.h"
#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

using check::CheckContext;

Testbed::Options PipelineChurnOptions() {
  Testbed::Options options;
  options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
  options.cost_model.fetch_concurrency = 8;
  // Small enough that churn keeps evicting and re-fetching images.
  options.cost_model.component_cache_capacity = 4;
  return options;
}

class FetchChurn : public ::testing::TestWithParam<int> {};

TEST_P(FetchChurn, PipelinedChurnLeavesNoReports) {
  std::mt19937 rng(GetParam());
  Testbed testbed{PipelineChurnOptions()};
  CheckContext* checker = testbed.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  DcdoManager manager("fetchchurn", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeMultiVersionIncreasing());

  // Six components over three function names; images big enough that their
  // transfers genuinely overlap in the pipeline.
  std::vector<ImplementationComponent> pool;
  const char* fns[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 6; ++i) {
    pool.push_back(testing::MakeEchoComponent(
        testbed.registry(), "fc" + std::to_string(i),
        {fns[i % 3], fns[(i + 1) % 3]}, 256 * 1024));
    ASSERT_TRUE(manager.PublishComponent(pool[i]).ok());
  }

  VersionId root = *manager.CreateRootVersion();
  {
    DfmDescriptor* d = *manager.MutableDescriptor(root);
    ASSERT_TRUE(d->IncorporateComponent(pool[0]).ok());
    ASSERT_TRUE(d->EnableFunction("alpha", pool[0].id).ok());
    ASSERT_TRUE(d->EnableFunction("beta", pool[0].id).ok());
    ASSERT_TRUE(manager.MarkInstantiable(root).ok());
    ASSERT_TRUE(manager.SetCurrentVersion(root).ok());
  }
  // A chain of instantiable versions, each derived from the last and
  // incorporating a different slice of the pool, so evolutions between them
  // add and remove components.
  std::vector<VersionId> instantiable{root};
  for (int v = 0; v < 4; ++v) {
    VersionId derived = *manager.DeriveVersion(instantiable.back());
    DfmDescriptor* d = *manager.MutableDescriptor(derived);
    for (int i = 0; i < 3; ++i) {
      const ImplementationComponent& comp = pool[(v + i) % pool.size()];
      (void)d->IncorporateComponent(comp);
      for (const FunctionImplDescriptor& fn : comp.functions) {
        (void)d->SwitchImplementation(fn.function.name, comp.id);
      }
    }
    ASSERT_TRUE(manager.MarkInstantiable(derived).ok());
    instantiable.push_back(derived);
  }

  // Four instances, co-hosted in pairs so their fetches single-flight.
  std::vector<ObjectId> instances;
  {
    std::vector<std::optional<Result<ObjectId>>> created(4);
    for (int i = 0; i < 4; ++i) {
      manager.CreateInstance(testbed.host(1 + i / 2),
                             [&created, i](Result<ObjectId> r) {
                               created[i] = r;
                             });
    }
    testbed.simulation().Run();
    for (auto& result : created) {
      ASSERT_TRUE(result.has_value() && (*result).ok());
      instances.push_back(**result);
    }
  }

  std::uniform_int_distribution<int> op_dist(0, 2);
  std::uniform_int_distribution<std::size_t> version_pick(
      0, instantiable.size() - 1);
  std::uniform_int_distribution<std::size_t> host_pick(1, 3);
  for (int round = 0; round < 30; ++round) {
    // Launch one operation per instance, all concurrently: overlapping
    // evolutions and migrations are what drive the pipeline and the
    // single-flight map hardest.
    int pending = 0;
    for (const ObjectId& instance : instances) {
      switch (op_dist(rng)) {
        case 0:  // evolve (the policy may legally refuse; ignore status)
          ++pending;
          manager.EvolveInstanceTo(instance, instantiable[version_pick(rng)],
                                   [&pending](Status) { --pending; });
          break;
        case 1:  // migrate
          ++pending;
          manager.MigrateInstance(instance, testbed.host(host_pick(rng)),
                                  [&pending](Status) { --pending; });
          break;
        case 2: {  // call (typed failure allowed while a version lacks it)
          Dcdo* object = manager.FindInstance(instance);
          ASSERT_NE(object, nullptr);
          auto result = object->Call(fns[round % 3], ByteBuffer{});
          if (!result.ok()) {
            ErrorCode code = result.status().code();
            ASSERT_TRUE(code == ErrorCode::kFunctionMissing ||
                        code == ErrorCode::kFunctionDisabled)
                << result.status();
          }
          break;
        }
      }
    }
    testbed.simulation().RunWhile([&] { return pending > 0; });
    testbed.simulation().Run();
    // After the dust settles, every instance's configuration is complete.
    for (const ObjectId& instance : instances) {
      Dcdo* object = manager.FindInstance(instance);
      ASSERT_NE(object, nullptr);
      ASSERT_TRUE(object->mapper().state().ValidateComplete().ok());
    }
  }

  EXPECT_TRUE(checker->diagnostics().Clean())
      << checker->diagnostics().DumpText();
  EXPECT_EQ(checker->diagnostics().CountFor("race-forced-removal"), 0u);
  EXPECT_EQ(checker->diagnostics().CountFor("race-overlapping-evolution"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FetchChurn, ::testing::Values(7, 1999));

}  // namespace
}  // namespace dcdo
