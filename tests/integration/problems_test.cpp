// End-to-end reproductions of the four problem classes of Section 3.1, each
// shown (a) occurring when evolution is unrestricted, and (b) prevented or
// mitigated by the Section 3.2 mechanism built for it.
#include <gtest/gtest.h>

#include "component/ico.h"
#include "core/dcdo.h"
#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class ProblemsTest : public ::testing::Test {
 protected:
  ProblemsTest() {
    object_ = std::make_unique<Dcdo>("victim", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
  }

  // Incorporates a pre-cached component (no fetch latency in these tests).
  void Incorporate(const ImplementationComponent& meta,
                   bool auto_deps = false) {
    testbed_.host(1)->CacheComponent(meta.id, meta.code_bytes);
    ASSERT_TRUE(object_->IncorporateCached(meta, auto_deps).ok());
  }

  Testbed testbed_;
  IcoDirectory icos_;
  std::unique_ptr<Dcdo> object_;
};

// ===== The disappearing exported function problem =====
//
// A client obtains the interface, finds F enabled, builds an invocation —
// and F is disabled before the invocation arrives.

TEST_F(ProblemsTest, DisappearingExportedFunctionBreaksNaiveClient) {
  auto comp = testing::MakeEchoComponent(testbed_.registry(), "api", {"F1"});
  Incorporate(comp);
  ASSERT_TRUE(object_->EnableFunction("F1", comp.id).ok());

  // Client checks the interface: F1 is there.
  auto interface = object_->GetInterface();
  ASSERT_EQ(interface.size(), 1u);
  EXPECT_EQ(interface[0].name, "F1");

  // The invocation is in flight when F1 is disabled.
  auto client = testbed_.MakeClient(2);
  std::optional<Result<ByteBuffer>> reply;
  client->Invoke(object_->id(), "F1", ByteBuffer{},
                 [&](Result<ByteBuffer> result) {
                   reply.emplace(std::move(result));
                 });
  ASSERT_TRUE(object_->DisableFunction("F1", comp.id).ok());
  testbed_.simulation().RunWhile([&] { return !reply.has_value(); });

  // The call fails even though it was correct when built — with a *typed*
  // error the client can handle gracefully, as the paper prescribes.
  ASSERT_TRUE(reply.has_value());
  ASSERT_FALSE(reply->ok());
  EXPECT_EQ(reply->status().code(), ErrorCode::kFunctionDisabled);
}

TEST_F(ProblemsTest, MandatoryMarkPreventsExportedDisappearance) {
  auto comp = testing::MakeEchoComponent(testbed_.registry(), "api", {"F1"});
  Incorporate(comp);
  ASSERT_TRUE(object_->EnableFunction("F1", comp.id).ok());
  ASSERT_TRUE(object_->MarkMandatory("F1").ok());

  // The configuration call that would break the client is now rejected.
  EXPECT_EQ(object_->DisableFunction("F1", comp.id).code(),
            ErrorCode::kMandatoryViolation);

  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(object_->id(), "F1",
                                      ByteBuffer::FromString("safe"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "api.F1:safe");
}

// ===== The missing internal function problem =====
//
// F1 calls F2 through the DFM; F2 is not enabled.

TEST_F(ProblemsTest, MissingInternalFunctionSurfacesAsTypedError) {
  testing::RegisterForwarder(testbed_.registry(), "app/F1", "F2");
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1")
                  .Build();
  ASSERT_TRUE(comp.ok());
  Incorporate(*comp);
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());

  // F1 reaches its call to F2, which does not exist anywhere in the object.
  auto result = object_->Call("F1", ByteBuffer{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFunctionMissing);
}

TEST_F(ProblemsTest, StructuralDependencyPreventsMissingInternal) {
  testing::RegisterForwarder(testbed_.registry(), "app/F1", "F2");
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1", Visibility::kExported,
                               Constraint::kFullyDynamic, {"F2"})
                  .Build();
  ASSERT_TRUE(comp.ok());
  // auto_structural_deps turns the "calls F2" hint into a Type A dependency.
  Incorporate(*comp, /*auto_deps=*/true);

  // Enabling F1 without an implementation of F2 is refused up front — the
  // call can never be left dangling.
  EXPECT_EQ(object_->EnableFunction("F1", comp->id).code(),
            ErrorCode::kDependencyViolation);

  auto helper = testing::MakeEchoComponent(testbed_.registry(), "helper",
                                           {"F2"});
  Incorporate(helper);
  ASSERT_TRUE(object_->EnableFunction("F2", helper.id).ok());
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());
  auto result = object_->Call("F1", ByteBuffer::FromString("x"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "helper.F2:x");
}

// ===== The disappearing internal function problem =====
//
// A thread inside F1 blocks on an outcall; meanwhile F2 is disabled; the
// thread wakes and calls F2.

TEST_F(ProblemsTest, DisappearingInternalFunctionHitsWokenThread) {
  // F1: park for 2 s (outcall), then call F2 through the DFM.
  testbed_.registry().Register(
      "app/F1", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer& args) {
        ctx.BlockOnOutcall(2.0);
        return ctx.CallInternal("F2", args);
      });
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1")
                  .Build();
  ASSERT_TRUE(comp.ok());
  Incorporate(*comp);
  auto helper = testing::MakeEchoComponent(testbed_.registry(), "helper",
                                           {"F2"});
  Incorporate(helper);
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());
  ASSERT_TRUE(object_->EnableFunction("F2", helper.id).ok());

  // While F1 sleeps, a configuration call disables F2. No dependency was
  // declared, so nothing stops it.
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    EXPECT_TRUE(object_->DisableFunction("F2", helper.id,
                                         /*respect_active_dependents=*/false)
                    .ok());
  });

  auto result = object_->Call("F1", ByteBuffer{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFunctionDisabled)
      << "the woken thread found F2 gone";
}

TEST_F(ProblemsTest, ActivityMonitoringDefersDisableOfDependedOnFunction) {
  testbed_.registry().Register(
      "app/F1", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer& args) {
        ctx.BlockOnOutcall(2.0);
        return ctx.CallInternal("F2", args);
      });
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1", Visibility::kExported,
                               Constraint::kFullyDynamic, {"F2"})
                  .Build();
  ASSERT_TRUE(comp.ok());
  Incorporate(*comp, /*auto_deps=*/true);
  auto helper = testing::MakeEchoComponent(testbed_.registry(), "helper",
                                           {"F2"});
  Incorporate(helper);
  ASSERT_TRUE(object_->EnableFunction("F2", helper.id).ok());
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());

  // Same attack, but now the DFM sees (a) the Type A dependency and (b) the
  // active thread inside F1 — the disable is deferred with kActiveThreads.
  Status disable_result = InternalError("not attempted");
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    disable_result = object_->DisableFunction("F2", helper.id);
  });

  auto result = object_->Call("F1", ByteBuffer::FromString("y"));
  ASSERT_TRUE(result.ok()) << "the in-flight call completed unharmed";
  EXPECT_EQ(result->ToString(), "helper.F2:y");
  EXPECT_EQ(disable_result.code(), ErrorCode::kActiveThreads);
}

// ===== The disappearing component problem =====
//
// A thread executes inside component C; C is removed out from under it.

TEST_F(ProblemsTest, DisappearingComponentGuardedByThreadCounts) {
  testbed_.registry().Register(
      "app/F1", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer::FromString("survived"));
      });
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1")
                  .Build();
  ASSERT_TRUE(comp.ok());
  Incorporate(*comp);
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());

  // kError policy: removal while the thread is inside is rejected outright.
  Status removal = InternalError("not attempted");
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    removal = object_->RemoveComponent(comp->id);
  });
  auto result = object_->Call("F1", ByteBuffer{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "survived");
  EXPECT_EQ(removal.code(), ErrorCode::kActiveThreads);

  // With the thread gone the removal goes through.
  EXPECT_TRUE(object_->RemoveComponent(comp->id).ok());
}

TEST_F(ProblemsTest, DelayPolicyRemovesComponentAfterThreadsDrain) {
  testbed_.registry().Register(
      "app/F1", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer{});
      });
  auto comp = ComponentBuilder("app")
                  .AddFunction("F1", "b(b)", "app/F1")
                  .Build();
  ASSERT_TRUE(comp.ok());
  Incorporate(*comp);
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());

  std::optional<Status> removal;
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(0.5), [&] {
    object_->RemoveComponentWithPolicy(comp->id, Dcdo::RemovalPolicy::Delay(),
                                       [&](Status status) {
                                         removal = status;
                                       });
  });
  ASSERT_TRUE(object_->Call("F1", ByteBuffer{}).ok());
  testbed_.simulation().Run();
  ASSERT_TRUE(removal.has_value());
  EXPECT_TRUE(removal->ok());
  EXPECT_FALSE(object_->mapper().state().HasComponent(comp->id));
}

// Recursive functions: a self-dependency plus activity monitoring keeps a
// recursive function from being disabled while it executes.
TEST_F(ProblemsTest, SelfDependencyProtectsRecursiveFunction) {
  auto comp = testing::MakeEchoComponent(testbed_.registry(), "rec", {"fib"});
  testbed_.registry().Register(
      "rec/fib", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer{});
      });
  Incorporate(comp);
  ASSERT_TRUE(object_->RemapForHost().ok());
  ASSERT_TRUE(object_->EnableFunction("fib", comp.id).ok());
  ASSERT_TRUE(object_->AddDependency(
      Dependency::TypeC("fib", "fib", comp.id)).ok());

  Status disable_result = InternalError("not attempted");
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    disable_result = object_->DisableFunction("fib", comp.id);
  });
  ASSERT_TRUE(object_->Call("fib", ByteBuffer{}).ok());
  EXPECT_EQ(disable_result.code(), ErrorCode::kActiveThreads);
}

}  // namespace
}  // namespace dcdo
