// Migration across a heterogeneous testbed: implementation types decide
// which components can map where, and lazy-on-migrate policies piggyback
// updates on the move (paper Sections 2.1 and 3.4).
#include <gtest/gtest.h>

#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : testbed_(MakeOptions()) {}

  static Testbed::Options MakeOptions() {
    Testbed::Options options;
    options.heterogeneous = true;  // hosts rotate x86/sparc/alpha/nt
    return options;
  }

  void InitManager(std::unique_ptr<EvolutionPolicy> policy) {
    manager_ = std::make_unique<DcdoManager>(
        "het", testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
        &testbed_.registry(), std::move(policy));
  }

  Result<ObjectId> CreateBlocking(std::size_t host_index) {
    std::optional<Result<ObjectId>> out;
    manager_->CreateInstance(testbed_.host(host_index),
                             [&](Result<ObjectId> result) {
                               out.emplace(std::move(result));
                             });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("create never completed"));
  }

  Status MigrateBlocking(const ObjectId& instance, std::size_t host_index) {
    std::optional<Status> out;
    manager_->MigrateInstance(instance, testbed_.host(host_index),
                              [&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("migrate never completed"));
  }

  Testbed testbed_;
  std::unique_ptr<DcdoManager> manager_;
};

TEST_F(MigrationTest, TestbedRotatesArchitectures) {
  EXPECT_EQ(testbed_.host(0)->architecture(), sim::Architecture::kX86Linux);
  EXPECT_EQ(testbed_.host(1)->architecture(),
            sim::Architecture::kSparcSolaris);
  EXPECT_EQ(testbed_.host(2)->architecture(), sim::Architecture::kAlphaOsf);
  EXPECT_EQ(testbed_.host(3)->architecture(), sim::Architecture::kX86Nt);
  EXPECT_EQ(testbed_.host(4)->architecture(), sim::Architecture::kX86Linux);
}

TEST_F(MigrationTest, PortableComponentMigratesAcrossArchitectures) {
  InitManager(MakeSingleVersionExplicit());
  auto comp = testing::MakeEchoComponent(testbed_.registry(), "portable",
                                         {"serve"});
  ASSERT_TRUE(manager_->PublishComponent(comp).ok());
  VersionId v1 = *manager_->CreateRootVersion();
  auto d1 = *manager_->MutableDescriptor(v1);
  ASSERT_TRUE(d1->IncorporateComponent(comp).ok());
  ASSERT_TRUE(d1->EnableFunction("serve", comp.id).ok());
  ASSERT_TRUE(manager_->MarkInstantiable(v1).ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v1).ok());

  auto instance = CreateBlocking(4);  // x86-linux
  ASSERT_TRUE(instance.ok());
  // x86 -> sparc -> alpha, serving at each stop.
  for (std::size_t dest : {1u, 2u}) {
    ASSERT_TRUE(MigrateBlocking(*instance, dest).ok());
    Dcdo* object = manager_->FindInstance(*instance);
    EXPECT_EQ(object->address().node, testbed_.host(dest)->node());
    auto result = object->Call("serve", ByteBuffer::FromString("hi"));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->ToString(), "portable.serve:hi");
  }
}

TEST_F(MigrationTest, NativeOnlyComponentRefusesIncompatibleDestination) {
  InitManager(MakeSingleVersionExplicit());
  // A component whose only build is x86-linux native.
  auto native = ComponentBuilder("native")
                    .SetType(ImplementationType::Native(
                        sim::Architecture::kX86Linux))
                    .AddFunction("serve", "b(b)", "native/serve")
                    .Build();
  ASSERT_TRUE(native.ok());
  testbed_.registry().Register(
      "native/serve", ImplementationType::Native(sim::Architecture::kX86Linux),
      [](CallContext&, const ByteBuffer&) {
        return Result<ByteBuffer>(ByteBuffer::FromString("native"));
      });
  ASSERT_TRUE(manager_->PublishComponent(*native).ok());
  VersionId v1 = *manager_->CreateRootVersion();
  auto d1 = *manager_->MutableDescriptor(v1);
  ASSERT_TRUE(d1->IncorporateComponent(*native).ok());
  ASSERT_TRUE(d1->EnableFunction("serve", native->id).ok());
  ASSERT_TRUE(manager_->MarkInstantiable(v1).ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v1).ok());

  auto instance = CreateBlocking(4);  // x86-linux host
  ASSERT_TRUE(instance.ok());
  // Host 1 is sparc-solaris: the migration must be refused up front.
  Status status = MigrateBlocking(*instance, 1);
  EXPECT_EQ(status.code(), ErrorCode::kArchMismatch);
  // The instance is untouched and still serving on its original host.
  Dcdo* object = manager_->FindInstance(*instance);
  EXPECT_EQ(object->address().node, testbed_.host(4)->node());
  EXPECT_TRUE(object->Call("serve", ByteBuffer{}).ok());
}

TEST_F(MigrationTest, PerArchitectureBuildsSwapOnMigration) {
  InitManager(MakeSingleVersionExplicit());
  // One component, portable *type*, but with per-arch native bodies in the
  // registry: the DCDO keeps the same version yet runs a different build
  // after the move — "functionally equivalent implementations".
  auto comp = ComponentBuilder("multi")
                  .SetType(ImplementationType::Portable())
                  .AddFunction("which", "s()", "multi/which")
                  .Build();
  ASSERT_TRUE(comp.ok());
  for (auto arch : {sim::Architecture::kX86Linux,
                    sim::Architecture::kSparcSolaris,
                    sim::Architecture::kAlphaOsf, sim::Architecture::kX86Nt}) {
    testbed_.registry().Register(
        "multi/which", ImplementationType::Native(arch),
        [arch](CallContext&, const ByteBuffer&) {
          return Result<ByteBuffer>(ByteBuffer::FromString(
              std::string(sim::ArchitectureName(arch))));
        });
  }
  ASSERT_TRUE(manager_->PublishComponent(*comp).ok());
  VersionId v1 = *manager_->CreateRootVersion();
  auto d1 = *manager_->MutableDescriptor(v1);
  ASSERT_TRUE(d1->IncorporateComponent(*comp).ok());
  ASSERT_TRUE(d1->EnableFunction("which", comp->id).ok());
  ASSERT_TRUE(manager_->MarkInstantiable(v1).ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v1).ok());

  auto instance = CreateBlocking(4);  // x86-linux
  ASSERT_TRUE(instance.ok());
  Dcdo* object = manager_->FindInstance(*instance);
  EXPECT_EQ(object->Call("which", ByteBuffer{})->ToString(), "x86-linux");

  ASSERT_TRUE(MigrateBlocking(*instance, 1).ok());  // sparc
  EXPECT_EQ(object->Call("which", ByteBuffer{})->ToString(),
            "sparc-solaris");
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1)
      << "same version, different build";
}

TEST_F(MigrationTest, MigrationFetchesComponentsAtDestination) {
  InitManager(MakeSingleVersionExplicit());
  auto comp = testing::MakeEchoComponent(testbed_.registry(), "heavy",
                                         {"serve"}, /*code_bytes=*/5'100'000);
  ASSERT_TRUE(manager_->PublishComponent(comp).ok());
  VersionId v1 = *manager_->CreateRootVersion();
  auto d1 = *manager_->MutableDescriptor(v1);
  ASSERT_TRUE(d1->IncorporateComponent(comp).ok());
  ASSERT_TRUE(d1->EnableFunction("serve", comp.id).ok());
  ASSERT_TRUE(manager_->MarkInstantiable(v1).ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v1).ok());

  auto instance = CreateBlocking(4);
  ASSERT_TRUE(instance.ok());
  ASSERT_FALSE(testbed_.host(8)->ComponentCached(comp.id));

  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(MigrateBlocking(*instance, 8).ok());
  EXPECT_TRUE(testbed_.host(8)->ComponentCached(comp.id));
  double cold_seconds = (testbed_.simulation().Now() - start).ToSeconds();

  // A second migration to the same host skips the component download; only
  // the state-transfer session remains, so it is measurably cheaper.
  ASSERT_TRUE(MigrateBlocking(*instance, 4).ok());
  start = testbed_.simulation().Now();
  ASSERT_TRUE(MigrateBlocking(*instance, 8).ok());
  double warm_seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GT(cold_seconds, warm_seconds + 0.5)
      << "cold migration pays the 5.1 MB component stream";
  EXPECT_LT(cold_seconds, 10.0);
}

}  // namespace
}  // namespace dcdo
