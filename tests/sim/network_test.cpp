#include "sim/network.h"

#include <gtest/gtest.h>

namespace dcdo::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&simulation_, CostModel{}) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
  }
  Simulation simulation_;
  SimNetwork network_;
};

TEST_F(NetworkTest, NodesStartUp) {
  EXPECT_TRUE(network_.NodeUp(1));
  EXPECT_TRUE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.NodeUp(99));
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  bool delivered = false;
  network_.Send(1, 2, 1024, [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  simulation_.Run();
  EXPECT_TRUE(delivered);
  // 1 KB at 12.5 MB/s = ~82 us wire + 300 us latency.
  double micros = simulation_.Now().ToSeconds() * 1e6;
  EXPECT_GT(micros, 300.0);
  EXPECT_LT(micros, 500.0);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  bool delivered = false;
  network_.Send(1, 1, 1024, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_LT(simulation_.Now().ToSeconds() * 1e6, 50.0);
}

TEST_F(NetworkTest, SenderNicSerializesBackToBackSends) {
  std::vector<int> order;
  // Two large messages from node 1: the second waits for the first's wire
  // time before starting.
  network_.Send(1, 2, 1'000'000, [&] { order.push_back(1); });
  network_.Send(1, 3, 1'000'000, [&] { order.push_back(2); });
  simulation_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Two 1 MB messages at 12.5 MB/s = 160 ms total serialization.
  EXPECT_GT(simulation_.Now().ToSeconds(), 0.159);
}

TEST_F(NetworkTest, MessageToDownNodeIsDropped) {
  network_.SetNodeUp(2, false);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, NodeRecoveryRestoresDelivery) {
  network_.SetNodeUp(2, false);
  network_.SetNodeUp(2, true);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  network_.SetPartitioned(1, 2, true);
  EXPECT_FALSE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.Reachable(2, 1));
  EXPECT_TRUE(network_.Reachable(1, 3));

  bool delivered = false;
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);

  network_.SetPartitioned(1, 2, false);
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionFormedInFlightLosesMessage) {
  bool delivered = false;
  network_.Send(1, 2, 1'000'000, [&] { delivered = true; });
  // Cut the link before the (80 ms) transfer lands.
  simulation_.Schedule(SimDuration::Millis(1),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, BulkTransferTakesDownloadTime) {
  bool done = false;
  network_.BulkTransfer(1, 2, 5'100'000, [&] { done = true; });
  simulation_.Run();
  EXPECT_TRUE(done);
  double seconds = simulation_.Now().ToSeconds();
  EXPECT_GE(seconds, 15.0);
  EXPECT_LE(seconds, 25.0);
}

TEST_F(NetworkTest, BulkTransferToUnreachableDropped) {
  network_.SetNodeUp(2, false);
  bool done = false;
  network_.BulkTransfer(1, 2, 1024, [&] { done = true; });
  simulation_.Run();
  EXPECT_FALSE(done);
}

TEST_F(NetworkTest, CountersTrackTraffic) {
  network_.Send(1, 2, 100, [] {});
  network_.Send(1, 3, 200, [] {});
  simulation_.Run();
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.bytes_sent(), 300u);
}

// TimedTransfer accounting must mirror Send: a successful transfer is one
// sent + one delivered message with zero residual in-flight.
TEST_F(NetworkTest, TimedTransferCountsLikeSend) {
  bool done = false;
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20),
                         [&] { done = true; });
  EXPECT_EQ(network_.messages_sent(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 1u);
  simulation_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(network_.messages_delivered(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
  EXPECT_EQ(network_.bytes_sent(), 4096u);
}

// A transfer cut off mid-flight is accounted as dropped-in-flight, keeping
// sent == delivered + dropped-in-flight + in-flight.
TEST_F(NetworkTest, TimedTransferDropInFlightIsCounted) {
  bool done = false;
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20),
                         [&] { done = true; });
  simulation_.Schedule(SimDuration::Millis(1),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_FALSE(done);
  EXPECT_EQ(network_.messages_sent(), 1u);
  EXPECT_EQ(network_.messages_delivered(), 0u);
  EXPECT_EQ(network_.messages_dropped_in_flight(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
}

TEST_F(NetworkTest, TimedTransferRefusedAtSendIsOnlyDropped) {
  network_.SetNodeUp(2, false);
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20), [] {});
  simulation_.Run();
  EXPECT_EQ(network_.messages_sent(), 0u);
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

class BatchingNetworkTest : public ::testing::Test {
 protected:
  static CostModel BatchingCost() {
    CostModel cost;
    cost.send_batch_window = SimDuration::Millis(1);
    cost.send_batch_max_bytes = 4096;
    return cost;
  }
  BatchingNetworkTest() : network_(&simulation_, BatchingCost()) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
  }
  Simulation simulation_;
  SimNetwork network_;
};

// Back-to-back sends to one destination within the window coalesce into one
// NIC transfer and are delivered together, in FIFO order.
TEST_F(BatchingNetworkTest, CoalescesBackToBackSendsToOneDestination) {
  std::vector<int> order;
  network_.Send(1, 2, 200, [&] { order.push_back(1); });
  network_.Send(1, 2, 200, [&] { order.push_back(2); });
  network_.Send(1, 2, 200, [&] { order.push_back(3); });
  simulation_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(network_.batches_sent(), 1u);
  EXPECT_EQ(network_.messages_coalesced(), 2u);
  EXPECT_EQ(network_.messages_sent(), 3u);
  EXPECT_EQ(network_.messages_delivered(), 3u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
  // One flush window + one wire serialization of 600 B + one latency: well
  // under three separate latency charges plus windows.
  double micros = simulation_.Now().ToSeconds() * 1e6;
  EXPECT_GT(micros, 1300.0);  // window (1000) + latency (300)
  EXPECT_LT(micros, 1500.0);
}

TEST_F(BatchingNetworkTest, DistinctDestinationsBatchIndependently) {
  int delivered = 0;
  network_.Send(1, 2, 100, [&] { ++delivered; });
  network_.Send(1, 3, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network_.batches_sent(), 2u);
  EXPECT_EQ(network_.messages_coalesced(), 0u);
}

// Hitting send_batch_max_bytes flushes immediately; the armed window event
// later finds nothing (and must not flush a successor batch early).
TEST_F(BatchingNetworkTest, ByteCapFlushesEarly) {
  int delivered = 0;
  network_.Send(1, 2, 3000, [&] { ++delivered; });
  network_.Send(1, 2, 3000, [&] { ++delivered; });  // 6000 >= 4096: flush now
  // Opens a fresh batch that must ride its own window, not the stale event.
  network_.Send(1, 2, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(network_.batches_sent(), 2u);
  EXPECT_EQ(network_.messages_coalesced(), 1u);
}

// A partition that forms while a batch is in flight loses every message in
// it, and the accounting records each one.
TEST_F(BatchingNetworkTest, PartitionInFlightDropsWholeBatch) {
  int delivered = 0;
  network_.Send(1, 2, 100, [&] { ++delivered; });
  network_.Send(1, 2, 100, [&] { ++delivered; });
  // Cut the link after the window fires (batch in flight) but before the
  // 300 us latency elapses.
  simulation_.Schedule(SimDuration::Micros(1100),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.messages_dropped_in_flight(), 2u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
}

TEST_F(BatchingNetworkTest, LoopbackBatchesToo) {
  int delivered = 0;
  network_.Send(1, 1, 100, [&] { ++delivered; });
  network_.Send(1, 1, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network_.batches_sent(), 1u);
  EXPECT_EQ(network_.messages_coalesced(), 1u);
}

// With the window at zero (the calibrated default) the batching layer is
// bypassed entirely: same event shape and timing as the legacy path.
TEST_F(NetworkTest, ZeroWindowMatchesLegacyTiming) {
  bool delivered = false;
  network_.Send(1, 2, 1024, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network_.batches_sent(), 0u);
  EXPECT_EQ(network_.messages_coalesced(), 0u);
  // 1 KB at 12.5 MB/s = 81.92 us wire + 300 us latency; no window delay.
  EXPECT_GE(simulation_.Now().nanos(), 381'000);
  EXPECT_LE(simulation_.Now().nanos(), 382'000);
}

}  // namespace
}  // namespace dcdo::sim
