#include "sim/network.h"

#include <gtest/gtest.h>

namespace dcdo::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&simulation_, CostModel{}) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
  }
  Simulation simulation_;
  SimNetwork network_;
};

TEST_F(NetworkTest, NodesStartUp) {
  EXPECT_TRUE(network_.NodeUp(1));
  EXPECT_TRUE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.NodeUp(99));
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  bool delivered = false;
  network_.Send(1, 2, 1024, [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  simulation_.Run();
  EXPECT_TRUE(delivered);
  // 1 KB at 12.5 MB/s = ~82 us wire + 300 us latency.
  double micros = simulation_.Now().ToSeconds() * 1e6;
  EXPECT_GT(micros, 300.0);
  EXPECT_LT(micros, 500.0);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  bool delivered = false;
  network_.Send(1, 1, 1024, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_LT(simulation_.Now().ToSeconds() * 1e6, 50.0);
}

TEST_F(NetworkTest, SenderNicSerializesBackToBackSends) {
  std::vector<int> order;
  // Two large messages from node 1: the second waits for the first's wire
  // time before starting.
  network_.Send(1, 2, 1'000'000, [&] { order.push_back(1); });
  network_.Send(1, 3, 1'000'000, [&] { order.push_back(2); });
  simulation_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Two 1 MB messages at 12.5 MB/s = 160 ms total serialization.
  EXPECT_GT(simulation_.Now().ToSeconds(), 0.159);
}

TEST_F(NetworkTest, MessageToDownNodeIsDropped) {
  network_.SetNodeUp(2, false);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, NodeRecoveryRestoresDelivery) {
  network_.SetNodeUp(2, false);
  network_.SetNodeUp(2, true);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  network_.SetPartitioned(1, 2, true);
  EXPECT_FALSE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.Reachable(2, 1));
  EXPECT_TRUE(network_.Reachable(1, 3));

  bool delivered = false;
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);

  network_.SetPartitioned(1, 2, false);
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionFormedInFlightLosesMessage) {
  bool delivered = false;
  network_.Send(1, 2, 1'000'000, [&] { delivered = true; });
  // Cut the link before the (80 ms) transfer lands.
  simulation_.Schedule(SimDuration::Millis(1),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, BulkTransferTakesDownloadTime) {
  bool done = false;
  network_.BulkTransfer(1, 2, 5'100'000, [&] { done = true; });
  simulation_.Run();
  EXPECT_TRUE(done);
  double seconds = simulation_.Now().ToSeconds();
  EXPECT_GE(seconds, 15.0);
  EXPECT_LE(seconds, 25.0);
}

TEST_F(NetworkTest, BulkTransferToUnreachableDropped) {
  network_.SetNodeUp(2, false);
  bool done = false;
  network_.BulkTransfer(1, 2, 1024, [&] { done = true; });
  simulation_.Run();
  EXPECT_FALSE(done);
}

TEST_F(NetworkTest, CountersTrackTraffic) {
  network_.Send(1, 2, 100, [] {});
  network_.Send(1, 3, 200, [] {});
  simulation_.Run();
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.bytes_sent(), 300u);
}

}  // namespace
}  // namespace dcdo::sim
