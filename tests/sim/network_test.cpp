#include "sim/network.h"

#include <gtest/gtest.h>

namespace dcdo::sim {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : network_(&simulation_, CostModel{}) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
  }
  Simulation simulation_;
  SimNetwork network_;
};

TEST_F(NetworkTest, NodesStartUp) {
  EXPECT_TRUE(network_.NodeUp(1));
  EXPECT_TRUE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.NodeUp(99));
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  bool delivered = false;
  network_.Send(1, 2, 1024, [&] { delivered = true; });
  EXPECT_FALSE(delivered);
  simulation_.Run();
  EXPECT_TRUE(delivered);
  // 1 KB at 12.5 MB/s = ~82 us wire + 300 us latency.
  double micros = simulation_.Now().ToSeconds() * 1e6;
  EXPECT_GT(micros, 300.0);
  EXPECT_LT(micros, 500.0);
}

TEST_F(NetworkTest, LoopbackIsFast) {
  bool delivered = false;
  network_.Send(1, 1, 1024, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_LT(simulation_.Now().ToSeconds() * 1e6, 50.0);
}

TEST_F(NetworkTest, SenderNicSerializesBackToBackSends) {
  std::vector<int> order;
  // Two large messages from node 1: the second waits for the first's wire
  // time before starting.
  network_.Send(1, 2, 1'000'000, [&] { order.push_back(1); });
  network_.Send(1, 3, 1'000'000, [&] { order.push_back(2); });
  simulation_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // Two 1 MB messages at 12.5 MB/s = 160 ms total serialization.
  EXPECT_GT(simulation_.Now().ToSeconds(), 0.159);
}

TEST_F(NetworkTest, MessageToDownNodeIsDropped) {
  network_.SetNodeUp(2, false);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, NodeRecoveryRestoresDelivery) {
  network_.SetNodeUp(2, false);
  network_.SetNodeUp(2, true);
  bool delivered = false;
  network_.Send(1, 2, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  network_.SetPartitioned(1, 2, true);
  EXPECT_FALSE(network_.Reachable(1, 2));
  EXPECT_FALSE(network_.Reachable(2, 1));
  EXPECT_TRUE(network_.Reachable(1, 3));

  bool delivered = false;
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_FALSE(delivered);

  network_.SetPartitioned(1, 2, false);
  network_.Send(2, 1, 64, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(NetworkTest, PartitionFormedInFlightLosesMessage) {
  bool delivered = false;
  network_.Send(1, 2, 1'000'000, [&] { delivered = true; });
  // Cut the link before the (80 ms) transfer lands.
  simulation_.Schedule(SimDuration::Millis(1),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, BulkTransferTakesDownloadTime) {
  bool done = false;
  network_.BulkTransfer(1, 2, 5'100'000, [&] { done = true; });
  simulation_.Run();
  EXPECT_TRUE(done);
  double seconds = simulation_.Now().ToSeconds();
  EXPECT_GE(seconds, 15.0);
  EXPECT_LE(seconds, 25.0);
}

TEST_F(NetworkTest, BulkTransferToUnreachableDropped) {
  network_.SetNodeUp(2, false);
  bool done = false;
  network_.BulkTransfer(1, 2, 1024, [&] { done = true; });
  simulation_.Run();
  EXPECT_FALSE(done);
}

TEST_F(NetworkTest, CountersTrackTraffic) {
  network_.Send(1, 2, 100, [] {});
  network_.Send(1, 3, 200, [] {});
  simulation_.Run();
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.bytes_sent(), 300u);
}

// TimedTransfer accounting must mirror Send: a successful transfer is one
// sent + one delivered message with zero residual in-flight.
TEST_F(NetworkTest, TimedTransferCountsLikeSend) {
  bool done = false;
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20),
                         [&] { done = true; });
  EXPECT_EQ(network_.messages_sent(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 1u);
  simulation_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(network_.messages_delivered(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
  EXPECT_EQ(network_.bytes_sent(), 4096u);
}

// A transfer cut off mid-flight is accounted as dropped-in-flight, keeping
// sent == delivered + dropped-in-flight + in-flight.
TEST_F(NetworkTest, TimedTransferDropInFlightIsCounted) {
  bool done = false;
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20),
                         [&] { done = true; });
  simulation_.Schedule(SimDuration::Millis(1),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_FALSE(done);
  EXPECT_EQ(network_.messages_sent(), 1u);
  EXPECT_EQ(network_.messages_delivered(), 0u);
  EXPECT_EQ(network_.messages_dropped_in_flight(), 1u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
}

TEST_F(NetworkTest, TimedTransferRefusedAtSendIsOnlyDropped) {
  network_.SetNodeUp(2, false);
  network_.TimedTransfer(1, 2, 4096, SimDuration::Millis(20), [] {});
  simulation_.Run();
  EXPECT_EQ(network_.messages_sent(), 0u);
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

class BatchingNetworkTest : public ::testing::Test {
 protected:
  static CostModel BatchingCost() {
    CostModel cost;
    cost.send_batch_window = SimDuration::Millis(1);
    cost.send_batch_max_bytes = 4096;
    return cost;
  }
  BatchingNetworkTest() : network_(&simulation_, BatchingCost()) {
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
  }
  Simulation simulation_;
  SimNetwork network_;
};

// Back-to-back sends to one destination within the window coalesce into one
// NIC transfer and are delivered together, in FIFO order.
TEST_F(BatchingNetworkTest, CoalescesBackToBackSendsToOneDestination) {
  std::vector<int> order;
  network_.Send(1, 2, 200, [&] { order.push_back(1); });
  network_.Send(1, 2, 200, [&] { order.push_back(2); });
  network_.Send(1, 2, 200, [&] { order.push_back(3); });
  simulation_.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(network_.batches_sent(), 1u);
  EXPECT_EQ(network_.messages_coalesced(), 2u);
  EXPECT_EQ(network_.messages_sent(), 3u);
  EXPECT_EQ(network_.messages_delivered(), 3u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
  // One flush window + one wire serialization of 600 B + one latency: well
  // under three separate latency charges plus windows.
  double micros = simulation_.Now().ToSeconds() * 1e6;
  EXPECT_GT(micros, 1300.0);  // window (1000) + latency (300)
  EXPECT_LT(micros, 1500.0);
}

TEST_F(BatchingNetworkTest, DistinctDestinationsBatchIndependently) {
  int delivered = 0;
  network_.Send(1, 2, 100, [&] { ++delivered; });
  network_.Send(1, 3, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network_.batches_sent(), 2u);
  EXPECT_EQ(network_.messages_coalesced(), 0u);
}

// Hitting send_batch_max_bytes flushes immediately; the armed window event
// later finds nothing (and must not flush a successor batch early).
TEST_F(BatchingNetworkTest, ByteCapFlushesEarly) {
  int delivered = 0;
  network_.Send(1, 2, 3000, [&] { ++delivered; });
  network_.Send(1, 2, 3000, [&] { ++delivered; });  // 6000 >= 4096: flush now
  // Opens a fresh batch that must ride its own window, not the stale event.
  network_.Send(1, 2, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(network_.batches_sent(), 2u);
  EXPECT_EQ(network_.messages_coalesced(), 1u);
}

// A partition that forms while a batch is in flight loses every message in
// it, and the accounting records each one.
TEST_F(BatchingNetworkTest, PartitionInFlightDropsWholeBatch) {
  int delivered = 0;
  network_.Send(1, 2, 100, [&] { ++delivered; });
  network_.Send(1, 2, 100, [&] { ++delivered; });
  // Cut the link after the window fires (batch in flight) but before the
  // 300 us latency elapses.
  simulation_.Schedule(SimDuration::Micros(1100),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(network_.messages_sent(), 2u);
  EXPECT_EQ(network_.messages_dropped_in_flight(), 2u);
  EXPECT_EQ(network_.messages_in_flight(), 0u);
}

TEST_F(BatchingNetworkTest, LoopbackBatchesToo) {
  int delivered = 0;
  network_.Send(1, 1, 100, [&] { ++delivered; });
  network_.Send(1, 1, 100, [&] { ++delivered; });
  simulation_.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(network_.batches_sent(), 1u);
  EXPECT_EQ(network_.messages_coalesced(), 1u);
}

// ===== StreamTransfer: fair-shared link capacity =====

// A stream with the link to itself runs at its peak rate:
// setup + bytes/peak + latency, exactly what TimedTransfer would charge.
TEST_F(NetworkTest, SoloStreamRunsAtPeakRate) {
  bool delivered = false;
  // 7.5 MB at a 7.5 MB/s peak (the component-transfer goodput): 1 s wire.
  network_.StreamTransfer(1, 2, 7'500'000, SimDuration::Millis(160), 7.5e6,
                          [&](bool ok) { delivered = ok; });
  EXPECT_EQ(network_.active_streams(), 0u);  // still in setup
  simulation_.Run();
  EXPECT_TRUE(delivered);
  double seconds = simulation_.Now().ToSeconds();
  EXPECT_NEAR(seconds, 0.160 + 1.0 + 300e-6, 1e-9);
}

// Two concurrent streams out of one node halve each other's rate: the
// bottleneck is the shared NIC (12.5 MB/s wire), not the per-stream peak.
TEST_F(NetworkTest, ConcurrentStreamsFairShareTheLink) {
  int delivered = 0;
  // Each alone: 6.25 MB at min(7.5, 12.5) = 7.5 MB/s -> 0.833 s.
  // Together: 6.25 MB at 12.5/2 = 6.25 MB/s -> 1 s each.
  network_.StreamTransfer(1, 2, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [&](bool ok) { delivered += ok; });
  network_.StreamTransfer(1, 3, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [&](bool ok) { delivered += ok; });
  simulation_.Run();
  EXPECT_EQ(delivered, 2);
  double seconds = simulation_.Now().ToSeconds();
  EXPECT_NEAR(seconds, 1.0 + 300e-6, 1e-6);
}

// When a stream finishes, the survivors recompute their share and speed up:
// the big stream's tail runs at full rate once the small one is done.
TEST_F(NetworkTest, FinishReshapesSurvivors) {
  double small_done = 0, big_done = 0;
  network_.StreamTransfer(1, 2, 6'250'000, SimDuration::Zero(), 1e9,
                          [&](bool) { small_done = simulation_.Now().ToSeconds(); });
  network_.StreamTransfer(1, 3, 12'500'000, SimDuration::Zero(), 1e9,
                          [&](bool) { big_done = simulation_.Now().ToSeconds(); });
  simulation_.Run();
  // Shared phase: both at 6.25 MB/s. Small: 1 s. Big then has ~6.25 MB left
  // and the wire to itself (12.5 MB/s): ~0.5 s more. Without the reshare it
  // would finish at 2 s.
  EXPECT_NEAR(small_done, 1.0 + 300e-6, 1e-6);
  EXPECT_GT(big_done, 1.49);
  EXPECT_LT(big_done, 1.52);
}

// Sharing is per endpoint, both sides: two streams into one destination
// halve each other even though their sources differ, while streams on
// disjoint node pairs run at full solo rate.
TEST_F(NetworkTest, SharingIsPerEndpoint) {
  network_.AddNode(4);
  double into2 = 0, disjoint = 0;
  network_.StreamTransfer(1, 2, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [&](bool) { into2 = simulation_.Now().ToSeconds(); });
  network_.StreamTransfer(3, 2, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [](bool) {});
  network_.StreamTransfer(1, 4, 100, SimDuration::Zero(), 7.5e6, [](bool) {});
  simulation_.Run();
  // 1 -> 2 shared node 2 with 3 -> 2 (and node 1, briefly, with the tiny
  // 1 -> 4 stream): it cannot beat the half-share finish time.
  EXPECT_GT(into2, 1.0);
  // Re-run disjoint pairs in a quiet network epoch: 1 -> 2 and 3 -> 4
  // share no endpoint, so each runs at its solo 0.833 s.
  network_.StreamTransfer(3, 4, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [](bool) {});
  network_.StreamTransfer(1, 2, 6'250'000, SimDuration::Zero(), 7.5e6,
                          [&](bool) {
                            disjoint = simulation_.Now().ToSeconds() - into2;
                          });
  simulation_.Run();
  EXPECT_NEAR(disjoint, 6'250'000 / 7.5e6 + 300e-6, 1e-5);
}

TEST_F(NetworkTest, StreamToUnreachableNodeFails) {
  network_.SetPartitioned(1, 2, true);
  bool called = false, delivered = true;
  network_.StreamTransfer(1, 2, 1000, SimDuration::Zero(), 7.5e6,
                          [&](bool ok) {
                            called = true;
                            delivered = ok;
                          });
  EXPECT_FALSE(called);  // failure is deferred, never re-enters the caller
  simulation_.Run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(delivered);
}

// A partition that forms mid-stream drops the transfer at delivery time.
TEST_F(NetworkTest, PartitionMidStreamDropsTransfer) {
  bool called = false, delivered = true;
  network_.StreamTransfer(1, 2, 7'500'000, SimDuration::Zero(), 7.5e6,
                          [&](bool ok) {
                            called = true;
                            delivered = ok;
                          });
  simulation_.Schedule(SimDuration::Millis(500),
                       [&] { network_.SetPartitioned(1, 2, true); });
  simulation_.Run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(delivered);
}

TEST_F(NetworkTest, ActiveStreamsTracksWirePhase) {
  std::size_t during = 99;
  network_.StreamTransfer(1, 2, 7'500'000, SimDuration::Millis(100), 7.5e6,
                          [](bool) {});
  simulation_.Schedule(SimDuration::Millis(500),
                       [&] { during = network_.active_streams(); });
  simulation_.Run();
  EXPECT_EQ(during, 1u);
  EXPECT_EQ(network_.active_streams(), 0u);
}

// With the window at zero (the calibrated default) the batching layer is
// bypassed entirely: same event shape and timing as the legacy path.
TEST_F(NetworkTest, ZeroWindowMatchesLegacyTiming) {
  bool delivered = false;
  network_.Send(1, 2, 1024, [&] { delivered = true; });
  simulation_.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(network_.batches_sent(), 0u);
  EXPECT_EQ(network_.messages_coalesced(), 0u);
  // 1 KB at 12.5 MB/s = 81.92 us wire + 300 us latency; no window delay.
  EXPECT_GE(simulation_.Now().nanos(), 381'000);
  EXPECT_LE(simulation_.Now().nanos(), 382'000);
}

}  // namespace
}  // namespace dcdo::sim
