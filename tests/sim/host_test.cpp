#include "sim/host.h"

#include <gtest/gtest.h>

#include "common/object_id.h"

namespace dcdo::sim {
namespace {

class HostTest : public ::testing::Test {
 protected:
  HostTest()
      : network_(&simulation_, CostModel{}),
        host_(&simulation_, &network_, 1, Architecture::kX86Linux) {}

  Simulation simulation_;
  SimNetwork network_;
  SimHost host_;
};

TEST_F(HostTest, ArchitectureNames) {
  EXPECT_EQ(ArchitectureName(Architecture::kX86Linux), "x86-linux");
  EXPECT_EQ(ArchitectureName(Architecture::kSparcSolaris), "sparc-solaris");
  EXPECT_EQ(ArchitectureName(Architecture::kAlphaOsf), "alpha-osf");
  EXPECT_EQ(ArchitectureName(Architecture::kX86Nt), "x86-nt");
}

TEST_F(HostTest, SpawnChargesProcessCost) {
  ObjectId owner = ObjectId::Next(domains::kInstance);
  ProcessId pid = 0;
  host_.SpawnProcess(owner, 550'000, [&](ProcessId p) { pid = p; });
  EXPECT_EQ(pid, 0u);  // not yet
  simulation_.Run();
  ASSERT_NE(pid, 0u);
  EXPECT_TRUE(host_.ProcessAlive(pid));
  EXPECT_EQ(host_.ProcessOwner(pid), owner);
  // Spawn (1.6 s) + executable load from disk.
  EXPECT_GT(simulation_.Now().ToSeconds(), 1.6);
  EXPECT_LT(simulation_.Now().ToSeconds(), 2.0);
}

TEST_F(HostTest, AdoptProcessIsImmediateAndFree) {
  ObjectId owner = ObjectId::Next(domains::kIco);
  ProcessId pid = host_.AdoptProcess(owner);
  EXPECT_TRUE(host_.ProcessAlive(pid));
  EXPECT_EQ(simulation_.Now(), SimTime::Zero());
}

TEST_F(HostTest, KillProcessRemoves) {
  ProcessId pid = host_.AdoptProcess(ObjectId::Next(domains::kInstance));
  EXPECT_TRUE(host_.KillProcess(pid).ok());
  EXPECT_FALSE(host_.ProcessAlive(pid));
  EXPECT_EQ(host_.KillProcess(pid).code(), ErrorCode::kNotFound);
}

TEST_F(HostTest, SpawnOnDeadHostNeverCompletes) {
  host_.SetUp(false);
  bool spawned = false;
  host_.SpawnProcess(ObjectId::Next(domains::kInstance), 1024,
                     [&](ProcessId) { spawned = true; });
  simulation_.Run();
  EXPECT_FALSE(spawned);
}

TEST_F(HostTest, FileStore) {
  EXPECT_FALSE(host_.HasFile("exec/a"));
  host_.StoreFile("exec/a", 5'100'000);
  EXPECT_TRUE(host_.HasFile("exec/a"));
  EXPECT_EQ(host_.FileSize("exec/a"), 5'100'000u);
  host_.RemoveFile("exec/a");
  EXPECT_FALSE(host_.HasFile("exec/a"));
  EXPECT_EQ(host_.FileSize("exec/a"), std::nullopt);
}

TEST_F(HostTest, ComponentCache) {
  ObjectId comp = ObjectId::Next(domains::kComponent);
  EXPECT_FALSE(host_.ComponentCached(comp));
  host_.CacheComponent(comp, 64 * 1024);
  EXPECT_TRUE(host_.ComponentCached(comp));
  EXPECT_EQ(host_.CachedComponentSize(comp), 64u * 1024);
  EXPECT_EQ(host_.cached_component_count(), 1u);
  host_.EvictComponent(comp);
  EXPECT_FALSE(host_.ComponentCached(comp));
}

// ===== Bounded component cache (LRU) =====

class BoundedCacheHostTest : public ::testing::Test {
 protected:
  static CostModel SmallCache() {
    CostModel cost;
    cost.component_cache_capacity = 2;
    return cost;
  }
  BoundedCacheHostTest()
      : network_(&simulation_, SmallCache()),
        host_(&simulation_, &network_, 1, Architecture::kX86Linux) {}

  Simulation simulation_;
  SimNetwork network_;
  SimHost host_;
};

TEST_F(BoundedCacheHostTest, EvictsLeastRecentlyUsed) {
  ObjectId a = ObjectId::Next(domains::kComponent);
  ObjectId b = ObjectId::Next(domains::kComponent);
  ObjectId c = ObjectId::Next(domains::kComponent);
  host_.CacheComponent(a, 100);
  host_.CacheComponent(b, 200);
  host_.CacheComponent(c, 300);  // capacity 2: a (oldest) goes
  EXPECT_FALSE(host_.ComponentCached(a));
  EXPECT_TRUE(host_.ComponentCached(b));
  EXPECT_TRUE(host_.ComponentCached(c));
  EXPECT_EQ(host_.cached_component_count(), 2u);
  EXPECT_EQ(host_.component_evictions(), 1u);
}

TEST_F(BoundedCacheHostTest, LookupRefreshesRecency) {
  ObjectId a = ObjectId::Next(domains::kComponent);
  ObjectId b = ObjectId::Next(domains::kComponent);
  ObjectId c = ObjectId::Next(domains::kComponent);
  host_.CacheComponent(a, 100);
  host_.CacheComponent(b, 200);
  EXPECT_TRUE(host_.ComponentCached(a));  // touch: a becomes most-recent
  host_.CacheComponent(c, 300);           // so b, not a, is evicted
  EXPECT_TRUE(host_.ComponentCached(a));
  EXPECT_FALSE(host_.ComponentCached(b));
  EXPECT_TRUE(host_.ComponentCached(c));
}

TEST_F(BoundedCacheHostTest, RecacheUpdatesInPlace) {
  ObjectId a = ObjectId::Next(domains::kComponent);
  ObjectId b = ObjectId::Next(domains::kComponent);
  host_.CacheComponent(a, 100);
  host_.CacheComponent(b, 200);
  host_.CacheComponent(a, 150);  // refresh, not a third entry
  EXPECT_EQ(host_.cached_component_count(), 2u);
  EXPECT_EQ(host_.CachedComponentSize(a), 150u);
  EXPECT_EQ(host_.component_evictions(), 0u);
}

// Capacity 0 disables the bound entirely.
TEST(UnboundedCacheHostTest, ZeroCapacityNeverEvicts) {
  Simulation simulation;
  CostModel cost;
  cost.component_cache_capacity = 0;
  SimNetwork network(&simulation, cost);
  SimHost host(&simulation, &network, 1, Architecture::kX86Linux);
  for (int i = 0; i < 100; ++i) {
    host.CacheComponent(ObjectId::Next(domains::kComponent), 64);
  }
  EXPECT_EQ(host.cached_component_count(), 100u);
  EXPECT_EQ(host.component_evictions(), 0u);
}

TEST_F(HostTest, PidsAreUnique) {
  ProcessId a = host_.AdoptProcess(ObjectId::Next(domains::kInstance));
  ProcessId b = host_.AdoptProcess(ObjectId::Next(domains::kInstance));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dcdo::sim
