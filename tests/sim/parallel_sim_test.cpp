// Unit coverage for the conservative locality executor (DESIGN.md §14):
// the Simulation facade over ParallelExecutor. The scenarios here drive the
// raw engine (no testbed); end-to-end determinism over the full substrate is
// tests/sim/parallel_determinism_test.cpp.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "sim/locality.h"
#include "sim/parallel_sim.h"
#include "sim/simulation.h"

namespace dcdo::sim {
namespace {

// Exercise the real worker pool (and its barrier protocol) regardless of
// how many cores the host has; the single-CPU inline fallback is covered
// explicitly by InlineFallbackMatchesThreadedExecution below.
const bool kForceThreads = [] {
  setenv("DCDO_SIM_THREADS", "1", /*overwrite=*/1);
  return true;
}();

constexpr SimDuration kLookahead = SimDuration::Micros(100);
// Cross-locality schedules in these tests always use >= lookahead delay —
// the same contract SimNetwork's link latency enforces for the real system.
constexpr SimDuration kCrossDelay = SimDuration::Micros(150);

TEST(ConfigureParallelTest, RejectsBadWorkerCounts) {
  {
    Simulation sim;
    EXPECT_FALSE(sim.ConfigureParallel(0, kLookahead).ok());
  }
  {
    Simulation sim;
    EXPECT_FALSE(sim.ConfigureParallel(kMaxSimWorkers + 1, kLookahead).ok());
  }
}

TEST(ConfigureParallelTest, RejectsNonPositiveLookahead) {
  Simulation sim;
  EXPECT_FALSE(sim.ConfigureParallel(2, SimDuration::Zero()).ok());
  EXPECT_FALSE(sim.ConfigureParallel(2, SimDuration::Micros(-5)).ok());
}

TEST(ConfigureParallelTest, RequiresFreshSimulation) {
  Simulation sim;
  sim.Schedule(SimDuration::Micros(1), [] {});
  EXPECT_FALSE(sim.ConfigureParallel(2, kLookahead).ok());
}

TEST(ConfigureParallelTest, RejectsDoubleConfiguration) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  EXPECT_FALSE(sim.ConfigureParallel(2, kLookahead).ok());
}

TEST(ParallelSimTest, RunsMixedAffinityWorkload) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(4, kLookahead).ok());
  std::atomic<int> node_events{0};
  int global_events = 0;  // global locality is serial: no atomic needed
  for (std::uint32_t node = 0; node < 8; ++node) {
    sim.ScheduleFor(node, SimDuration::Micros(10 + node),
                    [&] { node_events.fetch_add(1); });
  }
  for (int i = 0; i < 3; ++i) {
    sim.ScheduleGlobal(SimDuration::Micros(20 * i), [&] { ++global_events; });
  }
  EXPECT_EQ(sim.pending_events(), 11u);
  std::size_t fired = sim.Run();
  EXPECT_EQ(fired, 11u);
  EXPECT_EQ(node_events.load(), 8);
  EXPECT_EQ(global_events, 3);
  EXPECT_TRUE(sim.Idle());
  EXPECT_EQ(sim.events_fired(), 11u);
  // Run() unifies every locality clock on the final event's timestamp (the
  // last global event, at 40 us).
  EXPECT_EQ(sim.Now().nanos(), 40'000);
  EXPECT_EQ(sim.executor()->late_remote_events(), 0u);
}

TEST(ParallelSimTest, SameAffinitySameTimeKeepsFifoOrder) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  std::vector<int> order;  // affinity 5 fires on one thread: safe unshared
  for (int i = 0; i < 6; ++i) {
    sim.ScheduleFor(5, SimDuration::Micros(40), [&order, i] {
      order.push_back(i);
    });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ParallelSimTest, EventsInheritSchedulingAffinity) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(4, kLookahead).ok());
  std::atomic<std::uint32_t> seen{~0u};
  sim.ScheduleFor(7, SimDuration::Micros(10), [&] {
    // Plain Schedule from a node-7 event: the follow-up runs at node-7
    // affinity on the same locality, any delay allowed (no mailbox hop).
    sim.Schedule(SimDuration::Micros(1), [&] {
      seen.store(sim.CurrentAffinity());
    });
  });
  sim.Run();
  EXPECT_EQ(seen.load(), 7u);
}

TEST(ParallelSimTest, CrossLocalityScheduleFromWorkerLandsViaMailbox) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(4, kLookahead).ok());
  std::atomic<std::uint64_t> cross_id{1};  // sentinel: not yet scheduled
  std::atomic<bool> landed{false};
  // Nodes 1 and 2 live on different localities (1 % 4 != 2 % 4); keep both
  // busy so the single-participant inline path cannot absorb the window.
  sim.ScheduleFor(2, SimDuration::Micros(10), [] {});
  sim.ScheduleFor(1, SimDuration::Micros(10), [&] {
    cross_id.store(sim.ScheduleFor(2, kCrossDelay, [&] {
      landed.store(true);
    }));
  });
  sim.Run();
  // A worker scheduling into another locality gets the uncancellable
  // sentinel id 0; the event still fires after the barrier resolves it.
  EXPECT_EQ(cross_id.load(), 0u);
  EXPECT_TRUE(landed.load());
  EXPECT_EQ(sim.executor()->late_remote_events(), 0u);
}

TEST(ParallelSimTest, WorkerToGlobalNeedsNoLookahead) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  bool control_ran = false;
  sim.ScheduleFor(3, SimDuration::Micros(10), [&] {
    // Zero-delay push into the control plane: legal because the global
    // locality never runs concurrently with workers.
    sim.ScheduleGlobal(SimDuration::Zero(), [&] { control_ran = true; });
  });
  sim.Run();
  EXPECT_TRUE(control_ran);
  EXPECT_EQ(sim.executor()->late_remote_events(), 0u);
}

TEST(ParallelSimTest, CoordinatorCancelReachesAnyLocality) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(4, kLookahead).ok());
  std::atomic<int> fired{0};
  std::uint64_t doomed = sim.ScheduleFor(6, SimDuration::Micros(50),
                                         [&] { fired.fetch_add(1); });
  std::uint64_t kept = sim.ScheduleFor(6, SimDuration::Micros(60),
                                       [&] { fired.fetch_add(1); });
  ASSERT_NE(doomed, 0u);
  ASSERT_NE(kept, 0u);
  ASSERT_NE(doomed, kept);
  sim.Cancel(doomed);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired.load(), 1);
}

TEST(ParallelSimTest, TimerArmedAndCancelledAtOneAffinity) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  std::atomic<bool> timer_fired{false};
  sim.ScheduleFor(4, SimDuration::Micros(10), [&] {
    // The repo-wide timer convention: arm at your own affinity (direct
    // insert, real id back), cancel later from the same affinity.
    std::uint64_t timer = sim.Schedule(SimDuration::Millis(5), [&] {
      timer_fired.store(true);
    });
    EXPECT_NE(timer, 0u);
    sim.Schedule(SimDuration::Micros(1), [&sim, timer] {
      sim.Cancel(timer);
    });
  });
  sim.Run();
  EXPECT_FALSE(timer_fired.load());
}

TEST(ParallelSimTest, RunUntilFiresAtDeadlineAndAdvancesClock) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  std::atomic<int> count{0};
  sim.ScheduleFor(0, SimDuration::Millis(1), [&] { count.fetch_add(1); });
  sim.ScheduleFor(1, SimDuration::Millis(2), [&] { count.fetch_add(1); });
  sim.ScheduleFor(0, SimDuration::Millis(3), [&] { count.fetch_add(1); });
  std::size_t fired = sim.RunUntil(SimTime::Zero() + SimDuration::Millis(2));
  EXPECT_EQ(fired, 2u);  // legacy semantics: events AT the deadline fire
  EXPECT_EQ(count.load(), 2);
  EXPECT_EQ(sim.Now(), SimTime::Zero() + SimDuration::Millis(2));
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelSimTest, RunWhileStopsAtNextBarrier) {
  Simulation sim;
  ASSERT_TRUE(sim.ConfigureParallel(2, kLookahead).ok());
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleFor(static_cast<std::uint32_t>(i % 2),
                    SimDuration::Millis(1 + i), [&] { count.fetch_add(1); });
  }
  EXPECT_TRUE(sim.RunWhile([&] { return count.load() < 4; }));
  // Worker windows are not interruptible: the predicate flips mid-window and
  // is noticed at the barrier, so at least 4 events ran and some pending work
  // remains.
  EXPECT_GE(count.load(), 4);
  EXPECT_GT(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.RunWhile([&] { return count.load() < 100; }));
  EXPECT_EQ(count.load(), 10);
}

// --- Determinism digest across modes and worker counts ---------------------

// A deterministic mixed workload: per-node ping chains that hop across
// localities (explicit affinity, >= lookahead delay — the SimNetwork
// contract), local follow-ups via inherited affinity, and control-plane
// events that spray work onto nodes. Exactly the interaction shapes the real
// substrate produces, minus the substrate.
constexpr int kNodes = 8;
constexpr int kHops = 12;

void Hop(Simulation& sim, std::uint32_t node, int hops_left,
         std::atomic<std::uint64_t>& done) {
  if (hops_left == 0) {
    done.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t next = (node + 3) % kNodes;
  sim.ScheduleFor(next, kCrossDelay, [&sim, next, hops_left, &done] {
    Hop(sim, next, hops_left - 1, done);
  });
  // A same-locality follow-up, small delay: exercises direct insert.
  sim.Schedule(SimDuration::Micros(7), [] {});
}

std::uint64_t RunPingWorkload(Simulation& sim, std::uint64_t* fired) {
  sim.EnableDeterminismDigest(true);
  std::atomic<std::uint64_t> done{0};
  for (std::uint32_t node = 0; node < kNodes; ++node) {
    sim.ScheduleFor(node, SimDuration::Micros(10 + node),
                    [&sim, node, &done] { Hop(sim, node, kHops, done); });
  }
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t target = static_cast<std::uint32_t>(i * 2);
    sim.ScheduleGlobal(SimDuration::Micros(120 * i),
                       [&sim, target, &done] {
                         sim.ScheduleFor(target, kCrossDelay,
                                         [&sim, target, &done] {
                                           Hop(sim, target, 2, done);
                                         });
                       });
  }
  sim.Run();
  EXPECT_EQ(done.load(), static_cast<std::uint64_t>(kNodes + 4));
  *fired = sim.events_fired();
  return sim.DeterminismDigest();
}

TEST(ParallelDigestTest, IdenticalAcrossLegacyAndEveryWorkerCount) {
  std::uint64_t legacy_fired = 0;
  std::uint64_t legacy_digest;
  {
    Simulation sim;
    legacy_digest = RunPingWorkload(sim, &legacy_fired);
  }
  ASSERT_GT(legacy_fired, 0u);
  for (int workers : {1, 2, 4, 8}) {
    Simulation sim;
    ASSERT_TRUE(sim.ConfigureParallel(workers, kLookahead).ok());
    std::uint64_t fired = 0;
    std::uint64_t digest = RunPingWorkload(sim, &fired);
    EXPECT_EQ(fired, legacy_fired) << workers << " workers";
    EXPECT_EQ(digest, legacy_digest) << workers << " workers";
    EXPECT_EQ(sim.executor()->late_remote_events(), 0u)
        << workers << " workers";
  }
}

TEST(ParallelDigestTest, InlineFallbackMatchesThreadedExecution) {
  // On hosts that cannot co-run the pool the executor runs windows inline
  // on the coordinator (DCDO_SIM_THREADS=0 forces that mode). The contract
  // is bit-identical results — same digest, same event count.
  auto run_with_threads_env = [](const char* value, std::uint64_t* fired) {
    setenv("DCDO_SIM_THREADS", value, /*overwrite=*/1);
    Simulation sim;
    EXPECT_TRUE(sim.ConfigureParallel(4, kLookahead).ok());
    std::uint64_t digest = RunPingWorkload(sim, fired);
    EXPECT_EQ(sim.executor()->late_remote_events(), 0u);
    return digest;
  };
  std::uint64_t threaded_fired = 0;
  std::uint64_t inline_fired = 0;
  const std::uint64_t threaded = run_with_threads_env("1", &threaded_fired);
  const std::uint64_t serial = run_with_threads_env("0", &inline_fired);
  setenv("DCDO_SIM_THREADS", "1", /*overwrite=*/1);  // restore for the suite
  ASSERT_GT(threaded_fired, 0u);
  EXPECT_EQ(inline_fired, threaded_fired);
  EXPECT_EQ(serial, threaded);
}

TEST(ParallelDigestTest, DivergentWorkloadsDiverge) {
  // Sanity on the instrument itself: a one-event timestamp difference must
  // change the digest, or the equality assertions above prove nothing.
  auto digest_with_extra_delay = [](SimDuration extra) {
    Simulation sim;
    sim.EnableDeterminismDigest(true);
    sim.ScheduleFor(1, SimDuration::Micros(10), [] {});
    sim.ScheduleFor(2, SimDuration::Micros(20) + extra, [] {});
    sim.Run();
    return sim.DeterminismDigest();
  };
  EXPECT_NE(digest_with_extra_delay(SimDuration::Zero()),
            digest_with_extra_delay(SimDuration::Nanos(1)));
}

}  // namespace
}  // namespace dcdo::sim
