#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace dcdo::sim {
namespace {

TEST(SimulationTest, StartsAtZeroAndIdle) {
  Simulation simulation;
  EXPECT_EQ(simulation.Now(), SimTime::Zero());
  EXPECT_TRUE(simulation.Idle());
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  simulation.Schedule(SimDuration::Millis(30), [&] { order.push_back(3); });
  simulation.Schedule(SimDuration::Millis(10), [&] { order.push_back(1); });
  simulation.Schedule(SimDuration::Millis(20), [&] { order.push_back(2); });
  EXPECT_EQ(simulation.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Millis(30));
}

TEST(SimulationTest, SameTimeEventsFireFifo) {
  Simulation simulation;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    simulation.Schedule(SimDuration::Millis(10),
                        [&order, i] { order.push_back(i); });
  }
  simulation.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, HandlersCanScheduleMoreEvents) {
  Simulation simulation;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 4) simulation.Schedule(SimDuration::Millis(5), chain);
  };
  simulation.Schedule(SimDuration::Millis(5), chain);
  simulation.Run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(simulation.Now().ToSeconds(), 0.020);
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation simulation;
  bool fired = false;
  std::uint64_t id =
      simulation.Schedule(SimDuration::Millis(5), [&] { fired = true; });
  simulation.Cancel(id);
  simulation.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelIsSelective) {
  Simulation simulation;
  int fired = 0;
  std::uint64_t id =
      simulation.Schedule(SimDuration::Millis(5), [&] { ++fired; });
  simulation.Schedule(SimDuration::Millis(6), [&] { ++fired; });
  simulation.Cancel(id);
  simulation.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulationTest, CancelScalesToTenThousandTimers) {
  // The retry/timeout pattern at scale: 10k timers scheduled, most cancelled
  // before firing. Cancellation is O(1) per timer (a tombstone set, not a
  // queue scan), so this is quick even though every cancelled event is still
  // popped and skipped by the run loop.
  constexpr int kTimers = 10'000;
  Simulation simulation;
  int fired = 0;
  std::vector<std::uint64_t> ids;
  ids.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    ids.push_back(
        simulation.Schedule(SimDuration::Micros(i + 1), [&] { ++fired; }));
  }
  // Cancel all but every 100th timer, in reverse order (no relation between
  // cancel order and queue order).
  for (int i = kTimers - 1; i >= 0; --i) {
    if (i % 100 != 0) simulation.Cancel(ids[i]);
  }
  // Cancelling an already-cancelled or unknown id is a harmless no-op.
  simulation.Cancel(ids[1]);
  simulation.Cancel(123456789u);
  simulation.Run();
  EXPECT_EQ(fired, kTimers / 100);
  // The clock advanced to the last *surviving* timer: cancelled events are
  // skipped without moving simulated time.
  EXPECT_EQ(simulation.Now(),
            SimTime::Zero() + SimDuration::Micros(9'901));
  EXPECT_TRUE(simulation.Idle());
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation simulation;
  std::vector<int> order;
  simulation.Schedule(SimDuration::Millis(10), [&] { order.push_back(1); });
  simulation.Schedule(SimDuration::Millis(30), [&] { order.push_back(2); });
  simulation.RunUntil(SimTime::Zero() + SimDuration::Millis(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Millis(20));
  simulation.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// Re-entrant RunUntil is how DCDO bodies "block on an outcall" while the
// rest of the system proceeds; the engine must tolerate it.
TEST(SimulationTest, ReentrantRunUntilFiresInterveningEvents) {
  Simulation simulation;
  std::vector<std::string> trace;
  simulation.Schedule(SimDuration::Millis(10), [&] {
    trace.push_back("outer-start");
    simulation.RunUntil(simulation.Now() + SimDuration::Millis(20));
    trace.push_back("outer-end");
  });
  simulation.Schedule(SimDuration::Millis(15),
                      [&] { trace.push_back("intervening"); });
  simulation.Run();
  EXPECT_EQ(trace, (std::vector<std::string>{"outer-start", "intervening",
                                             "outer-end"}));
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Millis(30));
}

TEST(SimulationTest, RunWhilePredicateStops) {
  Simulation simulation;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    simulation.Schedule(SimDuration::Millis(i), [&] { ++count; });
  }
  bool satisfied = simulation.RunWhile([&] { return count < 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 4);
}

TEST(SimulationTest, RunWhileReturnsFalseWhenDrained) {
  Simulation simulation;
  simulation.Schedule(SimDuration::Millis(1), [] {});
  bool satisfied = simulation.RunWhile([] { return true; });
  EXPECT_FALSE(satisfied);
}

TEST(SimulationTest, RunWhileChecksPredicateBeforeFirstEvent) {
  Simulation simulation;
  int count = 0;
  simulation.Schedule(SimDuration::Millis(1), [&] { ++count; });
  EXPECT_TRUE(simulation.RunWhile([] { return false; }));
  EXPECT_EQ(count, 0);
  EXPECT_EQ(simulation.pending_events(), 1u);
}

TEST(SimulationTest, RunWhileDrainsQueueThenReportsUnsatisfied) {
  // The queue-empties-first return path: every event fires, the clock ends at
  // the last event's timestamp, and the false return tells the caller the
  // predicate never turned false (it is still true).
  Simulation simulation;
  int count = 0;
  for (int i = 1; i <= 3; ++i) {
    simulation.Schedule(SimDuration::Millis(i), [&] { ++count; });
  }
  EXPECT_FALSE(simulation.RunWhile([&] { return count < 100; }));
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(simulation.Idle());
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Millis(3));
}

TEST(SimulationTest, AdvanceInlineMovesClockWithoutEvents) {
  Simulation simulation;
  simulation.AdvanceInline(SimDuration::Micros(12));
  EXPECT_EQ(simulation.Now().nanos(), 12'000);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation simulation;
  simulation.AdvanceInline(SimDuration::Millis(5));
  bool fired = false;
  simulation.Schedule(SimDuration::Millis(-10), [&] { fired = true; });
  simulation.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Millis(5));
}

// --- Timer-wheel coverage. Short-horizon events live in the hierarchical
// wheel, long-horizon ones in the priority queue; ordering and cancellation
// must be indistinguishable between the two homes.

TEST(SimulationTest, MixedHorizonsFireInTimeOrder) {
  Simulation simulation;
  std::vector<int> order;
  // Spread across every wheel level and beyond its ~18 min span (-> queue):
  // 10 us and 1 ms (level 0/1), 200 ms (level 2), 60 s (level 3), 30 min
  // (queue), plus a 0-delay event (immediately due -> queue).
  simulation.Schedule(SimDuration::Seconds(1800.0), [&] { order.push_back(6); });
  simulation.Schedule(SimDuration::Seconds(60.0), [&] { order.push_back(5); });
  simulation.Schedule(SimDuration::Millis(200), [&] { order.push_back(4); });
  simulation.Schedule(SimDuration::Millis(1), [&] { order.push_back(3); });
  simulation.Schedule(SimDuration::Micros(10), [&] { order.push_back(2); });
  simulation.Schedule(SimDuration::Zero(), [&] { order.push_back(1); });
  EXPECT_EQ(simulation.Run(), 6u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(simulation.Now(),
            SimTime::Zero() + SimDuration::Seconds(1800.0));
  EXPECT_TRUE(simulation.Idle());
}

// Two events with the same `when` keep submission order even when one sits
// in the wheel and the other went straight to the queue (scheduled later,
// from a time at which the shared deadline no longer fits a wheel slot).
TEST(SimulationTest, SameWhenAcrossWheelAndQueueKeepsFifo) {
  Simulation simulation;
  std::vector<int> order;
  SimTime when = SimTime::Zero() + SimDuration::Millis(10);
  simulation.ScheduleAt(when, [&] { order.push_back(1); });  // wheel-resident
  simulation.Schedule(SimDuration::Millis(10) - SimDuration::Nanos(1),
                      [&] {
                        // 1 ns before `when`: the deadline is inside the
                        // current tick, so this lands in the queue.
                        simulation.ScheduleAt(when, [&] { order.push_back(2); });
                      });
  simulation.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, RunUntilDeadlineBetweenWheelSlots) {
  Simulation simulation;
  int fired = 0;
  simulation.Schedule(SimDuration::Millis(10), [&] { ++fired; });
  simulation.Schedule(SimDuration::Millis(30), [&] { ++fired; });
  // A deadline that is not aligned to any slot boundary and has no event of
  // its own: only the earlier timer fires, and the clock lands exactly on it.
  simulation.RunUntil(SimTime::Zero() + SimDuration::Micros(20'500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulation.Now(), SimTime::Zero() + SimDuration::Micros(20'500));
  EXPECT_EQ(simulation.pending_events(), 1u);
  simulation.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(simulation.Idle());
}

// The RPC hot pattern: arm a timeout, cancel it moments later, thousands of
// times, across horizons that hit different wheel levels. Nothing leaks and
// the surviving timers fire in order.
TEST(SimulationTest, ArmCancelChurnAcrossLevels) {
  Simulation simulation;
  int fired = 0;
  std::vector<int> horizons_us = {50, 900, 7'000, 120'000, 3'000'000};
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint64_t> ids;
    for (int h : horizons_us) {
      ids.push_back(
          simulation.Schedule(SimDuration::Micros(h), [&] { ++fired; }));
    }
    for (std::uint64_t id : ids) simulation.Cancel(id);
    // One survivor per round.
    simulation.Schedule(SimDuration::Micros(100 + round), [&] { ++fired; });
  }
  // Cancellation reclaims the slab slot eagerly wherever the event lives, so
  // exactly the survivors remain pending.
  EXPECT_EQ(simulation.pending_events(), 200u);
  simulation.Run();
  EXPECT_EQ(fired, 200);
  EXPECT_TRUE(simulation.Idle());
  EXPECT_EQ(simulation.pending_events(), 0u);
}

// Cancelling a wheel-resident event after the clock has moved past its slot's
// level boundary (forcing a cascade in between) must still work.
TEST(SimulationTest, CancelSurvivesCascade) {
  Simulation simulation;
  bool fired = false;
  // 300 ms out: starts on an upper wheel level. Firing the 285 ms helper
  // flushes their shared coarse slot, cascading the target to a finer level
  // before the cancel lands.
  std::uint64_t id =
      simulation.Schedule(SimDuration::Millis(300), [&] { fired = true; });
  simulation.Schedule(SimDuration::Millis(285), [&] {
    simulation.Cancel(id);  // cancel mid-flight, post-cascade
  });
  simulation.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(simulation.Idle());
}

// Regression: a level-1 slot and a level-2 slot sharing the same aligned
// start_ns. Flushing the finer slot advances the wheel cursor exactly onto
// the coarser slot's tick, and that slot must still be treated as due —
// reading it as one full revolution (~17 s) later fires its events after
// later-scheduled ones and drives the clock backwards.
TEST(SimulationTest, AlignedSlotsAcrossLevelsFlushTogether) {
  Simulation simulation;
  // 2^28 ns is simultaneously a level-2 and a level-1 tick boundary
  // (tick widths 2^28 ns and 2^22 ns).
  constexpr std::int64_t kAlignedNs = std::int64_t{1} << 28;
  constexpr std::int64_t kLevel1TickNs = std::int64_t{1} << 22;
  std::vector<int> order;
  std::vector<std::int64_t> times;
  auto record = [&](int label) {
    order.push_back(label);
    times.push_back(simulation.Now().nanos());
  };
  // Scheduled from time 0 the boundary is 64 level-1 ticks out — one past
  // the level-1 span — so this lands in the level-2 slot covering
  // [2^28, 2^29).
  simulation.ScheduleAt(SimTime::FromNanos(kAlignedNs), [&] { record(2); });
  // A helper fires at one level-1 tick, putting the cursor at 2^22 ns when
  // the events below are scheduled.
  simulation.ScheduleAt(SimTime::FromNanos(kLevel1TickNs), [&] {
    record(0);
    // Now only 63 level-1 ticks away: lands in the level-1 slot whose start
    // is also exactly 2^28 — tied with the level-2 slot above.
    simulation.ScheduleAt(SimTime::FromNanos(kAlignedNs), [&] { record(1); });
    // Rides the same level-1 slot; a witness that fires between the two
    // flush points if the level-2 slot is misplaced a revolution late.
    simulation.ScheduleAt(SimTime::FromNanos(kAlignedNs + 1000),
                          [&] { record(3); });
    // Arm-and-cancel a lone wheel event so the cached earliest-slot hint is
    // dropped and the next lookup rescans both tied slots (the scan prefers
    // the finer level, forcing the finer-flushes-first order under test).
    simulation.Cancel(
        simulation.ScheduleAt(SimTime::FromNanos(5 * kLevel1TickNs), [] {}));
  });
  simulation.Run();
  // Same-time events keep schedule order: 2 was scheduled before 1.
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1, 3}));
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]) << "clock ran backwards at event " << i;
  }
  EXPECT_EQ(simulation.Now().nanos(), kAlignedNs + 1000);
}

TEST(SimTimeTest, DurationArithmetic) {
  EXPECT_EQ(SimDuration::Seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ((SimDuration::Millis(2) + SimDuration::Micros(500)).ToMillis(),
            2.5);
  EXPECT_EQ((SimDuration::Millis(2) * 3).ToMillis(), 6.0);
  EXPECT_LT(SimDuration::Micros(1), SimDuration::Millis(1));
}

TEST(SimTimeTest, TimeMinusTimeIsDuration) {
  SimTime a = SimTime::Zero() + SimDuration::Seconds(2.0);
  SimTime b = SimTime::Zero() + SimDuration::Seconds(0.5);
  EXPECT_EQ((a - b).ToSeconds(), 1.5);
}

}  // namespace
}  // namespace dcdo::sim
