// The cost model must land inside the paper's reported bands — these tests
// pin the calibration so a careless edit cannot silently break every bench.
#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace dcdo::sim {
namespace {

class CostModelBands : public ::testing::Test {
 protected:
  CostModel cost_;
};

// Paper: "a 5.1 Megabyte object implementation ... takes 15 to 25 seconds to
// download".
TEST_F(CostModelBands, LargeImplementationDownload) {
  double seconds = cost_.DownloadTime(5'100'000).ToSeconds();
  EXPECT_GE(seconds, 15.0);
  EXPECT_LE(seconds, 25.0);
}

// Paper: "a 550 K implementation takes about 4 seconds to download".
TEST_F(CostModelBands, SmallImplementationDownload) {
  double seconds = cost_.DownloadTime(550'000).ToSeconds();
  EXPECT_GE(seconds, 3.0);
  EXPECT_LE(seconds, 5.0);
}

// Paper: "it takes objects approximately 25 to 35 seconds to realize that a
// local binding contains a physical address that the object is no longer
// using".
TEST_F(CostModelBands, StaleBindingDiscoveryBand) {
  double seconds = cost_.StaleBindingDiscovery().ToSeconds();
  EXPECT_GE(seconds, 25.0);
  EXPECT_LE(seconds, 35.0);
}

// Paper: dynamic function calls take "between 10 and 15 microseconds".
TEST_F(CostModelBands, DfmLookupBand) {
  double micros = cost_.dfm_lookup.ToMicros();
  EXPECT_GE(micros, 10.0);
  EXPECT_LE(micros, 15.0);
}

// Paper: incorporating a cached component costs ~200 us.
TEST_F(CostModelBands, CachedComponentMapCost) {
  EXPECT_EQ(cost_.component_map_cached.ToMicros(), 200.0);
}

// Paper: a 500-fn/50-component DCDO takes ~10 s to create; the per-component
// share (session + stream of a ~100 KB image) is therefore ~200 ms.
TEST_F(CostModelBands, ComponentFetchShareMatchesCreationNumber) {
  double per_component = cost_.ComponentDownloadTime(100 * 1024).ToSeconds();
  EXPECT_GE(per_component, 0.15);
  EXPECT_LE(per_component, 0.25);
}

// Components stream much faster than the executable file path: the same
// bytes cost dramatically less as a component fetch.
TEST_F(CostModelBands, ComponentPathFasterThanFilePath) {
  EXPECT_LT(cost_.ComponentDownloadTime(550'000).ToSeconds() * 4,
            cost_.DownloadTime(550'000).ToSeconds());
  // But larger components still take longer (download-dominated regime).
  EXPECT_GT(cost_.ComponentDownloadTime(5'100'000).ToSeconds(),
            cost_.ComponentDownloadTime(100'000).ToSeconds() * 3);
}

TEST_F(CostModelBands, DownloadScalesWithSize) {
  EXPECT_LT(cost_.DownloadTime(100'000).nanos(),
            cost_.DownloadTime(1'000'000).nanos());
  EXPECT_LT(cost_.DownloadTime(1'000'000).nanos(),
            cost_.DownloadTime(10'000'000).nanos());
}

TEST_F(CostModelBands, MessageTimeIsSubMillisecondForSmallPayloads) {
  EXPECT_LT(cost_.MessageTime(256).ToMillis(), 1.0);
}

TEST_F(CostModelBands, DiskCostsScale) {
  EXPECT_LT(cost_.DiskRead(1024).nanos(), cost_.DiskRead(10 << 20).nanos());
  EXPECT_GT(cost_.DiskWrite(1 << 20).nanos(), cost_.DiskRead(1 << 20).nanos())
      << "writes are slower than reads in the model";
}

TEST_F(CostModelBands, StateCaptureSlowerThanRestore) {
  // Capture serializes + writes; restore reads a prepared image.
  EXPECT_GT(cost_.StateCapture(1 << 20).nanos(),
            cost_.StateRestore(1 << 20).nanos());
}

TEST(CostModelValidate, DefaultIsValid) {
  EXPECT_TRUE(ValidateCostModel(CostModel{}).ok());
}

TEST(CostModelValidate, RejectsNonPositiveBandwidth) {
  CostModel bad;
  bad.wire_bandwidth_bytes_per_sec = 0;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
}

TEST(CostModelValidate, RejectsAbsurdEfficiency) {
  CostModel bad;
  bad.bulk_transfer_efficiency = 1.5;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
  bad.bulk_transfer_efficiency = 0.0;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
}

TEST(CostModelValidate, RejectsNegativeRetries) {
  CostModel bad;
  bad.stale_retry_count = -1;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
}

// The stale-binding schedule arithmetic lives in one place: every derived
// window is a function of (timeout, retries, rebind_query), and the default
// model reproduces the exact legacy numbers.
TEST_F(CostModelBands, StaleScheduleHelpersAgree) {
  EXPECT_EQ(cost_.RetryAttemptsPerBinding(), 3);
  EXPECT_DOUBLE_EQ(cost_.StaleBindingDiscovery().ToSeconds(), 30.9);
  // Worst-case last send: the full stale schedule plus the refreshed
  // binding's retries, minus the final timeout still to run.
  EXPECT_DOUBLE_EQ(cost_.RetryScheduleLastSend().ToSeconds(), 50.9);
  // The dedup window covers that last send plus one more timeout.
  EXPECT_DOUBLE_EQ(cost_.DedupWindowTtl().ToSeconds(), 60.9);
  EXPECT_EQ(cost_.DedupWindowTtl().nanos(),
            (cost_.RetryScheduleLastSend() + cost_.invocation_timeout).nanos());
}

TEST_F(CostModelBands, StaleScheduleHelpersTrackTheKnobs) {
  cost_.invocation_timeout = SimDuration::Seconds(4.0);
  cost_.stale_retry_count = 1;
  cost_.rebind_query = SimDuration::Seconds(0.5);
  EXPECT_DOUBLE_EQ(cost_.StaleBindingDiscovery().ToSeconds(), 8.5);
  EXPECT_DOUBLE_EQ(cost_.RetryScheduleLastSend().ToSeconds(), 12.5);
  EXPECT_DOUBLE_EQ(cost_.DedupWindowTtl().ToSeconds(), 16.5);
}

// The naming-directory knobs default to "not modeled" (legacy path) and are
// validated like every other knob.
TEST(CostModelValidate, NamingDirectoryKnobs) {
  CostModel cost;
  EXPECT_FALSE(cost.NamingDirectoryModeled());

  CostModel sharded;
  sharded.naming_shard_count = 8;
  EXPECT_TRUE(sharded.NamingDirectoryModeled());
  EXPECT_TRUE(ValidateCostModel(sharded).ok());

  CostModel leased;
  leased.binding_lease_duration = SimDuration::Seconds(60.0);
  EXPECT_TRUE(leased.NamingDirectoryModeled());
  EXPECT_TRUE(ValidateCostModel(leased).ok());

  CostModel modeled;
  modeled.directory_lookup_service = SimDuration::Micros(100.0);
  EXPECT_TRUE(modeled.NamingDirectoryModeled());

  CostModel bad;
  bad.naming_shard_count = 0;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
  bad = CostModel{};
  bad.naming_ring_points = 0;
  EXPECT_FALSE(ValidateCostModel(bad).ok());
  bad = CostModel{};
  bad.binding_lease_duration = SimDuration::Seconds(-1.0);
  EXPECT_FALSE(ValidateCostModel(bad).ok());
  bad = CostModel{};
  bad.directory_lookup_service = SimDuration::Seconds(-1.0);
  EXPECT_FALSE(ValidateCostModel(bad).ok());
}

}  // namespace
}  // namespace dcdo::sim
