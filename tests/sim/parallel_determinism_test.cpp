// Cross-worker-count determinism over the full substrate (DESIGN.md §14).
//
// The parallel executor's contract is that sim_workers changes wall-clock
// throughput ONLY: the simulated execution — every event timestamp, every
// final state — is identical at any worker count, including the legacy
// single-threaded engine. This suite drives the two heaviest EXPERIMENTS.md
// workloads at workers ∈ {1, 2, 4, 8} and compares:
//
//   * the SimTime event-order digest (per-affinity FNV over fired
//     timestamps, locality.h),
//   * total events fired and the final clock,
//   * a final-state fingerprint (instance versions/placements for the E13
//     churn; cached bindings and invalidation counts for the E14 storm),
//   * late_remote_events == 0 — no lookahead violation ever happened,
//
// with the invariant checker and race detector live at every-event cadence
// (zero reports required at workers = 4, the TSan CI configuration).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "check/check_context.h"
#include "core/manager.h"
#include "naming/binding_cache.h"
#include "runtime/testbed.h"
#include "sim/parallel_sim.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

using check::CheckContext;

std::uint64_t Fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

struct RunSummary {
  std::uint64_t digest = 0;
  std::uint64_t fired = 0;
  std::int64_t end_ns = 0;
  std::uint64_t state_hash = 0;
  std::uint64_t late_remote = 0;
  bool checker_clean = true;
  std::string diagnostics;

  bool operator==(const RunSummary& other) const {
    return digest == other.digest && fired == other.fired &&
           end_ns == other.end_ns && state_hash == other.state_hash;
  }
};

// The test compares explicit worker counts; a CI-level DCDO_SIM_WORKERS
// override would collapse them all onto one value and prove nothing.
// Forcing DCDO_SIM_THREADS=1 keeps the real worker pool (and its barrier
// protocol) under test even on single-CPU machines, where the executor's
// auto mode would otherwise run every window inline on the coordinator.
void ClearWorkerOverride() {
  unsetenv("DCDO_SIM_WORKERS");
  setenv("DCDO_SIM_THREADS", "1", /*overwrite=*/1);
}

// ===== E13: fetch-churn (concurrent creations, evolutions, migrations) =====

RunSummary RunFetchChurn(int workers) {
  ClearWorkerOverride();
  ObjectId::ResetCounterForTest();
  std::mt19937 rng(1999);

  Testbed::Options options;
  options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
  options.cost_model.sim_workers = workers;
  options.cost_model.fetch_concurrency = 8;
  options.cost_model.component_cache_capacity = 4;
  Testbed testbed(options);
  testbed.simulation().EnableDeterminismDigest(true);

  DcdoManager manager("pardet", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeMultiVersionIncreasing());

  std::vector<ImplementationComponent> pool;
  const char* fns[] = {"alpha", "beta", "gamma"};
  for (int i = 0; i < 6; ++i) {
    pool.push_back(testing::MakeEchoComponent(
        testbed.registry(), "pd" + std::to_string(i),
        {fns[i % 3], fns[(i + 1) % 3]}, 256 * 1024));
    EXPECT_TRUE(manager.PublishComponent(pool[i]).ok());
  }

  VersionId root = *manager.CreateRootVersion();
  {
    DfmDescriptor* d = *manager.MutableDescriptor(root);
    EXPECT_TRUE(d->IncorporateComponent(pool[0]).ok());
    EXPECT_TRUE(d->EnableFunction("alpha", pool[0].id).ok());
    EXPECT_TRUE(d->EnableFunction("beta", pool[0].id).ok());
    EXPECT_TRUE(manager.MarkInstantiable(root).ok());
    EXPECT_TRUE(manager.SetCurrentVersion(root).ok());
  }
  std::vector<VersionId> instantiable{root};
  for (int v = 0; v < 3; ++v) {
    VersionId derived = *manager.DeriveVersion(instantiable.back());
    DfmDescriptor* d = *manager.MutableDescriptor(derived);
    for (int i = 0; i < 3; ++i) {
      const ImplementationComponent& comp = pool[(v + i) % pool.size()];
      (void)d->IncorporateComponent(comp);
      for (const FunctionImplDescriptor& fn : comp.functions) {
        (void)d->SwitchImplementation(fn.function.name, comp.id);
      }
    }
    EXPECT_TRUE(manager.MarkInstantiable(derived).ok());
    instantiable.push_back(derived);
  }

  std::vector<ObjectId> instances;
  {
    std::vector<std::optional<Result<ObjectId>>> created(4);
    for (int i = 0; i < 4; ++i) {
      manager.CreateInstance(testbed.host(1 + i / 2),
                             [&created, i](Result<ObjectId> r) {
                               created[i] = r;
                             });
    }
    testbed.simulation().Run();
    for (auto& result : created) {
      EXPECT_TRUE(result.has_value() && (*result).ok());
      if (result.has_value() && (*result).ok()) instances.push_back(**result);
    }
  }

  std::uniform_int_distribution<int> op_dist(0, 2);
  std::uniform_int_distribution<std::size_t> version_pick(
      0, instantiable.size() - 1);
  std::uniform_int_distribution<std::size_t> host_pick(1, 3);
  for (int round = 0; round < 12; ++round) {
    int pending = 0;
    for (const ObjectId& instance : instances) {
      switch (op_dist(rng)) {
        case 0:
          ++pending;
          manager.EvolveInstanceTo(instance, instantiable[version_pick(rng)],
                                   [&pending](Status) { --pending; });
          break;
        case 1:
          ++pending;
          manager.MigrateInstance(instance, testbed.host(host_pick(rng)),
                                  [&pending](Status) { --pending; });
          break;
        case 2: {
          Dcdo* object = manager.FindInstance(instance);
          EXPECT_NE(object, nullptr);
          if (object != nullptr) (void)object->Call(fns[round % 3], ByteBuffer{});
          break;
        }
      }
    }
    testbed.simulation().RunWhile([&] { return pending > 0; });
    testbed.simulation().Run();
  }

  RunSummary summary;
  summary.digest = testbed.simulation().DeterminismDigest();
  summary.fired = testbed.simulation().events_fired();
  summary.end_ns = testbed.simulation().Now().nanos();
  summary.state_hash = 1469598103934665603ull;
  for (const ObjectId& instance : instances) {
    Dcdo* object = manager.FindInstance(instance);
    EXPECT_NE(object, nullptr);
    if (object == nullptr) continue;
    for (std::uint32_t part : object->version().parts()) {
      summary.state_hash = Fnv(summary.state_hash, part);
    }
    summary.state_hash = Fnv(summary.state_hash, object->host().node());
    summary.state_hash = Fnv(
        summary.state_hash,
        object->mapper().state().ValidateComplete().ok() ? 1u : 0u);
  }
  if (testbed.simulation().parallel()) {
    summary.late_remote =
        testbed.simulation().executor()->late_remote_events();
  }
  if (CheckContext* checker = testbed.checker()) {
    summary.checker_clean = checker->diagnostics().Clean();
    if (!summary.checker_clean) {
      summary.diagnostics = checker->diagnostics().DumpText();
    }
  }
  return summary;
}

// ===== E14: rebind storm over the leased, sharded, remote directory ========

RunSummary RunRebindStorm(int workers) {
  ClearWorkerOverride();
  ObjectId::ResetCounterForTest();

  Testbed::Options options;
  options.host_count = 8;
  options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
  options.cost_model.sim_workers = workers;
  options.cost_model.naming_shard_count = 2;
  options.cost_model.binding_lease_duration = sim::SimDuration::Seconds(60.0);
  // The modelled per-lookup service time, routed as real request messages to
  // the shard hosts — the configuration parallel execution requires, applied
  // at every worker count so the comparison is like for like.
  options.cost_model.directory_lookup_service = sim::SimDuration::Micros(100);
  options.cost_model.directory_remote_requests = true;
  Testbed testbed(options);
  testbed.simulation().EnableDeterminismDigest(true);
  BindingAgent& agent = testbed.agent();

  constexpr int kHolders = 24;
  constexpr int kTargets = 4;
  // Real (checkable) activations: every bound address is a live registered
  // endpoint, and a migration retires the old activation before the new one
  // is served — the binding-coherence invariant watches all of it.
  auto address_of = [](int t, std::uint64_t epoch) {
    return ObjectAddress{
        static_cast<sim::NodeId>(1 + (static_cast<std::uint64_t>(t) + epoch) % 8),
        static_cast<sim::ProcessId>(100 + t), epoch};
  };
  std::vector<ObjectId> targets;
  auto serve = [&](int t, std::uint64_t epoch) {
    const ObjectAddress address = address_of(t, epoch);
    testbed.transport().RegisterEndpoint(
        address.node, address.pid, address.epoch,
        [](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
          reply(rpc::MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    agent.Bind(targets[static_cast<std::size_t>(t)], address);
  };
  for (int t = 0; t < kTargets; ++t) {
    targets.push_back(ObjectId::Next(domains::kInstance));
    serve(t, 1);
  }
  std::vector<std::unique_ptr<BindingCache>> caches;
  int resolved = 0;
  for (int i = 0; i < kHolders; ++i) {
    caches.push_back(std::make_unique<BindingCache>(
        &agent, /*capacity=*/16,
        static_cast<sim::NodeId>(1 + i % options.host_count)));
    caches.back()->RefreshFromAgentAsync(targets[i % kTargets],
                                         [&resolved](Result<ObjectAddress> r) {
                                           EXPECT_TRUE(r.ok());
                                           ++resolved;
                                         });
  }
  testbed.RunAll();
  EXPECT_EQ(resolved, kHolders);

  // Three storms: every target migrates, the shards fan the fresh bindings
  // out to all leaseholders, the run settles, repeat.
  for (std::uint64_t epoch = 2; epoch <= 4; ++epoch) {
    for (int t = 0; t < kTargets; ++t) {
      const ObjectAddress old = address_of(t, epoch - 1);
      testbed.transport().UnregisterEndpoint(old.node, old.pid);
      serve(t, epoch);
    }
    testbed.RunAll();
  }

  RunSummary summary;
  summary.digest = testbed.simulation().DeterminismDigest();
  summary.fired = testbed.simulation().events_fired();
  summary.end_ns = testbed.simulation().Now().nanos();
  summary.state_hash = 1469598103934665603ull;
  for (int i = 0; i < kHolders; ++i) {
    auto cached = caches[static_cast<std::size_t>(i)]->CachedAddress(
        targets[i % kTargets]);
    summary.state_hash = Fnv(summary.state_hash, cached.has_value() ? 1u : 0u);
    if (cached.has_value()) {
      summary.state_hash = Fnv(summary.state_hash, cached->node);
      summary.state_hash = Fnv(summary.state_hash, cached->pid);
      summary.state_hash = Fnv(summary.state_hash, cached->epoch);
    }
  }
  summary.state_hash = Fnv(summary.state_hash, agent.invalidations_delivered());
  summary.state_hash = Fnv(summary.state_hash, agent.lookups_served());
  if (testbed.simulation().parallel()) {
    summary.late_remote =
        testbed.simulation().executor()->late_remote_events();
  }
  if (CheckContext* checker = testbed.checker()) {
    summary.checker_clean = checker->diagnostics().Clean();
    if (!summary.checker_clean) {
      summary.diagnostics = checker->diagnostics().DumpText();
    }
  }
  return summary;
}

// ===== E16-shaped batched + sessioned RPC traffic ==========================
//
// Batching composes with the parallel executor since PR 9: batches carry a
// per-delivery affinity (grouped at flush), batch state is partitioned per
// sender node, and the flush event runs on the sender's locality. This
// workload makes every piece matter: data-plane calls to kParallel endpoints
// (delivery affinity = destination node) interleave with urgent config-plane
// calls (delivery affinity = global) from the same senders, so one batch
// carries mixed affinities; sessions bound the in-flight calls per client.
RunSummary RunBatchedSessionTraffic(int workers) {
  ClearWorkerOverride();
  ObjectId::ResetCounterForTest();

  Testbed::Options options;
  options.host_count = 8;
  options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
  options.cost_model.sim_workers = workers;
  options.cost_model.send_batch_window = sim::SimDuration::Millis(1);
  options.cost_model.formation_policy = true;
  options.cost_model.session_slots = 2;
  Testbed testbed(options);
  testbed.simulation().EnableDeterminismDigest(true);
  BindingAgent& agent = testbed.agent();
  sim::Simulation& simulation = testbed.simulation();

  // Four served targets on nodes 1..4; handler state (the per-endpoint call
  // tally) is touched only by data-plane dispatches, which all run on the
  // endpoint's own locality.
  constexpr int kTargets = 4;
  std::vector<ObjectId> targets;
  std::vector<std::uint64_t> served(kTargets, 0);
  for (int t = 0; t < kTargets; ++t) {
    targets.push_back(ObjectId::Next(domains::kInstance));
    const ObjectAddress address{static_cast<sim::NodeId>(1 + t),
                                static_cast<sim::ProcessId>(50 + t), 1};
    testbed.transport().RegisterEndpoint(
        address.node, address.pid, address.epoch,
        [&served, t](const rpc::MethodInvocation& inv, rpc::ReplyFn reply) {
          if (!rpc::IsConfigMethodName(inv.method_name())) {
            ++served[static_cast<std::size_t>(t)];
          }
          reply(rpc::MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        },
        rpc::EndpointConcurrency::kParallel);
    agent.Bind(targets.back(), address);
  }

  // Four clients on nodes 5..8, driven from the global locality (client call
  // state, the session pool, and the binding cache are global-confined in
  // this scenario). Each round sends a back-to-back burst to one target —
  // six data-plane calls (twice the slot bound, so admission queues) plus a
  // config-plane call that the formation policy flushes urgently — forming
  // mixed-affinity batches on the (client node, server node) lane.
  std::vector<std::unique_ptr<rpc::RpcClient>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(std::make_unique<rpc::RpcClient>(
        &testbed.transport(), &agent, static_cast<sim::NodeId>(5 + c)));
  }
  // One invoke per scheduled event, at pairwise-distinct offsets. Bunching
  // many invokes into one event would inline-advance the global clock past
  // the executor's lookahead (each invoke models marshal cost via
  // AdvanceInline), and a single event that outruns its own cross-locality
  // sends by more than the lookahead is outside the conservative window
  // contract (DESIGN.md §15.4). The 350 us per-call stagger still lands 2-3
  // calls inside each 1 ms batch window, so coalescing stays exercised.
  std::uint64_t replies = 0;
  for (int round = 0; round < 6; ++round) {
    for (int c = 0; c < 4; ++c) {
      const ObjectId& target =
          targets[static_cast<std::size_t>((c + round) % kTargets)];
      for (int i = 0; i < 7; ++i) {
        const bool poke = i == 6;  // the urgent config call rides last
        const auto at = sim::SimDuration::Millis(10 * round) +
                        sim::SimDuration::Micros(100 * c + 350 * i);
        simulation.Schedule(at, [&, c, target, poke]() {
          clients[static_cast<std::size_t>(c)]->Invoke(
              target, poke ? "dcdo.poke" : "work", {},
              [&replies](Result<ByteBuffer> r) { replies += r.ok(); });
        });
      }
    }
  }
  testbed.RunAll();

  RunSummary summary;
  summary.digest = testbed.simulation().DeterminismDigest();
  summary.fired = testbed.simulation().events_fired();
  summary.end_ns = testbed.simulation().Now().nanos();
  summary.state_hash = 1469598103934665603ull;
  summary.state_hash = Fnv(summary.state_hash, replies);
  for (int t = 0; t < kTargets; ++t) {
    summary.state_hash = Fnv(summary.state_hash, served[t]);
  }
  summary.state_hash =
      Fnv(summary.state_hash, testbed.transport().session_hits());
  // The scenario must actually exercise what it claims to: batches formed,
  // messages coalesced, admission queued.
  EXPECT_GT(testbed.network().batches_sent(), 0u);
  EXPECT_GT(testbed.network().messages_coalesced(), 0u);
  for (const auto& client : clients) {
    EXPECT_GT(client->backpressure_waits(), 0u);
    EXPECT_EQ(client->queued_calls(), 0u);  // all admitted by quiescence
  }
  EXPECT_EQ(replies, 4u * 6u * 7u);
  if (testbed.simulation().parallel()) {
    summary.late_remote =
        testbed.simulation().executor()->late_remote_events();
  }
  if (CheckContext* checker = testbed.checker()) {
    summary.checker_clean = checker->diagnostics().Clean();
    if (!summary.checker_clean) {
      summary.diagnostics = checker->diagnostics().DumpText();
    }
  }
  return summary;
}

// ===== The cross-worker-count comparisons ==================================

void ExpectIdenticalAcrossWorkerCounts(RunSummary (*run)(int)) {
  const RunSummary baseline = run(1);
  ASSERT_GT(baseline.fired, 0u);
  EXPECT_TRUE(baseline.checker_clean) << baseline.diagnostics;
  for (int workers : {2, 4, 8}) {
    const RunSummary parallel = run(workers);
    EXPECT_EQ(parallel.digest, baseline.digest) << workers << " workers";
    EXPECT_EQ(parallel.fired, baseline.fired) << workers << " workers";
    EXPECT_EQ(parallel.end_ns, baseline.end_ns) << workers << " workers";
    EXPECT_EQ(parallel.state_hash, baseline.state_hash)
        << workers << " workers";
    EXPECT_EQ(parallel.late_remote, 0u) << workers << " workers";
    // The checker + race detector ride along at every worker count; the
    // acceptance gate names workers = 4 (the TSan CI configuration), but a
    // report at any count is a bug.
    EXPECT_TRUE(parallel.checker_clean)
        << workers << " workers:\n" << parallel.diagnostics;
  }
}

TEST(ParallelDeterminism, FetchChurnIdenticalAtEveryWorkerCount) {
  ExpectIdenticalAcrossWorkerCounts(&RunFetchChurn);
}

TEST(ParallelDeterminism, RebindStormIdenticalAtEveryWorkerCount) {
  ExpectIdenticalAcrossWorkerCounts(&RunRebindStorm);
}

TEST(ParallelDeterminism, BatchedSessionTrafficIdenticalAtEveryWorkerCount) {
  ExpectIdenticalAcrossWorkerCounts(&RunBatchedSessionTraffic);
}

// Run-to-run stability of the instrument itself: two legacy runs must agree
// before cross-mode equality means anything (a global counter or container-
// order dependence would already break this).
TEST(ParallelDeterminism, LegacyBaselineIsRunToRunStable) {
  EXPECT_TRUE(RunFetchChurn(1) == RunFetchChurn(1));
  EXPECT_TRUE(RunRebindStorm(1) == RunRebindStorm(1));
}

}  // namespace
}  // namespace dcdo
