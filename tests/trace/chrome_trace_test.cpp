// Chrome trace-event export: JSON shape, escaping, metrics side-channel.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulation.h"
#include "trace/chrome_trace.h"
#include "trace/trace_context.h"

namespace dcdo::trace {
namespace {

Span MakeSpan(SpanId id, std::string name, std::int64_t begin_ns,
              std::int64_t end_ns) {
  Span span;
  span.id = id;
  span.root = id;
  span.name = std::move(name);
  span.sim_begin_ns = begin_ns;
  span.sim_end_ns = end_ns;
  return span;
}

TEST(ChromeTraceTest, IntervalBecomesCompleteEvent) {
  Span span = MakeSpan(1, "rpc.call", 1500, 4500);  // 1.5 µs .. 4.5 µs
  span.category = "client";
  span.node = 3;
  span.call_id = 42;
  span.attempt = 2;
  span.notes.emplace_back("outcome", "reply");

  std::string json = ToChromeTraceJson({span});
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"rpc.call\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 3.000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": \"client\""), std::string::npos);
  EXPECT_NE(json.find("\"call_id\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"attempt\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"reply\""), std::string::npos);
}

TEST(ChromeTraceTest, InstantAndOpenSpans) {
  Span mark = MakeSpan(1, "rpc.timeout", 2000, 2000);
  mark.kind = Span::Kind::kInstant;
  Span open = MakeSpan(2, "rpc.call", 1000, -1);  // never closed

  std::string json = ToChromeTraceJson({mark, open});
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  // The open interval exports with zero duration and an explicit flag.
  EXPECT_NE(json.find("\"dur\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"open\": true"), std::string::npos);
  // Empty category falls back to the "dcdo" lane.
  EXPECT_NE(json.find("\"tid\": \"dcdo\""), std::string::npos);
}

TEST(ChromeTraceTest, EscapesControlAndQuoteCharacters) {
  Span span = MakeSpan(1, "weird\"name", 0, 1);
  span.notes.emplace_back("note", "line1\nline2\ttab\\slash");
  std::string json = ToChromeTraceJson({span});
  EXPECT_NE(json.find("weird\\\"name"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(ChromeTraceTest, MetricsRideInSideChannel) {
  MetricsRegistry metrics;
  metrics.GetCounter("rpc.dedup_hits").Increment(3);
  metrics.GetHistogram("rpc.latency.echo").RecordNanos(1000);

  std::string json = ToChromeTraceJson({}, &metrics);
  EXPECT_NE(json.find("\"dcdoMetrics\""), std::string::npos);
  EXPECT_NE(json.find("\"rpc.dedup_hits\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rpc.latency.echo\": {\"count\": 1"),
            std::string::npos);
  EXPECT_NE(json.find("\"sum_ns\": 1000"), std::string::npos);
}

TEST(ChromeTraceTest, WriteChromeTraceRoundTrips) {
  sim::Simulation simulation;
  TraceContext ctx;
  ctx.AttachSimulation(&simulation);
  SpanId id = ctx.BeginSpan("rpc.call", {.category = "client"});
  ctx.EndSpan(id);
  ctx.metrics().GetCounter("rpc.calls_started").Increment();

  std::string path = ::testing::TempDir() + "/dcdo_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(ctx, path).ok());

  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_NE(contents.str().find("\"rpc.call\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"rpc.calls_started\": 1"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ChromeTraceTest, WriteToUnwritablePathFails) {
  sim::Simulation simulation;
  TraceContext ctx;
  ctx.AttachSimulation(&simulation);
  EXPECT_FALSE(WriteChromeTrace(ctx, "/nonexistent-dir/trace.json").ok());
}

}  // namespace
}  // namespace dcdo::trace
