// End-to-end causal-trace properties over the real rpc stack: parents
// precede children in sim time, every retry attempt of one logical call
// hangs off the same root, and the dedup/timeout markers land where the
// protocol says they should.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "rpc/client.h"
#include "runtime/testbed.h"
#include "trace/trace_context.h"

namespace dcdo::trace {
namespace {

using rpc::MethodInvocation;
using rpc::MethodResult;
using rpc::ReplyFn;

// A raw substrate (no Testbed) with a tracer installed over it.
class CausalityTest : public ::testing::Test {
 protected:
  CausalityTest()
      : network_(&simulation_, sim::CostModel{}),
        transport_(&network_),
        client_(&transport_, &agent_, /*node=*/1) {
    ctx_.AttachSimulation(&simulation_);
    ctx_.Install();
    network_.AddNode(1);
    network_.AddNode(2);
    network_.AddNode(3);
    target_ = ObjectId::Next(domains::kInstance);
  }
  ~CausalityTest() override { ctx_.Uninstall(); }

  void SetUp() override {
    if (ActiveContext() == nullptr) {
      GTEST_SKIP() << "tracing compiled out; no spans to assert on";
    }
  }

  std::vector<Span> SpansNamed(const std::vector<Span>& spans,
                               std::string_view name) {
    std::vector<Span> out;
    for (const Span& span : spans) {
      if (span.name == name) out.push_back(span);
    }
    return out;
  }

  // Every non-root span's parent must exist and must have begun at or
  // before the child (causes precede effects on the sim clock).
  void AssertParentsPrecedeChildren(const std::vector<Span>& spans) {
    for (const Span& span : spans) {
      if (span.parent == 0) continue;
      ASSERT_GE(span.parent, 1u);
      ASSERT_LE(span.parent, spans.size());
      const Span& parent = spans[span.parent - 1];
      EXPECT_LE(parent.sim_begin_ns, span.sim_begin_ns)
          << parent.name << " -> " << span.name;
      EXPECT_EQ(span.root, parent.root)
          << span.name << " root disagrees with its parent's";
    }
  }

  TraceContext ctx_;
  sim::Simulation simulation_;
  sim::SimNetwork network_;
  rpc::RpcTransport transport_;
  BindingAgent agent_;
  rpc::RpcClient client_;
  ObjectId target_;
};

// The stale-binding recovery sequence: 3 attempts against a dead address,
// a rebind, then success — all of it one causal tree.
TEST_F(CausalityTest, RetriesAndRebindShareOneRoot) {
  transport_.RegisterEndpoint(
      2, 10, 1, [](const MethodInvocation& inv, ReplyFn reply) {
        reply(MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  ASSERT_TRUE(client_.InvokeBlocking(target_, "warmup").ok());

  transport_.UnregisterEndpoint(2, 10);
  transport_.RegisterEndpoint(
      3, 20, 2, [](const MethodInvocation& inv, ReplyFn reply) {
        reply(MethodResult::Ok(
            ByteBuffer::FromString(std::string(inv.method_name()))));
      });
  agent_.Bind(target_, ObjectAddress{3, 20, 2});
  ASSERT_TRUE(client_.InvokeBlocking(target_, "afterEvolve").ok());

  std::vector<Span> spans = ctx_.SnapshotSpans();
  AssertParentsPrecedeChildren(spans);

  // Two logical calls -> two rpc.call roots.
  std::vector<Span> calls = SpansNamed(spans, "rpc.call");
  ASSERT_EQ(calls.size(), 2u);
  const Span& recovery = calls[1];
  EXPECT_EQ(recovery.root, recovery.id);  // a causal root

  // Attempts 1..3 hit the stale binding, attempt 4 the fresh one; all five
  // spans of the second call (4 attempts + rebind) share the call's root.
  std::map<SpanId, int> attempts_by_root;
  for (const Span& span : SpansNamed(spans, "rpc.attempt")) {
    ++attempts_by_root[span.root];
    EXPECT_GT(span.attempt, 0) << "attempts carry their retry index";
  }
  EXPECT_EQ(attempts_by_root[calls[0].root], 1);  // warmup: one attempt
  EXPECT_EQ(attempts_by_root[recovery.root], 4);  // 1 + 2 retries + rebound

  std::vector<Span> timeouts = SpansNamed(spans, "rpc.timeout");
  ASSERT_EQ(timeouts.size(), 3u);
  for (const Span& mark : timeouts) {
    EXPECT_EQ(mark.kind, Span::Kind::kInstant);
    EXPECT_EQ(mark.root, recovery.root);
  }
  ASSERT_EQ(SpansNamed(spans, "rpc.rebind").size(), 1u);
  EXPECT_EQ(SpansNamed(spans, "rpc.rebind")[0].root, recovery.root);

  // The registry saw the same story the spans tell.
  EXPECT_EQ(ctx_.metrics().CounterValue("rpc.timeouts"), 3u);
  EXPECT_EQ(ctx_.metrics().CounterValue("rpc.rebinds"), 1u);
  EXPECT_EQ(ctx_.metrics().CounterValue("rpc.calls_started"), 2u);
}

// The dedup replay scenario, traced: the rpc.dedup marker is causally
// chained to the retry's send (same root as the whole call), and both
// attempts' server-side activity carries the one call_id.
TEST_F(CausalityTest, DedupReplayIsCausallyChainedToTheRetry) {
  transport_.RegisterEndpoint(
      2, 10, 1, [&](const MethodInvocation&, ReplyFn reply) {
        simulation_.Schedule(sim::SimDuration::Seconds(2.0),
                             [reply = std::move(reply)]() mutable {
                               reply(MethodResult::Ok(
                                   ByteBuffer::FromString("once")));
                             });
      });
  agent_.Bind(target_, ObjectAddress{2, 10, 1});
  simulation_.Schedule(sim::SimDuration::Seconds(1.0),
                       [&]() { network_.SetPartitioned(1, 2, true); });
  simulation_.Schedule(sim::SimDuration::Seconds(3.0),
                       [&]() { network_.SetPartitioned(1, 2, false); });
  ASSERT_TRUE(client_.InvokeBlocking(target_, "effectfulOnce").ok());

  std::vector<Span> spans = ctx_.SnapshotSpans();
  AssertParentsPrecedeChildren(spans);

  std::vector<Span> calls = SpansNamed(spans, "rpc.call");
  ASSERT_EQ(calls.size(), 1u);
  ASSERT_NE(calls[0].call_id, 0u);

  // One dispatch (the body ran once), one dedup marker (the replay), both
  // keyed by the call's id and rooted in the call.
  std::vector<Span> dispatches = SpansNamed(spans, "rpc.dispatch");
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0].call_id, calls[0].call_id);
  EXPECT_EQ(dispatches[0].root, calls[0].root);

  std::vector<Span> dedups = SpansNamed(spans, "rpc.dedup");
  ASSERT_EQ(dedups.size(), 1u);
  EXPECT_EQ(dedups[0].call_id, calls[0].call_id);
  EXPECT_EQ(dedups[0].root, calls[0].root);
  // The marker hangs off the RETRY's send span, which began at the 10 s
  // timeout — later than the original attempt.
  ASSERT_GE(dedups[0].parent, 1u);
  const Span& retry_send = spans[dedups[0].parent - 1];
  EXPECT_EQ(retry_send.name, "rpc.send");
  EXPECT_GE(retry_send.sim_begin_ns, 10'000'000'000);

  EXPECT_EQ(ctx_.metrics().CounterValue("rpc.dedup_hits"), 1u);
}

// Testbed-level integration: Options::tracing installs a context over the
// whole substrate and DumpTrace exports a loadable file with the network
// totals snapshotted in.
TEST(TestbedTracingTest, DumpTraceExportsSpansAndMetrics) {
  std::string path = ::testing::TempDir() + "/dcdo_testbed_trace.json";
  {
    Testbed::Options options;
    options.tracing = true;
    Testbed bed(options);
    if (bed.tracer() == nullptr) GTEST_SKIP() << "tracing compiled out";

    bed.transport().RegisterEndpoint(
        2, 10, 1, [](const MethodInvocation& inv, ReplyFn reply) {
          reply(MethodResult::Ok(
              ByteBuffer::FromString(std::string(inv.method_name()))));
        });
    ObjectId id = ObjectId::Next(domains::kInstance);
    bed.agent().Bind(id, ObjectAddress{2, 10, 1});
    auto client = bed.MakeClient(0);
    ASSERT_TRUE(client->InvokeBlocking(id, "traced").ok());
    EXPECT_GT(bed.tracer()->span_count(), 0u);
    ASSERT_TRUE(bed.DumpTrace(path).ok());
  }
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream contents;
  contents << file.rdbuf();
  EXPECT_NE(contents.str().find("\"rpc.call\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"net.messages_sent\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"rpc.invocations_delivered\": 1"),
            std::string::npos);
  std::remove(path.c_str());
}

// Without the option, the testbed stays untraced and DumpTrace refuses.
TEST(TestbedTracingTest, TracingIsOptIn) {
  Testbed bed;
  EXPECT_EQ(bed.tracer(), nullptr);
  EXPECT_FALSE(bed.DumpTrace("/tmp/never-written.json").ok());
}

}  // namespace
}  // namespace dcdo::trace
