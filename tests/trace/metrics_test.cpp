// MetricsRegistry units: counters, sim-time histograms, snapshotting.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "trace/metrics.h"

namespace dcdo::trace {
namespace {

TEST(CounterTest, IncrementDecrementValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Decrement(2);
  EXPECT_EQ(c.value(), 40u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

// The whole point of trace::Counter as a member type: concurrent bumps and
// reads are race-free (BindingAgent::lookups_served_ was not, before).
TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c]() {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, StatsAndBuckets) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_nanos(), 0);
  EXPECT_EQ(h.max_nanos(), 0);

  h.Record(sim::SimDuration::Millis(1));  // 1e6 ns -> bucket 19
  h.Record(sim::SimDuration::Millis(3));  // 3e6 ns -> bucket 21
  h.RecordNanos(1);                       // bucket 0
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_nanos(), 1);
  EXPECT_EQ(h.max_nanos(), 3000000);
  EXPECT_EQ(h.sum_nanos(), 4000001);
  EXPECT_NEAR(h.mean_nanos(), 4000001.0 / 3.0, 1.0);

  std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[19], 1u);  // floor(log2(1'000'000)) == 19
  EXPECT_EQ(buckets[21], 1u);  // floor(log2(3'000'000)) == 21
}

TEST(HistogramTest, NonPositiveSamplesLandInBucketZero) {
  Histogram h;
  h.RecordNanos(0);
  h.RecordNanos(-5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
}

TEST(MetricsRegistryTest, GetCreatesFindDoesNot) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("rpc.timeouts"), nullptr);
  EXPECT_EQ(registry.CounterValue("rpc.timeouts"), 0u);

  ShardedCounter& c = registry.GetCounter("rpc.timeouts");
  c.Increment(7);
  EXPECT_EQ(registry.CounterValue("rpc.timeouts"), 7u);
  ASSERT_NE(registry.FindCounter("rpc.timeouts"), nullptr);
  // Same name -> same counter (stable reference).
  registry.GetCounter("rpc.timeouts").Increment();
  EXPECT_EQ(c.value(), 8u);

  EXPECT_EQ(registry.FindHistogram("rpc.latency.echo"), nullptr);
  registry.GetHistogram("rpc.latency.echo").RecordNanos(100);
  ASSERT_NE(registry.FindHistogram("rpc.latency.echo"), nullptr);
  EXPECT_EQ(registry.FindHistogram("rpc.latency.echo")->count(), 1u);
}

TEST(MetricsRegistryTest, SetCounterOverwritesAndSnapshotSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.second").Increment(2);
  registry.GetCounter("a.first").Increment(1);
  registry.SetCounter("b.second", 99);  // export-time snapshot semantics
  registry.SetCounter("c.third", 3);    // creates if absent

  auto snapshot = registry.CounterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0], (std::pair<std::string, std::uint64_t>{"a.first", 1}));
  EXPECT_EQ(snapshot[1],
            (std::pair<std::string, std::uint64_t>{"b.second", 99}));
  EXPECT_EQ(snapshot[2], (std::pair<std::string, std::uint64_t>{"c.third", 3}));

  registry.GetHistogram("z.hist");
  auto names = registry.HistogramNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "z.hist");
}

}  // namespace
}  // namespace dcdo::trace
