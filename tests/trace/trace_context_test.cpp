// TraceContext units: span lifecycle, the scope stack, installation, caps.
#include <gtest/gtest.h>

#include "sim/simulation.h"
#include "trace/trace_context.h"

namespace dcdo::trace {
namespace {

// Installs a fresh context per test and guarantees Uninstall on exit, so a
// failing test cannot leak a process-global context into its neighbors.
class TraceContextTest : public ::testing::Test {
 protected:
  TraceContextTest() {
    ctx_.AttachSimulation(&simulation_);
    ctx_.Install();
  }
  ~TraceContextTest() override { ctx_.Uninstall(); }

  sim::Simulation simulation_;
  TraceContext ctx_;
};

TEST_F(TraceContextTest, InstallMakesContextCurrent) {
  EXPECT_EQ(TraceContext::Current(), &ctx_);
#if !defined(DCDO_TRACE_ENABLED)
  GTEST_SKIP() << "tracing compiled out; ActiveContext() is constant nullptr";
#endif
  EXPECT_EQ(ActiveContext(), &ctx_);
  ctx_.set_enabled(false);
  EXPECT_EQ(ActiveContext(), nullptr);  // installed but disabled
  ctx_.set_enabled(true);
  ctx_.Uninstall();
  EXPECT_EQ(TraceContext::Current(), nullptr);
  ctx_.Install();  // restore for the fixture dtor
}

TEST_F(TraceContextTest, SpanLifecycleStampsSimTime) {
  simulation_.Schedule(sim::SimDuration::Seconds(1.0), [&]() {
    SpanId id = ctx_.BeginSpan(
        "rpc.call", {.category = "client", .node = 3, .call_id = 42});
    simulation_.Schedule(sim::SimDuration::Seconds(2.0), [&, id]() {
      ctx_.EndSpan(id, "outcome", "reply");
    });
  });
  simulation_.Run();

  auto spans = ctx_.SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  const Span& span = spans[0];
  EXPECT_EQ(span.name, "rpc.call");
  EXPECT_EQ(span.category, "client");
  EXPECT_EQ(span.node, 3u);
  EXPECT_EQ(span.call_id, 42u);
  EXPECT_EQ(span.sim_begin_ns, 1000000000);
  EXPECT_EQ(span.sim_end_ns, 3000000000);
  EXPECT_FALSE(span.open());
  ASSERT_EQ(span.notes.size(), 1u);
  EXPECT_EQ(span.notes[0].first, "outcome");
  EXPECT_EQ(span.notes[0].second, "reply");
}

TEST_F(TraceContextTest, ScopeStackParentsNestedSpans) {
  SpanId outer = ctx_.BeginSpan("outer");
  ctx_.PushScope(outer);
  SpanId inner = ctx_.BeginSpan("inner");  // default parent = scope top
  SpanId forced_root = ctx_.BeginSpan("root2", {.parent = 0});
  ctx_.PopScope();
  SpanId sibling = ctx_.BeginSpan("sibling");  // stack empty again
  ctx_.EndSpan(inner);
  ctx_.EndSpan(forced_root);
  ctx_.EndSpan(sibling);
  ctx_.EndSpan(outer);

  auto spans = ctx_.SnapshotSpans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].parent, 0u);       // outer: root
  EXPECT_EQ(spans[1].parent, outer);    // inner: scoped under outer
  EXPECT_EQ(spans[2].parent, 0u);       // explicit parent=0 overrides scope
  EXPECT_EQ(spans[3].parent, 0u);       // stack popped

  // Root propagation: inner's causal tree root is outer.
  EXPECT_EQ(spans[1].root, outer);
  EXPECT_EQ(ctx_.RootOf(inner), outer);
  EXPECT_EQ(ctx_.RootOf(forced_root), forced_root);
}

TEST_F(TraceContextTest, ExplicitParentCrossesAsyncHop) {
  SpanId parent = ctx_.BeginSpan("rpc.send");
  ctx_.EndSpan(parent);
  // An async continuation names the parent by id — no scope stack involved.
  SpanId child = ctx_.BeginSpan("rpc.dispatch", {.parent = parent});
  ctx_.EndSpan(child);

  auto spans = ctx_.SnapshotSpans();
  EXPECT_EQ(spans[1].parent, parent);
  EXPECT_EQ(spans[1].root, parent);
}

TEST_F(TraceContextTest, InstantIsClosedAtBirth) {
  SpanId mark = ctx_.Instant("rpc.timeout", {.attempt = 2});
  auto spans = ctx_.SnapshotSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].kind, Span::Kind::kInstant);
  EXPECT_EQ(spans[0].attempt, 2);
  EXPECT_EQ(spans[0].sim_end_ns, spans[0].sim_begin_ns);
  EXPECT_FALSE(spans[0].open());
  ctx_.EndSpan(mark);  // must be a harmless no-op on an instant
  EXPECT_EQ(ctx_.SnapshotSpans()[0].sim_end_ns, spans[0].sim_end_ns);
}

// A second close — even one carrying an outcome note — must not touch a
// span that already ended: the first outcome is the recorded truth (a late
// reply racing the timeout that closed the attempt is the real scenario).
TEST_F(TraceContextTest, EndSpanOnClosedSpanKeepsFirstOutcome) {
  SpanId id = ctx_.BeginSpan("rpc.attempt");
  ctx_.EndSpan(id, "outcome", "timeout");
  auto first = ctx_.SnapshotSpans()[0];
  ctx_.EndSpan(id, "outcome", "reply");
  auto spans = ctx_.SnapshotSpans();
  ASSERT_EQ(spans[0].notes.size(), 1u);
  EXPECT_EQ(spans[0].notes[0].second, "timeout");
  EXPECT_EQ(spans[0].sim_end_ns, first.sim_end_ns);
}

TEST_F(TraceContextTest, ZeroIdIsToleratedEverywhere) {
  ctx_.EndSpan(0);
  ctx_.EndSpan(0, "k", "v");
  ctx_.Annotate(0, "k", "v");
  EXPECT_EQ(ctx_.RootOf(0), 0u);
  EXPECT_EQ(ctx_.span_count(), 0u);
}

TEST_F(TraceContextTest, MaxSpansCapDropsAndCounts) {
  TraceContext::Options options;
  options.max_spans = 2;
  TraceContext small(options);
  small.AttachSimulation(&simulation_);
  EXPECT_NE(small.BeginSpan("a"), 0u);
  EXPECT_NE(small.BeginSpan("b"), 0u);
  EXPECT_EQ(small.BeginSpan("c"), 0u);  // dropped
  EXPECT_EQ(small.Instant("d"), 0u);    // dropped
  EXPECT_EQ(small.span_count(), 2u);
  EXPECT_EQ(small.dropped_spans(), 2u);
}

TEST_F(TraceContextTest, DisabledContextRecordsNothing) {
  ctx_.set_enabled(false);
  // Instrumentation sites guard on ActiveContext(); emulate one.
  if (auto* tr = ActiveContext()) {
    tr->BeginSpan("never");
  }
  DCDO_TRACE_HOOK(metrics().GetCounter("never.metric").Increment());
  ctx_.set_enabled(true);
  EXPECT_EQ(ctx_.span_count(), 0u);
  EXPECT_EQ(ctx_.metrics().CounterValue("never.metric"), 0u);
}

TEST_F(TraceContextTest, SpanScopeRaii) {
#if !defined(DCDO_TRACE_ENABLED)
  GTEST_SKIP() << "tracing compiled out; SpanScope is a no-op";
#endif
  {
    SpanScope outer("outer", {.category = "test"});
    EXPECT_TRUE(static_cast<bool>(outer));
    outer.Annotate("key", "value");
    EXPECT_EQ(ctx_.CurrentScope(), outer.id());
    {
      SpanScope inner("inner");
      EXPECT_EQ(ctx_.CurrentScope(), inner.id());
    }
    EXPECT_EQ(ctx_.CurrentScope(), outer.id());
  }
  EXPECT_EQ(ctx_.CurrentScope(), 0u);

  auto spans = ctx_.SnapshotSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_FALSE(spans[0].open());
  EXPECT_FALSE(spans[1].open());
  ASSERT_EQ(spans[0].notes.size(), 1u);
  EXPECT_EQ(spans[0].notes[0].second, "value");
}

TEST(SpanScopeNoContextTest, IsANoOp) {
  ASSERT_EQ(TraceContext::Current(), nullptr);
  SpanScope scope("orphan");
  EXPECT_FALSE(static_cast<bool>(scope));
  EXPECT_EQ(scope.id(), 0u);
  scope.Annotate("k", "v");  // must not crash
}

}  // namespace
}  // namespace dcdo::trace
