#include "check/diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/object_id.h"
#include "common/version_id.h"
#include "sim/sim_time.h"

namespace dcdo::check {
namespace {

Diagnostic Make(Severity severity, const std::string& invariant,
                const std::string& message) {
  Diagnostic d;
  d.severity = severity;
  d.invariant = invariant;
  d.message = message;
  return d;
}

TEST(SeverityNameTest, CoversAllLevels) {
  EXPECT_EQ(SeverityName(Severity::kInfo), "info");
  EXPECT_EQ(SeverityName(Severity::kWarning), "warning");
  EXPECT_EQ(SeverityName(Severity::kError), "error");
}

TEST(DiagnosticTest, ToStringCarriesAllFields) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.invariant = "version-monotonic";
  d.message = "went backwards";
  d.time = sim::SimTime::FromNanos(1'250'000'000);
  d.event_id = 42;
  d.object = ObjectId(3, 7);
  d.version = VersionId{1, 2};

  std::string text = d.ToString();
  EXPECT_NE(text.find("[error]"), std::string::npos) << text;
  EXPECT_NE(text.find("t=1.25s"), std::string::npos) << text;
  EXPECT_NE(text.find("ev=42"), std::string::npos) << text;
  EXPECT_NE(text.find("version-monotonic"), std::string::npos) << text;
  EXPECT_NE(text.find("v=1.2"), std::string::npos) << text;
  EXPECT_NE(text.find("went backwards"), std::string::npos) << text;
}

TEST(DiagnosticTest, ToStringOmitsNilObjectAndInvalidVersion) {
  Diagnostic d = Make(Severity::kWarning, "message-conservation", "m");
  std::string text = d.ToString();
  EXPECT_EQ(text.find(" obj="), std::string::npos) << text;
  EXPECT_EQ(text.find(" v="), std::string::npos) << text;
}

TEST(DiagnosticTest, ToJsonEscapesAndKeepsAllKeys) {
  Diagnostic d = Make(Severity::kError, "dfm-integrity",
                      "quote \" backslash \\ newline \n done");
  d.time = sim::SimTime::FromNanos(500);
  d.event_id = 7;

  std::string json = d.ToJson();
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"invariant\":\"dfm-integrity\""), std::string::npos);
  EXPECT_NE(json.find("\"time_ns\":500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"event\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\\"), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  // The raw control characters must not survive into the JSON.
  EXPECT_EQ(json.find('\n'), std::string::npos) << json;
}

TEST(DiagnosticsTest, CountsBySeverity) {
  Diagnostics sink;
  sink.Record(Make(Severity::kInfo, "coordinator", "batch applied"));
  sink.Record(Make(Severity::kWarning, "race-unquiesced-swap", "w"));
  sink.Record(Make(Severity::kError, "thread-accounting", "e1"));
  sink.Record(Make(Severity::kError, "thread-accounting", "e2"));

  EXPECT_EQ(sink.count(), 4u);
  EXPECT_EQ(sink.errors(), 2u);
  EXPECT_EQ(sink.warnings(), 1u);
  EXPECT_FALSE(sink.Clean());
}

TEST(DiagnosticsTest, CleanIgnoresInfoAndWarnings) {
  Diagnostics sink;
  EXPECT_TRUE(sink.Clean());
  sink.Record(Make(Severity::kInfo, "coordinator", "note"));
  sink.Record(Make(Severity::kWarning, "race-overlapping-evolution", "w"));
  EXPECT_TRUE(sink.Clean());
  sink.Record(Make(Severity::kError, "binding-coherence", "e"));
  EXPECT_FALSE(sink.Clean());
}

TEST(DiagnosticsTest, ForFiltersByInvariant) {
  Diagnostics sink;
  sink.Record(Make(Severity::kError, "a", "1"));
  sink.Record(Make(Severity::kError, "b", "2"));
  sink.Record(Make(Severity::kError, "a", "3"));

  EXPECT_EQ(sink.CountFor("a"), 2u);
  EXPECT_EQ(sink.CountFor("b"), 1u);
  EXPECT_EQ(sink.CountFor("missing"), 0u);
  auto entries = sink.For("a");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0]->message, "1");
  EXPECT_EQ(entries[1]->message, "3");
}

TEST(DiagnosticsTest, DumpTextOneLinePerEntry) {
  Diagnostics sink;
  sink.Record(Make(Severity::kError, "a", "first"));
  sink.Record(Make(Severity::kWarning, "b", "second"));
  std::string text = sink.DumpText();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  EXPECT_LT(text.find("first"), text.find("second"));
}

TEST(DiagnosticsTest, DumpJsonIsAnArray) {
  Diagnostics sink;
  EXPECT_EQ(sink.DumpJson(), "[]");
  sink.Record(Make(Severity::kError, "a", "1"));
  sink.Record(Make(Severity::kError, "b", "2"));
  std::string json = sink.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), 2);
  EXPECT_NE(json.find("},{"), std::string::npos) << json;
}

TEST(DiagnosticsTest, ClearEmptiesTheSink) {
  Diagnostics sink;
  sink.Record(Make(Severity::kError, "a", "1"));
  sink.Clear();
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_TRUE(sink.Clean());
}

}  // namespace
}  // namespace dcdo::check
