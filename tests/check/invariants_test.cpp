// Per-invariant tests: each shipped invariant has at least one test that
// constructs its violation (via synthetic probes or a real runtime scenario)
// and one that shows the legal counterpart stays silent.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "check/check_context.h"
#include "component/ico.h"
#include "core/dcdo.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

using check::CacheEntrySnapshot;
using check::CheckContext;
using check::NetworkCounters;
using check::ObjectStatusSnapshot;
using check::Severity;

// ===== Synthetic-probe tests: a standalone (uninstalled) context fed by
// probes the test controls, so each invariant can be violated in isolation.

class SyntheticInvariantTest : public ::testing::Test {
 protected:
  // Registers an object whose probe reports the test-controlled fields.
  void RegisterSyntheticObject() {
    ctx_.RegisterObject(object_, [this] {
      ObjectStatusSnapshot s;
      s.id = object_;
      s.version = live_version_;
      s.components = components_;
      s.total_active_threads = active_threads_;
      s.config_anomalies = anomalies_;
      return s;
    });
  }

  CheckContext ctx_;
  ObjectId object_ = ObjectId::Next(domains::kInstance);
  ObjectId comp_a_ = ObjectId::Next(domains::kComponent);
  ObjectId comp_b_ = ObjectId::Next(domains::kComponent);
  VersionId live_version_ = VersionId::Root();
  std::vector<ObjectId> components_;
  int active_threads_ = 0;
  std::vector<std::string> anomalies_;
};

TEST_F(SyntheticInvariantTest, CatalogueShipsSevenInvariants) {
  EXPECT_EQ(ctx_.invariants().size(), 7u);
  for (const char* name :
       {"version-monotonic", "single-evolution", "dfm-no-dangling",
        "dfm-integrity", "thread-accounting", "binding-coherence",
        "message-conservation"}) {
    bool found = false;
    for (const check::Invariant& inv : ctx_.invariants()) {
      if (inv.name == name) {
        found = true;
        EXPECT_FALSE(inv.layer.empty()) << name;
        EXPECT_FALSE(inv.paper.empty()) << name << " cites no paper passage";
      }
    }
    EXPECT_TRUE(found) << name;
  }
}

TEST_F(SyntheticInvariantTest, VersionMonotonicFlagsUninstrumentedChange) {
  RegisterSyntheticObject();
  ctx_.Evaluate();
  EXPECT_TRUE(ctx_.diagnostics().Clean());

  // The version moves with no OnVersionChanged hook: not a legal evolution.
  live_version_ = VersionId::Root().Child(1);
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("version-monotonic"), 1u);
  EXPECT_EQ(ctx_.diagnostics().For("version-monotonic")[0]->severity,
            Severity::kError);

  // Re-evaluation does not duplicate the report.
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("version-monotonic"), 1u);
}

TEST_F(SyntheticInvariantTest, VersionMonotonicAcceptsInstrumentedChange) {
  RegisterSyntheticObject();
  // The hook and the live state advance together, as a real evolution does.
  ctx_.OnVersionChanged(object_, live_version_, VersionId::Root().Child(1));
  live_version_ = VersionId::Root().Child(1);
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("version-monotonic"), 0u);

  VersionId recorded;
  ASSERT_TRUE(ctx_.RecordedVersion(object_, &recorded));
  EXPECT_EQ(recorded, VersionId::Root().Child(1));
}

TEST_F(SyntheticInvariantTest, DfmIntegrityReportsProbeAnomalies) {
  RegisterSyntheticObject();
  anomalies_ = {"function 'f' has 2 enabled implementations"};
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("dfm-integrity"), 1u);
  const check::Diagnostic& d = *ctx_.diagnostics().For("dfm-integrity")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.message, anomalies_[0]);

  anomalies_.clear();
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("dfm-integrity"), 1u);
}

TEST_F(SyntheticInvariantTest, ThreadAccountingFlagsLedgerMismatch) {
  RegisterSyntheticObject();
  // The mapper claims a live thread the checker never saw start.
  active_threads_ = 1;
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("thread-accounting"), 1u);
  EXPECT_EQ(ctx_.diagnostics().For("thread-accounting")[0]->severity,
            Severity::kError);
}

TEST_F(SyntheticInvariantTest, ThreadAccountingAcceptsBalancedLedger) {
  components_ = {comp_a_};
  RegisterSyntheticObject();
  ctx_.OnCallStart(object_, "f", comp_a_);
  active_threads_ = 1;
  ctx_.Evaluate();
  ctx_.OnCallEnd(object_, "f", comp_a_);
  active_threads_ = 0;
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("thread-accounting"), 0u);
  EXPECT_TRUE(ctx_.diagnostics().Clean());
}

TEST_F(SyntheticInvariantTest, DanglingCallWithoutRemovalIsError) {
  components_ = {comp_a_};
  RegisterSyntheticObject();
  // The in-flight call claims a component the DFM never listed and no
  // instrumented removal retired: truly dangling state.
  ctx_.OnCallStart(object_, "f", comp_b_);
  active_threads_ = 1;
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("dfm-no-dangling"), 1u);
  const check::Diagnostic& d = *ctx_.diagnostics().For("dfm-no-dangling")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("no instrumented removal"), std::string::npos);
}

TEST_F(SyntheticInvariantTest, DanglingCallAfterInstrumentedRemovalWarns) {
  components_ = {comp_a_};
  RegisterSyntheticObject();
  ctx_.OnCallStart(object_, "f", comp_a_);
  active_threads_ = 1;
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("dfm-no-dangling"), 0u);

  // The component is retired through the hook while the call runs: the
  // paper-legal "thread proceeds inside a deactivated function" overlap.
  // The mapper's entries (and their thread counts) go with the component.
  ctx_.OnComponentRemoved(object_, comp_a_, /*forced=*/false);
  components_.clear();
  active_threads_ = 0;
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("dfm-no-dangling"), 1u);
  EXPECT_EQ(ctx_.diagnostics().For("dfm-no-dangling")[0]->severity,
            Severity::kWarning);
  EXPECT_TRUE(ctx_.diagnostics().Clean());
}

TEST_F(SyntheticInvariantTest, BindingCoherenceFlagsNeverLiveAddress) {
  ctx_.SetEndpointLiveness(
      [](std::uint32_t, std::uint64_t, std::uint64_t) { return false; });
  ctx_.RegisterBindingCache([this] {
    return std::vector<CacheEntrySnapshot>{{object_, 9, 9, 9}};
  });
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("binding-coherence"), 1u);
  EXPECT_EQ(ctx_.diagnostics().For("binding-coherence")[0]->severity,
            Severity::kError);
}

TEST_F(SyntheticInvariantTest, BindingCoherenceAcceptsRetiredAddress) {
  ctx_.SetEndpointLiveness(
      [](std::uint32_t, std::uint64_t, std::uint64_t) { return false; });
  ctx_.RegisterBindingCache([this] {
    return std::vector<CacheEntrySnapshot>{{object_, 9, 9, 9}};
  });
  // The address was once a live activation and has been closed: the
  // stale-binding fault protocol will repair the cache on next use.
  ctx_.OnEndpointOpened(9, 9, 9);
  ctx_.OnEndpointClosed(9, 9);
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("binding-coherence"), 0u);
}

TEST_F(SyntheticInvariantTest, BindingRefreshOntoDeadAddressReportsAtOnce) {
  ctx_.SetEndpointLiveness(
      [](std::uint32_t, std::uint64_t, std::uint64_t) { return false; });
  // No Evaluate needed: the refresh hook reports the incoherence directly.
  ctx_.OnBindingRefreshed(object_, 1, 2, 3);
  ASSERT_EQ(ctx_.diagnostics().CountFor("binding-coherence"), 1u);
  EXPECT_NE(ctx_.diagnostics().For("binding-coherence")[0]->message.find(
                "binding refresh"),
            std::string::npos);
}

TEST_F(SyntheticInvariantTest, MessageConservationFlagsImbalance) {
  NetworkCounters counters{.sent = 5, .delivered = 3, .dropped_in_flight = 1,
                           .in_flight = 0};
  ctx_.SetNetworkProbe([&] { return counters; });
  ctx_.Evaluate();
  ASSERT_EQ(ctx_.diagnostics().CountFor("message-conservation"), 1u);
  EXPECT_NE(ctx_.diagnostics().For("message-conservation")[0]->message.find(
                "sent=5"),
            std::string::npos);
}

TEST_F(SyntheticInvariantTest, MessageConservationQuiescenceOnlyAtEnd) {
  // Balanced but with traffic still queued: legal mid-run, an error once the
  // simulator goes idle for good.
  NetworkCounters counters{.sent = 4, .delivered = 2, .dropped_in_flight = 1,
                           .in_flight = 1};
  ctx_.SetNetworkProbe([&] { return counters; });
  ctx_.Evaluate();
  EXPECT_EQ(ctx_.diagnostics().CountFor("message-conservation"), 0u);
  ctx_.EvaluateAtEnd();
  ASSERT_EQ(ctx_.diagnostics().CountFor("message-conservation"), 1u);
  EXPECT_NE(ctx_.diagnostics().For("message-conservation")[0]->message.find(
                "still in flight"),
            std::string::npos);
}

TEST_F(SyntheticInvariantTest, SingleEvolutionFlagsOverlapTwice) {
  RegisterSyntheticObject();
  ctx_.OnEvolveBegin(object_, VersionId::Root(), VersionId::Root().Child(1));
  ctx_.OnEvolveBegin(object_, VersionId::Root(), VersionId::Root().Child(2));
  ctx_.Evaluate();
  // Once from the race detector at the second begin, once from the
  // steady-state invariant restatement.
  EXPECT_EQ(ctx_.diagnostics().CountFor("single-evolution"), 2u);
}

TEST_F(SyntheticInvariantTest, ReportDedupesIdenticalDiagnostics) {
  check::Diagnostic d;
  d.severity = Severity::kError;
  d.invariant = "custom";
  d.object = object_;
  d.message = "same message";
  ctx_.Report(d);
  ctx_.Report(d);
  EXPECT_EQ(ctx_.diagnostics().CountFor("custom"), 1u);
}

TEST_F(SyntheticInvariantTest, CustomInvariantsJoinTheEvaluationLoop) {
  int runs = 0;
  ctx_.RegisterInvariant(
      {"test-custom", "test", "n/a", [&](CheckContext&) { ++runs; }});
  std::uint64_t before = ctx_.evaluations();
  ctx_.Evaluate();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(ctx_.evaluations(), before + 1);
}

// ===== Real-runtime tests: a checked testbed with live objects, exercising
// the instrumentation wired through Dcdo / DFM / transport.

class CheckedRuntimeTest : public ::testing::Test {
 protected:
  static Testbed::Options MakeOptions() {
    Testbed::Options options;
    // Evaluate on every simulation event so mid-run states (a parked call
    // overlapping a removal) are deterministically observed.
    options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
    return options;
  }

  CheckedRuntimeTest() : testbed_(MakeOptions()) {
    comp_a_ = testing::MakeEchoComponent(testbed_.registry(), "libA", {"f"});
    comp_b_ = testing::MakeEchoComponent(testbed_.registry(), "libB", {"f"});
    ico_a_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_a_);
    ico_b_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_b_);
    icos_.Register(ico_a_.get());
    icos_.Register(ico_b_.get());
    object_ = std::make_unique<Dcdo>("obj", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
  }

  Status IncorporateBlocking(const ObjectId& component) {
    std::optional<Status> out;
    object_->IncorporateComponent(component,
                                  [&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("incorporate never completed"));
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  std::unique_ptr<ImplementationComponentObject> ico_a_;
  std::unique_ptr<ImplementationComponentObject> ico_b_;
  std::unique_ptr<Dcdo> object_;
};

TEST_F(CheckedRuntimeTest, CleanLifecycleLeavesNoDiagnostics) {
  CheckContext* checker = testbed_.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  auto result = object_->Call("f", ByteBuffer::FromString("x"));
  ASSERT_TRUE(result.ok());

  // Evolve to a child version that swaps libA for libB.
  DfmDescriptor target(VersionId::Root().Child(1));
  ASSERT_TRUE(target.IncorporateComponent(comp_b_).ok());
  ASSERT_TRUE(target.EnableFunction("f", comp_b_.id).ok());
  ASSERT_TRUE(target.MarkInstantiable().ok());
  std::optional<Status> evolved;
  object_->EvolveTo(target, Dcdo::RemovalPolicy::Delay(),
                    [&](Status status) { evolved = status; });
  testbed_.simulation().RunWhile([&] { return !evolved.has_value(); });
  ASSERT_TRUE(evolved->ok()) << *evolved;
  EXPECT_EQ(object_->version(), VersionId::Root().Child(1));

  testbed_.RunAll();  // drain trailing traffic before the quiescence check
  checker->EvaluateAtEnd();
  EXPECT_GT(checker->evaluations(), 0u);
  EXPECT_TRUE(checker->diagnostics().Clean())
      << checker->diagnostics().DumpText();
  EXPECT_EQ(checker->diagnostics().CountFor("race-forced-removal"), 0u);
  EXPECT_EQ(checker->diagnostics().CountFor("race-overlapping-evolution"), 0u);

  // The checker followed the evolution: its causal record matches the live
  // version, which is exactly why version-monotonic stayed silent.
  VersionId recorded;
  ASSERT_TRUE(checker->RecordedVersion(object_->id(), &recorded));
  EXPECT_EQ(recorded, VersionId::Root().Child(1));
}

TEST_F(CheckedRuntimeTest, ForcedRemovalUnderParkedCallIsDetected) {
  CheckContext* checker = testbed_.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  // A body that parks for 2 s on an outcall, leaving its thread live inside
  // the component.
  testbed_.registry().Register(
      "app/F1", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer::FromString("survived"));
      });
  auto comp = ComponentBuilder("app").AddFunction("F1", "b(b)", "app/F1")
                  .Build();
  ASSERT_TRUE(comp.ok());
  testbed_.host(1)->CacheComponent(comp->id, comp->code_bytes);
  ASSERT_TRUE(object_->IncorporateCached(*comp).ok());
  ASSERT_TRUE(object_->EnableFunction("F1", comp->id).ok());

  // While the call is parked, the component is ripped out with kForce.
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    EXPECT_TRUE(
        object_->RemoveComponent(comp->id, ActiveThreadPolicy::kForce).ok());
  });
  auto result = object_->Call("F1", ByteBuffer{});
  ASSERT_TRUE(result.ok());

  // The removal did not happen-after the invocation end: an error-level race.
  ASSERT_EQ(checker->diagnostics().CountFor("race-forced-removal"), 1u);
  EXPECT_EQ(checker->diagnostics().For("race-forced-removal")[0]->severity,
            Severity::kError);
  // The parked call kept executing inside the retired component; the
  // per-event evaluation saw it as a (paper-legal, explained) dangling call.
  ASSERT_GE(checker->diagnostics().CountFor("dfm-no-dangling"), 1u);
  EXPECT_EQ(checker->diagnostics().For("dfm-no-dangling")[0]->severity,
            Severity::kWarning);
}

TEST_F(CheckedRuntimeTest, RuntimeToggleSuppressesInstrumentation) {
  CheckContext* checker = testbed_.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());

  checker->set_enabled(false);
  std::uint64_t evaluations_before = checker->evaluations();
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  EXPECT_EQ(checker->races().in_flight().size(), 0u)
      << "disabled checker must not collect call records";
  EXPECT_EQ(checker->evaluations(), evaluations_before);

  checker->set_enabled(true);
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  testbed_.RunAll();
  checker->EvaluateAtEnd();
  EXPECT_TRUE(checker->diagnostics().Clean())
      << checker->diagnostics().DumpText();
}

}  // namespace
}  // namespace dcdo
