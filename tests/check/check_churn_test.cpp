// Integration tests of the checking layer against the full runtime:
//
//   1. the headline race — an evolution under a timeout removal policy forces
//      a component out from under a parked invocation, and the checker
//      reports the precise happens-before violation;
//   2. randomized churn (modeled on integration/churn_test.cpp) with the
//      checker enabled at every-event cadence: a long run of legal operations
//      must leave the diagnostics sink free of errors.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "check/check_context.h"
#include "component/ico.h"
#include "core/dcdo.h"
#include "core/manager.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

using check::CheckContext;
using check::Severity;

Testbed::Options EveryEventOptions() {
  Testbed::Options options;
  options.check_options.cadence = CheckContext::Cadence::kEveryEvent;
  return options;
}

// ===== The overlapping-evolution race =====
//
// A call parks inside component "app" on a 2 s outcall. At t = 0.5 s an
// evolution to a version without "app" starts under a 0.5 s timeout removal
// policy: the removal waits, times out, and forces while the call is still
// parked; the version then commits while the pre-evolution invocation is
// still running. The checker must report:
//
//   race-forced-removal        (error)   the forced removal overlapped the
//                                        live invocation;
//   race-overlapping-evolution (warning) the commit did not happen-after the
//                                        invocation epoch;
//   dfm-no-dangling            (warning) the parked thread kept executing
//                                        inside the retired component;
// and nothing else at error level, because every transition went through an
// instrumented path.
TEST(CheckChurnTest, EvolutionOverParkedCallReportsTheRace) {
  Testbed testbed{EveryEventOptions()};
  CheckContext* checker = testbed.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  testbed.registry().Register(
      "app/f", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer::FromString("survived"));
      });
  auto app = ComponentBuilder("app").AddFunction("f", "b(b)", "app/f").Build();
  ASSERT_TRUE(app.ok());
  ImplementationComponent lib_b =
      testing::MakeEchoComponent(testbed.registry(), "libB", {"f"});

  IcoDirectory icos;
  ImplementationComponentObject ico_app(testbed.host(0), &testbed.transport(),
                                        &testbed.agent(), *app);
  ImplementationComponentObject ico_b(testbed.host(0), &testbed.transport(),
                                      &testbed.agent(), lib_b);
  icos.Register(&ico_app);
  icos.Register(&ico_b);

  Dcdo object("obj", testbed.host(1), &testbed.transport(), &testbed.agent(),
              &testbed.registry(), &icos, VersionId::Root());
  testbed.host(1)->CacheComponent(app->id, app->code_bytes);
  ASSERT_TRUE(object.IncorporateCached(*app).ok());
  ASSERT_TRUE(object.EnableFunction("f", app->id).ok());

  DfmDescriptor target(VersionId::Root().Child(1));
  ASSERT_TRUE(target.IncorporateComponent(lib_b).ok());
  ASSERT_TRUE(target.EnableFunction("f", lib_b.id).ok());
  ASSERT_TRUE(target.MarkInstantiable().ok());

  std::optional<Status> evolved;
  testbed.simulation().Schedule(sim::SimDuration::Seconds(0.5), [&] {
    object.EvolveTo(target,
                    Dcdo::RemovalPolicy::Timeout(sim::SimDuration::Seconds(0.5)),
                    [&](Status status) { evolved = status; });
  });

  // Parks at t = 0; wakes at t = 2.0, well after the forced removal (~1.0)
  // and the version commit.
  auto result = object.Call("f", ByteBuffer{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "survived");
  testbed.RunAll();
  ASSERT_TRUE(evolved.has_value());
  ASSERT_TRUE(evolved->ok()) << *evolved;
  EXPECT_EQ(object.version(), VersionId::Root().Child(1));

  const check::Diagnostics& diag = checker->diagnostics();
  ASSERT_EQ(diag.CountFor("race-forced-removal"), 1u) << diag.DumpText();
  EXPECT_EQ(diag.For("race-forced-removal")[0]->severity, Severity::kError);
  EXPECT_EQ(diag.For("race-forced-removal")[0]->object, object.id());

  ASSERT_EQ(diag.CountFor("race-overlapping-evolution"), 1u)
      << diag.DumpText();
  const check::Diagnostic& overlap =
      *diag.For("race-overlapping-evolution")[0];
  EXPECT_EQ(overlap.severity, Severity::kWarning);
  EXPECT_EQ(overlap.version, VersionId::Root().Child(1));

  ASSERT_GE(diag.CountFor("dfm-no-dangling"), 1u) << diag.DumpText();
  EXPECT_EQ(diag.For("dfm-no-dangling")[0]->severity, Severity::kWarning);

  // The evolution itself was legal and serialized: no single-evolution or
  // version-monotonic violations, and the only error is the forced removal.
  EXPECT_EQ(diag.CountFor("single-evolution"), 0u);
  EXPECT_EQ(diag.CountFor("version-monotonic"), 0u);
  EXPECT_EQ(diag.errors(), 1u) << diag.DumpText();
}

// ===== Checked churn =====
//
// A compressed version of integration/churn_test.cpp (same operation mix,
// fewer steps) with the checker at its tightest cadence. Every operation is
// legal — evolutions are serialized, removals wait for quiescence — so the
// run must end with zero error-level diagnostics.
class CheckedChurn : public ::testing::TestWithParam<int> {};

TEST_P(CheckedChurn, LegalOperationsLeaveNoErrors) {
  std::mt19937 rng(GetParam());
  Testbed testbed{EveryEventOptions()};
  CheckContext* checker = testbed.checker();
  if (checker == nullptr) GTEST_SKIP() << "checking compiled out";

  DcdoManager manager("churn", testbed.host(0), &testbed.transport(),
                      &testbed.agent(), &testbed.registry(),
                      MakeMultiVersionIncreasing());
  ASSERT_TRUE(manager.AttachNameService(&testbed.names()).ok());

  std::vector<ImplementationComponent> pool;
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q0",
                                            {"alpha", "beta"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q1",
                                            {"alpha"}));
  pool.push_back(testing::MakeEchoComponent(testbed.registry(), "q2",
                                            {"beta", "gamma"}));
  for (const ImplementationComponent& comp : pool) {
    ASSERT_TRUE(manager.PublishComponent(comp).ok());
  }

  VersionId root = *manager.CreateRootVersion();
  {
    DfmDescriptor* d = *manager.MutableDescriptor(root);
    ASSERT_TRUE(d->IncorporateComponent(pool[0]).ok());
    ASSERT_TRUE(d->EnableFunction("alpha", pool[0].id).ok());
    ASSERT_TRUE(manager.MarkInstantiable(root).ok());
    ASSERT_TRUE(manager.SetCurrentVersion(root).ok());
  }

  std::vector<ObjectId> instances;
  std::vector<VersionId> instantiable{root};
  std::vector<VersionId> configurable;

  auto create_instance = [&] {
    std::uniform_int_distribution<std::size_t> host_dist(1, 7);
    bool done = false;
    manager.CreateInstance(testbed.host(host_dist(rng)),
                           [&](Result<ObjectId> result) {
                             if (result.ok()) instances.push_back(*result);
                             done = true;
                           });
    testbed.simulation().RunWhile([&] { return !done; });
  };
  create_instance();

  std::uniform_int_distribution<int> op_dist(0, 6);
  for (int step = 0; step < 60; ++step) {
    switch (op_dist(rng)) {
      case 0: {  // derive a configurable version
        std::vector<VersionId> all = manager.Versions();
        std::uniform_int_distribution<std::size_t> pick(0, all.size() - 1);
        auto derived = manager.DeriveVersion(all[pick(rng)]);
        if (derived.ok()) configurable.push_back(*derived);
        break;
      }
      case 1: {  // randomly configure
        if (configurable.empty()) break;
        std::uniform_int_distribution<std::size_t> pick(
            0, configurable.size() - 1);
        auto descriptor = manager.MutableDescriptor(configurable[pick(rng)]);
        if (!descriptor.ok()) break;
        std::uniform_int_distribution<std::size_t> comp_pick(0,
                                                             pool.size() - 1);
        const ImplementationComponent& comp = pool[comp_pick(rng)];
        (void)(*descriptor)->IncorporateComponent(comp);
        if (!comp.functions.empty()) {
          (void)(*descriptor)
              ->SwitchImplementation(comp.functions[0].function.name,
                                     comp.id);
        }
        break;
      }
      case 2: {  // freeze
        if (configurable.empty()) break;
        std::uniform_int_distribution<std::size_t> pick(
            0, configurable.size() - 1);
        std::size_t index = pick(rng);
        if (manager.MarkInstantiable(configurable[index]).ok()) {
          instantiable.push_back(configurable[index]);
          configurable.erase(configurable.begin() +
                             static_cast<std::ptrdiff_t>(index));
        }
        break;
      }
      case 3: {  // designate current
        std::uniform_int_distribution<std::size_t> pick(
            0, instantiable.size() - 1);
        (void)manager.SetCurrentVersion(instantiable[pick(rng)]);
        break;
      }
      case 4: {  // evolve an instance
        if (instances.empty()) break;
        std::uniform_int_distribution<std::size_t> ipick(0,
                                                         instances.size() - 1);
        std::uniform_int_distribution<std::size_t> vpick(
            0, instantiable.size() - 1);
        bool done = false;
        manager.EvolveInstanceTo(instances[ipick(rng)],
                                 instantiable[vpick(rng)],
                                 [&](Status) { done = true; });
        testbed.simulation().RunWhile([&] { return !done; });
        break;
      }
      case 5: {  // call an instance
        if (instances.empty()) break;
        std::uniform_int_distribution<std::size_t> ipick(0,
                                                         instances.size() - 1);
        Dcdo* object = manager.FindInstance(instances[ipick(rng)]);
        const char* fns[] = {"alpha", "beta", "gamma"};
        std::uniform_int_distribution<int> fpick(0, 2);
        auto result = object->Call(fns[fpick(rng)], ByteBuffer{});
        if (!result.ok()) {
          ErrorCode code = result.status().code();
          ASSERT_TRUE(code == ErrorCode::kFunctionMissing ||
                      code == ErrorCode::kFunctionDisabled)
              << result.status();
        }
        break;
      }
      case 6: {  // create (rarely) or migrate
        if (instances.size() < 3) {
          create_instance();
        } else {
          std::uniform_int_distribution<std::size_t> ipick(
              0, instances.size() - 1);
          std::uniform_int_distribution<std::size_t> host_dist(1, 7);
          bool done = false;
          manager.MigrateInstance(instances[ipick(rng)],
                                  testbed.host(host_dist(rng)),
                                  [&](Status) { done = true; });
          testbed.simulation().RunWhile([&] { return !done; });
        }
        break;
      }
    }
    testbed.simulation().Run();
  }

  testbed.RunAll();
  checker->EvaluateAtEnd();
  EXPECT_GT(checker->evaluations(), 0u);
  EXPECT_TRUE(checker->diagnostics().Clean())
      << checker->diagnostics().DumpText();
  // The legal mix never forces a removal or lets versions move outside an
  // instrumented evolution.
  EXPECT_EQ(checker->diagnostics().CountFor("race-forced-removal"), 0u);
  EXPECT_EQ(checker->diagnostics().CountFor("version-monotonic"), 0u);
  EXPECT_EQ(checker->diagnostics().CountFor("thread-accounting"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckedChurn, ::testing::Range(1, 4));

}  // namespace
}  // namespace dcdo
