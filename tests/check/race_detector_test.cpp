// Direct unit tests of the logical race detector: each ledger, each
// diagnostic it can produce, and the happens-before bookkeeping behind them.
#include "check/race_detector.h"

#include <gtest/gtest.h>

#include "check/diagnostics.h"

namespace dcdo::check {
namespace {

class RaceDetectorTest : public ::testing::Test {
 protected:
  Stamp Next() {
    Stamp stamp;
    stamp.time = sim::SimTime::FromNanos(static_cast<std::int64_t>(lamport_));
    stamp.event_id = lamport_;
    stamp.lamport = ++lamport_;
    return stamp;
  }

  Diagnostics sink_;
  RaceDetector detector_{&sink_};
  ObjectId object_ = ObjectId::Next(domains::kInstance);
  ObjectId comp_a_ = ObjectId::Next(domains::kComponent);
  ObjectId comp_b_ = ObjectId::Next(domains::kComponent);
  std::uint64_t lamport_ = 0;
};

TEST_F(RaceDetectorTest, CallLedgerBalances) {
  EXPECT_EQ(detector_.InFlightCalls(object_), 0);
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnCallStart(object_, "g", comp_a_, Next());
  EXPECT_EQ(detector_.InFlightCalls(object_), 2);
  detector_.OnCallEnd(object_, "g", comp_a_, Next());
  detector_.OnCallEnd(object_, "f", comp_a_, Next());
  EXPECT_EQ(detector_.InFlightCalls(object_), 0);
  EXPECT_TRUE(sink_.Clean());
  EXPECT_EQ(sink_.count(), 0u);
}

TEST_F(RaceDetectorTest, NestedCallsCloseLifo) {
  // Two in-flight records of the same (object, function, component): the end
  // closes the most recent one, leaving the outer call's record intact.
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnCallEnd(object_, "f", comp_a_, Next());
  ASSERT_EQ(detector_.in_flight().size(), 1u);
  EXPECT_EQ(detector_.in_flight()[0].token, 1u) << "outer record survives";
}

TEST_F(RaceDetectorTest, ForcedRemovalOverLiveCallIsError) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnComponentRemoved(object_, comp_a_, /*forced=*/true, Next());

  ASSERT_EQ(sink_.CountFor("race-forced-removal"), 1u);
  const Diagnostic& d = *sink_.For("race-forced-removal")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.object, object_);
  EXPECT_NE(d.message.find("forced"), std::string::npos) << d.message;
  EXPECT_TRUE(detector_.WasRetired(object_, comp_a_));
}

TEST_F(RaceDetectorTest, UnforcedRemovalOverLiveCallIsWarning) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnComponentRemoved(object_, comp_a_, /*forced=*/false, Next());

  ASSERT_EQ(sink_.CountFor("race-forced-removal"), 1u);
  EXPECT_EQ(sink_.For("race-forced-removal")[0]->severity,
            Severity::kWarning);
  EXPECT_TRUE(sink_.Clean());
}

TEST_F(RaceDetectorTest, RemovalWithNoLiveCallsIsSilent) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnCallEnd(object_, "f", comp_a_, Next());
  detector_.OnComponentRemoved(object_, comp_a_, /*forced=*/true, Next());
  EXPECT_EQ(sink_.count(), 0u) << "removal happens-after the invocation end";
  EXPECT_TRUE(detector_.WasRetired(object_, comp_a_));
}

TEST_F(RaceDetectorTest, RemovalOfOtherComponentDoesNotFlagCall) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnComponentRemoved(object_, comp_b_, /*forced=*/true, Next());
  EXPECT_EQ(sink_.CountFor("race-forced-removal"), 0u);
}

TEST_F(RaceDetectorTest, UnquiescedSwapWarns) {
  detector_.OnImplSwapped(object_, "f", comp_a_, comp_b_,
                          /*active_on_from=*/2, Next());
  ASSERT_EQ(sink_.CountFor("race-unquiesced-swap"), 1u);
  const Diagnostic& d = *sink_.For("race-unquiesced-swap")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("2 thread(s)"), std::string::npos) << d.message;
}

TEST_F(RaceDetectorTest, QuiescedSwapIsSilent) {
  detector_.OnImplSwapped(object_, "f", comp_a_, comp_b_,
                          /*active_on_from=*/0, Next());
  EXPECT_EQ(sink_.count(), 0u);
}

TEST_F(RaceDetectorTest, SecondEvolveBeginIsError) {
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(1), Next());
  EXPECT_EQ(detector_.OpenEvolutions(object_), 1);
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(2), Next());

  EXPECT_EQ(detector_.OpenEvolutions(object_), 2);
  ASSERT_EQ(sink_.CountFor("single-evolution"), 1u);
  const Diagnostic& d = *sink_.For("single-evolution")[0];
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.version, VersionId::Root().Child(2));
  EXPECT_NE(d.message.find("still in flight"), std::string::npos);
}

TEST_F(RaceDetectorTest, EvolveEndClosesWindows) {
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(1), Next());
  detector_.OnEvolveEnd(object_, /*ok=*/true, Next());
  EXPECT_EQ(detector_.OpenEvolutions(object_), 0);
  // A fresh evolution after a clean end is not an overlap.
  detector_.OnEvolveBegin(object_, VersionId::Root().Child(1),
                          VersionId::Root().Child(2), Next());
  EXPECT_EQ(sink_.CountFor("single-evolution"), 0u);
}

TEST_F(RaceDetectorTest, CommitOverPreexistingCallWarns) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(1), Next());
  detector_.OnVersionChanged(object_, VersionId::Root(),
                             VersionId::Root().Child(1), Next());

  ASSERT_EQ(sink_.CountFor("race-overlapping-evolution"), 1u);
  const Diagnostic& d = *sink_.For("race-overlapping-evolution")[0];
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_EQ(d.version, VersionId::Root().Child(1));
  EXPECT_NE(d.message.find("'f'"), std::string::npos) << d.message;
}

TEST_F(RaceDetectorTest, CommitIgnoresCallsStartedAfterEvolveBegin) {
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(1), Next());
  // This call happens-after the evolution began; it is not an overlapped
  // invocation epoch.
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnVersionChanged(object_, VersionId::Root(),
                             VersionId::Root().Child(1), Next());
  EXPECT_EQ(sink_.CountFor("race-overlapping-evolution"), 0u);
}

TEST_F(RaceDetectorTest, CommitIgnoresCallsThatAlreadyEnded) {
  detector_.OnCallStart(object_, "f", comp_a_, Next());
  detector_.OnEvolveBegin(object_, VersionId::Root(),
                          VersionId::Root().Child(1), Next());
  detector_.OnCallEnd(object_, "f", comp_a_, Next());
  detector_.OnVersionChanged(object_, VersionId::Root(),
                             VersionId::Root().Child(1), Next());
  EXPECT_EQ(sink_.CountFor("race-overlapping-evolution"), 0u)
      << "the commit happens-after the invocation ended";
}

TEST_F(RaceDetectorTest, FirstReportDedupes) {
  EXPECT_TRUE(detector_.FirstReport("key-1"));
  EXPECT_FALSE(detector_.FirstReport("key-1"));
  EXPECT_TRUE(detector_.FirstReport("key-2"));
}

}  // namespace
}  // namespace dcdo::check
