#include "common/logging.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

// Restores the process-wide level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(GetLogLevel()) {}
  ~LoggingTest() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST_F(LoggingTest, DefaultSuppressesInfo) {
  SetLogLevel(LogLevel::kWarning);
  // The streaming form must be side-effect free when suppressed: the
  // expression below would throw if evaluated eagerly on a null pointer,
  // so stream a computed value and rely on level gating for cheapness.
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("costly");
  };
  // Suppressed: operator<< short-circuits the formatting (though the
  // argument expression itself is still evaluated by C++ rules).
  DCDO_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 1) << "argument evaluation is unavoidable";
  SUCCEED();
}

TEST_F(LoggingTest, ErrorAlwaysFormats) {
  SetLogLevel(LogLevel::kError);
  // Just exercising the emit path (output goes to stderr).
  DCDO_LOG(kError) << "test error line " << 42;
  SUCCEED();
}

}  // namespace
}  // namespace dcdo
