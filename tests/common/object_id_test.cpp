#include "common/object_id.h"

#include <set>

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(ObjectIdTest, NilProperties) {
  ObjectId nil;
  EXPECT_TRUE(nil.nil());
  EXPECT_EQ(nil, ObjectId::Nil());
  EXPECT_EQ(nil.ToString(), "<nil>");
}

TEST(ObjectIdTest, NextIsUniqueWithinAndAcrossDomains) {
  std::set<ObjectId> seen;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(seen.insert(ObjectId::Next(domains::kInstance)).second);
    EXPECT_TRUE(seen.insert(ObjectId::Next(domains::kComponent)).second);
  }
}

TEST(ObjectIdTest, DomainIsPreserved) {
  ObjectId id = ObjectId::Next(domains::kDcdoManager);
  EXPECT_EQ(id.domain(), domains::kDcdoManager);
  EXPECT_FALSE(id.nil());
}

TEST(ObjectIdTest, ToStringEncodesDomainAndInstance) {
  ObjectId id(3, 17);
  EXPECT_EQ(id.ToString(), "3:17");
}

TEST(ObjectIdTest, OrderingAndEquality) {
  ObjectId a(1, 5), b(1, 6), c(2, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, ObjectId(1, 5));
  EXPECT_NE(a, b);
}

TEST(ObjectIdTest, HashConsistentWithEquality) {
  ObjectIdHash hash;
  EXPECT_EQ(hash(ObjectId(1, 5)), hash(ObjectId(1, 5)));
  EXPECT_NE(hash(ObjectId(1, 5)), hash(ObjectId(1, 6)));
}

}  // namespace
}  // namespace dcdo
