#include "common/serialize.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  Writer writer;
  writer.WriteU32(7);
  writer.WriteU64(1ull << 40);
  writer.WriteI64(-12345);
  writer.WriteDouble(2.5);
  writer.WriteBool(true);
  writer.WriteBool(false);

  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_EQ(reader.ReadU32().value_or(0), 7u);
  EXPECT_EQ(reader.ReadU64().value_or(0), 1ull << 40);
  EXPECT_EQ(reader.ReadI64().value_or(0), -12345);
  EXPECT_EQ(reader.ReadDouble().value_or(0), 2.5);
  EXPECT_TRUE(reader.ReadBool().value_or(false));
  EXPECT_FALSE(reader.ReadBool().value_or(true));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  Writer writer;
  writer.WriteString("dynamic function mapper");
  writer.WriteBytes(ByteBuffer::FromString(std::string_view("\x00\x01\x02", 3)));
  writer.WriteString("");  // empty string is legal

  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_EQ(reader.ReadString().value_or(""), "dynamic function mapper");
  auto bytes = reader.ReadBytes();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->size(), 3u);
  EXPECT_EQ(reader.ReadString().value_or("x"), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, IdRoundTrip) {
  Writer writer;
  writer.WriteObjectId(ObjectId(5, 99));
  writer.WriteVersionId(VersionId{3, 2, 0, 4});

  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_EQ(reader.ReadObjectId().value_or(ObjectId()), ObjectId(5, 99));
  EXPECT_EQ(reader.ReadVersionId().value_or(VersionId()),
            (VersionId{3, 2, 0, 4}));
}

TEST(SerializeTest, UnderflowIsTypedError) {
  ByteBuffer buffer = ByteBuffer::FromString("ab");
  Reader reader(buffer);
  auto result = reader.ReadU64();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedStringIsError) {
  Writer writer;
  writer.WriteU64(100);  // declares a 100-byte string that is not there
  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST(SerializeTest, CorruptVersionCountIsError) {
  Writer writer;
  writer.WriteU64(1'000'000);  // absurd part count
  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_FALSE(reader.ReadVersionId().ok());
}

TEST(SerializeTest, RemainingTracksConsumption) {
  Writer writer;
  writer.WriteU32(1);
  writer.WriteU32(2);
  ByteBuffer buffer = std::move(writer).Take();
  Reader reader(buffer);
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
}

}  // namespace
}  // namespace dcdo
