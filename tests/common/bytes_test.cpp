#include "common/bytes.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(ByteBufferTest, DefaultIsEmpty) {
  ByteBuffer buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(ByteBufferTest, OpaqueHasRequestedSize) {
  ByteBuffer buffer = ByteBuffer::Opaque(5'100'000);  // the paper's 5.1 MB
  EXPECT_EQ(buffer.size(), 5'100'000u);
}

TEST(ByteBufferTest, OpaqueFingerprintDependsOnSeed) {
  ByteBuffer a = ByteBuffer::Opaque(8192, 0x11);
  ByteBuffer b = ByteBuffer::Opaque(8192, 0x22);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, ByteBuffer::Opaque(8192, 0x11));
}

TEST(ByteBufferTest, StringRoundTrip) {
  ByteBuffer buffer = ByteBuffer::FromString("hello dcdo");
  EXPECT_EQ(buffer.size(), 10u);
  EXPECT_EQ(buffer.ToString(), "hello dcdo");
}

TEST(ByteBufferTest, AppendGrows) {
  ByteBuffer buffer;
  std::uint32_t value = 0xDEADBEEF;
  buffer.Append(&value, sizeof(value));
  EXPECT_EQ(buffer.size(), 4u);
  buffer.AppendBuffer(ByteBuffer::FromString("xy"));
  EXPECT_EQ(buffer.size(), 6u);
}

TEST(ByteBufferTest, ReadAtInBounds) {
  ByteBuffer buffer = ByteBuffer::FromString("abcdef");
  char out[3] = {};
  ASSERT_TRUE(buffer.ReadAt(2, out, 3));
  EXPECT_EQ(std::string(out, 3), "cde");
}

TEST(ByteBufferTest, ReadAtOutOfBoundsFails) {
  ByteBuffer buffer = ByteBuffer::FromString("abc");
  char out[4] = {};
  EXPECT_FALSE(buffer.ReadAt(1, out, 3));
  EXPECT_FALSE(buffer.ReadAt(4, out, 1));
  EXPECT_TRUE(buffer.ReadAt(0, out, 3));
}

TEST(ByteBufferTest, EqualityIsByteWise) {
  EXPECT_EQ(ByteBuffer::FromString("same"), ByteBuffer::FromString("same"));
  EXPECT_NE(ByteBuffer::FromString("same"), ByteBuffer::FromString("diff"));
}

}  // namespace
}  // namespace dcdo
