#include "common/status.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing widget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "missing widget");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing widget");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), ErrorCode::kInternal);
  EXPECT_EQ(TimeoutError("x").code(), ErrorCode::kTimeout);
  EXPECT_EQ(UnavailableError("x").code(), ErrorCode::kUnavailable);
  EXPECT_EQ(StaleBindingError("x").code(), ErrorCode::kStaleBinding);
  EXPECT_EQ(FunctionDisabledError("x").code(), ErrorCode::kFunctionDisabled);
  EXPECT_EQ(FunctionMissingError("x").code(), ErrorCode::kFunctionMissing);
  EXPECT_EQ(ComponentMissingError("x").code(), ErrorCode::kComponentMissing);
  EXPECT_EQ(DependencyViolationError("x").code(),
            ErrorCode::kDependencyViolation);
  EXPECT_EQ(PermanentViolationError("x").code(),
            ErrorCode::kPermanentViolation);
  EXPECT_EQ(MandatoryViolationError("x").code(),
            ErrorCode::kMandatoryViolation);
  EXPECT_EQ(VersionNotInstantiableError("x").code(),
            ErrorCode::kVersionNotInstantiable);
  EXPECT_EQ(VersionFrozenError("x").code(), ErrorCode::kVersionFrozen);
  EXPECT_EQ(NotDerivedVersionError("x").code(), ErrorCode::kNotDerivedVersion);
  EXPECT_EQ(ActiveThreadsError("x").code(), ErrorCode::kActiveThreads);
  EXPECT_EQ(ArchMismatchError("x").code(), ErrorCode::kArchMismatch);
}

TEST(StatusTest, ErrorCodeNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (int code = 0; code <= static_cast<int>(ErrorCode::kArchMismatch);
       ++code) {
    std::string_view name = ErrorCodeName(static_cast<ErrorCode>(code));
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(-1), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> result = Status::Ok();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Result<int> Half(int value) {
  if (value % 2 != 0) return InvalidArgumentError("odd");
  return value / 2;
}

Result<int> Quarter(int value) {
  DCDO_ASSIGN_OR_RETURN(int half, Half(value));
  DCDO_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> inner_fail = Quarter(6);  // 6/2=3, 3 is odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), ErrorCode::kInvalidArgument);
}

Status FailIfNegative(int value) {
  if (value < 0) return OutOfRangeError("negative");
  return Status::Ok();
}

Status CheckBoth(int a, int b) {
  DCDO_RETURN_IF_ERROR(FailIfNegative(a));
  DCDO_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(1, -2).code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(CheckBoth(-1, 2).code(), ErrorCode::kOutOfRange);
}

}  // namespace
}  // namespace dcdo
