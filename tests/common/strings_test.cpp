#include "common/strings.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(Split("a.b.c", '.'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, SplitPreservesEmptyTokens) {
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(".", '.'), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "."), "x.y.z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(StringsTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringsTest, HumanBytesUnits) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(5'347'738), "5.1 MB");  // the paper's image size
  EXPECT_EQ(HumanBytes(3ull << 30), "3.0 GB");
}

TEST(StringsTest, HumanSecondsUnits) {
  EXPECT_EQ(HumanSeconds(2.2), "2.20 s");
  EXPECT_EQ(HumanSeconds(0.015), "15.00 ms");
  EXPECT_EQ(HumanSeconds(12e-6), "12.00 us");
  EXPECT_EQ(HumanSeconds(5e-9), "5 ns");
}

}  // namespace
}  // namespace dcdo
