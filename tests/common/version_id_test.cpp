#include "common/version_id.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(VersionIdTest, DefaultIsInvalid) {
  VersionId version;
  EXPECT_FALSE(version.valid());
  EXPECT_EQ(version.depth(), 0u);
}

TEST(VersionIdTest, RootIsOne) {
  VersionId root = VersionId::Root();
  EXPECT_TRUE(root.valid());
  EXPECT_EQ(root.ToString(), "1");
  EXPECT_EQ(root.depth(), 1u);
}

TEST(VersionIdTest, ParseRoundTrip) {
  auto version = VersionId::Parse("3.2.0.4");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version->ToString(), "3.2.0.4");
  EXPECT_EQ(version->depth(), 4u);
  EXPECT_EQ(version->parts(), (std::vector<std::uint32_t>{3, 2, 0, 4}));
}

TEST(VersionIdTest, ParseRejectsGarbage) {
  EXPECT_FALSE(VersionId::Parse("").ok());
  EXPECT_FALSE(VersionId::Parse("1..2").ok());
  EXPECT_FALSE(VersionId::Parse("1.x").ok());
  EXPECT_FALSE(VersionId::Parse(".1").ok());
  EXPECT_FALSE(VersionId::Parse("1.").ok());
  EXPECT_FALSE(VersionId::Parse("-1").ok());
}

TEST(VersionIdTest, ChildExtends) {
  VersionId v32{3, 2};
  EXPECT_EQ(v32.Child(1).ToString(), "3.2.1");
  EXPECT_EQ(v32.Child(0).Child(4).ToString(), "3.2.0.4");
}

TEST(VersionIdTest, ParentInvertsChild) {
  VersionId v{3, 2, 1};
  auto parent = v.Parent();
  ASSERT_TRUE(parent.ok());
  EXPECT_EQ(parent->ToString(), "3.2");
  EXPECT_FALSE(VersionId{1}.Parent().ok());
}

// The paper's own example: "a version 3.2 DCDO can evolve to version 3.2.1
// or to version 3.2.0.4, but not to version 3.3."
TEST(VersionIdTest, PaperDerivationExample) {
  VersionId v32{3, 2};
  EXPECT_TRUE((VersionId{3, 2, 1}).IsDerivedFrom(v32));
  EXPECT_TRUE((VersionId{3, 2, 0, 4}).IsDerivedFrom(v32));
  EXPECT_FALSE((VersionId{3, 3}).IsDerivedFrom(v32));
}

TEST(VersionIdTest, EveryVersionDerivesFromItself) {
  VersionId v{1, 2, 3};
  EXPECT_TRUE(v.IsDerivedFrom(v));
  EXPECT_FALSE(v.IsStrictlyDerivedFrom(v));
}

TEST(VersionIdTest, StrictDerivationExcludesSelf) {
  VersionId parent{1, 2};
  VersionId child{1, 2, 7};
  EXPECT_TRUE(child.IsStrictlyDerivedFrom(parent));
  EXPECT_FALSE(parent.IsStrictlyDerivedFrom(child));
}

TEST(VersionIdTest, DerivationIsNotSymmetric) {
  VersionId shallow{1};
  VersionId deep{1, 5, 9};
  EXPECT_TRUE(deep.IsDerivedFrom(shallow));
  EXPECT_FALSE(shallow.IsDerivedFrom(deep));
}

TEST(VersionIdTest, SiblingsDoNotDerive) {
  EXPECT_FALSE((VersionId{1, 2}).IsDerivedFrom(VersionId{1, 3}));
  EXPECT_FALSE((VersionId{1, 3}).IsDerivedFrom(VersionId{1, 2}));
}

TEST(VersionIdTest, InvalidNeverDerives) {
  VersionId invalid;
  EXPECT_FALSE(invalid.IsDerivedFrom(VersionId::Root()));
  EXPECT_FALSE(VersionId::Root().IsDerivedFrom(invalid));
}

TEST(VersionIdTest, OrderingIsLexicographic) {
  EXPECT_LT((VersionId{1, 2}), (VersionId{1, 3}));
  EXPECT_LT((VersionId{1}), (VersionId{1, 0}));  // prefix sorts first
  EXPECT_LT((VersionId{1, 9}), (VersionId{2}));
}

TEST(VersionIdTest, HashConsistentWithEquality) {
  VersionIdHash hash;
  EXPECT_EQ(hash(VersionId{1, 2, 3}), hash(VersionId{1, 2, 3}));
  EXPECT_NE(hash(VersionId{1, 2, 3}), hash(VersionId{1, 2, 4}));
}

// Property sweep: Child/Parent and derivation invariants across a grid.
class VersionTreeProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(VersionTreeProperty, ChildDerivesFromAncestorChain) {
  std::uint32_t seed = GetParam();
  VersionId v = VersionId::Root();
  std::vector<VersionId> chain{v};
  for (int depth = 0; depth < 6; ++depth) {
    v = v.Child((seed + depth) % 5);
    chain.push_back(v);
  }
  for (const VersionId& ancestor : chain) {
    EXPECT_TRUE(v.IsDerivedFrom(ancestor))
        << v.ToString() << " should derive from " << ancestor.ToString();
  }
  // Parent chain walks back exactly.
  for (std::size_t i = chain.size() - 1; i > 0; --i) {
    auto parent = chain[i].Parent();
    ASSERT_TRUE(parent.ok());
    EXPECT_EQ(*parent, chain[i - 1]);
  }
  // Round-trip through text.
  auto reparsed = VersionId::Parse(v.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, v);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionTreeProperty,
                         ::testing::Range(0u, 10u));

}  // namespace
}  // namespace dcdo
