#include "runtime/method_table.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

MethodFn Echo(const std::string& tag) {
  return [tag](InstanceState&, const ByteBuffer& args) {
    return Result<ByteBuffer>(
        ByteBuffer::FromString(tag + ":" + args.ToString()));
  };
}

TEST(MethodTableTest, AddAndFind) {
  MethodTable table;
  table.Add("ping", Echo("pong"));
  auto method = table.Find("ping");
  ASSERT_TRUE(method.ok());
  InstanceState state;
  auto result = (**method)(state, ByteBuffer::FromString("x"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "pong:x");
}

TEST(MethodTableTest, FindMissingIsTypedError) {
  MethodTable table;
  auto method = table.Find("ghost");
  ASSERT_FALSE(method.ok());
  EXPECT_EQ(method.status().code(), ErrorCode::kNotFound);
}

TEST(MethodTableTest, AddReplacesBinding) {
  MethodTable table;
  table.Add("f", Echo("v1"));
  table.Add("f", Echo("v2"));
  EXPECT_EQ(table.size(), 1u);
  InstanceState state;
  auto result = (**table.Find("f"))(state, ByteBuffer{});
  EXPECT_EQ(result->ToString(), "v2:");
}

TEST(MethodTableTest, MethodNamesSorted) {
  MethodTable table;
  table.Add("zeta", Echo("z"));
  table.Add("alpha", Echo("a"));
  EXPECT_EQ(table.MethodNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_TRUE(table.Has("alpha"));
  EXPECT_FALSE(table.Has("beta"));
}

TEST(MethodTableTest, MethodsMutateInstanceState) {
  MethodTable table;
  table.Add("store", [](InstanceState& state, const ByteBuffer& args) {
    state.data = args;
    return Result<ByteBuffer>(ByteBuffer{});
  });
  table.Add("load", [](InstanceState& state, const ByteBuffer&) {
    return Result<ByteBuffer>(state.data);
  });
  InstanceState state;
  ASSERT_TRUE((**table.Find("store"))(state,
                                      ByteBuffer::FromString("kept")).ok());
  auto result = (**table.Find("load"))(state, ByteBuffer{});
  EXPECT_EQ(result->ToString(), "kept");
}

TEST(InstanceStateTest, CaptureSizePrefersLogicalSize) {
  InstanceState state;
  state.data = ByteBuffer::FromString("abc");
  EXPECT_EQ(state.CaptureSize(), 3u);
  state.logical_size = 1 << 20;
  EXPECT_EQ(state.CaptureSize(), 1u << 20);
}

}  // namespace
}  // namespace dcdo
