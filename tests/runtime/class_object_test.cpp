#include "runtime/class_object.h"

#include <gtest/gtest.h>

#include "rpc/client.h"
#include "runtime/testbed.h"

namespace dcdo {
namespace {

// The paper's "typical" executable size for moderately sized Legion objects.
constexpr std::size_t kTypicalExecutable = 5'100'000;

Executable MakeExecutable(const std::string& name, std::size_t bytes,
                          const std::string& reply) {
  Executable executable;
  executable.name = name;
  executable.bytes = bytes;
  executable.methods.Add("whoami",
                         [reply](InstanceState&, const ByteBuffer&) {
                           return Result<ByteBuffer>(
                               ByteBuffer::FromString(reply));
                         });
  return executable;
}

class ClassObjectTest : public ::testing::Test {
 protected:
  ClassObjectTest()
      : class_object_("server", testbed_.host(0), &testbed_.transport(),
                      &testbed_.agent()) {
    v1_ = class_object_.AddExecutable(
        MakeExecutable("server-v1", kTypicalExecutable, "v1"));
    v2_ = class_object_.AddExecutable(
        MakeExecutable("server-v2", kTypicalExecutable, "v2"));
  }

  Result<ObjectId> CreateBlocking(sim::SimHost* host,
                                  std::size_t state_bytes = 0) {
    std::optional<Result<ObjectId>> out;
    class_object_.CreateInstance(host, state_bytes,
                                 [&](Result<ObjectId> result) {
                                   out.emplace(std::move(result));
                                 });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("create never completed"));
  }

  Status EvolveBlocking(const ObjectId& instance, std::size_t executable) {
    std::optional<Status> out;
    class_object_.EvolveInstance(instance, executable,
                                 [&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("evolve never completed"));
  }

  Testbed testbed_;
  ClassObject class_object_;
  std::size_t v1_ = 0;
  std::size_t v2_ = 0;
};

// Paper: "creating an object with ... 500 functions that reside in a static
// monolithic executable takes only 2.2 seconds" — when the executable is
// already on the host.
TEST_F(ClassObjectTest, CreateOnHomeHostTakesAboutTwoSeconds) {
  sim::SimTime start = testbed_.simulation().Now();
  auto instance = CreateBlocking(testbed_.host(0));
  ASSERT_TRUE(instance.ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GT(seconds, 1.8);
  EXPECT_LT(seconds, 2.6);
  EXPECT_EQ(class_object_.instance_count(), 1u);
}

TEST_F(ClassObjectTest, CreateOnRemoteHostPaysExecutableDownload) {
  sim::SimTime start = testbed_.simulation().Now();
  auto instance = CreateBlocking(testbed_.host(5));
  ASSERT_TRUE(instance.ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  // ~2 s create + 15-25 s download of the 5.1 MB executable.
  EXPECT_GT(seconds, 17.0);
  EXPECT_LT(seconds, 28.0);
  // Second create on the same host reuses the downloaded executable.
  start = testbed_.simulation().Now();
  ASSERT_TRUE(CreateBlocking(testbed_.host(5)).ok());
  EXPECT_LT((testbed_.simulation().Now() - start).ToSeconds(), 2.6);
}

TEST_F(ClassObjectTest, InstanceServesMethodCalls) {
  auto instance = CreateBlocking(testbed_.host(1));
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(*instance, "whoami");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "v1");
}

TEST_F(ClassObjectTest, UnknownMethodReturnsTypedError) {
  auto instance = CreateBlocking(testbed_.host(1));
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(*instance, "nosuch");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

TEST_F(ClassObjectTest, EvolveSwapsExecutableAndBehaviour) {
  auto instance = CreateBlocking(testbed_.host(1), /*state=*/1 << 20);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(EvolveBlocking(*instance, v2_).ok());
  EXPECT_EQ(class_object_.InstanceExecutable(*instance).value_or(99), v2_);

  // A *fresh* client (empty cache) sees the new behaviour immediately.
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(*instance, "whoami");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "v2");
}

// The headline baseline number: monolithic evolution costs tens of seconds
// (capture + executable download + respawn + restore).
TEST_F(ClassObjectTest, MonolithicEvolutionCostsTensOfSeconds) {
  auto instance = CreateBlocking(testbed_.host(1), /*state=*/1 << 20);
  ASSERT_TRUE(instance.ok());
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(EvolveBlocking(*instance, v2_).ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GT(seconds, 18.0) << "download dominates";
  EXPECT_LT(seconds, 35.0);
}

// And the client-visible cost on top: the old binding is stale, so the
// first post-evolution call from an old client pays the 25-35 s discovery.
TEST_F(ClassObjectTest, OldClientPaysStaleBindingAfterEvolution) {
  auto instance = CreateBlocking(testbed_.host(1));
  ASSERT_TRUE(instance.ok());
  auto client = testbed_.MakeClient(2);
  ASSERT_TRUE(client->InvokeBlocking(*instance, "whoami").ok());  // warm cache

  ASSERT_TRUE(EvolveBlocking(*instance, v2_).ok());

  sim::SimTime start = testbed_.simulation().Now();
  auto reply = client->InvokeBlocking(*instance, "whoami");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "v2");
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GE(seconds, 25.0);
  EXPECT_LE(seconds, 35.0);
  EXPECT_EQ(client->rebinds(), 1u);
}

TEST_F(ClassObjectTest, MigrationMovesInstance) {
  auto instance = CreateBlocking(testbed_.host(1), /*state=*/512 * 1024);
  ASSERT_TRUE(instance.ok());
  std::optional<Status> migrated;
  class_object_.MigrateInstance(*instance, testbed_.host(3),
                                [&](Status status) { migrated = status; });
  testbed_.simulation().RunWhile([&] { return !migrated.has_value(); });
  ASSERT_TRUE(migrated.has_value());
  ASSERT_TRUE(migrated->ok());
  EXPECT_EQ(class_object_.InstanceNode(*instance).value_or(0),
            testbed_.host(3)->node());
  auto client = testbed_.MakeClient(4);
  EXPECT_TRUE(client->InvokeBlocking(*instance, "whoami").ok());
}

TEST_F(ClassObjectTest, DestroyInstanceUnbinds) {
  auto instance = CreateBlocking(testbed_.host(1));
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(class_object_.DestroyInstance(*instance).ok());
  EXPECT_FALSE(class_object_.HasInstance(*instance));
  EXPECT_FALSE(testbed_.agent().Bound(*instance));
  EXPECT_EQ(class_object_.DestroyInstance(*instance).code(),
            ErrorCode::kNotFound);
}

TEST_F(ClassObjectTest, SetCurrentExecutableValidatesIndex) {
  EXPECT_TRUE(class_object_.SetCurrentExecutable(v2_).ok());
  EXPECT_EQ(class_object_.current_executable().name, "server-v2");
  EXPECT_EQ(class_object_.SetCurrentExecutable(99).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(ClassObjectTest, EvolveUnknownInstanceFails) {
  EXPECT_EQ([&] {
    std::optional<Status> out;
    class_object_.EvolveInstance(ObjectId::Next(domains::kInstance), v2_,
                                 [&](Status status) { out = status; });
    testbed_.simulation().Run();
    return out.value_or(InternalError("no callback"));
  }().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace dcdo
