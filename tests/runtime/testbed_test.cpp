#include "runtime/testbed.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

TEST(TestbedTest, DefaultMatchesCenturionSubset) {
  Testbed testbed;
  EXPECT_EQ(testbed.host_count(), 16u);
  for (std::size_t i = 0; i < testbed.host_count(); ++i) {
    EXPECT_EQ(testbed.host(i)->architecture(),
              sim::Architecture::kX86Linux);
    EXPECT_TRUE(testbed.host(i)->up());
  }
  // Node ids are 1-based and unique.
  EXPECT_EQ(testbed.host(0)->node(), 1u);
  EXPECT_EQ(testbed.host(15)->node(), 16u);
}

TEST(TestbedTest, OptionsControlSizeAndHeterogeneity) {
  Testbed::Options options;
  options.host_count = 5;
  options.heterogeneous = true;
  Testbed testbed(options);
  EXPECT_EQ(testbed.host_count(), 5u);
  EXPECT_NE(testbed.host(0)->architecture(), testbed.host(1)->architecture());
}

TEST(TestbedTest, CostModelOptionPropagates) {
  Testbed::Options options;
  options.cost_model.invocation_timeout = sim::SimDuration::Seconds(3);
  Testbed testbed(options);
  EXPECT_EQ(testbed.cost_model().invocation_timeout.ToSeconds(), 3.0);
}

TEST(TestbedTest, ClientsShareTheAgentButNotCaches) {
  Testbed testbed;
  ObjectId id = ObjectId::Next(domains::kInstance);
  testbed.agent().Bind(id, ObjectAddress{2, 7, 1});
  auto client_a = testbed.MakeClient(0);
  auto client_b = testbed.MakeClient(1);
  ASSERT_TRUE(client_a->cache().Resolve(id).ok());
  EXPECT_TRUE(client_a->cache().Cached(id));
  EXPECT_FALSE(client_b->cache().Cached(id)) << "caches are per-client";
}

TEST(TestbedTest, RunAllDrainsTheSimulation) {
  Testbed testbed;
  int fired = 0;
  testbed.simulation().Schedule(sim::SimDuration::Seconds(1), [&] { ++fired; });
  testbed.simulation().Schedule(sim::SimDuration::Seconds(2), [&] { ++fired; });
  testbed.RunAll();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(testbed.simulation().Idle());
}

TEST(TestbedTest, NameServiceIsWired) {
  Testbed testbed;
  ObjectId id = ObjectId::Next(domains::kComponent);
  ASSERT_TRUE(testbed.names().Bind("/scratch/x", id).ok());
  EXPECT_EQ(testbed.names().Lookup("/scratch/x").value_or(ObjectId()), id);
}

}  // namespace
}  // namespace dcdo
