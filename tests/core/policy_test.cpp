#include "core/evolution_policy.h"

#include <gtest/gtest.h>

namespace dcdo {
namespace {

const VersionId kV1{1};
const VersionId kV11{1, 1};
const VersionId kV12{1, 2};
const VersionId kV111{1, 1, 1};

TEST(SingleVersionPolicies, OnlyCurrentVersionIsLegal) {
  for (auto factory : {MakeSingleVersionProactive, MakeSingleVersionExplicit,
                       MakeSingleVersionLazyEveryCall}) {
    auto policy = factory();
    EXPECT_TRUE(policy->single_version());
    EXPECT_TRUE(policy->CheckEvolution(kV1, kV11, kV11).ok());
    EXPECT_EQ(policy->CheckEvolution(kV1, kV12, kV11).code(),
              ErrorCode::kNotDerivedVersion)
        << policy->name() << " must reject non-current targets";
  }
}

TEST(SingleVersionPolicies, OnlyProactivePushes) {
  EXPECT_TRUE(MakeSingleVersionProactive()->push_on_new_version());
  EXPECT_FALSE(MakeSingleVersionExplicit()->push_on_new_version());
  EXPECT_FALSE(MakeSingleVersionLazyEveryCall()->push_on_new_version());
}

TEST(LazyPolicies, EveryCallAlwaysChecks) {
  auto policy = MakeSingleVersionLazyEveryCall();
  LazyCheckContext ctx;
  EXPECT_TRUE(policy->ShouldLazyCheck(ctx));
}

TEST(LazyPolicies, EveryKChecksOnKthCall) {
  auto policy = MakeSingleVersionLazyEveryK(5);
  LazyCheckContext ctx;
  ctx.calls_since_check = 3;  // 4th call since check
  EXPECT_FALSE(policy->ShouldLazyCheck(ctx));
  ctx.calls_since_check = 4;  // 5th call
  EXPECT_TRUE(policy->ShouldLazyCheck(ctx));
}

TEST(LazyPolicies, KZeroDegeneratesToEveryCall) {
  auto policy = MakeSingleVersionLazyEveryK(0);
  LazyCheckContext ctx;
  EXPECT_TRUE(policy->ShouldLazyCheck(ctx));
}

TEST(LazyPolicies, PeriodicChecksAfterInterval) {
  auto policy = MakeSingleVersionLazyPeriodic(sim::SimDuration::Seconds(60));
  LazyCheckContext ctx;
  ctx.since_check = sim::SimDuration::Seconds(59);
  EXPECT_FALSE(policy->ShouldLazyCheck(ctx));
  ctx.since_check = sim::SimDuration::Seconds(61);
  EXPECT_TRUE(policy->ShouldLazyCheck(ctx));
}

TEST(LazyPolicies, OnMigrateOnlyChecksWhenMigrating) {
  auto policy = MakeSingleVersionLazyOnMigrate();
  LazyCheckContext ctx;
  ctx.calls_since_check = 1000;
  ctx.since_check = sim::SimDuration::Seconds(3600);
  EXPECT_FALSE(policy->ShouldLazyCheck(ctx));
  ctx.migrating = true;
  EXPECT_TRUE(policy->ShouldLazyCheck(ctx));
}

TEST(MultiVersionNoUpdate, DeployedInstancesNeverEvolve) {
  auto policy = MakeMultiVersionNoUpdate();
  EXPECT_FALSE(policy->single_version());
  EXPECT_TRUE(policy->CheckEvolution(kV11, kV11, kV1).ok())
      << "staying put is fine";
  EXPECT_EQ(policy->CheckEvolution(kV1, kV11, kV11).code(),
            ErrorCode::kFailedPrecondition);
}

// The paper's example: 3.2 -> {3.2.1, 3.2.0.4} allowed, 3.2 -> 3.3 not.
TEST(MultiVersionIncreasing, OnlyDescendantsAllowed) {
  auto policy = MakeMultiVersionIncreasing();
  VersionId v32{3, 2};
  EXPECT_TRUE(policy->CheckEvolution(v32, VersionId{3, 2, 1}, kV1).ok());
  EXPECT_TRUE(policy->CheckEvolution(v32, VersionId{3, 2, 0, 4}, kV1).ok());
  EXPECT_EQ(policy->CheckEvolution(v32, VersionId{3, 3}, kV1).code(),
            ErrorCode::kNotDerivedVersion);
}

TEST(MultiVersionIncreasing, AutoUpdateOnlyOntoDerivedCurrent) {
  auto policy = MakeMultiVersionIncreasing();
  EXPECT_TRUE(policy->AutoUpdateAllowed(kV11, kV111));
  EXPECT_FALSE(policy->AutoUpdateAllowed(kV11, kV12))
      << "current not derived from the instance's version: stay put";
}

TEST(MultiVersionGeneral, AnythingGoesAndMarksRelaxed) {
  auto policy = MakeMultiVersionGeneral();
  EXPECT_TRUE(policy->CheckEvolution(kV12, kV11, kV1).ok());
  EXPECT_FALSE(policy->enforce_marks_on_evolve());
}

TEST(MultiVersionHybrid, AnyTargetButMarksEnforced) {
  auto policy = MakeMultiVersionHybrid();
  EXPECT_TRUE(policy->CheckEvolution(kV12, kV11, kV1).ok());
  EXPECT_TRUE(policy->enforce_marks_on_evolve());
}

TEST(AllPolicies, NamesAreUnique) {
  std::vector<std::unique_ptr<EvolutionPolicy>> policies;
  policies.push_back(MakeSingleVersionProactive());
  policies.push_back(MakeSingleVersionExplicit());
  policies.push_back(MakeSingleVersionLazyEveryCall());
  policies.push_back(MakeSingleVersionLazyEveryK(10));
  policies.push_back(MakeSingleVersionLazyPeriodic(
      sim::SimDuration::Seconds(1)));
  policies.push_back(MakeSingleVersionLazyOnMigrate());
  policies.push_back(MakeMultiVersionNoUpdate());
  policies.push_back(MakeMultiVersionIncreasing());
  policies.push_back(MakeMultiVersionGeneral());
  policies.push_back(MakeMultiVersionHybrid());
  std::set<std::string_view> names;
  for (const auto& policy : policies) {
    EXPECT_TRUE(names.insert(policy->name()).second)
        << "duplicate policy name " << policy->name();
  }
}

}  // namespace
}  // namespace dcdo
