#include "core/dcdo.h"

#include <gtest/gtest.h>

#include "component/ico.h"
#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class DcdoTest : public ::testing::Test {
 protected:
  DcdoTest() {
    comp_a_ = testing::MakeEchoComponent(testbed_.registry(), "libA",
                                         {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(testbed_.registry(), "libB", {"f"},
                                         /*code_bytes=*/550'000);
    ico_a_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_a_);
    ico_b_ = std::make_unique<ImplementationComponentObject>(
        testbed_.host(0), &testbed_.transport(), &testbed_.agent(), comp_b_);
    icos_.Register(ico_a_.get());
    icos_.Register(ico_b_.get());
    object_ = std::make_unique<Dcdo>("obj", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
  }

  Status IncorporateBlocking(const ObjectId& component) {
    std::optional<Status> out;
    object_->IncorporateComponent(component,
                                  [&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("incorporate never completed"));
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  std::unique_ptr<ImplementationComponentObject> ico_a_;
  std::unique_ptr<ImplementationComponentObject> ico_b_;
  std::unique_ptr<Dcdo> object_;
};

TEST_F(DcdoTest, ActivationBindsInNamespace) {
  EXPECT_TRUE(testbed_.agent().Bound(object_->id()));
  EXPECT_EQ(object_->version(), VersionId::Root());
  EXPECT_TRUE(object_->GetComponents().empty());
}

TEST_F(DcdoTest, IncorporateFetchesWhenNotCached) {
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(IncorporateBlocking(comp_b_.id).ok());
  // Component fetch = session overhead + streaming: ~0.2 s for 550 KB.
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GT(seconds, 0.15);
  EXPECT_LT(seconds, 1.0);
  EXPECT_TRUE(testbed_.host(1)->ComponentCached(comp_b_.id));
}

TEST_F(DcdoTest, IncorporateCachedIsCheap) {
  ASSERT_TRUE(IncorporateBlocking(comp_b_.id).ok());  // warms the cache
  sim::SimTime start = testbed_.simulation().Now();
  Dcdo second("obj2", testbed_.host(1), &testbed_.transport(),
              &testbed_.agent(), &testbed_.registry(), &icos_,
              VersionId::Root());
  ASSERT_TRUE(second.IncorporateCached(comp_b_).ok());
  double micros = (testbed_.simulation().Now() - start).ToSeconds() * 1e6;
  EXPECT_LT(micros, 1000.0) << "cached incorporate is ~200 us + registration";
  EXPECT_GE(micros, 200.0);
}

TEST_F(DcdoTest, IncorporateUnknownComponentFails) {
  Status status = IncorporateBlocking(ObjectId::Next(domains::kComponent));
  EXPECT_EQ(status.code(), ErrorCode::kComponentMissing);
}

TEST_F(DcdoTest, CallGoesThroughDfm) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());

  auto result = object_->Call("f", ByteBuffer::FromString("hi"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libA.f:hi");
  EXPECT_EQ(object_->user_calls(), 1u);
}

TEST_F(DcdoTest, CallChargesDfmLookupInSimTime) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  sim::SimTime start = testbed_.simulation().Now();
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  double micros = (testbed_.simulation().Now() - start).ToSeconds() * 1e6;
  EXPECT_GE(micros, 10.0);
  EXPECT_LE(micros, 15.0);
}

TEST_F(DcdoTest, IntraObjectCallsAlsoGoThroughDfm) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  // A forwarder in a separate component calls f through the DFM.
  testing::RegisterForwarder(testbed_.registry(), "fw/call_f", "f");
  auto forwarder = ComponentBuilder("fw")
                       .AddFunction("callF", "b(b)", "fw/call_f",
                                    Visibility::kExported,
                                    Constraint::kFullyDynamic, {"f"})
                       .Build();
  ASSERT_TRUE(forwarder.ok());
  testbed_.host(1)->CacheComponent(forwarder->id, forwarder->code_bytes);
  ASSERT_TRUE(object_->IncorporateCached(*forwarder).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("callF", forwarder->id).ok());

  auto result = object_->Call("callF", ByteBuffer::FromString("z"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libA.f:z");
  // Both the outer and the inner call resolved through the DFM.
  EXPECT_EQ(object_->mapper().calls_resolved(), 2u);
}

TEST_F(DcdoTest, RemoteInvocationOfDynamicFunction) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(object_->id(), "f",
                                      ByteBuffer::FromString("remote"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->ToString(), "libA.f:remote");
}

TEST_F(DcdoTest, RemoteCallOfDisabledFunctionIsTypedError) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(object_->id(), "f");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kFunctionDisabled);
}

TEST_F(DcdoTest, StatusReportingOverRpc) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  auto client = testbed_.MakeClient(2);

  auto interface = client->InvokeBlocking(object_->id(), "dcdo.getInterface");
  ASSERT_TRUE(interface.ok());
  Reader reader(*interface);
  EXPECT_EQ(reader.ReadU64().value_or(0), 1u);
  EXPECT_EQ(reader.ReadString().value_or(""), "f");

  auto version = client->InvokeBlocking(object_->id(), "dcdo.getVersion");
  ASSERT_TRUE(version.ok());
  Reader vreader(*version);
  EXPECT_EQ(vreader.ReadVersionId().value_or(VersionId()), VersionId::Root());

  auto components = client->InvokeBlocking(object_->id(),
                                           "dcdo.getComponents");
  ASSERT_TRUE(components.ok());
  Reader creader(*components);
  EXPECT_EQ(creader.ReadU64().value_or(0), 1u);
}

TEST_F(DcdoTest, ConfigurationOverRpc) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  auto client = testbed_.MakeClient(2);

  Writer writer;
  writer.WriteString("f");
  writer.WriteObjectId(comp_a_.id);
  auto enabled = client->InvokeBlocking(object_->id(), "dcdo.enableFunction",
                                        std::move(writer).Take());
  ASSERT_TRUE(enabled.ok());
  EXPECT_NE(object_->mapper().state().EnabledImpl("f"), nullptr);

  Writer disable_writer;
  disable_writer.WriteString("f");
  disable_writer.WriteObjectId(comp_a_.id);
  auto disabled = client->InvokeBlocking(
      object_->id(), "dcdo.disableFunction", std::move(disable_writer).Take());
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(object_->mapper().state().EnabledImpl("f"), nullptr);
}

TEST_F(DcdoTest, IncorporateOverRpc) {
  auto client = testbed_.MakeClient(2);
  Writer writer;
  writer.WriteObjectId(comp_a_.id);
  auto reply = client->InvokeBlocking(
      object_->id(), "dcdo.incorporateComponent", std::move(writer).Take());
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(object_->mapper().state().HasComponent(comp_a_.id));
}

TEST_F(DcdoTest, UnknownConfigMethodRejected) {
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(object_->id(), "dcdo.selfDestruct");
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), ErrorCode::kNotFound);
}

// The decisive advantage over monolithic evolution: the process (and its
// heap) survives, so per-object state persists across implementation
// switches with no capture/restore step.
TEST_F(DcdoTest, ObjectStateSurvivesEvolutionInCore) {
  // A counter service: "bump" increments a counter kept in object_data().
  testbed_.registry().Register(
      "ctr-v1/bump", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        std::uint64_t value = 0;
        ctx.object_data().ReadAt(0, &value, sizeof(value));
        ++value;
        ctx.object_data() = ByteBuffer{};
        ctx.object_data().Append(&value, sizeof(value));
        Writer writer;
        writer.WriteU64(value);
        return Result<ByteBuffer>(std::move(writer).Take());
      });
  // v2 counts by ten — different behaviour, same state.
  testbed_.registry().Register(
      "ctr-v2/bump", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        std::uint64_t value = 0;
        ctx.object_data().ReadAt(0, &value, sizeof(value));
        value += 10;
        ctx.object_data() = ByteBuffer{};
        ctx.object_data().Append(&value, sizeof(value));
        Writer writer;
        writer.WriteU64(value);
        return Result<ByteBuffer>(std::move(writer).Take());
      });
  auto v1 = ComponentBuilder("ctr-v1")
                .AddFunction("bump", "u()", "ctr-v1/bump")
                .Build();
  auto v2 = ComponentBuilder("ctr-v2")
                .AddFunction("bump", "u()", "ctr-v2/bump")
                .Build();
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  testbed_.host(1)->CacheComponent(v1->id, v1->code_bytes);
  testbed_.host(1)->CacheComponent(v2->id, v2->code_bytes);
  ASSERT_TRUE(object_->IncorporateCached(*v1).ok());
  ASSERT_TRUE(object_->IncorporateCached(*v2).ok());
  ASSERT_TRUE(object_->EnableFunction("bump", v1->id).ok());

  auto read = [](const Result<ByteBuffer>& reply) {
    Reader reader(*reply);
    return reader.ReadU64().value_or(0);
  };
  EXPECT_EQ(read(object_->Call("bump", ByteBuffer{})), 1u);
  EXPECT_EQ(read(object_->Call("bump", ByteBuffer{})), 2u);

  // Hot-swap the implementation; the counter carries straight on.
  ASSERT_TRUE(object_->SwitchImplementation("bump", v2->id).ok());
  EXPECT_EQ(read(object_->Call("bump", ByteBuffer{})), 12u)
      << "state survived the implementation switch in core";
}

TEST_F(DcdoTest, ActiveCountsReportedOverRpc) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  // A long-running call holds the count at 1 while we query it remotely.
  testbed_.registry().Register(
      "libA/f", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer{});
      });
  ASSERT_TRUE(object_->RemapForHost().ok());

  std::optional<std::uint64_t> observed_rows;
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    auto client = testbed_.MakeClient(2);
    auto reply = client->InvokeBlocking(object_->id(),
                                        "dcdo.getActiveCounts");
    ASSERT_TRUE(reply.ok());
    Reader reader(*reply);
    observed_rows = reader.ReadU64().value_or(99);
    if (*observed_rows == 1) {
      EXPECT_EQ(reader.ReadString().value_or(""), "f");
      EXPECT_EQ(reader.ReadObjectId().value_or(ObjectId()), comp_a_.id);
      EXPECT_EQ(reader.ReadU32().value_or(0), 1u);
    }
  });
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  testbed_.simulation().Run();
  ASSERT_TRUE(observed_rows.has_value());
  EXPECT_EQ(*observed_rows, 1u);

  // Quiescent object: the report is empty.
  auto client = testbed_.MakeClient(2);
  auto reply = client->InvokeBlocking(object_->id(), "dcdo.getActiveCounts");
  ASSERT_TRUE(reply.ok());
  Reader reader(*reply);
  EXPECT_EQ(reader.ReadU64().value_or(99), 0u);
}

// --- Removal policies (Section 3.2 thread-activity options) ---

TEST_F(DcdoTest, RemovalPolicyErrorRejectsOnActiveThreads) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  // Body parks inside the function for 2 sim-seconds.
  testbed_.registry().Register(
      "libA/f", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer::FromString("slow-done"));
      });
  ASSERT_TRUE(object_->RemapForHost().ok());

  std::optional<Status> removal;
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    object_->RemoveComponentWithPolicy(
        comp_a_.id, Dcdo::RemovalPolicy::Error(),
        [&](Status status) { removal = status; });
  });
  auto result = object_->Call("f", ByteBuffer{});  // runs 0..2 s
  ASSERT_TRUE(result.ok());
  testbed_.simulation().Run();
  ASSERT_TRUE(removal.has_value());
  EXPECT_EQ(removal->code(), ErrorCode::kActiveThreads);
  EXPECT_TRUE(object_->mapper().state().HasComponent(comp_a_.id));
}

TEST_F(DcdoTest, RemovalPolicyDelayWaitsForDrain) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  testbed_.registry().Register(
      "libA/f", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer{});
      });
  ASSERT_TRUE(object_->RemapForHost().ok());

  std::optional<Status> removal;
  sim::SimTime removal_done;
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(0.5), [&] {
    object_->RemoveComponentWithPolicy(comp_a_.id,
                                       Dcdo::RemovalPolicy::Delay(),
                                       [&](Status status) {
                                         removal = status;
                                         removal_done =
                                             testbed_.simulation().Now();
                                       });
  });
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  testbed_.simulation().Run();
  ASSERT_TRUE(removal.has_value());
  EXPECT_TRUE(removal->ok());
  EXPECT_GE(removal_done.ToSeconds(), 2.0) << "waited for the thread";
  EXPECT_FALSE(object_->mapper().state().HasComponent(comp_a_.id));
}

TEST_F(DcdoTest, RemovalPolicyTimeoutForcesAtDeadline) {
  ASSERT_TRUE(IncorporateBlocking(comp_a_.id).ok());
  ASSERT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
  testbed_.registry().Register(
      "libA/f", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(60.0);  // far longer than the removal deadline
        return Result<ByteBuffer>(ByteBuffer{});
      });
  ASSERT_TRUE(object_->RemapForHost().ok());

  std::optional<Status> removal;
  sim::SimTime removal_done;
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(0.5), [&] {
    object_->RemoveComponentWithPolicy(
        comp_a_.id,
        Dcdo::RemovalPolicy::Timeout(sim::SimDuration::Seconds(3.0)),
        [&](Status status) {
          removal = status;
          removal_done = testbed_.simulation().Now();
        });
  });
  ASSERT_TRUE(object_->Call("f", ByteBuffer{}).ok());
  testbed_.simulation().Run();
  ASSERT_TRUE(removal.has_value());
  EXPECT_TRUE(removal->ok());
  // Removal was requested ~3 s into the run with a 3 s deadline: it must be
  // forced around the 6 s mark, far before the 60 s the thread would take.
  EXPECT_LT(removal_done.ToSeconds(), 8.0) << "forced well before 60 s";
  EXPECT_FALSE(object_->mapper().state().HasComponent(comp_a_.id));
}

}  // namespace
}  // namespace dcdo
