#include "core/proxy.h"

#include <gtest/gtest.h>

#include "component/ico.h"
#include "core/dcdo.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() {
    comp_a_ = testing::MakeEchoComponent(testbed_.registry(), "libA",
                                         {"f", "g"});
    comp_b_ = testing::MakeEchoComponent(testbed_.registry(), "libB", {"f"});
    object_ = std::make_unique<Dcdo>("svc", testbed_.host(1),
                                     &testbed_.transport(), &testbed_.agent(),
                                     &testbed_.registry(), &icos_,
                                     VersionId::Root());
    testbed_.host(1)->CacheComponent(comp_a_.id, comp_a_.code_bytes);
    testbed_.host(1)->CacheComponent(comp_b_.id, comp_b_.code_bytes);
    EXPECT_TRUE(object_->IncorporateCached(comp_a_).ok());
    EXPECT_TRUE(object_->IncorporateCached(comp_b_).ok());
    EXPECT_TRUE(object_->EnableFunction("f", comp_a_.id).ok());
    client_ = testbed_.MakeClient(3);
    proxy_ = std::make_unique<DcdoProxy>(client_.get(), object_->id());
  }

  Testbed testbed_;
  IcoDirectory icos_;
  ImplementationComponent comp_a_;
  ImplementationComponent comp_b_;
  std::unique_ptr<Dcdo> object_;
  std::unique_ptr<rpc::RpcClient> client_;
  std::unique_ptr<DcdoProxy> proxy_;
};

TEST_F(ProxyTest, FetchesAnnotatedInterface) {
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  ASSERT_EQ(proxy_->interface().size(), 1u);
  EXPECT_EQ(proxy_->interface()[0].function.name, "f");
  EXPECT_FALSE(proxy_->interface()[0].mandatory);
  EXPECT_TRUE(proxy_->Offers("f"));
  EXPECT_FALSE(proxy_->Offers("g"));
  EXPECT_FALSE(proxy_->IsAssured("f"));
}

TEST_F(ProxyTest, MandatoryAndPermanentVisibleToClients) {
  ASSERT_TRUE(object_->MarkMandatory("f").ok());
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  EXPECT_TRUE(proxy_->IsAssured("f"));
  EXPECT_FALSE(proxy_->interface()[0].permanent);

  ASSERT_TRUE(object_->MarkPermanent("f", comp_a_.id).ok());
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  EXPECT_TRUE(proxy_->interface()[0].permanent);
}

TEST_F(ProxyTest, CallLazilyFetchesInterface) {
  EXPECT_FALSE(proxy_->interface_known());
  auto result = proxy_->Call("f", ByteBuffer::FromString("x"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libA.f:x");
  EXPECT_TRUE(proxy_->interface_known());
}

TEST_F(ProxyTest, UnknownFunctionRefusedAfterOneRefresh) {
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  std::uint64_t before = proxy_->refreshes();
  auto result = proxy_->Call("ghost", ByteBuffer{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFunctionMissing);
  EXPECT_EQ(proxy_->refreshes(), before + 1) << "refreshed once, then gave up";
}

TEST_F(ProxyTest, StaleInterfaceDiscoverNewFunction) {
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  EXPECT_FALSE(proxy_->Offers("g"));
  // The object evolves to add g after the proxy cached the interface.
  ASSERT_TRUE(object_->EnableFunction("g", comp_a_.id).ok());
  auto result = proxy_->Call("g", ByteBuffer::FromString("y"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libA.g:y");
  EXPECT_TRUE(proxy_->Offers("g"));
}

// The disappearing-exported-function problem, handled: the implementation is
// switched between the proxy's interface fetch and its call; the proxy
// refreshes and retries, landing on the replacement.
TEST_F(ProxyTest, RetriesWhenImplementationSwitched) {
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  // Disable then enable the other implementation: a client that cached the
  // address of libA.f would break; the proxy's named call keeps working.
  ASSERT_TRUE(object_->SwitchImplementation("f", comp_b_.id).ok());
  auto result = proxy_->Call("f", ByteBuffer::FromString("z"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "libB.f:z");
}

TEST_F(ProxyTest, GenuinelyGoneSurfacesTypedError) {
  ASSERT_TRUE(proxy_->RefreshInterface().ok());
  ASSERT_TRUE(object_->DisableFunction("f", comp_a_.id).ok());
  auto result = proxy_->Call("f", ByteBuffer{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFunctionDisabled);
  EXPECT_EQ(proxy_->retries(), 0u)
      << "no replacement appeared, so no retry was made";
}

TEST_F(ProxyTest, FetchVersionRoundTrips) {
  auto version = proxy_->FetchVersion();
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, VersionId::Root());
}

}  // namespace
}  // namespace dcdo
