#include "core/manager.h"

#include <gtest/gtest.h>

#include "rpc/client.h"
#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

// Builds a manager for type "svc" with two published components:
//   core-v1 implementing {serve, helper}, and core-v2 implementing {serve}.
// Version 1   = {core-v1: serve+helper enabled}   (instantiable)
// Version 1.1 = v1 but serve switched to core-v2  (instantiable)
class ManagerTest : public ::testing::Test {
 protected:
  void Init(std::unique_ptr<EvolutionPolicy> policy) {
    manager_ = std::make_unique<DcdoManager>(
        "svc", testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
        &testbed_.registry(), std::move(policy));

    comp_v1_ = testing::MakeEchoComponent(testbed_.registry(), "core-v1",
                                          {"serve", "helper"});
    comp_v2_ = testing::MakeEchoComponent(testbed_.registry(), "core-v2",
                                          {"serve"});
    // Publishing assigns no new ids (the component id is the ICO name).
    ASSERT_TRUE(manager_->PublishComponent(comp_v1_).ok());
    ASSERT_TRUE(manager_->PublishComponent(comp_v2_).ok());

    auto root = manager_->CreateRootVersion();
    ASSERT_TRUE(root.ok());
    v1_ = *root;
    auto d1 = manager_->MutableDescriptor(v1_);
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE((*d1)->IncorporateComponent(comp_v1_).ok());
    ASSERT_TRUE((*d1)->EnableFunction("serve", comp_v1_.id).ok());
    ASSERT_TRUE((*d1)->EnableFunction("helper", comp_v1_.id).ok());
    ASSERT_TRUE(manager_->MarkInstantiable(v1_).ok());

    auto derived = manager_->DeriveVersion(v1_);
    ASSERT_TRUE(derived.ok());
    v11_ = *derived;
    auto d11 = manager_->MutableDescriptor(v11_);
    ASSERT_TRUE(d11.ok());
    ASSERT_TRUE((*d11)->IncorporateComponent(comp_v2_).ok());
    ASSERT_TRUE((*d11)->SwitchImplementation("serve", comp_v2_.id).ok());
    ASSERT_TRUE(manager_->MarkInstantiable(v11_).ok());

    ASSERT_TRUE(manager_->SetCurrentVersion(v1_).ok());
  }

  Result<ObjectId> CreateBlocking(std::size_t host_index = 1) {
    std::optional<Result<ObjectId>> out;
    manager_->CreateInstance(testbed_.host(host_index),
                             [&](Result<ObjectId> result) {
                               out.emplace(std::move(result));
                             });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("create never completed"));
  }

  Status RunBlocking(std::function<void(DcdoManager::DoneCallback)> op) {
    std::optional<Status> out;
    op([&](Status status) { out = status; });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value_or(InternalError("operation never completed"));
  }

  Testbed testbed_;
  std::unique_ptr<DcdoManager> manager_;
  ImplementationComponent comp_v1_;
  ImplementationComponent comp_v2_;
  VersionId v1_;
  VersionId v11_;
};

TEST_F(ManagerTest, VersionLifecycle) {
  Init(MakeSingleVersionExplicit());
  EXPECT_EQ(manager_->Versions().size(), 2u);
  EXPECT_EQ(manager_->current_version(), v1_);
  // Only one root allowed.
  EXPECT_EQ(manager_->CreateRootVersion().status().code(),
            ErrorCode::kAlreadyExists);
  // Deriving from a missing version fails.
  EXPECT_FALSE(manager_->DeriveVersion(VersionId{9, 9}).ok());
  // Sibling ordinals increment.
  auto sibling = manager_->DeriveVersion(v1_);
  ASSERT_TRUE(sibling.ok());
  EXPECT_EQ(sibling->ToString(), "1.2");
}

TEST_F(ManagerTest, CurrentVersionMustBeInstantiable) {
  Init(MakeSingleVersionExplicit());
  auto configurable = manager_->DeriveVersion(v1_);
  ASSERT_TRUE(configurable.ok());
  EXPECT_EQ(manager_->SetCurrentVersion(*configurable).code(),
            ErrorCode::kVersionNotInstantiable);
}

TEST_F(ManagerTest, CreateInstanceRunsCurrentVersion) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(manager_->instance_count(), 1u);
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);

  Dcdo* object = manager_->FindInstance(*instance);
  ASSERT_NE(object, nullptr);
  auto result = object->Call("serve", ByteBuffer::FromString("req"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "core-v1.serve:req");
}

TEST_F(ManagerTest, CreateWithoutCurrentVersionFails) {
  manager_ = std::make_unique<DcdoManager>(
      "empty", testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
      &testbed_.registry(), MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  EXPECT_EQ(instance.status().code(), ErrorCode::kFailedPrecondition);
}

TEST_F(ManagerTest, CreateAtConfigurableVersionFails) {
  Init(MakeMultiVersionGeneral());
  auto configurable = manager_->DeriveVersion(v1_);
  ASSERT_TRUE(configurable.ok());
  std::optional<Result<ObjectId>> out;
  manager_->CreateInstanceAt(*configurable, testbed_.host(1),
                             [&](Result<ObjectId> result) {
                               out.emplace(std::move(result));
                             });
  testbed_.simulation().RunWhile([&] { return !out.has_value(); });
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status().code(), ErrorCode::kVersionNotInstantiable);
}

TEST_F(ManagerTest, ExplicitUpdateBringsInstanceToCurrent) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  // Explicit policy: nothing happens until someone asks.
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);

  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->UpdateInstance(*instance, std::move(done));
              }).ok());
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v11_);

  Dcdo* object = manager_->FindInstance(*instance);
  auto result = object->Call("serve", ByteBuffer::FromString("req"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "core-v2.serve:req") << "new implementation";
}

TEST_F(ManagerTest, ExplicitUpdateViaRpc) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());

  auto client = testbed_.MakeClient(3);
  Writer writer;
  writer.WriteObjectId(*instance);
  auto reply = client->InvokeBlocking(manager_->id(), "mgr.updateInstance",
                                      std::move(writer).Take());
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v11_);
}

TEST_F(ManagerTest, ProactivePushUpdatesAllInstances) {
  Init(MakeSingleVersionProactive());
  std::vector<ObjectId> instances;
  for (int i = 0; i < 4; ++i) {
    auto instance = CreateBlocking(1 + i);
    ASSERT_TRUE(instance.ok());
    instances.push_back(*instance);
  }
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  testbed_.simulation().Run();  // let the pushed evolutions complete
  for (const ObjectId& instance : instances) {
    EXPECT_EQ(manager_->InstanceVersion(instance).value_or(VersionId()), v11_);
  }
  EXPECT_EQ(manager_->updates_pushed(), 4u);
}

TEST_F(ManagerTest, LazyEveryCallUpdatesOnNextInvocation) {
  Init(MakeSingleVersionLazyEveryCall());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);

  Dcdo* object = manager_->FindInstance(*instance);
  auto result = object->Call("serve", ByteBuffer::FromString("x"));
  ASSERT_TRUE(result.ok());
  // The lazy check ran before the call; evolution had no new components to
  // fetch (v11's core-v2 was cached at create time? no — fetched now), so
  // the call may have been served at either version, but the instance must
  // reach v11 once the simulation settles.
  testbed_.simulation().Run();
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v11_);
  EXPECT_GE(manager_->lazy_checks(), 1u);
  EXPECT_EQ(manager_->lazy_updates(), 1u);
}

TEST_F(ManagerTest, LazyEveryKChecksOnlyEveryKCalls) {
  Init(MakeSingleVersionLazyEveryK(5));
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());

  Dcdo* object = manager_->FindInstance(*instance);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(object->Call("serve", ByteBuffer{}).ok());
  }
  EXPECT_EQ(manager_->lazy_checks(), 0u) << "4 calls: below the threshold";
  ASSERT_TRUE(object->Call("serve", ByteBuffer{}).ok());  // 5th call
  testbed_.simulation().Run();
  EXPECT_EQ(manager_->lazy_checks(), 1u);
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v11_);
}

TEST_F(ManagerTest, NoUpdatePolicyFreezesDeployedInstances) {
  Init(MakeMultiVersionNoUpdate());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  Status status = RunBlocking([&](DcdoManager::DoneCallback done) {
    manager_->EvolveInstanceTo(*instance, v11_, std::move(done));
  });
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);
  // But new instances pick up the new current version.
  auto fresh = CreateBlocking(2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(manager_->InstanceVersion(*fresh).value_or(VersionId()), v11_);
}

TEST_F(ManagerTest, IncreasingVersionRejectsSiblings) {
  Init(MakeMultiVersionIncreasing());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());

  // Build a sibling version 1.2 (not derived from 1.1 — but IS derived from
  // the instance's version 1, so evolving to it is fine)...
  auto v12 = manager_->DeriveVersion(v1_);
  ASSERT_TRUE(v12.ok());
  ASSERT_TRUE(manager_->MarkInstantiable(*v12).ok());
  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->EvolveInstanceTo(*instance, *v12, std::move(done));
              }).ok());
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), *v12);

  // ...but from 1.2 the sibling 1.1 is not a descendant: rejected.
  Status status = RunBlocking([&](DcdoManager::DoneCallback done) {
    manager_->EvolveInstanceTo(*instance, v11_, std::move(done));
  });
  EXPECT_EQ(status.code(), ErrorCode::kNotDerivedVersion);
}

TEST_F(ManagerTest, TableReportsVersionsAndNodes) {
  Init(MakeSingleVersionExplicit());
  auto a = CreateBlocking(1);
  auto b = CreateBlocking(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto table = manager_->Table();
  ASSERT_EQ(table.size(), 2u);
  for (const auto& entry : table) {
    EXPECT_EQ(entry.version, v1_);
    EXPECT_GE(entry.node, 2u);
    EXPECT_LE(entry.node, 3u);
  }
}

TEST_F(ManagerTest, MigrationMovesAndKeepsServing) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking(1);
  ASSERT_TRUE(instance.ok());
  Dcdo* object = manager_->FindInstance(*instance);
  object->mutable_state().logical_size = 256 * 1024;

  Status status = RunBlocking([&](DcdoManager::DoneCallback done) {
    manager_->MigrateInstance(*instance, testbed_.host(7), std::move(done));
  });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(object->address().node, testbed_.host(7)->node());
  auto result = object->Call("serve", ByteBuffer::FromString("post-move"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ToString(), "core-v1.serve:post-move");
}

TEST_F(ManagerTest, LazyOnMigrateUpdatesDuringMigration) {
  Init(MakeSingleVersionLazyOnMigrate());
  auto instance = CreateBlocking(1);
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  // Calls do not trigger updates under this policy.
  Dcdo* object = manager_->FindInstance(*instance);
  ASSERT_TRUE(object->Call("serve", ByteBuffer{}).ok());
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);

  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->MigrateInstance(*instance, testbed_.host(5),
                                          std::move(done));
              }).ok());
  testbed_.simulation().Run();
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v11_);
}

TEST_F(ManagerTest, NameServicePublishesComponentsAndInstances) {
  Init(MakeSingleVersionExplicit());
  // Attach after publishing: components are bound retroactively.
  ASSERT_TRUE(manager_->AttachNameService(&testbed_.names()).ok());
  EXPECT_TRUE(testbed_.names().IsName("/types/svc/manager"));
  EXPECT_EQ(
      testbed_.names().Lookup("/types/svc/components/core-v1").value_or(
          ObjectId()),
      comp_v1_.id);
  EXPECT_EQ(
      testbed_.names().Lookup("/types/svc/components/core-v2").value_or(
          ObjectId()),
      comp_v2_.id);

  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  auto instances = testbed_.names().List("/types/svc/instances");
  ASSERT_TRUE(instances.ok());
  ASSERT_EQ(instances->size(), 1u);
  EXPECT_EQ(testbed_.names()
                .Lookup("/types/svc/instances/" + (*instances)[0])
                .value_or(ObjectId()),
            *instance);

  ASSERT_TRUE(manager_->DestroyInstance(*instance).ok());
  EXPECT_FALSE(testbed_.names().IsDirectory("/types/svc/instances"));
}

TEST_F(ManagerTest, HistoryRecordsEvolutions) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(manager_->History().empty())
      << "creation is not an evolution event";

  ASSERT_TRUE(manager_->SetCurrentVersion(v11_).ok());
  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->UpdateInstance(*instance, std::move(done));
              }).ok());

  ASSERT_EQ(manager_->History().size(), 1u);
  const DcdoManager::EvolutionEvent& event = manager_->History()[0];
  EXPECT_EQ(event.instance, *instance);
  EXPECT_EQ(event.from, v1_);
  EXPECT_EQ(event.to, v11_);
  EXPECT_TRUE(event.status.ok());
  EXPECT_GT(event.duration.nanos(), 0);
}

TEST_F(ManagerTest, HistoryRecordsFailedEvolutions) {
  Init(MakeMultiVersionNoUpdate());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  // Policy-rejected evolutions never reach the instance, so they are not
  // history events...
  Status rejected = RunBlocking([&](DcdoManager::DoneCallback done) {
    manager_->EvolveInstanceTo(*instance, v11_, std::move(done));
  });
  EXPECT_FALSE(rejected.ok());
  EXPECT_TRUE(manager_->History().empty());
}

TEST_F(ManagerTest, DeactivateReactivateLifecycle) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  Dcdo* object = manager_->FindInstance(*instance);
  object->mutable_state().data = ByteBuffer::FromString("precious");

  // A client warms its binding before the object goes to sleep.
  auto client = testbed_.MakeClient(5);
  ASSERT_TRUE(client->InvokeBlocking(*instance, "serve").ok());

  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->DeactivateInstance(*instance, std::move(done));
              }).ok());
  EXPECT_FALSE(object->active());
  EXPECT_FALSE(testbed_.agent().Bound(*instance));
  EXPECT_EQ(object->Call("serve", ByteBuffer{}).status().code(),
            ErrorCode::kUnavailable);
  // Idempotent.
  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->DeactivateInstance(*instance, std::move(done));
              }).ok());

  std::uint64_t old_epoch = object->address().epoch;
  ASSERT_TRUE(RunBlocking([&](DcdoManager::DoneCallback done) {
                manager_->ReactivateInstance(*instance, std::move(done));
              }).ok());
  EXPECT_TRUE(object->active());
  EXPECT_GT(object->address().epoch, old_epoch);
  EXPECT_EQ(object->mutable_state().data.ToString(), "precious")
      << "state survived the deactivation cycle";
  EXPECT_EQ(manager_->InstanceVersion(*instance).value_or(VersionId()), v1_);

  // The pre-deactivation client holds a stale (old-epoch) binding: its next
  // call pays the stale-binding discovery before reaching the new
  // activation.
  sim::SimTime start = testbed_.simulation().Now();
  auto reply = client->InvokeBlocking(*instance, "serve");
  ASSERT_TRUE(reply.ok());
  double seconds = (testbed_.simulation().Now() - start).ToSeconds();
  EXPECT_GE(seconds, 25.0);
  EXPECT_LE(seconds, 35.0);
  EXPECT_EQ(client->rebinds(), 1u);
}

TEST_F(ManagerTest, DeactivateRefusedWhileThreadsExecute) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  Dcdo* object = manager_->FindInstance(*instance);
  testbed_.registry().Register(
      "core-v1/serve", ImplementationType::Portable(),
      [](CallContext& ctx, const ByteBuffer&) {
        ctx.BlockOnOutcall(2.0);
        return Result<ByteBuffer>(ByteBuffer{});
      });
  ASSERT_TRUE(object->RemapForHost().ok());

  Status deactivation = InternalError("not attempted");
  testbed_.simulation().Schedule(sim::SimDuration::Seconds(1.0), [&] {
    manager_->DeactivateInstance(*instance,
                                 [&](Status status) { deactivation = status; });
  });
  ASSERT_TRUE(object->Call("serve", ByteBuffer{}).ok());
  testbed_.simulation().Run();
  EXPECT_EQ(deactivation.code(), ErrorCode::kActiveThreads);
  EXPECT_TRUE(object->active());
}

TEST_F(ManagerTest, DestroyInstanceRemovesFromTable) {
  Init(MakeSingleVersionExplicit());
  auto instance = CreateBlocking();
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(manager_->DestroyInstance(*instance).ok());
  EXPECT_EQ(manager_->instance_count(), 0u);
  EXPECT_FALSE(testbed_.agent().Bound(*instance));
}

}  // namespace
}  // namespace dcdo
