#include "core/coordinator.h"

#include <gtest/gtest.h>

#include "runtime/testbed.h"
#include "testing/fixtures.h"

namespace dcdo {
namespace {

// Two object types ("front" and "back") that must change protocol together.
class CoordinatorTest : public ::testing::Test {
 protected:
  struct TypeSetup {
    std::unique_ptr<DcdoManager> manager;
    ImplementationComponent comp_v1;
    ImplementationComponent comp_v2;
    VersionId v1, v2;
    ObjectId instance;
  };

  void SetUp() override {
    front_ = MakeType("front", 1);
    back_ = MakeType("back", 2);
  }

  TypeSetup MakeType(const std::string& name, std::size_t host,
                     std::unique_ptr<EvolutionPolicy> policy = nullptr) {
    if (policy == nullptr) policy = MakeMultiVersionIncreasing();
    TypeSetup setup;
    setup.comp_v1 = testing::MakeEchoComponent(testbed_.registry(),
                                               name + "-v1", {"serve"});
    setup.comp_v2 = testing::MakeEchoComponent(testbed_.registry(),
                                               name + "-v2", {"serve"});
    setup.manager = std::make_unique<DcdoManager>(
        name, testbed_.host(0), &testbed_.transport(), &testbed_.agent(),
        &testbed_.registry(), std::move(policy));
    EXPECT_TRUE(setup.manager->PublishComponent(setup.comp_v1).ok());
    EXPECT_TRUE(setup.manager->PublishComponent(setup.comp_v2).ok());
    setup.v1 = *setup.manager->CreateRootVersion();
    DfmDescriptor* d1 = *setup.manager->MutableDescriptor(setup.v1);
    EXPECT_TRUE(d1->IncorporateComponent(setup.comp_v1).ok());
    EXPECT_TRUE(d1->EnableFunction("serve", setup.comp_v1.id).ok());
    EXPECT_TRUE(setup.manager->MarkInstantiable(setup.v1).ok());
    EXPECT_TRUE(setup.manager->SetCurrentVersion(setup.v1).ok());

    setup.v2 = *setup.manager->DeriveVersion(setup.v1);
    DfmDescriptor* d2 = *setup.manager->MutableDescriptor(setup.v2);
    EXPECT_TRUE(d2->IncorporateComponent(setup.comp_v2).ok());
    EXPECT_TRUE(d2->SwitchImplementation("serve", setup.comp_v2.id).ok());
    EXPECT_TRUE(setup.manager->MarkInstantiable(setup.v2).ok());

    bool done = false;
    setup.manager->CreateInstance(testbed_.host(host),
                                  [&](Result<ObjectId> result) {
                                    EXPECT_TRUE(result.ok());
                                    setup.instance = *result;
                                    done = true;
                                  });
    testbed_.simulation().RunWhile([&] { return !done; });
    // Cache the v2 images so the coordinated switch is flip-cheap.
    testbed_.host(host)->CacheComponent(setup.comp_v2.id,
                                        setup.comp_v2.code_bytes);
    return setup;
  }

  UpdateCoordinator::Outcome ExecuteBlocking(
      UpdateCoordinator& coordinator,
      std::vector<UpdateCoordinator::Step> steps) {
    std::optional<UpdateCoordinator::Outcome> out;
    coordinator.Execute(std::move(steps),
                        [&](UpdateCoordinator::Outcome outcome) {
                          out.emplace(std::move(outcome));
                        });
    testbed_.simulation().RunWhile([&] { return !out.has_value(); });
    return out.value();
  }

  VersionId VersionOf(const TypeSetup& setup) {
    return setup.manager->InstanceVersion(setup.instance).value_or(
        VersionId());
  }

  Testbed testbed_;
  TypeSetup front_;
  TypeSetup back_;
};

TEST_F(CoordinatorTest, BatchUpdatesBothTypes) {
  UpdateCoordinator coordinator;
  auto outcome = ExecuteBlocking(
      coordinator, {{front_.manager.get(), front_.instance, front_.v2},
                    {back_.manager.get(), back_.instance, back_.v2}});
  ASSERT_TRUE(outcome.ok()) << outcome.status;
  EXPECT_EQ(outcome.applied, 2u);
  EXPECT_EQ(outcome.rolled_back, 0u);
  EXPECT_EQ(VersionOf(front_), front_.v2);
  EXPECT_EQ(VersionOf(back_), back_.v2);
  // Compatibility notes were produced for both steps.
  ASSERT_EQ(outcome.notes.size(), 2u);
  EXPECT_NE(outcome.notes[0].find("behavioral"), std::string::npos);
}

TEST_F(CoordinatorTest, ValidationRejectsWholeBatchUpFront) {
  // Second step targets a configurable (unfrozen) version: nothing at all
  // may change.
  VersionId configurable = *back_.manager->DeriveVersion(back_.v1);
  UpdateCoordinator coordinator;
  auto outcome = ExecuteBlocking(
      coordinator, {{front_.manager.get(), front_.instance, front_.v2},
                    {back_.manager.get(), back_.instance, configurable}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), ErrorCode::kVersionNotInstantiable);
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(VersionOf(front_), front_.v1) << "front untouched";
  EXPECT_EQ(VersionOf(back_), back_.v1);
}

TEST_F(CoordinatorTest, PolicyViolationsCaughtInValidation) {
  // Evolving back_ to a sibling of its current version violates the
  // increasing-version policy.
  VersionId sibling = *back_.manager->DeriveVersion(back_.v1);
  ASSERT_TRUE(back_.manager->MarkInstantiable(sibling).ok());
  // Move back_ to v2 first so the sibling is no longer derived from it.
  UpdateCoordinator coordinator;
  auto first = ExecuteBlocking(
      coordinator, {{back_.manager.get(), back_.instance, back_.v2}});
  ASSERT_TRUE(first.ok());

  auto outcome = ExecuteBlocking(
      coordinator, {{front_.manager.get(), front_.instance, front_.v2},
                    {back_.manager.get(), back_.instance, sibling}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), ErrorCode::kNotDerivedVersion);
  EXPECT_EQ(VersionOf(front_), front_.v1) << "batch rejected atomically";
}

TEST_F(CoordinatorTest, RequireCompatibleRejectsBreakingTransition) {
  // A v3 for front that drops serve() from the interface entirely.
  VersionId v3 = *front_.manager->DeriveVersion(front_.v2);
  DfmDescriptor* d3 = *front_.manager->MutableDescriptor(v3);
  ASSERT_TRUE(d3->SetVisibility("serve", front_.comp_v2.id,
                                Visibility::kInternal).ok());
  ASSERT_TRUE(front_.manager->MarkInstantiable(v3).ok());
  // Move front to v2 so v3 is a legal (derived) target.
  UpdateCoordinator plain;
  ASSERT_TRUE(ExecuteBlocking(
      plain, {{front_.manager.get(), front_.instance, front_.v2}}).ok());

  UpdateCoordinator::Options options;
  options.require_client_compatible = true;
  UpdateCoordinator strict(options);
  auto outcome = ExecuteBlocking(
      strict, {{front_.manager.get(), front_.instance, v3}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(VersionOf(front_), front_.v2);

  // Without the strictness, the same step goes through.
  auto permissive = ExecuteBlocking(
      plain, {{front_.manager.get(), front_.instance, v3}});
  EXPECT_TRUE(permissive.ok());
}

TEST_F(CoordinatorTest, MidBatchFailureRollsBack) {
  // A type under the hybrid policy (any instantiable target), so rollback
  // to the prior version is legal.
  TypeSetup loose = MakeType("loose", 3, MakeMultiVersionHybrid());

  // Sabotage the second step: its target version needs a component whose
  // ICO is never published, so validation passes (descriptor exists,
  // instantiable, policy fine) but application fails at fetch time.
  auto ghost = testing::MakeEchoComponent(testbed_.registry(), "ghost",
                                          {"spook"});
  VersionId bad = *back_.manager->DeriveVersion(back_.v1);
  DfmDescriptor* d = *back_.manager->MutableDescriptor(bad);
  ASSERT_TRUE(d->IncorporateComponent(ghost).ok());
  ASSERT_TRUE(d->EnableFunction("spook", ghost.id).ok());
  ASSERT_TRUE(back_.manager->MarkInstantiable(bad).ok());

  UpdateCoordinator coordinator;
  auto outcome = ExecuteBlocking(
      coordinator, {{loose.manager.get(), loose.instance, loose.v2},
                    {back_.manager.get(), back_.instance, bad}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.applied, 0u);
  EXPECT_EQ(outcome.rolled_back, 1u) << "loose's update was undone";
  EXPECT_EQ(VersionOf(loose), loose.v1);
  EXPECT_EQ(VersionOf(back_), back_.v1) << "back never moved";
}

TEST_F(CoordinatorTest, RollbackRefusalIsReportedHonestly) {
  // Same sabotage, but the first step's type uses the increasing-version
  // policy: the v2 -> v1 rollback is a downgrade and is refused. The
  // coordinator must leave the step applied and say so.
  auto ghost = testing::MakeEchoComponent(testbed_.registry(), "ghost2",
                                          {"spook"});
  VersionId bad = *back_.manager->DeriveVersion(back_.v1);
  DfmDescriptor* d = *back_.manager->MutableDescriptor(bad);
  ASSERT_TRUE(d->IncorporateComponent(ghost).ok());
  ASSERT_TRUE(d->EnableFunction("spook", ghost.id).ok());
  ASSERT_TRUE(back_.manager->MarkInstantiable(bad).ok());

  UpdateCoordinator coordinator;
  auto outcome = ExecuteBlocking(
      coordinator, {{front_.manager.get(), front_.instance, front_.v2},
                    {back_.manager.get(), back_.instance, bad}});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.applied, 1u) << "front stayed at v2 (rollback refused)";
  EXPECT_EQ(outcome.rolled_back, 0u);
  EXPECT_EQ(VersionOf(front_), front_.v2);
  bool noted = false;
  for (const std::string& note : outcome.notes) {
    if (note.find("rollback") != std::string::npos &&
        note.find("refused") != std::string::npos) {
      noted = true;
    }
  }
  EXPECT_TRUE(noted) << "the refused rollback is visible in the outcome";
}

}  // namespace
}  // namespace dcdo
