#include "core/proxy.h"

#include "common/serialize.h"

namespace dcdo {

Status DcdoProxy::RefreshInterface() {
  ++refreshes_;
  DCDO_ASSIGN_OR_RETURN(ByteBuffer wire,
                        client_.InvokeBlocking(target_, "dcdo.getInterface"));
  Reader reader(wire);
  DCDO_ASSIGN_OR_RETURN(std::uint64_t count, reader.ReadU64());
  std::vector<InterfaceEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    InterfaceEntry entry;
    DCDO_ASSIGN_OR_RETURN(entry.function.name, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(entry.function.signature, reader.ReadString());
    // Resolve the interned id once per refresh, not per lookup.
    entry.id = FunctionNameTable::Global().Intern(entry.function.name);
    DCDO_ASSIGN_OR_RETURN(entry.mandatory, reader.ReadBool());
    DCDO_ASSIGN_OR_RETURN(entry.permanent, reader.ReadBool());
    entries.push_back(std::move(entry));
  }
  interface_ = std::move(entries);
  index_.clear();
  for (std::size_t i = 0; i < interface_.size(); ++i) {
    index_.emplace(interface_[i].id, i);
  }
  interface_fetched_ = true;
  // The reply is fully parsed; recycle its capacity for the next message.
  rpc::WireBufferPool::Release(std::move(wire));
  return Status::Ok();
}

const InterfaceEntry* DcdoProxy::Find(std::string_view function) const {
  FunctionId id = FunctionNameTable::Global().Find(function);
  if (!id.valid()) return nullptr;
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &interface_[it->second];
}

bool DcdoProxy::Offers(std::string_view function) const {
  return Find(function) != nullptr;
}

bool DcdoProxy::IsAssured(const std::string& function) const {
  const InterfaceEntry* entry = Find(function);
  return entry != nullptr && entry->mandatory;
}

Result<VersionId> DcdoProxy::FetchVersion() {
  DCDO_ASSIGN_OR_RETURN(ByteBuffer wire,
                        client_.InvokeBlocking(target_, "dcdo.getVersion"));
  Reader reader(wire);
  Result<VersionId> version = reader.ReadVersionId();
  rpc::WireBufferPool::Release(std::move(wire));
  return version;
}

Result<ByteBuffer> DcdoProxy::Call(const std::string& function,
                                   const ByteBuffer& args) {
  if (!interface_fetched_) {
    DCDO_RETURN_IF_ERROR(RefreshInterface());
  }
  if (!Offers(function)) {
    // Not in the cached interface. The object may have evolved to *add* it
    // since we looked: refresh once before refusing.
    DCDO_RETURN_IF_ERROR(RefreshInterface());
    if (!Offers(function)) {
      return FunctionMissingError("'" + function +
                                  "' is not in the exported interface of " +
                                  target_.ToString());
    }
  }
  // Ship by id (Offers() just proved the name is interned): fixed-width wire
  // form, zero server-side string hashing. One shared arg buffer serves the
  // first attempt and any retry below.
  const FunctionId id = FunctionNameTable::Global().Find(function);
  std::shared_ptr<const ByteBuffer> shared_args;
  if (!args.empty()) shared_args = std::make_shared<const ByteBuffer>(args);
  Result<ByteBuffer> result = client_.InvokeBlocking(target_, id, shared_args);
  if (result.ok()) return result;
  ErrorCode code = result.status().code();
  if (code != ErrorCode::kFunctionMissing &&
      code != ErrorCode::kFunctionDisabled) {
    return result;  // not an evolution artifact; surface as-is
  }
  // The disappearing-exported-function problem, live: our interface was
  // stale. Refresh; if the function is still exported (a replacement was
  // enabled), retry once.
  DCDO_RETURN_IF_ERROR(RefreshInterface());
  if (!Offers(function)) {
    return result;  // genuinely gone; the caller handles the typed error
  }
  ++retries_;
  return client_.InvokeBlocking(target_, id, std::move(shared_args));
}

}  // namespace dcdo
