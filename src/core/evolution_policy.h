// Evolution management policies (paper Sections 3.3-3.5).
//
// A policy decides (a) which version transitions are legal for the DCDOs of
// a type, and (b) when existing instances are brought to a new version. The
// paper organizes the space along two axes:
//
//   single-version managers  — exactly one official current version; all
//     instances are driven toward it. Update strategies: proactive (push on
//     designation), explicit (an external object calls updateInstance), and
//     lazy (the DCDO checks on its own schedule: every call, every k calls,
//     every t time units, or on migration).
//
//   multi-version managers   — versions coexist. Strategies: no-update
//     (instances never evolve), increasing-version-number (evolve only to
//     descendants in the version tree), general evolution (any instantiable
//     version), and a hybrid that permits arbitrary targets unless the move
//     would break a mandatory/permanent rule (checked by the descriptor
//     machinery when the plan is applied).
//
// Policies are strategy objects so new ones can be added without touching
// the manager — "the main object types' interfaces are designed to support
// an extensible set of different evolution management policies."
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/status.h"
#include "common/version_id.h"
#include "sim/sim_time.h"

namespace dcdo {

// Everything a lazy-update decision may look at.
struct LazyCheckContext {
  std::uint64_t calls_since_check = 0;
  sim::SimDuration since_check = sim::SimDuration::Zero();
  bool migrating = false;
};

class EvolutionPolicy {
 public:
  virtual ~EvolutionPolicy() = default;

  virtual std::string_view name() const = 0;

  // Single-version policies constrain every instance toward the manager's
  // designated current version; multi-version policies let versions coexist.
  virtual bool single_version() const = 0;

  // Is an instance at `from` allowed to evolve to `to`, given the manager's
  // designated `current` version? (For single-version styles `to` must be
  // `current`; multi-version styles apply their own rule.)
  virtual Status CheckEvolution(const VersionId& from, const VersionId& to,
                                const VersionId& current) const = 0;

  // Should designating a new current version immediately push the update to
  // all existing instances (the proactive strategy)?
  virtual bool push_on_new_version() const { return false; }

  // Lazy strategies: should this DCDO consult its manager for an update now?
  virtual bool ShouldLazyCheck(const LazyCheckContext&) const { return false; }

  // Whether an evolution applied under this policy must preserve mandatory /
  // permanent marks. Only the general-evolution policy relaxes this — the
  // paper notes it "undermines the use of mandatory and permanent
  // functions"; the hybrid policy is exactly general evolution with this
  // check kept on.
  virtual bool enforce_marks_on_evolve() const { return true; }

  // When a lazy/explicit update discovers the instance is outdated, may the
  // manager update it to `current` from `from`? (Multi-version lazy variants
  // update only instances whose version the current one derives from.)
  virtual bool AutoUpdateAllowed(const VersionId& from,
                                 const VersionId& current) const {
    return CheckEvolution(from, current, current).ok();
  }
};

// --- Single-version strategies (Section 3.4) ---

// Designating a new current version triggers an immediate attempt to update
// all existing instances.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionProactive();

// The manager relies on external objects to call UpdateInstance.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionExplicit();

// Strict consistency: the DCDO consults its manager on every invocation.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyEveryCall();

// The DCDO checks once every k invocations.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyEveryK(std::uint64_t k);

// The DCDO checks when more than `period` has elapsed since the last check.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyPeriodic(
    sim::SimDuration period);

// The DCDO checks only when it migrates between hosts.
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyOnMigrate();

// --- Multi-version strategies (Section 3.5) ---

// Instances never evolve; new versions apply only to new instances.
std::unique_ptr<EvolutionPolicy> MakeMultiVersionNoUpdate();

// Instances may evolve only to versions derived from their current one.
std::unique_ptr<EvolutionPolicy> MakeMultiVersionIncreasing();

// Instances may evolve to any instantiable version at any time, even if the
// move drops mandatory functions or disables permanent implementations.
std::unique_ptr<EvolutionPolicy> MakeMultiVersionGeneral();

// General evolution, but moves that would remove a mandatory function or
// disable a permanent implementation are checked and disallowed.
std::unique_ptr<EvolutionPolicy> MakeMultiVersionHybrid();

}  // namespace dcdo
