#include "core/dcdo.h"

#include <cstdlib>
#include <memory>

#include "check/check_context.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "dfm/descriptor_wire.h"
#include "sim/parallel_sim.h"
#include "trace/trace_context.h"

namespace dcdo {

Dcdo::RemovalPolicy Dcdo::RemovalPolicy::Delay() {
  RemovalPolicy policy;
  policy.kind = Kind::kDelay;
  return policy;
}

Dcdo::RemovalPolicy Dcdo::RemovalPolicy::Timeout(sim::SimDuration deadline) {
  RemovalPolicy policy;
  policy.kind = Kind::kTimeout;
  policy.timeout = deadline;
  return policy;
}

Dcdo::Dcdo(std::string name, sim::SimHost* host, rpc::RpcTransport* transport,
           BindingAgent* agent, const NativeCodeRegistry* registry,
           const IcoDirectory* icos, VersionId version,
           ComponentFetcher* fetcher)
    : name_(std::move(name)),
      id_(ObjectId::Next(domains::kInstance)),
      host_(host),
      transport_(*transport),
      agent_(*agent),
      registry_(*registry),
      icos_(*icos),
      owned_fetcher_(fetcher == nullptr
                         ? std::make_unique<ComponentFetcher>(icos)
                         : nullptr),
      fetcher_(fetcher == nullptr ? owned_fetcher_.get() : fetcher),
      version_(std::move(version)) {
  address_.node = host_->node();
  address_.pid = host_->AdoptProcess(id_);
  address_.epoch = 1;
  agent_.Bind(id_, address_);
  RegisterEndpoint();
#if defined(DCDO_CHECK_ENABLED)
  mapper_.SetCheckOwner(id_);
  // Expose this object's live state to the checker's invariants. The probe
  // holds a raw `this`; the destructor unregisters first.
  if (auto* ctx = check::CheckContext::Current()) {
    ctx->RegisterObject(id_, [this]() {
      check::ObjectStatusSnapshot snapshot;
      snapshot.id = id_;
      snapshot.name = name_;
      snapshot.version = version_;
      snapshot.active = active_;
      snapshot.components = mapper_.state().ComponentIds();
      snapshot.total_active_threads = mapper_.TotalActive();
      snapshot.config_anomalies = mapper_.state().CheckIntegrity();
      snapshot.node = address_.node;
      snapshot.pid = address_.pid;
      snapshot.epoch = address_.epoch;
      return snapshot;
    });
  }
#endif
}

Dcdo::~Dcdo() {
#if defined(DCDO_CHECK_ENABLED)
  if (auto* ctx = check::CheckContext::Current()) {
    ctx->UnregisterObject(id_);
  }
#endif
  transport_.UnregisterEndpoint(address_.node, address_.pid);
  agent_.Unbind(id_);
  (void)host_->KillProcess(address_.pid);
}

void Dcdo::RegisterEndpoint() {
  // kParallel: a DCDO's dispatch state (DFM, components, call counters) is
  // confined to its own node, so under the parallel executor application
  // calls run on the locality owning that node. Config-plane methods
  // (dcdo.*) are still forced to the global locality by the transport.
  transport_.RegisterEndpoint(
      address_.node, address_.pid, address_.epoch,
      [this](const rpc::MethodInvocation& invocation, rpc::ReplyFn reply) {
        HandleInvocation(invocation, std::move(reply));
      },
      rpc::EndpointConcurrency::kParallel);
}

void Dcdo::Deactivate() {
  if (!active_) return;
  transport_.UnregisterEndpoint(address_.node, address_.pid);
  (void)host_->KillProcess(address_.pid);
  agent_.Unbind(id_);
  active_ = false;
  DCDO_LOG(kDebug) << name_ << ": deactivated (state kept, "
                   << state_.CaptureSize() << "B)";
}

void Dcdo::Reactivate() {
  if (active_) return;
  address_.pid = host_->AdoptProcess(id_);
  ++address_.epoch;
  agent_.Bind(id_, address_);
  RegisterEndpoint();
  active_ = true;
  DCDO_LOG(kDebug) << name_ << ": reactivated at " << address_.ToString();
}

void Dcdo::Rebind(sim::SimHost* new_host) {
  transport_.UnregisterEndpoint(address_.node, address_.pid);
  (void)host_->KillProcess(address_.pid);
  host_ = new_host;
  address_.node = host_->node();
  address_.pid = host_->AdoptProcess(id_);
  ++address_.epoch;
  agent_.Bind(id_, address_);
  RegisterEndpoint();
}

// ===== User-defined function invocation =====

Result<ByteBuffer> Dcdo::Call(const std::string& function,
                              const ByteBuffer& args) {
  if (!active_) {
    return UnavailableError(name_ + " is deactivated");
  }
  if (pre_call_hook_) pre_call_hook_();
  ++user_calls_;
  // dfm.call covers the DFM indirection + acquire + the body itself; when
  // the call arrived remotely it nests under the transport's rpc.dispatch
  // span via the scope stack.
  trace::SpanScope span("dfm.call", {.category = "dfm", .node = address_.node});
  if (span) span.Annotate("function", function);
  // The paper's measured DFM indirection: every dynamic call pays it.
  simulation().AdvanceInline(cost().dfm_lookup);
  DCDO_ASSIGN_OR_RETURN(DynamicFunctionMapper::CallGuard guard,
                        mapper_.Acquire(std::string_view(function),
                                        CallOrigin::kExternal));
  return guard.body()(*this, args);
}

Result<ByteBuffer> Dcdo::Call(FunctionId function, const ByteBuffer& args) {
  if (!active_) {
    return UnavailableError(name_ + " is deactivated");
  }
  if (pre_call_hook_) pre_call_hook_();
  ++user_calls_;
  trace::SpanScope span("dfm.call", {.category = "dfm", .node = address_.node});
  if (span) span.Annotate("function", FunctionNameTable::Global().NameOf(function));
  simulation().AdvanceInline(cost().dfm_lookup);
  DCDO_ASSIGN_OR_RETURN(DynamicFunctionMapper::CallGuard guard,
                        mapper_.Acquire(function, CallOrigin::kExternal));
  return guard.body()(*this, args);
}

Result<ByteBuffer> Dcdo::CallInternal(const std::string& function,
                                      const ByteBuffer& args) {
  // Intra-object calls go through the DFM too — same indirection cost for
  // self-calls, intra-component, and inter-component calls alike.
  trace::SpanScope span("dfm.call", {.category = "dfm", .node = address_.node});
  if (span) span.Annotate("function", function);
  simulation().AdvanceInline(cost().dfm_lookup);
  DCDO_ASSIGN_OR_RETURN(DynamicFunctionMapper::CallGuard guard,
                        mapper_.Acquire(std::string_view(function),
                                        CallOrigin::kInternal));
  return guard.body()(*this, args);
}

Result<ByteBuffer> Dcdo::CallInternal(FunctionId function,
                                      const ByteBuffer& args) {
  trace::SpanScope span("dfm.call", {.category = "dfm", .node = address_.node});
  if (span) span.Annotate("function", FunctionNameTable::Global().NameOf(function));
  simulation().AdvanceInline(cost().dfm_lookup);
  DCDO_ASSIGN_OR_RETURN(DynamicFunctionMapper::CallGuard guard,
                        mapper_.Acquire(function, CallOrigin::kInternal));
  return guard.body()(*this, args);
}

ObjectId Dcdo::self_id() const { return id_; }

void Dcdo::BlockOnOutcall(double sim_seconds) {
  // Re-enters the event loop so the rest of the system — including
  // configuration calls against this object — proceeds while this "thread"
  // is parked inside the function (its CallGuard stays alive up the stack).
  sim::Simulation& simulation = host_->simulation();
  if (simulation.parallel() && simulation.executor()->OnWorkerThread()) {
    // Blocking re-entry is coordinator-only: a worker locality re-running
    // the loop mid-window would deadrun the barrier. A data-plane function
    // that must park has to be restructured as a continuation (or its
    // object's endpoint left kSerialized).
    DCDO_LOG(kError) << name_
                     << ": BlockOnOutcall from a worker locality; blocking "
                        "re-entry into the event loop is coordinator-only "
                        "(DESIGN.md §14)";
    std::abort();
  }
  simulation.RunUntil(simulation.Now() +
                      sim::SimDuration::Seconds(sim_seconds));
}

// ===== Configuration functions =====

Status Dcdo::IncorporateCached(const ImplementationComponent& meta,
                               bool auto_structural_deps) {
  if (!host_->ComponentCached(meta.id)) {
    return ComponentMissingError("component " + meta.name +
                                 " is not cached on node " +
                                 std::to_string(host_->node()));
  }
  DCDO_RETURN_IF_ERROR(mapper_.IncorporateComponent(
      meta, registry_, host_->architecture(), auto_structural_deps));
  // Map the cached image into the address space + register each function.
  simulation().AdvanceInline(
      cost().component_map_cached +
      cost().dfm_register_per_function *
          static_cast<std::int64_t>(meta.functions.size()));
  return Status::Ok();
}

void Dcdo::IncorporateComponent(const ObjectId& component_id,
                                DoneCallback done) {
  Result<ImplementationComponentObject*> ico = icos_.Find(component_id);
  if (!ico.ok()) {
    done(ico.status());
    return;
  }
  // Acquire through the pipeline (fetch from the ICO if not cached), then
  // map. Routing even a single incorporate through the fetcher is what lets
  // two co-hosted DCDOs incorporating the same component share one stream.
  fetcher_->AcquireAll(
      host_, {(*ico)->component()},
      [this](const ImplementationComponent& meta, bool /*was_cached*/) {
        return IncorporateCached(meta);
      },
      std::move(done));
}

Status Dcdo::RemoveComponent(const ObjectId& component_id,
                             ActiveThreadPolicy thread_policy) {
  return mapper_.RemoveComponent(component_id, thread_policy);
}

void Dcdo::RemoveComponentWithPolicy(const ObjectId& component_id,
                                     const RemovalPolicy& policy,
                                     DoneCallback done) {
  switch (policy.kind) {
    case RemovalPolicy::Kind::kError:
      done(mapper_.RemoveComponent(component_id, ActiveThreadPolicy::kError));
      return;
    case RemovalPolicy::Kind::kDelay:
    case RemovalPolicy::Kind::kTimeout: {
      Status attempt =
          mapper_.RemoveComponent(component_id, ActiveThreadPolicy::kError);
      if (attempt.ok() || attempt.code() != ErrorCode::kActiveThreads) {
        done(attempt);
        return;
      }
      // Threads are inside the component: poll until they drain — and, for
      // kTimeout, force the removal at the deadline ("simply go ahead with
      // the operation after some time-out period").
      //
      // The driver owns itself through the scheduled callback's shared_ptr:
      // each hop holds the only strong reference, so when the chain ends the
      // last callback's destruction frees everything — no self-referential
      // closure to leak (the pattern a previous leak fix had to patch).
      struct PollDriver : std::enable_shared_from_this<PollDriver> {
        Dcdo* object;
        ObjectId component_id;
        RemovalPolicy policy;
        sim::SimTime deadline;
        bool has_deadline;
        DoneCallback done;

        void Arm() {
          object->simulation().Schedule(
              policy.poll, [self = shared_from_this()] { self->Poll(); });
        }
        void Poll() {
          Status attempt = object->mapper_.RemoveComponent(
              component_id, ActiveThreadPolicy::kError);
          if (attempt.ok() || attempt.code() != ErrorCode::kActiveThreads) {
            done(attempt);
            return;
          }
          if (has_deadline && object->simulation().Now() >= deadline) {
            done(object->mapper_.RemoveComponent(component_id,
                                                 ActiveThreadPolicy::kForce));
            return;
          }
          Arm();
        }
      };
      auto driver = std::make_shared<PollDriver>();
      driver->object = this;
      driver->component_id = component_id;
      driver->policy = policy;
      driver->deadline = simulation().Now() + policy.timeout;
      driver->has_deadline = policy.kind == RemovalPolicy::Kind::kTimeout;
      driver->done = std::move(done);
      driver->Arm();
      return;
    }
  }
}

Status Dcdo::EnableFunction(const std::string& function,
                            const ObjectId& component) {
  return mapper_.EnableFunction(function, component);
}

Status Dcdo::DisableFunction(const std::string& function,
                             const ObjectId& component,
                             bool respect_active_dependents) {
  return mapper_.DisableFunction(function, component,
                                 respect_active_dependents);
}

Status Dcdo::SwitchImplementation(const std::string& function,
                                  const ObjectId& to_component) {
  return mapper_.SwitchImplementation(function, to_component);
}

Status Dcdo::SetVisibility(const std::string& function,
                           const ObjectId& component, Visibility visibility) {
  return mapper_.SetVisibility(function, component, visibility);
}

Status Dcdo::MarkMandatory(const std::string& function) {
  return mapper_.MarkMandatory(function);
}

Status Dcdo::MarkPermanent(const std::string& function,
                           const ObjectId& component) {
  return mapper_.MarkPermanent(function, component);
}

Status Dcdo::AddDependency(Dependency dep) {
  return mapper_.AddDependency(std::move(dep));
}

Status Dcdo::RemoveDependency(const Dependency& dep) {
  return mapper_.RemoveDependency(dep);
}

// ===== Evolution =====

void Dcdo::EvolveTo(const DfmDescriptor& target, const RemovalPolicy& removal,
                    DoneCallback done, bool enforce_marks) {
  if (!target.instantiable()) {
    done(VersionNotInstantiableError("version " + target.version().ToString() +
                                     " is still configurable"));
    return;
  }
  EvolutionPlan plan = ComputePlan(mapper_.state(), target.state());
  DCDO_LOG(kDebug) << name_ << ": evolving " << version_.ToString() << " -> "
                   << target.version().ToString() << " (" << plan.TotalSteps()
                   << " steps, " << plan.incorporate.size()
                   << " new components)";
  DCDO_CHECK_HOOK(OnEvolveBegin(id_, version_, target.version()));
  // The evolution span is carried through the continuation chain by value
  // (id + begin time) and closed in stage3_finish — the same place the
  // checker learns the outcome.
  std::uint64_t evolve_span = 0;
  sim::SimTime evolve_begin = simulation().Now();
  if (auto* tr = trace::ActiveContext()) {
    evolve_span = tr->BeginSpan(
        "evolve", {.category = "evolve", .node = address_.node});
    tr->Annotate(evolve_span, "object", name_);
    tr->Annotate(evolve_span, "from", version_.ToString());
    tr->Annotate(evolve_span, "to", target.version().ToString());
    tr->metrics().GetCounter("evolve.begun").Increment();
  }

  // The evolution runs asynchronously; snapshot the target so the caller's
  // descriptor need not outlive the operation.
  auto target_state = std::make_shared<DfmState>(target.state());

  auto remove_queue = std::make_shared<std::vector<ObjectId>>(plan.remove);
  std::size_t flip_count = plan.enable.size() + plan.disable.size();

  auto stage3_finish = [this, target_version = target.version(), done,
                        evolve_span, evolve_begin](Status status) {
    if (!status.ok()) {
      DCDO_CHECK_HOOK(OnEvolveEnd(id_, /*ok=*/false));
      if (auto* tr = trace::ActiveContext()) {
        tr->metrics().GetCounter("evolve.failed").Increment();
        tr->EndSpan(evolve_span, "outcome", status.ToString());
      }
      done(status);
      return;
    }
    VersionId previous = version_;
    version_ = target_version;
    DCDO_CHECK_HOOK(OnVersionChanged(id_, previous, target_version));
    DCDO_CHECK_HOOK(OnEvolveEnd(id_, /*ok=*/true));
    if (auto* tr = trace::ActiveContext()) {
      tr->metrics().GetCounter("evolve.committed").Increment();
      tr->metrics().GetHistogram("evolve.latency").Record(simulation().Now() -
                                                          evolve_begin);
      tr->EndSpan(evolve_span, "outcome", "committed");
    }
    done(Status::Ok());
  };

  // Stage 2 (runs after incorporations): adopt the target configuration,
  // then drain removals under the removal policy.
  auto stage2 = [this, target_state, enforce_marks, flip_count, removal,
                 remove_queue, stage3_finish](Status status) {
    if (!status.ok()) {
      stage3_finish(status);
      return;
    }
    // Flips + metadata, atomically; charge per-flip DFM update cost.
    simulation().AdvanceInline(cost().dfm_register_per_function *
                               static_cast<std::int64_t>(flip_count));
    Status adopted = mapper_.AdoptConfiguration(*target_state, enforce_marks);
    if (!adopted.ok()) {
      stage3_finish(adopted);
      return;
    }
    // Removals, sequentially under the policy. The driver owns itself via
    // each pending continuation's shared_ptr (see RemoveComponentWithPolicy's
    // PollDriver for the pattern) — no self-referential closure.
    struct RemovalDriver : std::enable_shared_from_this<RemovalDriver> {
      Dcdo* object;
      std::shared_ptr<std::vector<ObjectId>> queue;
      RemovalPolicy removal;
      DoneCallback finish;

      void Step() {
        if (queue->empty()) {
          finish(Status::Ok());
          return;
        }
        ObjectId next = queue->back();
        queue->pop_back();
        object->RemoveComponentWithPolicy(
            next, removal, [self = shared_from_this()](Status status) {
              if (!status.ok()) {
                self->finish(status);
                return;
              }
              self->Step();
            });
      }
    };
    auto driver = std::make_shared<RemovalDriver>();
    driver->object = this;
    driver->queue = remove_queue;
    driver->removal = removal;
    driver->finish = stage3_finish;
    driver->Step();
  };

  // Stage 1: acquire the new components through the fetch pipeline. At the
  // calibrated fetch_concurrency of 1 this is the paper's one-at-a-time
  // sequence; above it, fetches overlap (bounded, single-flighted) and each
  // image incorporates as it lands. Either way stage 2 — the configuration
  // flip and removals — starts only once every component is in.
  fetcher_->AcquireAll(
      host_, std::move(plan.incorporate),
      [this](const ImplementationComponent& meta, bool /*was_cached*/) {
        // During evolution, dependencies come from the target's metadata,
        // not from auto-derived hints.
        return IncorporateCached(meta, /*auto_structural_deps=*/false);
      },
      std::move(stage2));
}

// ===== RPC dispatch =====

namespace {
Result<std::pair<std::string, ObjectId>> ReadFunctionComponent(
    const ByteBuffer& args) {
  Reader reader(args);
  DCDO_ASSIGN_OR_RETURN(std::string function, reader.ReadString());
  DCDO_ASSIGN_OR_RETURN(ObjectId component, reader.ReadObjectId());
  return std::make_pair(std::move(function), component);
}
}  // namespace

Result<ByteBuffer> Dcdo::DispatchConfig(std::string_view method,
                                        const ByteBuffer& args) {
  if (method == "dcdo.getInterface") {
    // Annotated interface: clients see, per exported function, whether it is
    // mandatory (assured present for the object's lifetime along derived
    // versions) and whether its implementation is permanent (frozen). This
    // is what lets a client decide how defensively to code a call site.
    Writer writer(rpc::WireBufferPool::Acquire());
    std::vector<FunctionSignature> interface = GetInterface();
    writer.WriteU64(interface.size());
    const DfmState& state = mapper_.state();
    for (const FunctionSignature& fn : interface) {
      writer.WriteString(fn.name);
      writer.WriteString(fn.signature);
      writer.WriteBool(state.IsMandatory(fn.name));
      const DfmEntry* impl = state.EnabledImpl(fn.name);
      writer.WriteBool(impl != nullptr && impl->permanent);
    }
    return std::move(writer).Take();
  }
  if (method == "dcdo.getVersion") {
    Writer writer(rpc::WireBufferPool::Acquire());
    writer.WriteVersionId(version_);
    return std::move(writer).Take();
  }
  if (method == "dcdo.getActiveCounts") {
    // Thread-activity report: every implementation currently hosting at
    // least one executing thread, with its count.
    Writer writer(rpc::WireBufferPool::Acquire());
    std::vector<std::tuple<std::string, ObjectId, int>> rows;
    for (const DfmEntry* entry : mapper_.state().AllEntries()) {
      int count = mapper_.ActiveCount(entry->function.name, entry->component);
      if (count > 0) rows.emplace_back(entry->function.name,
                                       entry->component, count);
    }
    writer.WriteU64(rows.size());
    for (const auto& [function, component, count] : rows) {
      writer.WriteString(function);
      writer.WriteObjectId(component);
      writer.WriteU32(static_cast<std::uint32_t>(count));
    }
    return std::move(writer).Take();
  }
  if (method == "dcdo.getComponents") {
    Writer writer(rpc::WireBufferPool::Acquire());
    std::vector<ObjectId> components = GetComponents();
    writer.WriteU64(components.size());
    for (const ObjectId& id : components) writer.WriteObjectId(id);
    return std::move(writer).Take();
  }
  if (method == "dcdo.enableFunction") {
    DCDO_ASSIGN_OR_RETURN(auto fc, ReadFunctionComponent(args));
    DCDO_RETURN_IF_ERROR(EnableFunction(fc.first, fc.second));
    return ByteBuffer{};
  }
  if (method == "dcdo.disableFunction") {
    DCDO_ASSIGN_OR_RETURN(auto fc, ReadFunctionComponent(args));
    DCDO_RETURN_IF_ERROR(DisableFunction(fc.first, fc.second));
    return ByteBuffer{};
  }
  if (method == "dcdo.switchImplementation") {
    DCDO_ASSIGN_OR_RETURN(auto fc, ReadFunctionComponent(args));
    DCDO_RETURN_IF_ERROR(SwitchImplementation(fc.first, fc.second));
    return ByteBuffer{};
  }
  if (method == "dcdo.removeComponent") {
    Reader reader(args);
    DCDO_ASSIGN_OR_RETURN(ObjectId component, reader.ReadObjectId());
    DCDO_RETURN_IF_ERROR(RemoveComponent(component));
    return ByteBuffer{};
  }
  if (method == "dcdo.markMandatory") {
    Reader reader(args);
    DCDO_ASSIGN_OR_RETURN(std::string function, reader.ReadString());
    DCDO_RETURN_IF_ERROR(MarkMandatory(function));
    return ByteBuffer{};
  }
  if (method == "dcdo.markPermanent") {
    DCDO_ASSIGN_OR_RETURN(auto fc, ReadFunctionComponent(args));
    DCDO_RETURN_IF_ERROR(MarkPermanent(fc.first, fc.second));
    return ByteBuffer{};
  }
  if (method == "dcdo.addDependency" || method == "dcdo.removeDependency") {
    // Wire form: kind u32, dependent, has-c1/c1, target, has-c2/c2 —
    // the same layout descriptor_wire uses.
    Reader reader(args);
    Dependency dep;
    DCDO_ASSIGN_OR_RETURN(std::uint32_t kind, reader.ReadU32());
    if (kind > static_cast<std::uint32_t>(DependencyKind::kTypeD)) {
      return InvalidArgumentError("bad dependency kind");
    }
    dep.kind = static_cast<DependencyKind>(kind);
    DCDO_ASSIGN_OR_RETURN(dep.dependent, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(bool has_c1, reader.ReadBool());
    if (has_c1) {
      DCDO_ASSIGN_OR_RETURN(ObjectId c1, reader.ReadObjectId());
      dep.dependent_component = c1;
    }
    DCDO_ASSIGN_OR_RETURN(dep.target, reader.ReadString());
    DCDO_ASSIGN_OR_RETURN(bool has_c2, reader.ReadBool());
    if (has_c2) {
      DCDO_ASSIGN_OR_RETURN(ObjectId c2, reader.ReadObjectId());
      dep.target_component = c2;
    }
    if (method == "dcdo.addDependency") {
      DCDO_RETURN_IF_ERROR(AddDependency(std::move(dep)));
    } else {
      DCDO_RETURN_IF_ERROR(RemoveDependency(dep));
    }
    return ByteBuffer{};
  }
  return NotFoundError("no configuration method '" + std::string(method) +
                       "'");
}

void Dcdo::HandleInvocation(const rpc::MethodInvocation& invocation,
                            rpc::ReplyFn reply) {
  // By-id fast path: a resolvable FunctionId can only name a user-defined
  // dynamic function (clients never ship configuration methods by id), so
  // dispatch straight through the DFM — no string comparisons at all.
  if (FunctionId id = invocation.ResolvedId(); id.valid()) {
    Result<ByteBuffer> result = Call(id, invocation.args());
    if (result.ok()) {
      reply(rpc::MethodResult::Ok(std::move(result).value()));
    } else {
      reply(rpc::MethodResult::Error(result.status()));
    }
    return;
  }
  const std::string_view method = invocation.method_name();
  if (method == "dcdo.incorporateComponent") {
    Reader reader(invocation.args());
    Result<ObjectId> component = reader.ReadObjectId();
    if (!component.ok()) {
      reply(rpc::MethodResult::Error(component.status()));
      return;
    }
    auto reply_sp = std::make_shared<rpc::ReplyFn>(std::move(reply));
    IncorporateComponent(*component, [reply_sp](Status status) {
      if (status.ok()) {
        (*reply_sp)(rpc::MethodResult::Ok());
      } else {
        (*reply_sp)(rpc::MethodResult::Error(status));
      }
    });
    return;
  }
  if (method == "dcdo.evolveTo") {
    // The fully remote evolution path: the caller ships a serialized DFM
    // descriptor; parsing re-validates every invariant before anything is
    // applied. Args: descriptor bytes, enforce-marks bool.
    Reader reader(invocation.args());
    Result<ByteBuffer> wire = reader.ReadBytes();
    if (!wire.ok()) {
      reply(rpc::MethodResult::Error(wire.status()));
      return;
    }
    Result<bool> enforce = reader.ReadBool();
    if (!enforce.ok()) {
      reply(rpc::MethodResult::Error(enforce.status()));
      return;
    }
    Result<DfmDescriptor> target = ParseDescriptor(*wire);
    if (!target.ok()) {
      reply(rpc::MethodResult::Error(target.status()));
      return;
    }
    auto reply_sp = std::make_shared<rpc::ReplyFn>(std::move(reply));
    EvolveTo(*target, RemovalPolicy::Error(),
             [reply_sp](Status status) {
               if (status.ok()) {
                 (*reply_sp)(rpc::MethodResult::Ok());
               } else {
                 (*reply_sp)(rpc::MethodResult::Error(status));
               }
             },
             *enforce);
    return;
  }
  if (method.starts_with("dcdo.")) {
    Result<ByteBuffer> result = DispatchConfig(method, invocation.args());
    if (result.ok()) {
      reply(rpc::MethodResult::Ok(std::move(result).value()));
    } else {
      reply(rpc::MethodResult::Error(result.status()));
    }
    return;
  }
  // User-defined dynamic function, named by string: first contact with a
  // not-yet-interned name (interning happens at incorporate time, so this
  // resolves — and subsequent calls ship by id) or a genuinely unknown one.
  Result<ByteBuffer> result = Call(std::string(method), invocation.args());
  if (result.ok()) {
    reply(rpc::MethodResult::Ok(std::move(result).value()));
  } else {
    reply(rpc::MethodResult::Error(result.status()));
  }
}

}  // namespace dcdo
