#include "core/evolution_policy.h"

namespace dcdo {
namespace {

// Shared single-version rule: instances evolve only to the designated
// current version, never to any other instantiable version.
Status CheckSingleVersion(const VersionId& to, const VersionId& current) {
  if (to != current) {
    return NotDerivedVersionError(
        "single-version manager: instances may only evolve to the current "
        "version " + current.ToString() + ", not " + to.ToString());
  }
  return Status::Ok();
}

class SingleVersionProactive final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "single/proactive"; }
  bool single_version() const override { return true; }
  bool push_on_new_version() const override { return true; }
  Status CheckEvolution(const VersionId&, const VersionId& to,
                        const VersionId& current) const override {
    return CheckSingleVersion(to, current);
  }
};

class SingleVersionExplicit final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "single/explicit"; }
  bool single_version() const override { return true; }
  Status CheckEvolution(const VersionId&, const VersionId& to,
                        const VersionId& current) const override {
    return CheckSingleVersion(to, current);
  }
};

class SingleVersionLazy : public EvolutionPolicy {
 public:
  bool single_version() const override { return true; }
  Status CheckEvolution(const VersionId&, const VersionId& to,
                        const VersionId& current) const override {
    return CheckSingleVersion(to, current);
  }
};

class LazyEveryCall final : public SingleVersionLazy {
 public:
  std::string_view name() const override { return "single/lazy-every-call"; }
  bool ShouldLazyCheck(const LazyCheckContext&) const override { return true; }
};

class LazyEveryK final : public SingleVersionLazy {
 public:
  explicit LazyEveryK(std::uint64_t k) : k_(k == 0 ? 1 : k) {}
  std::string_view name() const override { return "single/lazy-every-k"; }
  bool ShouldLazyCheck(const LazyCheckContext& ctx) const override {
    return ctx.calls_since_check + 1 >= k_;
  }

 private:
  std::uint64_t k_;
};

class LazyPeriodic final : public SingleVersionLazy {
 public:
  explicit LazyPeriodic(sim::SimDuration period) : period_(period) {}
  std::string_view name() const override { return "single/lazy-periodic"; }
  bool ShouldLazyCheck(const LazyCheckContext& ctx) const override {
    return ctx.since_check >= period_;
  }

 private:
  sim::SimDuration period_;
};

class LazyOnMigrate final : public SingleVersionLazy {
 public:
  std::string_view name() const override { return "single/lazy-on-migrate"; }
  bool ShouldLazyCheck(const LazyCheckContext& ctx) const override {
    return ctx.migrating;
  }
};

class MultiVersionNoUpdate final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "multi/no-update"; }
  bool single_version() const override { return false; }
  Status CheckEvolution(const VersionId& from, const VersionId& to,
                        const VersionId&) const override {
    if (from == to) return Status::Ok();
    return FailedPreconditionError(
        "no-update manager: deployed instances never evolve");
  }
};

class MultiVersionIncreasing final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "multi/increasing"; }
  bool single_version() const override { return false; }
  Status CheckEvolution(const VersionId& from, const VersionId& to,
                        const VersionId&) const override {
    if (!to.IsDerivedFrom(from)) {
      return NotDerivedVersionError(
          "increasing-version manager: " + to.ToString() +
          " is not derived from " + from.ToString());
    }
    return Status::Ok();
  }
  // Lazy variants under this policy auto-update only when the current
  // version descends from the instance's version; otherwise the instance
  // stays where it is (paper Section 3.5, last paragraph).
  bool AutoUpdateAllowed(const VersionId& from,
                         const VersionId& current) const override {
    return current.IsDerivedFrom(from);
  }
};

class MultiVersionGeneral final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "multi/general"; }
  bool single_version() const override { return false; }
  bool enforce_marks_on_evolve() const override { return false; }
  Status CheckEvolution(const VersionId&, const VersionId&,
                        const VersionId&) const override {
    return Status::Ok();  // any instantiable version, any time
  }
};

class MultiVersionHybrid final : public EvolutionPolicy {
 public:
  std::string_view name() const override { return "multi/hybrid"; }
  bool single_version() const override { return false; }
  // enforce_marks_on_evolve stays true: AdoptConfiguration rejects moves
  // that break mandatory/permanent rules.
  Status CheckEvolution(const VersionId&, const VersionId&,
                        const VersionId&) const override {
    return Status::Ok();
  }
};

}  // namespace

std::unique_ptr<EvolutionPolicy> MakeSingleVersionProactive() {
  return std::make_unique<SingleVersionProactive>();
}
std::unique_ptr<EvolutionPolicy> MakeSingleVersionExplicit() {
  return std::make_unique<SingleVersionExplicit>();
}
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyEveryCall() {
  return std::make_unique<LazyEveryCall>();
}
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyEveryK(std::uint64_t k) {
  return std::make_unique<LazyEveryK>(k);
}
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyPeriodic(
    sim::SimDuration period) {
  return std::make_unique<LazyPeriodic>(period);
}
std::unique_ptr<EvolutionPolicy> MakeSingleVersionLazyOnMigrate() {
  return std::make_unique<LazyOnMigrate>();
}
std::unique_ptr<EvolutionPolicy> MakeMultiVersionNoUpdate() {
  return std::make_unique<MultiVersionNoUpdate>();
}
std::unique_ptr<EvolutionPolicy> MakeMultiVersionIncreasing() {
  return std::make_unique<MultiVersionIncreasing>();
}
std::unique_ptr<EvolutionPolicy> MakeMultiVersionGeneral() {
  return std::make_unique<MultiVersionGeneral>();
}
std::unique_ptr<EvolutionPolicy> MakeMultiVersionHybrid() {
  return std::make_unique<MultiVersionHybrid>();
}

}  // namespace dcdo
