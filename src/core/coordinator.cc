#include "core/coordinator.h"

#include <memory>

#include "check/check_context.h"
#include "common/logging.h"
#include "trace/trace_context.h"

namespace dcdo {

Status UpdateCoordinator::ValidateAll(
    const std::vector<Step>& steps, std::vector<VersionId>& prior_versions,
    std::vector<std::string>& notes) const {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (step.manager == nullptr) {
      return InvalidArgumentError("step " + std::to_string(i) +
                                  " has no manager");
    }
    Dcdo* object = step.manager->FindInstance(step.instance);
    if (object == nullptr) {
      return NotFoundError("step " + std::to_string(i) + ": no instance " +
                           step.instance.ToString() + " of type " +
                           step.manager->type_name());
    }
    DCDO_ASSIGN_OR_RETURN(const DfmDescriptor* target,
                          step.manager->Descriptor(step.target));
    if (!target->instantiable()) {
      return VersionNotInstantiableError(
          "step " + std::to_string(i) + ": version " +
          step.target.ToString() + " of " + step.manager->type_name() +
          " is still configurable");
    }
    DCDO_RETURN_IF_ERROR(step.manager->policy().CheckEvolution(
        object->version(), step.target, step.manager->current_version()));

    CompatibilityReport report =
        ClassifyTransition(object->mapper().state(), target->state());
    notes.push_back(step.manager->type_name() + "/" +
                    step.instance.ToString() + ": " + report.Summary());
    if (options_.require_client_compatible &&
        !report.SafeForExistingClients()) {
      return FailedPreconditionError(
          "step " + std::to_string(i) + ": transition to " +
          step.target.ToString() + " is " + report.Summary());
    }
    prior_versions.push_back(object->version());
  }
  return Status::Ok();
}

void UpdateCoordinator::Execute(std::vector<Step> steps, DoneCallback done) {
  auto outcome = std::make_shared<Outcome>();
  auto prior = std::make_shared<std::vector<VersionId>>();
  Status validated = ValidateAll(steps, *prior, outcome->notes);
  if (!validated.ok()) {
    outcome->status = validated;
    done(std::move(*outcome));
    return;
  }

  auto shared_steps = std::make_shared<std::vector<Step>>(std::move(steps));
  auto shared_done = std::make_shared<DoneCallback>(std::move(done));

  // Warm every step's host cache before the serial apply phase: the steps'
  // component downloads overlap each other (and step 0's apply) through the
  // fetch pipeline, while the applies themselves stay strictly ordered for
  // rollback. No-op at fetch_concurrency 1, where the sequential calibration
  // must not see extra transfers.
  for (const Step& step : *shared_steps) {
    step.manager->PrefetchInstanceVersion(step.instance, step.target);
  }
  DCDO_CHECK_HOOK(Note("coordinated-update",
                       "batch of " + std::to_string(shared_steps->size()) +
                           " step(s) begins"));
  if (auto* tr = trace::ActiveContext()) {
    std::uint64_t mark = tr->Instant("update.batch", {.category = "evolve"});
    tr->Annotate(mark, "steps", std::to_string(shared_steps->size()));
    tr->metrics().GetCounter("update.batches").Increment();
  }

  // Roll back steps [0, upto) in reverse, then report `failure`.
  // Both loop closures below capture themselves weakly — a strong
  // self-capture is a shared_ptr cycle that leaks the closure chain (and the
  // caller's `done`) after every batch. The strong reference rides in each
  // pending EvolveInstanceTo continuation instead.
  auto rollback = std::make_shared<std::function<void(std::size_t, Status)>>();
  *rollback = [outcome, prior, shared_steps, shared_done,
               weak_rollback =
                   std::weak_ptr<std::function<void(std::size_t, Status)>>(
                       rollback)](std::size_t upto, Status failure) {
    if (upto == 0) {
      outcome->status = failure;
      DCDO_CHECK_HOOK(Note("coordinated-update",
                           "batch rolled back (" +
                               std::to_string(outcome->rolled_back) +
                               " step(s) undone): " + failure.ToString()));
      if (auto* tr = trace::ActiveContext()) {
        std::uint64_t mark =
            tr->Instant("update.rollback", {.category = "evolve"});
        tr->Annotate(mark, "cause", failure.ToString());
        tr->metrics().GetCounter("update.rollbacks").Increment();
      }
      (*shared_done)(std::move(*outcome));
      return;
    }
    std::size_t index = upto - 1;
    const Step& step = (*shared_steps)[index];
    step.manager->EvolveInstanceTo(
        step.instance, (*prior)[index],
        [outcome, next_rb = weak_rollback.lock(), index,
         failure](Status status) {
          if (status.ok()) {
            ++outcome->rolled_back;
            --outcome->applied;
          } else {
            outcome->notes.push_back("rollback of step " +
                                     std::to_string(index) +
                                     " refused: " + status.ToString());
          }
          (*next_rb)(index, failure);
        });
  };

  // `apply` holding `rollback` strongly is fine (rollback never references
  // apply); only the self-capture must be weak.
  auto apply = std::make_shared<std::function<void(std::size_t)>>();
  *apply = [outcome, shared_steps, shared_done,
            weak_apply = std::weak_ptr<std::function<void(std::size_t)>>(apply),
            rollback](std::size_t index) {
    if (index == shared_steps->size()) {
      outcome->status = Status::Ok();
      DCDO_CHECK_HOOK(Note("coordinated-update",
                           "batch applied (" +
                               std::to_string(outcome->applied) +
                               " step(s))"));
      if (auto* tr = trace::ActiveContext()) {
        tr->Instant("update.applied", {.category = "evolve"});
      }
      (*shared_done)(std::move(*outcome));
      return;
    }
    const Step& step = (*shared_steps)[index];
    step.manager->EvolveInstanceTo(
        step.instance, step.target,
        [outcome, next_ap = weak_apply.lock(), rollback,
         index](Status status) {
          if (!status.ok()) {
            DCDO_LOG(kWarning) << "coordinated update: step " << index
                               << " failed (" << status.ToString()
                               << "); rolling back";
            (*rollback)(index,
                        FailedPreconditionError(
                            "step " + std::to_string(index) +
                            " failed: " + status.ToString()));
            return;
          }
          ++outcome->applied;
          (*next_ap)(index + 1);
        });
  };
  (*apply)(0);
}

}  // namespace dcdo
