// UpdateCoordinator: coordinated evolution across object types.
//
// The explicit-update policy exists precisely so that the update decision
// can be "made by a different external object. This could be useful when,
// for example, multiple object types need to be updated in coordination
// with one another" (Section 3.4). This is that external object: it takes a
// batch of (manager, instance, target-version) steps — typically spanning
// several managers whose types must change protocol together — and applies
// them with two-phase discipline:
//
//   validate phase — every step is checked up front: the instance exists,
//     the target version is instantiable, the manager's policy permits the
//     transition, and (optionally) the interface transition is
//     client-compatible per ClassifyTransition. Any failure rejects the
//     whole batch before anything changes.
//
//   apply phase — steps are applied in order. If one fails mid-batch, the
//     coordinator attempts to roll already-updated instances back to their
//     recorded prior versions. Rollback is best effort: a policy that
//     forbids "downgrades" (e.g. increasing-version) can refuse, and the
//     outcome reports exactly what state the world was left in.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/manager.h"
#include "dfm/compatibility.h"

namespace dcdo {

class UpdateCoordinator {
 public:
  struct Step {
    DcdoManager* manager = nullptr;
    ObjectId instance;
    VersionId target;
  };

  struct Options {
    // Reject batches containing a breaking interface transition.
    bool require_client_compatible = false;
  };

  struct Outcome {
    Status status;                  // overall result
    std::size_t applied = 0;        // steps successfully applied (and kept)
    std::size_t rolled_back = 0;    // steps undone after a mid-batch failure
    std::vector<std::string> notes; // human-readable per-step annotations

    bool ok() const { return status.ok(); }
  };

  using DoneCallback = std::function<void(Outcome)>;

  UpdateCoordinator() = default;
  explicit UpdateCoordinator(const Options& options) : options_(options) {}

  // Validates and applies `steps`; `done` fires once with the outcome.
  // The coordinator drives nothing concurrently — steps apply in order, so
  // a batch is only as slow as its slowest member chain.
  void Execute(std::vector<Step> steps, DoneCallback done);

 private:
  [[nodiscard]] Status ValidateAll(const std::vector<Step>& steps,
                     std::vector<VersionId>& prior_versions,
                     std::vector<std::string>& notes) const;

  Options options_;
};

}  // namespace dcdo
