// DcdoProxy: the defensive client handle the paper prescribes.
//
// "Invocations on a dynamic function should be written to expect the absence
// of the function. Clients calling a DCDO should time out or catch an
// exception ... that indicates that the function they tried to invoke was
// not present" (Section 3.2). DcdoProxy packages that discipline:
//
//   * it fetches and caches the object's *annotated* interface (name,
//     signature, mandatory?, permanent?);
//   * Call() refuses locally when the cached interface lacks the function —
//     unless the interface is stale, in which case it refreshes once and
//     retries (the object may have just evolved to *add* the function);
//   * when the object answers kFunctionMissing / kFunctionDisabled — the
//     disappearing-exported-function problem in flight — the proxy refreshes
//     its interface and, if a replacement implementation was enabled,
//     retries once; otherwise it surfaces the typed error;
//   * IsAssured() tells callers which functions are mandatory, i.e. safe to
//     call without the defensive dance as long as the object evolves along
//     derived versions.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/version_id.h"
#include "component/dynamic_function.h"
#include "dfm/function_id.h"
#include "rpc/client.h"

namespace dcdo {

// One row of the annotated interface. `id` is the interned handle for
// function.name, resolved once when the interface is fetched.
struct InterfaceEntry {
  FunctionSignature function;
  FunctionId id;
  bool mandatory = false;
  bool permanent = false;
};

class DcdoProxy {
 public:
  DcdoProxy(rpc::RpcClient* client, ObjectId target)
      : client_(*client), target_(target) {}

  const ObjectId& target() const { return target_; }

  // Fetches the annotated interface from the object (dcdo.getInterface) and
  // caches it. Called lazily by the other methods; call it eagerly to
  // pre-warm.
  [[nodiscard]] Status RefreshInterface();

  // The cached interface (empty until the first refresh).
  const std::vector<InterfaceEntry>& interface() const { return interface_; }
  bool interface_known() const { return interface_fetched_; }

  // True if the cached interface exports `function`.
  bool Offers(std::string_view function) const;

  // True if `function` is exported AND marked mandatory: the object
  // guarantees some implementation for its lifetime (along derived
  // versions).
  bool IsAssured(const std::string& function) const;

  // The object's current version (dcdo.getVersion).
  [[nodiscard]] Result<VersionId> FetchVersion();

  // Defensive invocation as described above. At most one interface refresh
  // and one retry per call.
  [[nodiscard]] Result<ByteBuffer> Call(const std::string& function, const ByteBuffer& args);

  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t retries() const { return retries_; }

 private:
  const InterfaceEntry* Find(std::string_view function) const;

  rpc::RpcClient& client_;
  ObjectId target_;
  std::vector<InterfaceEntry> interface_;
  // FunctionId -> position in interface_; rebuilt on every refresh so
  // Offers/IsAssured/Call probe once instead of scanning the vector.
  std::unordered_map<FunctionId, std::size_t> index_;
  bool interface_fetched_ = false;
  std::uint64_t refreshes_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace dcdo
