#include "core/manager.h"

#include "common/logging.h"
#include "common/serialize.h"
#include "dfm/descriptor_wire.h"

namespace dcdo {

DcdoManager::DcdoManager(std::string type_name, sim::SimHost* home,
                         rpc::RpcTransport* transport, BindingAgent* agent,
                         const NativeCodeRegistry* registry,
                         std::unique_ptr<EvolutionPolicy> policy)
    : type_name_(std::move(type_name)),
      id_(ObjectId::Next(domains::kDcdoManager)),
      home_(*home),
      transport_(*transport),
      agent_(*agent),
      registry_(*registry),
      policy_(std::move(policy)) {
  pid_ = home_.AdoptProcess(id_);
  agent_.Bind(id_, ObjectAddress{home_.node(), pid_, /*epoch=*/1});
  // The manager's exported interface (used by the explicit-update policy,
  // where "other objects call to the manager in order to evolve" instances).
  transport_.RegisterEndpoint(
      home_.node(), pid_, /*epoch=*/1,
      [this](const rpc::MethodInvocation& invocation, rpc::ReplyFn reply) {
        const std::string_view method = invocation.method_name();
        if (method == "mgr.getCurrentVersion") {
          Writer writer;
          writer.WriteVersionId(current_version_);
          reply(rpc::MethodResult::Ok(std::move(writer).Take()));
          return;
        }
        if (method == "mgr.updateInstance") {
          Reader reader(invocation.args());
          Result<ObjectId> instance = reader.ReadObjectId();
          if (!instance.ok()) {
            reply(rpc::MethodResult::Error(instance.status()));
            return;
          }
          auto reply_sp = std::make_shared<rpc::ReplyFn>(std::move(reply));
          UpdateInstance(*instance, [reply_sp](Status status) {
            if (status.ok()) {
              (*reply_sp)(rpc::MethodResult::Ok());
            } else {
              (*reply_sp)(rpc::MethodResult::Error(status));
            }
          });
          return;
        }
        if (method == "mgr.getDescriptor") {
          Reader reader(invocation.args());
          Result<VersionId> version = reader.ReadVersionId();
          if (!version.ok()) {
            reply(rpc::MethodResult::Error(version.status()));
            return;
          }
          Result<const DfmDescriptor*> descriptor = Descriptor(*version);
          if (!descriptor.ok()) {
            reply(rpc::MethodResult::Error(descriptor.status()));
            return;
          }
          reply(rpc::MethodResult::Ok(SerializeDescriptor(**descriptor)));
          return;
        }
        if (method == "mgr.getTable") {
          Writer writer;
          std::vector<TableEntry> table = Table();
          writer.WriteU64(table.size());
          for (const TableEntry& entry : table) {
            writer.WriteObjectId(entry.id);
            writer.WriteVersionId(entry.version);
            writer.WriteU32(entry.node);
          }
          reply(rpc::MethodResult::Ok(std::move(writer).Take()));
          return;
        }
        reply(rpc::MethodResult::Error(NotFoundError(
            "manager has no method '" + std::string(method) + "'")));
      });
}

DcdoManager::~DcdoManager() {
  instances_.clear();  // Dcdo destructors unregister endpoints/bindings
  for (auto& ico : published_) icos_.Unregister(ico->id());
  transport_.UnregisterEndpoint(home_.node(), pid_);
  agent_.Unbind(id_);
  (void)home_.KillProcess(pid_);
}

// ===== Components =====

Status DcdoManager::AttachNameService(NameService* names) {
  names_ = names;
  if (names_ == nullptr) return Status::Ok();
  DCDO_RETURN_IF_ERROR(
      names_->Bind(NamePrefix() + "/manager", id_));
  for (const auto& ico : published_) {
    DCDO_RETURN_IF_ERROR(names_->Bind(
        NamePrefix() + "/components/" + ico->component().name, ico->id()));
  }
  for (auto& [instance_id, record] : instances_) {
    DCDO_ASSIGN_OR_RETURN(
        record.name,
        names_->BindInterned(
            NamePrefix() + "/instances/" + std::to_string(instance_id.instance()),
            instance_id));
  }
  return Status::Ok();
}

Result<ObjectId> DcdoManager::PublishComponent(ImplementationComponent meta) {
  DCDO_RETURN_IF_ERROR(meta.Validate());
  std::string name = meta.name;
  auto ico = std::make_unique<ImplementationComponentObject>(
      &home_, &transport_, &agent_, std::move(meta));
  ObjectId component_id = ico->id();
  icos_.Register(ico.get());
  published_.push_back(std::move(ico));
  if (names_ != nullptr) {
    DCDO_RETURN_IF_ERROR(
        names_->Bind(NamePrefix() + "/components/" + name, component_id));
  }
  return component_id;
}

// ===== DFM store =====

Result<VersionId> DcdoManager::CreateRootVersion() {
  if (!dfm_store_.empty()) {
    return AlreadyExistsError("type " + type_name_ + " already has versions");
  }
  VersionId root = VersionId::Root();
  dfm_store_.emplace(root, DfmDescriptor(root));
  return root;
}

Result<VersionId> DcdoManager::DeriveVersion(const VersionId& parent) {
  auto it = dfm_store_.find(parent);
  if (it == dfm_store_.end()) {
    return NotFoundError("no version " + parent.ToString() + " in the DFM "
                         "store of " + type_name_);
  }
  // Next free ordinal under `parent`.
  std::uint32_t ordinal = 1;
  while (dfm_store_.contains(parent.Child(ordinal))) ++ordinal;
  VersionId child = parent.Child(ordinal);
  dfm_store_.emplace(child, it->second.DeriveChild(child));
  DCDO_LOG(kDebug) << type_name_ << ": derived version " << child.ToString()
                   << " from " << parent.ToString();
  return child;
}

Result<DfmDescriptor*> DcdoManager::MutableDescriptor(
    const VersionId& version) {
  auto it = dfm_store_.find(version);
  if (it == dfm_store_.end()) {
    return NotFoundError("no version " + version.ToString());
  }
  return &it->second;
}

Result<const DfmDescriptor*> DcdoManager::Descriptor(
    const VersionId& version) const {
  auto it = dfm_store_.find(version);
  if (it == dfm_store_.end()) {
    return NotFoundError("no version " + version.ToString());
  }
  return &it->second;
}

Status DcdoManager::MarkInstantiable(const VersionId& version) {
  DCDO_ASSIGN_OR_RETURN(DfmDescriptor * descriptor,
                        MutableDescriptor(version));
  return descriptor->MarkInstantiable();
}

Status DcdoManager::CheckInstantiable(const VersionId& version) const {
  DCDO_ASSIGN_OR_RETURN(const DfmDescriptor* descriptor, Descriptor(version));
  if (!descriptor->instantiable()) {
    return VersionNotInstantiableError("version " + version.ToString() +
                                       " of " + type_name_ +
                                       " is still configurable");
  }
  return Status::Ok();
}

Status DcdoManager::SetCurrentVersion(const VersionId& version) {
  DCDO_RETURN_IF_ERROR(CheckInstantiable(version));
  current_version_ = version;
  DCDO_LOG(kInfo) << type_name_ << ": current version is now "
                  << version.ToString();
  if (policy_->push_on_new_version()) {
    // Proactive update: push to every instance in the DCDO table now.
    for (auto& [instance_id, record] : instances_) {
      if (record.object->version() == version) continue;
      ++updates_pushed_;
      EvolveInstanceTo(instance_id, version, [instance_id](Status status) {
        if (!status.ok()) {
          DCDO_LOG(kWarning) << "proactive update of "
                             << instance_id.ToString()
                             << " failed: " << status.ToString();
        }
      });
    }
  }
  return Status::Ok();
}

std::vector<VersionId> DcdoManager::Versions() const {
  std::vector<VersionId> out;
  out.reserve(dfm_store_.size());
  for (const auto& [version, descriptor] : dfm_store_) out.push_back(version);
  return out;
}

// ===== Instances =====

void DcdoManager::ApplyVersion(Dcdo* object, const VersionId& version,
                               DoneCallback done) {
  Result<const DfmDescriptor*> descriptor = Descriptor(version);
  if (!descriptor.ok()) {
    done(descriptor.status());
    return;
  }
  object->EvolveTo(**descriptor, removal_policy_, std::move(done),
                   policy_->enforce_marks_on_evolve());
}

void DcdoManager::CreateInstance(sim::SimHost* host, CreateCallback done) {
  if (!current_version_.valid()) {
    done(FailedPreconditionError("no current version designated for " +
                                 type_name_));
    return;
  }
  CreateInstanceAt(current_version_, host, std::move(done));
}

void DcdoManager::CreateInstanceAt(const VersionId& version,
                                   sim::SimHost* host, CreateCallback done) {
  Status instantiable = CheckInstantiable(version);
  if (!instantiable.ok()) {
    done(instantiable);
    return;
  }
  // Spawn the shell process (the DCDO runtime without any components)...
  host->SpawnProcess(
      id_, kShellExecutableBytes,
      [this, version, host, done = std::move(done)](sim::ProcessId shell_pid) {
        // The Dcdo object adopts its own process entry; retire the shell's.
        (void)host->KillProcess(shell_pid);
        auto object = std::make_unique<Dcdo>(
            type_name_ + "#" + std::to_string(instances_.size() + 1), host,
            &transport_, &agent_, &registry_, &icos_, VersionId{}, &fetcher_);
        Dcdo* raw = object.get();
        ObjectId instance_id = raw->id();
        InstanceRecord& record = instances_[instance_id];
        record.object = std::move(object);
        record.last_check = home_.simulation().Now();
        InstallLazyHook(instance_id);
        // ...then bring it to the requested version (incorporates and
        // enables every component of the version's descriptor).
        ApplyVersion(raw, version,
                     [this, instance_id, done = std::move(done)](
                         Status status) {
                       if (!status.ok()) {
                         instances_.erase(instance_id);
                         done(status);
                         return;
                       }
                       if (names_ != nullptr) {
                         auto bound = names_->BindInterned(
                             NamePrefix() + "/instances/" +
                                 std::to_string(instance_id.instance()),
                             instance_id);
                         if (bound.ok()) {
                           auto rec = instances_.find(instance_id);
                           if (rec != instances_.end()) {
                             rec->second.name = *bound;
                           }
                         }
                       }
                       // Activation handshake completes creation.
                       home_.simulation().Schedule(
                           home_.cost_model().activation_handshake,
                           [instance_id, done = std::move(done)]() {
                             done(instance_id);
                           });
                     });
      });
}

void DcdoManager::EvolveInstanceTo(const ObjectId& instance,
                                   const VersionId& version,
                                   DoneCallback done) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance.ToString() + " of " +
                       type_name_));
    return;
  }
  Status instantiable = CheckInstantiable(version);
  if (!instantiable.ok()) {
    done(instantiable);
    return;
  }
  Status allowed = policy_->CheckEvolution(it->second.object->version(),
                                           version, current_version_);
  if (!allowed.ok()) {
    done(allowed);
    return;
  }
  // The evolution request is itself a (small) remote call to the instance:
  // charge one control-message round.
  home_.simulation().AdvanceInline(home_.cost_model().MessageTime(
      rpc::kHeaderBytes + 64 * it->second.object->mapper().state().entry_count()));
  VersionId from = it->second.object->version();
  sim::SimTime started = home_.simulation().Now();
  ApplyVersion(it->second.object.get(), version,
               [this, instance, from, version, started,
                done = std::move(done)](Status status) {
                 EvolutionEvent event;
                 event.instance = instance;
                 event.from = from;
                 event.to = version;
                 event.completed_at = home_.simulation().Now();
                 event.duration = event.completed_at - started;
                 event.status = status;
                 history_.push_back(std::move(event));
                 done(status);
               });
}

void DcdoManager::UpdateInstance(const ObjectId& instance, DoneCallback done) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance.ToString()));
    return;
  }
  if (!current_version_.valid()) {
    done(FailedPreconditionError("no current version designated"));
    return;
  }
  const VersionId& from = it->second.object->version();
  if (from == current_version_) {
    done(Status::Ok());
    return;
  }
  if (!policy_->AutoUpdateAllowed(from, current_version_)) {
    done(NotDerivedVersionError("policy " + std::string(policy_->name()) +
                                " does not auto-update " + from.ToString() +
                                " to " + current_version_.ToString()));
    return;
  }
  EvolveInstanceTo(instance, current_version_, std::move(done));
}

void DcdoManager::MigrateInstance(const ObjectId& instance,
                                  sim::SimHost* dest, DoneCallback done) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance.ToString()));
    return;
  }
  Dcdo* object = it->second.object.get();
  // Captured by value into the deferred callback below: the host outlives
  // the drained simulation, the pointer copy keeps the closure self-owned.
  sim::SimHost* source = &object->host();
  const sim::CostModel& cost = home_.cost_model();
  sim::Simulation& simulation = home_.simulation();
  std::size_t state_bytes = object->mutable_state().CaptureSize();

  // Every incorporated component must be mappable on the destination before
  // we commit to moving.
  for (const ObjectId& component_id : object->GetComponents()) {
    const ImplementationComponent* meta =
        object->mapper().state().FindComponent(component_id);
    if (meta != nullptr && !meta->type.CompatibleWith(dest->architecture())) {
      done(ArchMismatchError("component " + meta->name +
                             " has no build for the destination host"));
      return;
    }
  }

  simulation.Schedule(cost.StateCapture(state_bytes), [this, instance, dest,
                                                       state_bytes, source,
                                                       done = std::move(
                                                           done)]() mutable {
    auto it = instances_.find(instance);
    if (it == instances_.end()) {
      done(NotFoundError("instance destroyed during migration"));
      return;
    }
    source->network().BulkTransfer(
        source->node(), dest->node(), state_bytes,
        [this, instance, dest, done = std::move(done)]() mutable {
          auto it = instances_.find(instance);
          if (it == instances_.end()) {
            done(NotFoundError("instance destroyed during migration"));
            return;
          }
          Dcdo* object = it->second.object.get();
          // Fetch any component images missing from the destination cache
          // (best-effort — a failed fetch is re-pulled lazily after the
          // move), then re-bind and re-map. Cached images charge their map
          // cost here; fetched ones are mapped by RemapForHost below.
          std::vector<ImplementationComponent> metas;
          for (const ObjectId& component_id : object->GetComponents()) {
            const ImplementationComponent* meta =
                object->mapper().state().FindComponent(component_id);
            if (meta != nullptr) metas.push_back(*meta);
          }
          ComponentFetcher::Options options;
          options.fail_fast = false;
          options.skip_resolve_when_cached = true;
          fetcher_.AcquireAll(
              dest, std::move(metas),
              [this, instance, dest](const ImplementationComponent&,
                                     bool was_cached) {
                if (instances_.find(instance) == instances_.end()) {
                  return NotFoundError("instance destroyed during migration");
                }
                (void)dest;
                if (was_cached) {
                  home_.simulation().AdvanceInline(
                      home_.cost_model().component_map_cached);
                }
                return Status::Ok();
              },
              [this, instance, dest,
               done = std::move(done)](Status status) mutable {
                if (!status.ok()) {
                  done(status);
                  return;
                }
                auto it = instances_.find(instance);
                if (it == instances_.end()) {
                  done(NotFoundError("instance destroyed during migration"));
                  return;
                }
                Dcdo* object = it->second.object.get();
                object->Rebind(dest);
                Status remapped = object->RemapForHost();
                if (!remapped.ok()) {
                  done(remapped);
                  return;
                }
                home_.simulation().Schedule(
                    home_.cost_model().StateRestore(
                        object->mutable_state().CaptureSize()),
                    [this, instance, done = std::move(done)]() {
                      // Lazy-on-migrate policies check for updates here.
                      LazyCheckContext ctx;
                      ctx.migrating = true;
                      if (policy_->ShouldLazyCheck(ctx)) {
                        ++lazy_checks_;
                        UpdateInstance(instance, [done = std::move(done)](
                                                     Status status) {
                          // Failing to update does not fail the migration.
                          (void)status;
                          done(Status::Ok());
                        });
                      } else {
                        done(Status::Ok());
                      }
                    });
              },
              options);
        });
  });
}

void DcdoManager::PrefetchInstanceVersion(const ObjectId& instance,
                                          const VersionId& version) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) return;
  Result<const DfmDescriptor*> descriptor = Descriptor(version);
  if (!descriptor.ok() || !(*descriptor)->instantiable()) return;
  Dcdo* object = it->second.object.get();
  // Only the components the evolution would have to fetch; images already
  // incorporated or cached cost nothing either way.
  EvolutionPlan plan =
      ComputePlan(object->mapper().state(), (*descriptor)->state());
  if (plan.incorporate.empty()) return;
  fetcher_.Prefetch(&object->host(), std::move(plan.incorporate));
}

void DcdoManager::DeactivateInstance(const ObjectId& instance,
                                     DoneCallback done) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance.ToString()));
    return;
  }
  Dcdo* object = it->second.object.get();
  if (!object->active()) {
    done(Status::Ok());
    return;
  }
  if (object->mapper().TotalActive() > 0) {
    done(ActiveThreadsError("instance " + instance.ToString() +
                            " has executing threads"));
    return;
  }
  const sim::CostModel& cost = home_.cost_model();
  std::size_t state_bytes = object->mutable_state().CaptureSize();
  // Capture state, write it to the host store, then tear down.
  home_.simulation().Schedule(
      cost.StateCapture(state_bytes) + cost.DiskWrite(state_bytes),
      [this, instance, state_bytes, done = std::move(done)]() {
        auto it = instances_.find(instance);
        if (it == instances_.end()) {
          done(NotFoundError("instance destroyed during deactivation"));
          return;
        }
        Dcdo* object = it->second.object.get();
        object->host().StoreFile("state/" + instance.ToString(), state_bytes);
        object->Deactivate();
        done(Status::Ok());
      });
}

void DcdoManager::ReactivateInstance(const ObjectId& instance,
                                     DoneCallback done) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    done(NotFoundError("no instance " + instance.ToString()));
    return;
  }
  Dcdo* object = it->second.object.get();
  if (object->active()) {
    done(Status::Ok());
    return;
  }
  sim::SimHost& host = object->host();
  host.SpawnProcess(
      instance, kShellExecutableBytes,
      [this, instance, done = std::move(done)](sim::ProcessId shell_pid) {
        auto it = instances_.find(instance);
        if (it == instances_.end()) {
          done(NotFoundError("instance destroyed during reactivation"));
          return;
        }
        Dcdo* object = it->second.object.get();
        (void)object->host().KillProcess(shell_pid);
        // Re-map each (cached) component, read the state back, re-bind.
        const sim::CostModel& cost = home_.cost_model();
        std::size_t components = object->GetComponents().size();
        std::size_t state_bytes = object->mutable_state().CaptureSize();
        home_.simulation().AdvanceInline(
            cost.component_map_cached *
            static_cast<std::int64_t>(components));
        home_.simulation().Schedule(
            cost.DiskRead(state_bytes) + cost.StateRestore(state_bytes),
            [this, instance, done = std::move(done)]() {
              auto it = instances_.find(instance);
              if (it == instances_.end()) {
                done(NotFoundError("instance destroyed during reactivation"));
                return;
              }
              it->second.object->Reactivate();
              done(Status::Ok());
            });
      });
}

Status DcdoManager::DestroyInstance(const ObjectId& instance) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance.ToString());
  }
  NameId name = it->second.name;
  instances_.erase(it);
  if (names_ != nullptr) {
    if (name.valid()) {
      (void)names_->Unbind(name);
    } else {
      // Bound before interning existed (or the bind failed): fall back to
      // the path form.
      (void)names_->Unbind(NamePrefix() + "/instances/" +
                           std::to_string(instance.instance()));
    }
  }
  return Status::Ok();
}

void DcdoManager::InstallLazyHook(const ObjectId& instance) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) return;
  Dcdo* object = it->second.object.get();
  object->SetPreCallHook([this, instance]() { LazyCheck(instance); });
}

void DcdoManager::LazyCheck(const ObjectId& instance) {
  auto it = instances_.find(instance);
  if (it == instances_.end()) return;
  InstanceRecord& record = it->second;
  Dcdo* object = record.object.get();

  LazyCheckContext ctx;
  ctx.calls_since_check = object->user_calls() - record.calls_at_last_check;
  ctx.since_check = home_.simulation().Now() - record.last_check;
  if (!policy_->ShouldLazyCheck(ctx)) return;

  ++lazy_checks_;
  record.calls_at_last_check = object->user_calls();
  record.last_check = home_.simulation().Now();
  // Consulting the manager is a control-message round trip.
  home_.simulation().AdvanceInline(
      home_.cost_model().MessageTime(rpc::kHeaderBytes));

  if (!current_version_.valid() || object->version() == current_version_) {
    return;
  }
  if (!policy_->AutoUpdateAllowed(object->version(), current_version_)) {
    return;
  }
  ++lazy_updates_;
  EvolveInstanceTo(instance, current_version_, [](Status status) {
    if (!status.ok()) {
      DCDO_LOG(kWarning) << "lazy update failed: " << status.ToString();
    }
  });
}

Dcdo* DcdoManager::FindInstance(const ObjectId& instance) {
  auto it = instances_.find(instance);
  return it == instances_.end() ? nullptr : it->second.object.get();
}

Result<VersionId> DcdoManager::InstanceVersion(const ObjectId& instance) const {
  auto it = instances_.find(instance);
  if (it == instances_.end()) {
    return NotFoundError("no instance " + instance.ToString());
  }
  return it->second.object->version();
}

std::vector<DcdoManager::TableEntry> DcdoManager::Table() const {
  std::vector<TableEntry> out;
  out.reserve(instances_.size());
  for (const auto& [instance_id, record] : instances_) {
    TableEntry entry;
    entry.id = instance_id;
    entry.version = record.object->version();
    entry.node = record.object->address().node;
    entry.architecture = record.object->host().architecture();
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace dcdo
