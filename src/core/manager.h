// DcdoManager (paper Section 2.4).
//
// "A DCDO Manager is in charge of maintaining implementation components for
// a particular object type, and for evolving the DCDOs that it manages."
// Its two primary data structures are here exactly as the paper defines
// them:
//
//   the DFM store  — DFM descriptors defining the versions of the type, each
//     marked instantiable (frozen; usable for creation/evolution) or
//     configurable (editable; unusable until marked instantiable);
//   the DCDO table — every instance under the manager's control, with its
//     current version and implementation type, consulted when deciding when
//     and how to evolve instances.
//
// The manager also publishes implementation components as ICOs, designates
// the current version (single-version styles), and drives its
// EvolutionPolicy: proactive pushes on designation, explicit updates on
// request, and lazy checks hooked into each instance's call path.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dcdo.h"
#include "core/evolution_policy.h"
#include "core/ico_directory.h"
#include "naming/name_service.h"

namespace dcdo {

class DcdoManager {
 public:
  using CreateCallback = std::function<void(Result<ObjectId>)>;
  using DoneCallback = std::function<void(Status)>;

  // Size of the generic "DCDO shell" executable every instance process runs
  // (the component-free runtime: DFM, RPC plumbing). Components are loaded
  // into it dynamically.
  static constexpr std::size_t kShellExecutableBytes = 320 * 1024;

  DcdoManager(std::string type_name, sim::SimHost* home,
              rpc::RpcTransport* transport, BindingAgent* agent,
              const NativeCodeRegistry* registry,
              std::unique_ptr<EvolutionPolicy> policy);
  ~DcdoManager();

  DcdoManager(const DcdoManager&) = delete;
  DcdoManager& operator=(const DcdoManager&) = delete;

  const std::string& type_name() const { return type_name_; }
  const ObjectId& id() const { return id_; }
  const EvolutionPolicy& policy() const { return *policy_; }
  const IcoDirectory& icos() const { return icos_; }
  // The manager's acquisition pipeline (shared with every instance it
  // creates, so co-hosted instances single-flight their component fetches).
  const ComponentFetcher& fetcher() const { return fetcher_; }

  // Attaches the system name service: the manager then maintains
  // human-readable names under /types/<type_name>/ — "components/<name>"
  // for every published ICO and "instances/<n>" for every live DCDO.
  // Components published before attachment are bound retroactively.
  [[nodiscard]] Status AttachNameService(NameService* names);

  // ===== Implementation components =====

  // Publishes `meta` as an ICO on the manager's home host; the component
  // becomes fetchable system-wide. Returns the component's global id.
  [[nodiscard]] Result<ObjectId> PublishComponent(ImplementationComponent meta);

  // ===== The DFM store: version management =====

  // Creates the root version "1" (configurable). Fails if versions exist.
  [[nodiscard]] Result<VersionId> CreateRootVersion();

  // Derives a new configurable version from `parent` (which must exist):
  // the paper's "logically copying an existing instantiable one". The child
  // gets the next free ordinal under `parent`.
  [[nodiscard]] Result<VersionId> DeriveVersion(const VersionId& parent);

  // The descriptor for `version`, for configuration. Mutations fail with
  // kVersionFrozen once the version is instantiable.
  [[nodiscard]] Result<DfmDescriptor*> MutableDescriptor(const VersionId& version);
  [[nodiscard]] Result<const DfmDescriptor*> Descriptor(const VersionId& version) const;

  // Freezes `version` after validation; it becomes usable for creation and
  // evolution.
  [[nodiscard]] Status MarkInstantiable(const VersionId& version);

  // Designates the current version (must be instantiable). Under a
  // proactive single-version policy this immediately pushes the update to
  // every instance in the DCDO table.
  [[nodiscard]] Status SetCurrentVersion(const VersionId& version);
  const VersionId& current_version() const { return current_version_; }
  std::vector<VersionId> Versions() const;

  // ===== The DCDO table: instance management =====

  // Creates an instance of the current version on `host`: spawns a shell
  // process, then incorporates every component of the version's descriptor
  // (fetching images not cached on `host`).
  void CreateInstance(sim::SimHost* host, CreateCallback done);

  // Multi-version managers: create at a specific instantiable version.
  void CreateInstanceAt(const VersionId& version, sim::SimHost* host,
                        CreateCallback done);

  // Policy-checked evolution of one instance to `version`.
  void EvolveInstanceTo(const ObjectId& instance, const VersionId& version,
                        DoneCallback done);

  // The explicit-update entry point: brings `instance` to the current
  // version (subject to the policy's auto-update rule).
  void UpdateInstance(const ObjectId& instance, DoneCallback done);

  // Moves an instance to `dest`: capture + state transfer + component
  // fetches at dest + re-map + re-bind. Runs the policy's on-migrate lazy
  // check afterwards.
  void MigrateInstance(const ObjectId& instance, sim::SimHost* dest,
                       DoneCallback done);

  // Warms the instance's host cache with the components `version` would add,
  // ahead of the evolution that needs them. Best-effort and a no-op at
  // fetch_concurrency 1; a coordinator calls this for every step of a batch
  // before the serial apply phase, so the downloads overlap while the
  // applies stay ordered. A later EvolveInstanceTo joins any still-open
  // streams via the fetcher's single-flight dedup.
  void PrefetchInstanceVersion(const ObjectId& instance,
                               const VersionId& version);

  // Deactivates a (presumably idle) instance: its state is captured to the
  // host's store and its process exits; the binding disappears. Reactivation
  // pays a fresh shell spawn, cached component re-maps, and state restore —
  // and yields a new address, so pre-deactivation client bindings go stale.
  void DeactivateInstance(const ObjectId& instance, DoneCallback done);
  void ReactivateInstance(const ObjectId& instance, DoneCallback done);

  [[nodiscard]] Status DestroyInstance(const ObjectId& instance);

  // ===== Status reporting =====

  Dcdo* FindInstance(const ObjectId& instance);
  std::size_t instance_count() const { return instances_.size(); }
  [[nodiscard]] Result<VersionId> InstanceVersion(const ObjectId& instance) const;

  struct TableEntry {
    ObjectId id;
    VersionId version;
    sim::NodeId node = 0;
    sim::Architecture architecture = sim::Architecture::kX86Linux;
  };
  std::vector<TableEntry> Table() const;

  // One completed (or failed) evolution of one instance. The manager keeps
  // this ledger so operators can audit when and how the population moved —
  // the bookkeeping side of "the DCDO Manager uses this information when
  // deciding when and how to evolve its DCDOs".
  struct EvolutionEvent {
    ObjectId instance;
    VersionId from;
    VersionId to;
    sim::SimTime completed_at;
    sim::SimDuration duration;
    Status status;
  };
  const std::vector<EvolutionEvent>& History() const { return history_; }

  // Policy activity counters (reported by the update-policy bench).
  std::uint64_t updates_pushed() const { return updates_pushed_; }
  std::uint64_t lazy_checks() const { return lazy_checks_; }
  std::uint64_t lazy_updates() const { return lazy_updates_; }

  // Removal policy applied when evolution drops components from instances.
  void SetRemovalPolicy(const Dcdo::RemovalPolicy& policy) {
    removal_policy_ = policy;
  }

 private:
  struct InstanceRecord {
    std::unique_ptr<Dcdo> object;
    std::uint64_t calls_at_last_check = 0;
    sim::SimTime last_check;
    // Interned context-space name ("/types/<T>/instances/<n>"), so destroy
    // unbinds by id instead of rebuilding and rehashing the path string.
    NameId name;
  };

  // Applies the descriptor of `version` to the (fresh or existing) DCDO.
  void ApplyVersion(Dcdo* object, const VersionId& version, DoneCallback done);
  void InstallLazyHook(const ObjectId& instance);
  void LazyCheck(const ObjectId& instance);
  [[nodiscard]] Status CheckInstantiable(const VersionId& version) const;

  std::string type_name_;
  ObjectId id_;
  sim::SimHost& home_;
  rpc::RpcTransport& transport_;
  BindingAgent& agent_;
  const NativeCodeRegistry& registry_;
  std::unique_ptr<EvolutionPolicy> policy_;
  sim::ProcessId pid_ = 0;

  std::string NamePrefix() const { return "/types/" + type_name_; }

  std::vector<std::unique_ptr<ImplementationComponentObject>> published_;
  IcoDirectory icos_;
  // One acquisition pipeline for everything this manager moves: instances
  // share its per-host single-flight scope, so two DCDOs activating on one
  // host never download the same image twice.
  ComponentFetcher fetcher_{&icos_};
  NameService* names_ = nullptr;  // not owned; may be null

  std::map<VersionId, DfmDescriptor> dfm_store_;
  VersionId current_version_;

  std::map<ObjectId, InstanceRecord> instances_;
  Dcdo::RemovalPolicy removal_policy_ = Dcdo::RemovalPolicy::Error();

  std::uint64_t updates_pushed_ = 0;
  std::uint64_t lazy_checks_ = 0;
  std::uint64_t lazy_updates_ = 0;
  std::vector<EvolutionEvent> history_;
};

}  // namespace dcdo
