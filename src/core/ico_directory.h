// IcoDirectory: name-to-object resolution for implementation components.
//
// ICOs live in the system's global namespace; a DCDO incorporating component
// X resolves X's ObjectId to the live ICO through this directory (the
// reproduction's stand-in for a binding-agent lookup plus proxy — kept
// separate from DcdoManager so a DCDO can fetch components without a
// dependency cycle on its manager).
#pragma once

#include <unordered_map>

#include "common/object_id.h"
#include "common/status.h"
#include "component/fetcher.h"
#include "component/ico.h"

namespace dcdo {

class IcoDirectory : public IcoResolver {
 public:
  // Registers a live ICO; the directory does not own it.
  void Register(ImplementationComponentObject* ico);
  void Unregister(const ObjectId& id);

  [[nodiscard]] Result<ImplementationComponentObject*> Find(const ObjectId& id) const;
  bool Has(const ObjectId& id) const { return icos_.contains(id); }
  std::size_t size() const { return icos_.size(); }

  // IcoResolver: the ComponentFetcher's view of this directory.
  [[nodiscard]] Result<ImplementationComponentObject*> FindIco(
      const ObjectId& id) const override {
    return Find(id);
  }

 private:
  std::unordered_map<ObjectId, ImplementationComponentObject*, ObjectIdHash>
      icos_;
};

}  // namespace dcdo
