// Dcdo: a dynamically configurable distributed object (paper Section 2.2).
//
// A DCDO is an active object whose implementation is a *set of components*
// mapped through a DFM rather than a monolithic executable. Its interface has
// the paper's three function categories:
//
//   configuration functions — incorporateComponent / removeComponent /
//     enableFunction / disableFunction / switchImplementation / mark* /
//     dependency edits, plus EvolveTo (apply a whole DFM descriptor);
//   status-reporting functions — getInterface / version / components /
//     active-thread counts;
//   user-defined functions — everything else: any exported dynamic function,
//     dispatched through the DFM.
//
// Remote invocations reaching the DCDO's endpoint are routed the same way:
// "dcdo."-prefixed methods hit the configuration/status interface, all other
// method names are treated as dynamic function calls.
//
// Every dynamic call (local or remote, external or internal) charges
// CostModel::dfm_lookup in simulated time — the paper's measured 10-15 us
// DFM indirection overhead.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "common/version_id.h"
#include "component/fetcher.h"
#include "component/native_code_registry.h"
#include "core/ico_directory.h"
#include "dfm/descriptor.h"
#include "dfm/mapper.h"
#include "naming/binding_agent.h"
#include "rpc/transport.h"
#include "runtime/method_table.h"
#include "sim/host.h"

namespace dcdo {

class Dcdo final : public CallContext {
 public:
  // What to do when removeComponent meets active threads (Section 3.2):
  // fail, wait for the counts to drain, or wait up to a deadline then force.
  struct RemovalPolicy {
    enum class Kind : std::uint8_t { kError, kDelay, kTimeout };
    Kind kind = Kind::kError;
    sim::SimDuration timeout = sim::SimDuration::Seconds(5);  // kTimeout only
    sim::SimDuration poll = sim::SimDuration::Millis(50);

    static RemovalPolicy Error() { return RemovalPolicy{}; }
    static RemovalPolicy Delay();
    static RemovalPolicy Timeout(sim::SimDuration deadline);
  };

  using DoneCallback = std::function<void(Status)>;

  // Activates the DCDO on `host` as a fresh process (no spawn cost charged —
  // managers charge creation explicitly; see DcdoManager::CreateInstance).
  // `fetcher` routes this object's component acquisitions; a manager passes
  // its own so co-managed instances share one single-flight scope. Null (the
  // default, used by directly-constructed test objects) gives the object a
  // private fetcher with identical behaviour.
  Dcdo(std::string name, sim::SimHost* host, rpc::RpcTransport* transport,
       BindingAgent* agent, const NativeCodeRegistry* registry,
       const IcoDirectory* icos, VersionId version,
       ComponentFetcher* fetcher = nullptr);
  ~Dcdo() override;

  Dcdo(const Dcdo&) = delete;
  Dcdo& operator=(const Dcdo&) = delete;

  const ObjectId& id() const { return id_; }
  const std::string& name() const { return name_; }
  const VersionId& version() const { return version_; }
  sim::SimHost& host() const { return *host_; }

  // ===== Configuration functions =====

  // Incorporates the component whose image is already in the host cache.
  // Charges component_map_cached + per-function DFM registration.
  [[nodiscard]] Status IncorporateCached(const ImplementationComponent& meta,
                           bool auto_structural_deps = true);

  // Full incorporate: resolves the ICO, fetches the image if not cached
  // (bulk download), then maps it. `done` runs when incorporated.
  void IncorporateComponent(const ObjectId& component_id, DoneCallback done);

  // Immediate removal honouring `thread_policy` (kError rejects on active
  // threads; kForce removes regardless).
  [[nodiscard]] Status RemoveComponent(const ObjectId& component_id,
                         ActiveThreadPolicy thread_policy =
                             ActiveThreadPolicy::kError);

  // Removal under a RemovalPolicy: kDelay retries until thread counts drain;
  // kTimeout waits up to the deadline then forces.
  void RemoveComponentWithPolicy(const ObjectId& component_id,
                                 const RemovalPolicy& policy,
                                 DoneCallback done);

  [[nodiscard]] Status EnableFunction(const std::string& function, const ObjectId& component);
  [[nodiscard]] Status DisableFunction(const std::string& function, const ObjectId& component,
                         bool respect_active_dependents = true);
  [[nodiscard]] Status SwitchImplementation(const std::string& function,
                              const ObjectId& to_component);
  [[nodiscard]] Status SetVisibility(const std::string& function, const ObjectId& component,
                       Visibility visibility);
  [[nodiscard]] Status MarkMandatory(const std::string& function);
  [[nodiscard]] Status MarkPermanent(const std::string& function, const ObjectId& component);
  [[nodiscard]] Status AddDependency(Dependency dep);
  [[nodiscard]] Status RemoveDependency(const Dependency& dep);

  // Applies the delta to `target`: fetches and incorporates new components,
  // removes dropped ones (with `removal`), applies enable/disable flips,
  // adopts the target's constraint/dependency metadata, and finally takes on
  // the target's version id. This is "evolving the DCDO" — sub-second unless
  // components must be downloaded.
  // `enforce_marks` is the policy's enforce_marks_on_evolve(): when set,
  // moves that would break a mandatory/permanent rule are rejected.
  void EvolveTo(const DfmDescriptor& target, const RemovalPolicy& removal,
                DoneCallback done, bool enforce_marks = true);

  // ===== Status-reporting functions =====

  std::vector<FunctionSignature> GetInterface() const {
    return mapper_.state().ExportedInterface();
  }
  std::vector<ObjectId> GetComponents() const {
    return mapper_.state().ComponentIds();
  }
  int ActiveCount(const std::string& function, const ObjectId& component) const {
    return mapper_.ActiveCount(function, component);
  }
  const DynamicFunctionMapper& mapper() const { return mapper_; }
  const ObjectAddress& address() const { return address_; }

  // ===== User-defined function invocation =====

  // External-origin call (what a remote client's invocation performs once it
  // reaches the object). Charges the DFM lookup cost.
  [[nodiscard]] Result<ByteBuffer> Call(const std::string& function, const ByteBuffer& args);

  // Pre-resolved variant: repeat callers holding an interned FunctionId skip
  // the per-call name lookup entirely.
  [[nodiscard]] Result<ByteBuffer> Call(FunctionId function, const ByteBuffer& args);

  // CallContext (bodies calling other dynamic functions in this object):
  [[nodiscard]] Result<ByteBuffer> CallInternal(const std::string& function,
                                  const ByteBuffer& args) override;
  [[nodiscard]] Result<ByteBuffer> CallInternal(FunctionId function, const ByteBuffer& args);
  ObjectId self_id() const override;
  void BlockOnOutcall(double sim_seconds) override;
  ByteBuffer& object_data() override { return state_.data; }

  // Per-instance application state (captured on migration).
  InstanceState& mutable_state() { return state_; }

  // Counters used by lazy-update policies and benches.
  std::uint64_t user_calls() const { return user_calls_; }

  // Hook installed by DcdoManager: runs before each user call so lazy
  // policies can pull updates. Null by default.
  void SetPreCallHook(std::function<void()> hook) {
    pre_call_hook_ = std::move(hook);
  }

  // Re-binds this DCDO after its manager migrated it (new host/pid/epoch).
  void Rebind(sim::SimHost* new_host);

  // --- Deactivation lifecycle (Legion objects vacate their process when
  // idle and re-activate on demand; the new activation has a new address,
  // so old client bindings go stale exactly as after migration) ---

  // Tears down the activation: endpoint unregistered, process killed,
  // binding removed. The object's state stays captured in this handle.
  void Deactivate();

  // Spins up a fresh activation on the same host (new pid, bumped epoch).
  void Reactivate();

  bool active() const { return active_; }

  // Re-resolves every incorporated component for the current host's
  // architecture — call after Rebind() when migrating. Fails with
  // kArchMismatch if a component has no usable build here.
  [[nodiscard]] Status RemapForHost() {
    return mapper_.RemapBodies(registry_, host_->architecture());
  }

 private:
  void RegisterEndpoint();
  void HandleInvocation(const rpc::MethodInvocation& invocation,
                        rpc::ReplyFn reply);
  [[nodiscard]] Result<ByteBuffer> DispatchConfig(std::string_view method,
                                    const ByteBuffer& args);
  sim::Simulation& simulation() { return host_->simulation(); }
  const sim::CostModel& cost() const { return host_->cost_model(); }

  std::string name_;
  ObjectId id_;
  sim::SimHost* host_;
  rpc::RpcTransport& transport_;
  BindingAgent& agent_;
  const NativeCodeRegistry& registry_;
  const IcoDirectory& icos_;
  std::unique_ptr<ComponentFetcher> owned_fetcher_;  // only when none injected
  ComponentFetcher* fetcher_;
  VersionId version_;
  DynamicFunctionMapper mapper_;
  InstanceState state_;
  ObjectAddress address_;
  std::uint64_t user_calls_ = 0;
  std::function<void()> pre_call_hook_;
  bool active_ = true;
};

}  // namespace dcdo
