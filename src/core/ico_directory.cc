#include "core/ico_directory.h"

namespace dcdo {

void IcoDirectory::Register(ImplementationComponentObject* ico) {
  icos_[ico->id()] = ico;
}

void IcoDirectory::Unregister(const ObjectId& id) { icos_.erase(id); }

Result<ImplementationComponentObject*> IcoDirectory::Find(
    const ObjectId& id) const {
  auto it = icos_.find(id);
  if (it == icos_.end()) {
    return ComponentMissingError("no ICO for component " + id.ToString());
  }
  return it->second;
}

}  // namespace dcdo
