#include "check/race_detector.h"

#include <algorithm>
#include <sstream>

namespace dcdo::check {
namespace {

std::string DescribeStamp(const Stamp& stamp) {
  std::ostringstream out;
  out << "t=" << stamp.time.ToSeconds() << "s/L" << stamp.lamport;
  return out.str();
}

}  // namespace

void RaceDetector::OnCallStart(const ObjectId& object,
                               const std::string& function,
                               const ObjectId& component, const Stamp& stamp) {
  InFlightCall call;
  call.token = next_token_++;
  call.object = object;
  call.function = function;
  call.component = component;
  call.start = stamp;
  in_flight_.push_back(std::move(call));
}

void RaceDetector::OnCallEnd(const ObjectId& object,
                             const std::string& function,
                             const ObjectId& component, const Stamp& stamp) {
  (void)stamp;
  // Close the most recent matching record (calls nest LIFO within an object).
  for (auto it = in_flight_.rbegin(); it != in_flight_.rend(); ++it) {
    if (it->object == object && it->function == function &&
        it->component == component) {
      in_flight_.erase(std::next(it).base());
      return;
    }
  }
}

void RaceDetector::OnComponentRemoved(const ObjectId& object,
                                      const ObjectId& component, bool forced,
                                      const Stamp& stamp) {
  retired_.insert({object, component});
  for (const InFlightCall& call : in_flight_) {
    if (call.object != object || call.component != component) continue;
    Diagnostic d;
    d.severity = forced ? Severity::kError : Severity::kWarning;
    d.invariant = "race-forced-removal";
    d.time = stamp.time;
    d.event_id = stamp.event_id;
    d.object = object;
    d.message = std::string(forced ? "forced" : "unguarded") +
                " removal of component " + component.ToString() + " at " +
                DescribeStamp(stamp) + " overlaps invocation of '" +
                call.function + "' started at " + DescribeStamp(call.start) +
                "; the removal does not happen-after the invocation end";
    sink_.Record(std::move(d));
  }
}

void RaceDetector::OnImplSwapped(const ObjectId& object,
                                 const std::string& function,
                                 const ObjectId& from_component,
                                 const ObjectId& to_component,
                                 int active_on_from, const Stamp& stamp) {
  if (active_on_from <= 0) return;
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.invariant = "race-unquiesced-swap";
  d.time = stamp.time;
  d.event_id = stamp.event_id;
  d.object = object;
  d.message = "switchImplementation('" + function + "') moved " +
              from_component.ToString() + " -> " + to_component.ToString() +
              " at " + DescribeStamp(stamp) + " while " +
              std::to_string(active_on_from) +
              " thread(s) were still executing the old implementation";
  sink_.Record(std::move(d));
}

void RaceDetector::OnEvolveBegin(const ObjectId& object, const VersionId& from,
                                 const VersionId& to, const Stamp& stamp) {
  std::vector<EvolutionWindow>& open = windows_[object];
  if (!open.empty()) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.invariant = "single-evolution";
    d.time = stamp.time;
    d.event_id = stamp.event_id;
    d.object = object;
    d.version = to;
    d.message = "evolution to " + to.ToString() + " began at " +
                DescribeStamp(stamp) + " while the evolution to " +
                open.back().to.ToString() + " (begun at " +
                DescribeStamp(open.back().begin) + ") was still in flight";
    sink_.Record(std::move(d));
  }
  EvolutionWindow window;
  window.from = from;
  window.to = to;
  window.begin = stamp;
  for (const InFlightCall& call : in_flight_) {
    if (call.object == object) window.calls_at_begin.insert(call.token);
  }
  open.push_back(std::move(window));
}

void RaceDetector::OnVersionChanged(const ObjectId& object,
                                    const VersionId& from, const VersionId& to,
                                    const Stamp& stamp) {
  auto it = windows_.find(object);
  if (it == windows_.end() || it->second.empty()) return;
  const EvolutionWindow& window = it->second.back();
  for (const InFlightCall& call : in_flight_) {
    if (call.object != object) continue;
    if (!window.calls_at_begin.contains(call.token)) continue;
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.invariant = "race-overlapping-evolution";
    d.time = stamp.time;
    d.event_id = stamp.event_id;
    d.object = object;
    d.version = to;
    d.message = "evolution " + from.ToString() + " -> " + to.ToString() +
                " committed at " + DescribeStamp(stamp) +
                " while invocation of '" + call.function + "' (component " +
                call.component.ToString() + ", started at " +
                DescribeStamp(call.start) +
                ") had not completed: the commit does not happen-after the "
                "invocation epoch it overlaps";
    sink_.Record(std::move(d));
  }
}

void RaceDetector::OnEvolveEnd(const ObjectId& object, bool ok,
                               const Stamp& stamp) {
  (void)ok;
  (void)stamp;
  auto it = windows_.find(object);
  if (it == windows_.end() || it->second.empty()) return;
  it->second.pop_back();
  if (it->second.empty()) windows_.erase(it);
}

int RaceDetector::InFlightCalls(const ObjectId& object) const {
  int n = 0;
  for (const InFlightCall& call : in_flight_) {
    if (call.object == object) ++n;
  }
  return n;
}

int RaceDetector::OpenEvolutions(const ObjectId& object) const {
  auto it = windows_.find(object);
  return it == windows_.end() ? 0 : static_cast<int>(it->second.size());
}

bool RaceDetector::WasRetired(const ObjectId& object,
                              const ObjectId& component) const {
  return retired_.contains({object, component});
}

bool RaceDetector::FirstReport(const std::string& key) {
  return reported_.insert(key).second;
}

}  // namespace dcdo::check
