// CheckContext: the always-on invariant checking layer of the simulator.
//
// One CheckContext is installed per testbed (process-globally reachable via
// Current(), so instrumentation sites deep in the stack need no plumbing).
// Instrumented layers feed it three kinds of input:
//
//   snapshot probes — closures registered by live objects (Dcdo, binding
//     caches, the network) that report their current state when asked;
//   event hooks     — notifications of semantically interesting actions
//     (call start/end, component removal, evolution begin/commit/end,
//     endpoint open/close, binding refresh), which also drive the logical
//     race detector (see race_detector.h);
//   invariants      — named predicates over the registered probes, evaluated
//     at configurable points: every simulation event, every N events, or
//     only at end-of-run.
//
// Shipped invariants (registered by the constructor; see invariants.cc):
//
//   version-monotonic    (core)   a DCDO's version changes only through an
//                                 instrumented evolution; the live version
//                                 always equals the causally recorded one;
//   single-evolution     (core)   at most one in-flight evolution per object;
//   dfm-no-dangling      (dfm)    no in-flight invocation references a
//                                 component that has been retired from its
//                                 object's DFM;
//   dfm-integrity        (dfm)    each object's DFM table is self-consistent
//                                 (one enabled impl per function, permanent
//                                 implies enabled, mandatory implies present,
//                                 rows only for incorporated components);
//   thread-accounting    (dfm)    the mapper's active-thread counts agree
//                                 with the checker's in-flight call ledger;
//   binding-coherence    (naming) a cached binding never points at an address
//                                 that was never a live activation: stale
//                                 entries are legal only with a
//                                 stale-binding fault pending (the address
//                                 was once live and has been retired);
//   message-conservation (rpc/sim) control messages are conserved:
//                                 sent = delivered + dropped-in-flight +
//                                 queued, and nothing is still queued once
//                                 the simulator goes idle.
//
// Zero cost when disabled: instrumentation sites compile to nothing unless
// DCDO_CHECK_ENABLED is defined (CMake option DCDO_CHECKING, on by default),
// and even then are a single null/flag test unless a context is installed
// and enabled (the runtime toggle benchmarks use).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/diagnostics.h"
#include "check/race_detector.h"
#include "common/object_id.h"
#include "common/version_id.h"
#include "sim/simulation.h"

namespace dcdo::check {

// What a Dcdo reports about itself when probed.
struct ObjectStatusSnapshot {
  ObjectId id;
  std::string name;
  VersionId version;
  bool active = true;
  std::vector<ObjectId> components;       // incorporated component ids
  int total_active_threads = 0;           // mapper's view
  std::vector<std::string> config_anomalies;  // DfmState::CheckIntegrity()
  // Current activation address.
  std::uint32_t node = 0;
  std::uint64_t pid = 0;
  std::uint64_t epoch = 0;
};

// What a binding cache reports: one record per cached entry.
struct CacheEntrySnapshot {
  ObjectId object;
  std::uint32_t node = 0;
  std::uint64_t pid = 0;
  std::uint64_t epoch = 0;
};

// What the network reports for conservation checking.
struct NetworkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_in_flight = 0;
  std::uint64_t in_flight = 0;
};

class CheckContext;

// A named predicate over the context's registered probes. `check` records
// any violations into ctx.diagnostics() (use ctx.Report for deduping).
struct Invariant {
  std::string name;         // e.g. "version-monotonic"
  std::string layer;        // the layer it guards: "core", "dfm", "naming"...
  std::string paper;        // the paper passage it encodes
  std::function<void(CheckContext&)> check;
};

class CheckContext {
 public:
  enum class Cadence : std::uint8_t { kEveryEvent, kEveryN, kEndOfRun };

  struct Options {
    bool enabled = true;
    Cadence cadence = Cadence::kEveryN;
    std::uint64_t every_n = 64;  // kEveryN: evaluate every N sim events
  };

  CheckContext();
  explicit CheckContext(const Options& options);
  ~CheckContext();
  CheckContext(const CheckContext&) = delete;
  CheckContext& operator=(const CheckContext&) = delete;

  // --- global installation (how instrumentation sites find the context) ---

  static CheckContext* Current();
  void Install();    // makes this the process-current context
  void Uninstall();  // clears it, if this is the current one

  // Installs the per-event observer on `simulation` and uses it as the time
  // and event-count source for stamps.
  void AttachSimulation(sim::Simulation* simulation);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  Diagnostics& diagnostics() { return diagnostics_; }
  const Diagnostics& diagnostics() const { return diagnostics_; }
  RaceDetector& races() { return races_; }

  // --- probe registration (instrumented layers and tests) ---

  using ObjectProbe = std::function<ObjectStatusSnapshot()>;
  void RegisterObject(const ObjectId& id, ObjectProbe probe);
  void UnregisterObject(const ObjectId& id);

  using CacheProbe = std::function<std::vector<CacheEntrySnapshot>()>;
  std::uint64_t RegisterBindingCache(CacheProbe probe);
  void UnregisterBindingCache(std::uint64_t handle);

  // Is (node, pid, epoch) a live endpoint right now? Installed by the
  // testbed over the RPC transport.
  using EndpointLivenessFn =
      std::function<bool(std::uint32_t, std::uint64_t, std::uint64_t)>;
  void SetEndpointLiveness(EndpointLivenessFn fn);

  using NetworkProbe = std::function<NetworkCounters()>;
  void SetNetworkProbe(NetworkProbe probe);

  // --- invariants ---

  void RegisterInvariant(Invariant invariant);
  const std::vector<Invariant>& invariants() const { return invariants_; }

  // Runs every invariant once, now.
  void Evaluate();
  // End-of-run evaluation: everything Evaluate() checks, plus
  // quiescence-only conditions (nothing still queued in the network).
  void EvaluateAtEnd();
  bool at_end() const { return at_end_; }
  std::uint64_t evaluations() const { return evaluations_; }

  // Records `d` unless an identical (invariant, object, message) was already
  // reported — invariants re-evaluate, violations report once.
  void Report(Diagnostic d);

  // --- event hooks (instrumentation sites; also callable by tests to
  //     construct violations) ---

  void OnCallStart(const ObjectId& object, const std::string& function,
                   const ObjectId& component);
  void OnCallEnd(const ObjectId& object, const std::string& function,
                 const ObjectId& component);
  void OnComponentRemoved(const ObjectId& object, const ObjectId& component,
                          bool forced);
  void OnImplSwapped(const ObjectId& object, const std::string& function,
                     const ObjectId& from_component,
                     const ObjectId& to_component, int active_on_from);
  void OnEvolveBegin(const ObjectId& object, const VersionId& from,
                     const VersionId& to);
  void OnVersionChanged(const ObjectId& object, const VersionId& from,
                        const VersionId& to);
  void OnEvolveEnd(const ObjectId& object, bool ok);
  void OnEndpointOpened(std::uint32_t node, std::uint64_t pid,
                        std::uint64_t epoch);
  void OnEndpointClosed(std::uint32_t node, std::uint64_t pid);
  void OnBindingRefreshed(const ObjectId& object, std::uint32_t node,
                          std::uint64_t pid, std::uint64_t epoch);
  // Audit-trail note (kInfo), e.g. coordinated-update batches.
  void Note(const std::string& source, const std::string& message);

  // --- queries for invariants and tests ---

  Stamp NowStamp();
  bool EndpointWasClosed(std::uint32_t node, std::uint64_t pid) const;
  bool EndpointLive(std::uint32_t node, std::uint64_t pid,
                    std::uint64_t epoch) const;
  std::vector<ObjectId> RegisteredObjects() const;
  // Probes the registered object; false if unknown.
  bool Probe(const ObjectId& id, ObjectStatusSnapshot* out) const;
  std::vector<CacheEntrySnapshot> ProbeCaches() const;
  bool ProbeNetwork(NetworkCounters* out) const;
  // The version the checker last saw the object at (seeded at registration,
  // advanced by OnVersionChanged).
  bool RecordedVersion(const ObjectId& id, VersionId* out) const;

 private:
  void OnSimulationEvent();

  Options options_;
  std::atomic<bool> enabled_;
  mutable std::recursive_mutex mutex_;
  sim::Simulation* simulation_ = nullptr;

  Diagnostics diagnostics_;
  RaceDetector races_;
  std::uint64_t lamport_ = 0;
  std::uint64_t evaluations_ = 0;
  bool at_end_ = false;
  bool evaluating_ = false;

  std::map<ObjectId, ObjectProbe> objects_;
  std::map<ObjectId, VersionId> recorded_versions_;
  std::map<std::uint64_t, CacheProbe> caches_;
  std::uint64_t next_cache_handle_ = 1;
  EndpointLivenessFn endpoint_liveness_;
  NetworkProbe network_probe_;
  std::set<std::pair<std::uint32_t, std::uint64_t>> closed_endpoints_;

  std::vector<Invariant> invariants_;
};

// Registers the shipped invariant set (invariants.cc); called by the
// CheckContext constructor.
void RegisterBuiltinInvariants(CheckContext& ctx);

// The hook macro instrumentation sites use. Compiles to nothing without
// DCDO_CHECK_ENABLED; otherwise a null test + enabled test before the call.
#if defined(DCDO_CHECK_ENABLED)
#define DCDO_CHECK_HOOK(call)                                       \
  do {                                                              \
    ::dcdo::check::CheckContext* dcdo_check_ctx_ =                  \
        ::dcdo::check::CheckContext::Current();                     \
    if (dcdo_check_ctx_ != nullptr && dcdo_check_ctx_->enabled()) { \
      dcdo_check_ctx_->call;                                        \
    }                                                               \
  } while (false)
#else
#define DCDO_CHECK_HOOK(call) \
  do {                        \
  } while (false)
#endif

}  // namespace dcdo::check
