// Logical race detection over the deterministic simulator.
//
// The simulator is single-threaded, so there are no data races to find; what
// can still go wrong is the paper's core hazard: a configuration change that
// overlaps an un-quiesced invocation epoch ("update while invocations
// outstanding", Section 3.2). The detector tracks happens-before order with
// stamps — (simulated time, simulation event count, Lamport counter advanced
// on every instrumented action and joined across causal message edges) — and
// keeps two ledgers:
//
//   in-flight invocations — one record per live DFM CallGuard, opened by
//     OnCallStart and closed by OnCallEnd;
//   evolution windows     — one per in-flight Dcdo::EvolveTo, opened by
//     OnEvolveBegin and closed by OnEvolveEnd, remembering which invocations
//     were already running when the evolution began.
//
// Diagnostics produced:
//   race-forced-removal      (error)   a component was force-removed while
//                                      invocations were live inside it — the
//                                      removal does not happen-after the
//                                      invocation ends;
//   race-overlapping-evolution (warning) an evolution committed its version
//                                      while invocations that predate the
//                                      evolution were still running (legal
//                                      per the paper — "there is no reason
//                                      why a thread cannot proceed inside a
//                                      deactivated function" — but worth a
//                                      structured diagnostic, since the
//                                      thread now executes retired code);
//   race-unquiesced-swap     (warning) switchImplementation replaced an
//                                      implementation that had live threads;
//   single-evolution         (error)   a second EvolveTo began while another
//                                      was still in flight on the same
//                                      object.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "check/diagnostics.h"
#include "common/object_id.h"
#include "common/version_id.h"

namespace dcdo::check {

// A happens-before stamp: an action A happens-before B iff A's stamp was
// taken earlier on the single simulator timeline (lamport strictly smaller).
struct Stamp {
  sim::SimTime time;
  std::uint64_t event_id = 0;  // simulation events fired so far
  std::uint64_t lamport = 0;   // logical clock over instrumented actions
};

class RaceDetector {
 public:
  explicit RaceDetector(Diagnostics* sink) : sink_(*sink) {}

  // --- invocation ledger ---
  void OnCallStart(const ObjectId& object, const std::string& function,
                   const ObjectId& component, const Stamp& stamp);
  void OnCallEnd(const ObjectId& object, const std::string& function,
                 const ObjectId& component, const Stamp& stamp);

  // --- configuration-change edges ---
  void OnComponentRemoved(const ObjectId& object, const ObjectId& component,
                          bool forced, const Stamp& stamp);
  void OnImplSwapped(const ObjectId& object, const std::string& function,
                     const ObjectId& from_component,
                     const ObjectId& to_component, int active_on_from,
                     const Stamp& stamp);

  // --- evolution windows ---
  void OnEvolveBegin(const ObjectId& object, const VersionId& from,
                     const VersionId& to, const Stamp& stamp);
  void OnVersionChanged(const ObjectId& object, const VersionId& from,
                        const VersionId& to, const Stamp& stamp);
  void OnEvolveEnd(const ObjectId& object, bool ok, const Stamp& stamp);

  // --- queries (used by CheckContext invariants and tests) ---
  int InFlightCalls(const ObjectId& object) const;
  int OpenEvolutions(const ObjectId& object) const;

  struct InFlightCall {
    std::uint64_t token = 0;
    ObjectId object;
    std::string function;
    ObjectId component;
    Stamp start;
  };
  const std::vector<InFlightCall>& in_flight() const { return in_flight_; }

  // Components retired (by any removal) per object — used by the
  // dfm-no-dangling invariant to phrase its diagnostics.
  bool WasRetired(const ObjectId& object, const ObjectId& component) const;

  // Dedupe helper for invariants that re-evaluate: true the first time the
  // key is seen.
  bool FirstReport(const std::string& key);

 private:
  struct EvolutionWindow {
    VersionId from;
    VersionId to;
    Stamp begin;
    std::set<std::uint64_t> calls_at_begin;  // tokens live when it opened
  };

  Diagnostics& sink_;
  std::uint64_t next_token_ = 1;
  std::vector<InFlightCall> in_flight_;
  std::map<ObjectId, std::vector<EvolutionWindow>> windows_;
  std::set<std::pair<ObjectId, ObjectId>> retired_;  // (object, component)
  std::set<std::string> reported_;
};

}  // namespace dcdo::check
