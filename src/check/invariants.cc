// The shipped invariant set (see check_context.h for the catalogue).
//
// Each invariant is a predicate over the context's registered probes; all are
// written to be re-evaluated arbitrarily often (every simulation event at the
// tightest cadence), so every one dedupes through ctx.Report and, where the
// offending state keeps mutating (counters), through a coarse first-report
// key so one broken condition yields one diagnostic, not a flood.
#include <algorithm>
#include <string>

#include "check/check_context.h"

namespace dcdo::check {
namespace {

Diagnostic MakeDiagnostic(CheckContext& ctx, Severity severity,
                          std::string invariant, const ObjectId& object,
                          std::string message) {
  Diagnostic d;
  d.severity = severity;
  d.invariant = std::move(invariant);
  Stamp stamp = ctx.NowStamp();
  d.time = stamp.time;
  d.event_id = stamp.event_id;
  d.object = object;
  d.message = std::move(message);
  return d;
}

// version-monotonic: the live version of every registered object equals the
// version the checker recorded causally (seeded at registration, advanced
// only by the OnVersionChanged hook). Any other movement means the version
// changed outside an instrumented evolution — or moved backwards.
void CheckVersionMonotonic(CheckContext& ctx) {
  for (const ObjectId& id : ctx.RegisteredObjects()) {
    ObjectStatusSnapshot snapshot;
    if (!ctx.Probe(id, &snapshot)) continue;
    VersionId recorded;
    if (!ctx.RecordedVersion(id, &recorded)) continue;
    if (snapshot.version == recorded) continue;
    if (!ctx.races().FirstReport("version-monotonic|" + id.ToString())) {
      continue;
    }
    Diagnostic d = MakeDiagnostic(
        ctx, Severity::kError, "version-monotonic", id,
        "live version " + snapshot.version.ToString() +
            " diverged from the causally recorded version " +
            recorded.ToString() +
            ": the version changed outside an instrumented evolution");
    d.version = snapshot.version;
    ctx.Report(std::move(d));
  }
}

// single-evolution: at most one EvolveTo in flight per object. The race
// detector reports the precise overlap at OnEvolveBegin; this predicate is
// the steady-state restatement so end-of-run-only cadences still catch it.
void CheckSingleEvolution(CheckContext& ctx) {
  for (const ObjectId& id : ctx.RegisteredObjects()) {
    int open = ctx.races().OpenEvolutions(id);
    if (open <= 1) continue;
    if (!ctx.races().FirstReport("single-evolution|steady|" + id.ToString())) {
      continue;
    }
    ctx.Report(MakeDiagnostic(
        ctx, Severity::kError, "single-evolution", id,
        std::to_string(open) +
            " evolutions are simultaneously in flight; the paper's update "
            "protocol serialises evolutions per object"));
  }
}

// dfm-no-dangling: every in-flight invocation's component is still
// incorporated in its object's DFM. A component that disappeared through an
// instrumented removal is a known (paper-legal) overlap — the thread may
// proceed inside the deactivated function — and warns; a component that
// vanished with no removal ever instrumented is true dangling state.
void CheckDfmNoDangling(CheckContext& ctx) {
  for (const RaceDetector::InFlightCall& call : ctx.races().in_flight()) {
    ObjectStatusSnapshot snapshot;
    if (!ctx.Probe(call.object, &snapshot)) continue;
    if (std::find(snapshot.components.begin(), snapshot.components.end(),
                  call.component) != snapshot.components.end()) {
      continue;
    }
    bool explained = ctx.races().WasRetired(call.object, call.component);
    if (!ctx.races().FirstReport("dfm-no-dangling|" +
                                 std::to_string(call.token))) {
      continue;
    }
    ctx.Report(MakeDiagnostic(
        ctx, explained ? Severity::kWarning : Severity::kError,
        "dfm-no-dangling", call.object,
        "invocation of '" + call.function + "' is executing in component " +
            call.component.ToString() +
            " which is no longer incorporated in the object's DFM" +
            (explained ? " (retired by an instrumented removal; the thread "
                         "proceeds in a deactivated function)"
                       : " and no instrumented removal explains its "
                         "disappearance")));
  }
}

// dfm-integrity: the object's DFM table is self-consistent, as reported by
// DfmState::CheckIntegrity() through the object probe.
void CheckDfmIntegrity(CheckContext& ctx) {
  for (const ObjectId& id : ctx.RegisteredObjects()) {
    ObjectStatusSnapshot snapshot;
    if (!ctx.Probe(id, &snapshot)) continue;
    for (const std::string& anomaly : snapshot.config_anomalies) {
      // ctx.Report's (invariant, object, message) key dedupes re-evaluation.
      ctx.Report(MakeDiagnostic(ctx, Severity::kError, "dfm-integrity", id,
                                anomaly));
    }
  }
}

// thread-accounting: the mapper's total active-thread count agrees with the
// checker's in-flight invocation ledger for every registered object. Calls
// executing in a component that is no longer incorporated are excluded: a
// forced removal drops the mapper's entries (and their counts) while the
// thread keeps running — that overlap is dfm-no-dangling's to report.
void CheckThreadAccounting(CheckContext& ctx) {
  for (const ObjectId& id : ctx.RegisteredObjects()) {
    ObjectStatusSnapshot snapshot;
    if (!ctx.Probe(id, &snapshot)) continue;
    int ledger = 0;
    for (const RaceDetector::InFlightCall& call : ctx.races().in_flight()) {
      if (call.object != id) continue;
      if (std::find(snapshot.components.begin(), snapshot.components.end(),
                    call.component) == snapshot.components.end()) {
        continue;
      }
      ++ledger;
    }
    if (snapshot.total_active_threads == ledger) continue;
    if (!ctx.races().FirstReport("thread-accounting|" + id.ToString())) {
      continue;
    }
    ctx.Report(MakeDiagnostic(
        ctx, Severity::kError, "thread-accounting", id,
        "mapper reports " + std::to_string(snapshot.total_active_threads) +
            " active thread(s) but the invocation ledger holds " +
            std::to_string(ledger) +
            ": call starts and ends are not balanced"));
  }
}

// binding-coherence: every cached binding points at an address that is either
// live right now or was once live and has been retired (in which case the
// stale-binding fault protocol will repair the cache on next use). An address
// that is dead and was never retired cannot be explained by any fault.
void CheckBindingCoherence(CheckContext& ctx) {
  for (const CacheEntrySnapshot& entry : ctx.ProbeCaches()) {
    if (ctx.EndpointLive(entry.node, entry.pid, entry.epoch)) continue;
    if (ctx.EndpointWasClosed(entry.node, entry.pid)) continue;
    if (!ctx.races().FirstReport(
            "binding-coherence|" + entry.object.ToString() + "|" +
            std::to_string(entry.node) + "/" + std::to_string(entry.pid) +
            "/" + std::to_string(entry.epoch))) {
      continue;
    }
    ctx.Report(MakeDiagnostic(
        ctx, Severity::kError, "binding-coherence", entry.object,
        "cached binding points at node=" + std::to_string(entry.node) +
            " pid=" + std::to_string(entry.pid) +
            " epoch=" + std::to_string(entry.epoch) +
            " which is not live and was never a retired activation: no "
            "stale-binding fault is pending to repair it"));
  }
}

// message-conservation: control messages are conserved — every message sent
// is delivered, dropped in flight, or still queued; and once the simulator
// goes idle (end-of-run), nothing may remain queued.
void CheckMessageConservation(CheckContext& ctx) {
  NetworkCounters counters;
  if (!ctx.ProbeNetwork(&counters)) return;
  std::uint64_t accounted =
      counters.delivered + counters.dropped_in_flight + counters.in_flight;
  if (counters.sent != accounted &&
      ctx.races().FirstReport("message-conservation|balance")) {
    ctx.Report(MakeDiagnostic(
        ctx, Severity::kError, "message-conservation", ObjectId(),
        "sent=" + std::to_string(counters.sent) +
            " != delivered=" + std::to_string(counters.delivered) +
            " + dropped-in-flight=" +
            std::to_string(counters.dropped_in_flight) +
            " + in-flight=" + std::to_string(counters.in_flight)));
  }
  if (ctx.at_end() && counters.in_flight != 0 &&
      ctx.races().FirstReport("message-conservation|quiescence")) {
    ctx.Report(MakeDiagnostic(
        ctx, Severity::kError, "message-conservation", ObjectId(),
        std::to_string(counters.in_flight) +
            " message(s) still in flight at end of run: the simulator went "
            "idle with undelivered traffic"));
  }
}

}  // namespace

void RegisterBuiltinInvariants(CheckContext& ctx) {
  ctx.RegisterInvariant(
      {"version-monotonic", "core",
       "Section 4: version identifiers grow monotonically along the "
       "derivation chain; an instance's version changes only by evolution",
       CheckVersionMonotonic});
  ctx.RegisterInvariant(
      {"single-evolution", "core",
       "Section 5: the update protocol serialises configuration changes per "
       "object",
       CheckSingleEvolution});
  ctx.RegisterInvariant(
      {"dfm-no-dangling", "dfm",
       "Section 3.2: removing a component removes its DFM entries; threads "
       "may proceed inside deactivated functions",
       CheckDfmNoDangling});
  ctx.RegisterInvariant(
      {"dfm-integrity", "dfm",
       "Section 3.2: one enabled implementation per function; permanent "
       "implies enabled; mandatory functions keep an implementation",
       CheckDfmIntegrity});
  ctx.RegisterInvariant(
      {"thread-accounting", "dfm",
       "Section 3.2: the DFM monitors thread activity per function and "
       "component",
       CheckThreadAccounting});
  ctx.RegisterInvariant(
      {"binding-coherence", "naming",
       "Section 6: stale bindings are detected as binding faults and "
       "repaired by rebinding through the agent",
       CheckBindingCoherence});
  ctx.RegisterInvariant(
      {"message-conservation", "rpc",
       "Section 6: invocations retry on timeout; messages are delivered, "
       "lost, or pending — never silently created or destroyed",
       CheckMessageConservation});
}

}  // namespace dcdo::check
