// Diagnostics: the structured violation sink of the checking layer.
//
// Every invariant violation and logical race the checker detects lands here
// as a Diagnostic: which invariant, at what simulated time, during which
// simulation event, against which object/version, and a human-readable
// explanation. Tests assert on the sink ("this scenario must fire
// binding-coherence exactly once"); operators dump it as text or JSON.
// Severity kInfo entries are audit notes (coordinated-update batches,
// rollbacks) rather than violations; Clean() looks only at kError.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/object_id.h"
#include "common/version_id.h"
#include "sim/sim_time.h"

namespace dcdo::check {

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

std::string_view SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  std::string invariant;       // e.g. "version-monotonic", "race-forced-removal"
  std::string message;
  sim::SimTime time;           // simulated time at record
  std::uint64_t event_id = 0;  // simulation events fired when recorded
  ObjectId object;             // offending object (nil when system-wide)
  VersionId version;           // version involved (invalid when n/a)

  // "[error] t=1.250s ev=42 version-monotonic obj=3:7 v=1.2: <message>"
  std::string ToString() const;
  // One JSON object, all fields present.
  std::string ToJson() const;
};

class Diagnostics {
 public:
  void Record(Diagnostic diagnostic);

  const std::vector<Diagnostic>& all() const { return entries_; }
  std::size_t count() const { return entries_.size(); }
  std::size_t errors() const;
  std::size_t warnings() const;
  bool Clean() const { return errors() == 0; }

  // All entries recorded against `invariant`.
  std::vector<const Diagnostic*> For(std::string_view invariant) const;
  std::size_t CountFor(std::string_view invariant) const {
    return For(invariant).size();
  }

  // One line per entry.
  std::string DumpText() const;
  // A JSON array of diagnostic objects.
  std::string DumpJson() const;

  void Clear() { entries_.clear(); }

 private:
  std::vector<Diagnostic> entries_;
};

}  // namespace dcdo::check
